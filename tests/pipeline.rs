//! End-to-end integration tests: the full paper pipeline from model
//! configuration to deployed, autoscaled, SLA-checked serving.

use elasticrec::{
    plan, Calibration, Platform, Simulation, SimulationConfig, SteadyState, Strategy,
};
use er_model::configs;
use er_workload::{SlaConfig, TrafficSchedule};

#[test]
fn elastic_beats_model_wise_on_memory_everywhere() {
    for (platform, calib, target) in [
        (Platform::CpuOnly, Calibration::cpu_only(), 100.0),
        (Platform::CpuGpu, Calibration::cpu_gpu(), 200.0),
    ] {
        for cfg in configs::all_rms() {
            let mw = SteadyState::size(
                &plan(&cfg, platform, Strategy::ModelWise, &calib),
                target,
                &calib,
            )
            .expect("fits");
            let er = SteadyState::size(
                &plan(&cfg, platform, Strategy::Elastic, &calib),
                target,
                &calib,
            )
            .expect("fits");
            assert!(
                (er.memory_bytes as f64) < 0.6 * mw.memory_bytes as f64,
                "{:?} {}: {} vs {}",
                platform,
                cfg.name,
                er.memory_gib(),
                mw.memory_gib()
            );
        }
    }
}

#[test]
fn node_reduction_holds_on_cpu_only() {
    let calib = Calibration::cpu_only();
    for cfg in configs::all_rms() {
        let mw = SteadyState::size(
            &plan(&cfg, Platform::CpuOnly, Strategy::ModelWise, &calib),
            100.0,
            &calib,
        )
        .expect("fits");
        let er = SteadyState::size(
            &plan(&cfg, Platform::CpuOnly, Strategy::Elastic, &calib),
            100.0,
            &calib,
        )
        .expect("fits");
        assert!(
            er.nodes_used < mw.nodes_used,
            "{}: {} vs {}",
            cfg.name,
            er.nodes_used,
            mw.nodes_used
        );
    }
}

#[test]
fn steady_serving_meets_the_sla() {
    // The sized deployment must actually hold the 400 ms p95 SLA when
    // driven by real (simulated) traffic.
    let calib = Calibration::cpu_only();
    let sla = SlaConfig::paper_default();
    for cfg in [configs::rm1(), configs::rm3()] {
        let p = plan(&cfg, Platform::CpuOnly, Strategy::Elastic, &calib);
        let sim = SimulationConfig::new(TrafficSchedule::constant(100.0), 45.0, 21);
        let out = Simulation::run(&p, &calib, &sim);
        let p95 = out.latency.percentile(0.95);
        assert!(
            !sla.is_violated(p95),
            "{}: p95 {:.0} ms violates the SLA",
            cfg.name,
            p95 * 1e3
        );
        assert!(out.completed_queries > 3000);
    }
}

#[test]
fn elastic_pays_modest_rpc_latency_over_model_wise() {
    // Section VI-B: the microservice fan-out costs some latency (the paper
    // measures ~31 ms, 8% of the SLA) — real, but bounded.
    let calib = Calibration::cpu_only();
    let cfg = configs::rm1();
    // Light load isolates the service + network path from queueing noise.
    let schedule = TrafficSchedule::constant(5.0);
    let run = |strategy| {
        let p = plan(&cfg, Platform::CpuOnly, strategy, &calib);
        Simulation::run(
            &p,
            &calib,
            &SimulationConfig::new(schedule.clone(), 60.0, 3),
        )
        .mean_latency_secs()
    };
    let mw = run(Strategy::ModelWise);
    let er = run(Strategy::Elastic);
    assert!(
        er > mw,
        "fan-out must add latency (er {er:.3} vs mw {mw:.3})"
    );
    assert!(
        er - mw < 0.2,
        "the overhead must stay a fraction of the SLA ({:.0} ms)",
        (er - mw) * 1e3
    );
}

#[test]
fn sharding_respects_platform_placement_rules() {
    // Section IV-A: sparse shards are CPU-only containers on both
    // platforms; dense shards are GPU-centric only on CPU-GPU.
    let cpu = plan(
        &configs::rm2(),
        Platform::CpuOnly,
        Strategy::Elastic,
        &Calibration::cpu_only(),
    );
    assert!(cpu.shards.iter().all(|s| s.pod.resources().gpus == 0));

    let gpu = plan(
        &configs::rm2(),
        Platform::CpuGpu,
        Strategy::Elastic,
        &Calibration::cpu_gpu(),
    );
    assert_eq!(gpu.frontend().pod.resources().gpus, 1);
    assert!(gpu.embedding_shards().all(|s| s.pod.resources().gpus == 0));
}

#[test]
fn shard_counts_match_plan_structure() {
    let calib = Calibration::cpu_only();
    for cfg in configs::all_rms() {
        let p = plan(&cfg, Platform::CpuOnly, Strategy::Elastic, &calib);
        let expected: usize = p.table_plans.iter().map(|t| t.num_shards()).sum();
        assert_eq!(p.embedding_shards().count(), expected, "{}", cfg.name);
        assert_eq!(p.table_plans.len(), cfg.tables.len());
        // Every shard's plan tiles its table exactly.
        for t in &p.table_plans {
            let covered: u64 = (0..t.num_shards()).map(|s| t.shard_size(s)).sum();
            assert_eq!(covered, t.table_len());
        }
    }
}

#[test]
fn higher_targets_never_reduce_resources() {
    let calib = Calibration::cpu_only();
    let p = plan(
        &configs::rm1(),
        Platform::CpuOnly,
        Strategy::Elastic,
        &calib,
    );
    let mut prev_mem = 0;
    let mut prev_nodes = 0;
    for target in [50.0, 100.0, 200.0, 400.0, 800.0] {
        let s = SteadyState::size(&p, target, &calib).expect("fits");
        assert!(s.memory_bytes >= prev_mem, "target {target}");
        assert!(s.nodes_used >= prev_nodes, "target {target}");
        prev_mem = s.memory_bytes;
        prev_nodes = s.nodes_used;
    }
}

#[test]
fn gpu_cache_sits_between_baselines() {
    let calib = Calibration::cpu_gpu();
    for cfg in configs::all_rms() {
        let target = 200.0;
        let mw = SteadyState::size(
            &plan(&cfg, Platform::CpuGpu, Strategy::ModelWise, &calib),
            target,
            &calib,
        )
        .expect("fits");
        let cached = SteadyState::size(
            &plan(
                &cfg,
                Platform::CpuGpu,
                Strategy::ModelWiseCached { gpu_hit_rate: 0.9 },
                &calib,
            ),
            target,
            &calib,
        )
        .expect("fits");
        let er = SteadyState::size(
            &plan(&cfg, Platform::CpuGpu, Strategy::Elastic, &calib),
            target,
            &calib,
        )
        .expect("fits");
        assert!(cached.memory_bytes <= mw.memory_bytes, "{}", cfg.name);
        assert!(er.memory_bytes < cached.memory_bytes, "{}", cfg.name);
    }
}

//! Closed-loop validation of the paper's estimation pipeline: serve real
//! (synthetic) traffic, build hotness information from *observed* access
//! counts, partition from it, and check that Algorithm 1's CDF-based load
//! predictions match what the shards actually receive.

use std::sync::Arc;

use elasticrec::{ParallelShardExecutor, ShardedDlrm};
use er_distribution::sorting::HotnessPermutation;
use er_distribution::{AccessModel, EmpiricalCdf};
use er_model::{configs, AccessCounter, Dlrm, QueryGenerator};
use er_partition::{partition_bucketed, AnalyticGatherModel, CostModel};
use er_sim::SimRng;
use er_units::{Bytes, BytesPerSec, Qps, Secs};

const ROWS: u64 = 2_000;
const TRAIN_QUERIES: usize = 60;
const TEST_QUERIES: usize = 60;

#[test]
fn observed_counts_drive_an_accurate_partition() {
    let cfg = configs::rm1().scaled_tables(ROWS).with_num_tables(1);
    let gen = QueryGenerator::new(&cfg);

    // Phase 1: observe production traffic and collect access history.
    let mut rng = SimRng::seed_from(101);
    let mut counter = AccessCounter::new(&cfg);
    for _ in 0..TRAIN_QUERIES {
        counter.observe(&gen.generate(&mut rng));
    }
    let counts = counter.into_counts().remove(0);

    // Phase 2: sort by observed hotness and partition from the empirical
    // CDF (no access to the true generator distribution).
    let perm = HotnessPermutation::from_counts(&counts);
    let cdf = EmpiricalCdf::from_counts(&counts);
    let n_t = (cfg.batch_size as u64 * cfg.tables[0].pooling as u64) as f64;
    let qps = AnalyticGatherModel::new(
        Secs::of(3.0e-3),
        BytesPerSec::of(20.0e6),
        Bytes::of_u64(128),
    );
    let cost = CostModel::new(&cdf, &qps, n_t, Bytes::of_u64(128), Bytes::of_u64(1024))
        .with_target_traffic(Qps::of(10_000.0));
    let plan = partition_bucketed(ROWS, 4, 120, |k, j| cost.cost(k, j).raw());
    assert!(
        plan.num_shards() >= 2,
        "skewed traffic must split the table"
    );

    // Phase 3: serve *fresh* traffic and measure where gathers actually
    // land versus Algorithm 1's predictions.
    let mut observed = vec![0u64; plan.num_shards()];
    let mut total = 0u64;
    for _ in 0..TEST_QUERIES {
        let q = gen.generate(&mut rng);
        for &orig in q.lookups[0].indices() {
            let sorted = perm.to_sorted(orig) as u64;
            observed[plan.shard_of_id(sorted)] += 1;
            total += 1;
        }
    }

    for (s, (k, j)) in plan.shards().into_iter().enumerate() {
        let predicted = cdf.coverage(k, j);
        let realized = observed[s] as f64 / total as f64;
        assert!(
            (predicted - realized).abs() < 0.05,
            "shard {s}: predicted {predicted:.3} vs realized {realized:.3}"
        );
    }

    // The hot head must actually be hot: shard 0 serves the majority of
    // gathers from a small slice of the table.
    let head_share = observed[0] as f64 / total as f64;
    let head_size = plan.shard_size(0) as f64 / ROWS as f64;
    assert!(
        head_share > 0.5 && head_size < 0.3,
        "head serves {head_share:.2} of traffic from {head_size:.2} of rows"
    );
}

#[test]
fn observed_partition_serves_identically_in_parallel() {
    // Close the loop all the way to serving: observe traffic, partition
    // from the observed counts, decompose the model onto the resulting
    // shards, and serve fresh queries through the parallel data plane —
    // which must be bit-identical to the sequential shard walk.
    let rows = 600u64;
    let cfg = configs::rm1().scaled_tables(rows).with_num_tables(1);
    let gen = QueryGenerator::new(&cfg);
    let mut rng = SimRng::seed_from(55);
    let mut counter = AccessCounter::new(&cfg);
    for _ in 0..TRAIN_QUERIES {
        counter.observe(&gen.generate(&mut rng));
    }
    let counts = counter.into_counts().remove(0);

    let cdf = EmpiricalCdf::from_counts(&counts);
    let n_t = (cfg.batch_size as u64 * cfg.tables[0].pooling as u64) as f64;
    let qps = AnalyticGatherModel::new(
        Secs::of(3.0e-3),
        BytesPerSec::of(20.0e6),
        Bytes::of_u64(128),
    );
    let cost = CostModel::new(&cdf, &qps, n_t, Bytes::of_u64(128), Bytes::of_u64(1024))
        .with_target_traffic(Qps::of(10_000.0));
    let plan = partition_bucketed(rows, 4, 60, |k, j| cost.cost(k, j).raw());
    assert!(plan.num_shards() >= 2);

    let model = Dlrm::with_seed(&cfg, 19);
    let sharded =
        ShardedDlrm::new(model, std::slice::from_ref(&counts), vec![plan]).expect("valid");
    let exec = Arc::new(ParallelShardExecutor::new(4));
    let par = sharded.clone().with_executor(exec);
    for _ in 0..5 {
        let q = gen.generate(&mut rng);
        assert_eq!(sharded.forward_seq(&q), par.forward(&q));
    }
}

#[test]
fn observed_and_analytic_partitions_agree() {
    // The empirical pipeline should land near the plan computed from the
    // true analytic distribution (they see the same skew).
    let cfg = configs::rm1().scaled_tables(ROWS).with_num_tables(1);
    let gen = QueryGenerator::new(&cfg);
    let mut rng = SimRng::seed_from(77);
    let mut counter = AccessCounter::new(&cfg);
    for _ in 0..TRAIN_QUERIES {
        counter.observe(&gen.generate(&mut rng));
    }
    let counts = counter.into_counts().remove(0);
    let empirical = EmpiricalCdf::from_counts(&counts);
    let analytic = gen.distribution(0);

    let n_t = (cfg.batch_size as u64 * cfg.tables[0].pooling as u64) as f64;
    let qps = AnalyticGatherModel::new(
        Secs::of(3.0e-3),
        BytesPerSec::of(20.0e6),
        Bytes::of_u64(128),
    );
    let plan_of = |cdf: &dyn Fn(u64, u64) -> f64| partition_bucketed(ROWS, 4, 120, cdf);
    let emp_cost = CostModel::new(
        &empirical,
        &qps,
        n_t,
        Bytes::of_u64(128),
        Bytes::of_u64(1024),
    )
    .with_target_traffic(Qps::of(10_000.0));
    let ana_cost = CostModel::new(analytic, &qps, n_t, Bytes::of_u64(128), Bytes::of_u64(1024))
        .with_target_traffic(Qps::of(10_000.0));
    let emp_plan = plan_of(&|k, j| emp_cost.cost(k, j).raw());
    let ana_plan = plan_of(&|k, j| ana_cost.cost(k, j).raw());

    assert_eq!(emp_plan.num_shards(), ana_plan.num_shards());
    // Hot-head sizes agree within a factor of three (finite-sample noise
    // on a 2k-row table).
    let e = emp_plan.shard_size(0) as f64;
    let a = ana_plan.shard_size(0) as f64;
    assert!(
        e / a < 3.0 && a / e < 3.0,
        "head sizes diverge: empirical {e} analytic {a}"
    );
}

//! Functional-equivalence integration tests: ElasticRec's distributed
//! serving path (hotness sort → bucketize → per-shard gather → merge) must
//! produce the same inference results as the monolithic DLRM it was
//! decomposed from, with the shard boundaries chosen by the *real*
//! partitioning pipeline.

use std::sync::Arc;

use elasticrec::{ParallelShardExecutor, ShardedDlrm};
use er_distribution::{EmpiricalCdf, LocalityTarget};
use er_model::{configs, Dlrm, QueryGenerator};
use er_partition::{partition_exact, AnalyticGatherModel, CostModel, PartitionPlan};
use er_sim::SimRng;
use er_units::{Bytes, BytesPerSec, Qps, Secs};

/// Tolerance for f32 sum-reassociation across shard partial pools.
const TOL: f32 = 1e-4;

/// Builds synthetic per-entry access counts consistent with a locality
/// target, hot entries scattered randomly through the table.
fn synthetic_counts(rows: u64, locality: f64, seed: u64) -> Vec<u64> {
    let dist = LocalityTarget::new(locality).solve(rows);
    let mut rng = SimRng::seed_from(seed);
    let mut counts = vec![0u64; rows as usize];
    for _ in 0..20_000 {
        let rank = dist.quantile(rng.uniform());
        // Scatter ranks over positions with a fixed pseudo-random bijection
        // so hot entries are not already contiguous.
        let pos = (rank * 2_654_435_761 % rows) as usize;
        counts[pos] += 1;
    }
    counts
}

#[test]
fn dp_partitioned_sharded_model_matches_monolith() {
    let rows = 400u64;
    let cfg = configs::rm1().scaled_tables(rows).with_num_tables(3);
    let model = Dlrm::with_seed(&cfg, 77);

    // Per-table counts -> empirical CDFs -> Algorithm 1 + 2 partitioning.
    let counts: Vec<Vec<u64>> = (0..3)
        .map(|t| synthetic_counts(rows, 0.9, 100 + t as u64))
        .collect();
    let qps = AnalyticGatherModel::new(
        Secs::of(3.0e-3),
        BytesPerSec::of(20.0e6),
        Bytes::of_u64(128),
    );
    let plans: Vec<PartitionPlan> = counts
        .iter()
        .map(|c| {
            let access = EmpiricalCdf::from_counts(c);
            // Tiny test table: scale the per-container floor down and the
            // traffic up so the DP has a real replication tradeoff.
            let cost = CostModel::new(
                &access,
                &qps,
                4096.0,
                Bytes::of_u64(128),
                Bytes::of_u64(1024),
            )
            .with_target_traffic(Qps::of(10_000.0));
            partition_exact(rows, 4, |k, j| cost.cost(k, j).raw())
        })
        .collect();
    assert!(plans.iter().any(|p| p.num_shards() >= 2));

    let sharded = ShardedDlrm::new(model.clone(), &counts, plans).expect("valid decomposition");
    let gen = QueryGenerator::new(&cfg);
    let mut rng = SimRng::seed_from(5);
    for i in 0..10 {
        let q = gen.generate(&mut rng);
        let mono = model.forward(&q);
        let dist = sharded.forward(&q);
        let diff = mono.max_abs_diff(&dist);
        assert!(diff < TOL, "query {i}: diff {diff}");
        // Outputs are probabilities.
        for r in 0..mono.rows() {
            assert!((0.0..=1.0).contains(&dist.get(r, 0)));
        }
    }
}

#[test]
fn every_shard_count_gives_the_same_answers() {
    let rows = 128u64;
    let cfg = configs::rm1().scaled_tables(rows).with_num_tables(2);
    let model = Dlrm::with_seed(&cfg, 13);
    let counts = vec![synthetic_counts(rows, 0.9, 1); 2];
    let q = QueryGenerator::new(&cfg).generate(&mut SimRng::seed_from(9));
    let reference = model.forward(&q);

    for shards in [1usize, 2, 4, 8, 16] {
        let plans = vec![PartitionPlan::equal(rows, shards); 2];
        let sharded = ShardedDlrm::new(model.clone(), &counts, plans).expect("valid");
        let out = sharded.forward(&q);
        assert!(
            reference.max_abs_diff(&out) < TOL,
            "{shards} shards diverged"
        );
    }
}

#[test]
fn parallel_executor_matches_sequential_on_every_model() {
    // The parallel data plane must be bit-identical to the sequential walk
    // (not merely within TOL) on all three paper workloads, at every
    // tested thread count.
    let rows = 256u64;
    for (name, cfg) in [
        ("RM1", configs::rm1()),
        ("RM2", configs::rm2()),
        ("RM3", configs::rm3()),
    ] {
        let cfg = cfg.scaled_tables(rows).with_num_tables(2);
        let model = Dlrm::with_seed(&cfg, 41);
        let counts: Vec<Vec<u64>> = (0..2)
            .map(|t| synthetic_counts(rows, 0.9, 300 + t as u64))
            .collect();
        let plans = vec![PartitionPlan::new(vec![16, 64, 256], rows).unwrap(); 2];
        let sharded = ShardedDlrm::new(model.clone(), &counts, plans).expect("valid");
        let gen = QueryGenerator::new(&cfg);
        let mut rng = SimRng::seed_from(7);
        for threads in [1usize, 2, 8] {
            let exec = Arc::new(ParallelShardExecutor::new(threads));
            let par = sharded.clone().with_executor(Arc::clone(&exec));
            for i in 0..3 {
                let q = gen.generate(&mut rng);
                let seq = sharded.forward_seq(&q);
                let dist = par.forward(&q);
                assert_eq!(seq, dist, "{name} threads={threads} query {i}");
                let diff = model.forward(&q).max_abs_diff(&dist);
                assert!(diff < TOL, "{name} threads={threads} query {i}: {diff}");
            }
        }
    }
}

#[test]
fn extreme_skew_and_uniform_both_round_trip() {
    let rows = 200u64;
    let cfg = configs::rm1().scaled_tables(rows).with_num_tables(1);
    let model = Dlrm::with_seed(&cfg, 31);
    let q = QueryGenerator::new(&cfg).generate(&mut SimRng::seed_from(2));
    let reference = model.forward(&q);

    // One entry hoards all accesses; and perfectly uniform counts.
    let mut hoard = vec![0u64; rows as usize];
    hoard[137] = 1_000_000;
    for counts in [hoard, vec![7u64; rows as usize]] {
        let plans = vec![PartitionPlan::new(vec![1, 50, 200], rows).unwrap()];
        let sharded =
            ShardedDlrm::new(model.clone(), std::slice::from_ref(&counts), plans).expect("valid");
        assert!(reference.max_abs_diff(&sharded.forward(&q)) < TOL);
    }
}

//! Property-based tests over the core data structures and algorithms.

use std::sync::Arc;

use proptest::prelude::*;

use elasticrec::{ParallelShardExecutor, ShardedDlrm};
use er_cluster::{Cluster, HardwareProfile, PodSpec, ResourceRequest};
use er_distribution::sorting::HotnessPermutation;
use er_distribution::{AccessModel, EmpiricalCdf, LocalityTarget, ZipfDistribution};
use er_metrics::Histogram;
use er_model::{configs, Dlrm, EmbeddingTable, QueryGenerator, TableLookup};
use er_partition::{bucketize, bucketize_tables, partition_exact, PartitionPlan};
use er_sim::{SimRng, SimTime};
use er_tensor::Matrix;

/// Generates a valid (indices, offsets) lookup over a table of `rows`.
fn lookup_strategy(rows: u32) -> impl Strategy<Value = (Vec<u32>, Vec<u32>)> {
    (1usize..6).prop_flat_map(move |num_inputs| {
        proptest::collection::vec(0..rows, 0..40).prop_flat_map(move |indices| {
            let len = indices.len() as u32;
            proptest::collection::vec(0..=len, num_inputs - 1).prop_map(move |mut mids| {
                mids.sort_unstable();
                let mut offsets = vec![0u32];
                offsets.extend(mids);
                (indices.clone(), offsets)
            })
        })
    })
}

/// Generates a valid partition plan over a table of `rows`.
fn plan_strategy(rows: u64) -> impl Strategy<Value = PartitionPlan> {
    proptest::collection::btree_set(1..rows, 0..5).prop_map(move |cuts| {
        let mut cuts: Vec<u64> = cuts.into_iter().collect();
        cuts.push(rows);
        PartitionPlan::new(cuts, rows).expect("constructed valid")
    })
}

/// Generates conforming matmul operands with exact zeros sprinkled in (the
/// fast kernels have a zero-skip path that must not change results).
fn matmul_operands() -> impl Strategy<Value = (Matrix, Matrix)> {
    (1usize..24, 1usize..24, 1usize..40).prop_flat_map(|(m, k, n)| {
        (
            proptest::collection::vec(-2.0f32..2.0, m * k),
            proptest::collection::vec(-2.0f32..2.0, k * n),
        )
            .prop_map(move |(mut a, b)| {
                for (i, v) in a.iter_mut().enumerate() {
                    if i % 7 == 0 {
                        *v = 0.0;
                    }
                }
                (
                    Matrix::from_vec(m, k, a).expect("sized to m*k"),
                    Matrix::from_vec(k, n, b).expect("sized to k*n"),
                )
            })
    })
}

proptest! {
    /// Bucketization never drops, invents, or corrupts a gather: for every
    /// input, the multiset of global IDs reconstructed from the shards
    /// equals the original.
    #[test]
    fn bucketize_preserves_gather_multisets(
        (indices, offsets) in lookup_strategy(64),
        plan in plan_strategy(64),
    ) {
        let b = bucketize(&indices, &offsets, &plan);
        prop_assert_eq!(b.total_gathers(), indices.len());
        for input in 0..offsets.len() {
            let start = offsets[input] as usize;
            let end = offsets.get(input + 1).map_or(indices.len(), |&o| o as usize);
            let mut expect: Vec<u32> = indices[start..end].to_vec();
            expect.sort_unstable();
            let mut got: Vec<u32> = (0..plan.num_shards())
                .flat_map(|s| {
                    let base = plan.shard_base(s) as u32;
                    b.shard_input_indices(s, input).iter().map(move |&l| l + base)
                })
                .collect();
            got.sort_unstable();
            prop_assert_eq!(got, expect);
        }
    }

    /// Rebased shard-local IDs always fall inside their shard.
    #[test]
    fn bucketize_ids_stay_in_shard_bounds(
        (indices, offsets) in lookup_strategy(64),
        plan in plan_strategy(64),
    ) {
        let b = bucketize(&indices, &offsets, &plan);
        for s in 0..plan.num_shards() {
            let size = plan.shard_size(s) as u32;
            prop_assert!(b.indices[s].iter().all(|&i| i < size));
        }
    }

    /// The DP partitioner never loses to brute-force enumeration.
    #[test]
    fn dp_is_optimal_against_brute_force(
        n in 2u64..10,
        s_max in 1usize..4,
        a in 1.0f64..3.0,
        b in 0.5f64..5.0,
        c in 0.0f64..10.0,
    ) {
        let cost = move |k: u64, j: u64| ((j - k) as f64).powf(a) / (k as f64 + b) + c;
        let dp = partition_exact(n, s_max, cost);
        let dp_cost: f64 = dp.shards().iter().map(|&(k, j)| cost(k, j)).sum();

        let mut best = f64::INFINITY;
        for mask in 0u32..(1 << (n - 1)) {
            if mask.count_ones() as usize >= s_max {
                continue;
            }
            let mut cuts: Vec<u64> = (1..n).filter(|&cut| mask & (1 << (cut - 1)) != 0).collect();
            cuts.push(n);
            let plan = PartitionPlan::new(cuts, n).expect("valid");
            let total: f64 = plan.shards().iter().map(|&(k, j)| cost(k, j)).sum();
            best = best.min(total);
        }
        prop_assert!(dp_cost <= best + 1e-9, "dp {dp_cost} vs brute {best}");
    }

    /// Zipf CDFs are monotone and properly normalized for any exponent.
    #[test]
    fn zipf_cdf_is_monotone_and_normalized(
        n in 1u64..100_000,
        s in 0.0f64..3.0,
    ) {
        let z = ZipfDistribution::new(n, s);
        prop_assert_eq!(z.cdf(0), 0.0);
        prop_assert!((z.cdf(n) - 1.0).abs() < 1e-6);
        let step = (n / 17).max(1);
        let mut prev = 0.0;
        let mut x = 0;
        while x <= n {
            let c = z.cdf(x);
            prop_assert!(c >= prev - 1e-12);
            prev = c;
            x += step;
        }
    }

    /// The locality solver hits its target coverage for any feasible P.
    #[test]
    fn locality_solver_is_accurate(
        p in 0.10f64..0.995,
        n in 100u64..1_000_000,
    ) {
        let z = LocalityTarget::new(p).solve(n);
        let got = z.cdf(((n as f64) * 0.10).round() as u64);
        prop_assert!((got - p).abs() < 0.02, "p={p} got={got}");
    }

    /// Hotness sorting produces a true permutation with non-increasing
    /// counts.
    #[test]
    fn hotness_sort_is_a_valid_permutation(
        counts in proptest::collection::vec(0u64..1000, 1..200),
    ) {
        let perm = HotnessPermutation::from_counts(&counts);
        // Bijection.
        let mut seen = vec![false; counts.len()];
        for pos in 0..counts.len() as u32 {
            let orig = perm.to_original(pos);
            prop_assert!(!seen[orig as usize]);
            seen[orig as usize] = true;
            prop_assert_eq!(perm.to_sorted(orig), pos);
        }
        // Sorted order.
        let sorted = perm.apply(&counts);
        for w in sorted.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
    }

    /// Empirical CDFs built from any counts are valid access models.
    #[test]
    fn empirical_cdf_is_well_formed(
        mut counts in proptest::collection::vec(0u64..10_000, 1..300),
    ) {
        counts[0] += 1; // ensure at least one access
        let cdf = EmpiricalCdf::from_counts(&counts);
        prop_assert_eq!(cdf.len(), counts.len() as u64);
        prop_assert!((cdf.cdf(cdf.len()) - 1.0).abs() < 1e-9);
        let mut prev = 0.0;
        for x in 0..=cdf.len() {
            let c = cdf.cdf(x);
            prop_assert!(c >= prev - 1e-12);
            prev = c;
        }
        // Total probability splits across any cut.
        let mid = cdf.len() / 2;
        let total = cdf.coverage(0, mid) + cdf.coverage(mid, cdf.len());
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    /// Histogram percentiles are monotone in the quantile and bounded by
    /// the extremes for any sample set.
    #[test]
    fn histogram_percentiles_are_sane(
        samples in proptest::collection::vec(0.0f64..1e6, 1..500),
    ) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut prev = 0.0;
        for i in 0..=10 {
            let q = i as f64 / 10.0;
            let v = h.percentile(q);
            prop_assert!(v >= prev - 1e-9);
            prop_assert!(v <= h.max() + 1e-9);
            prev = v;
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
    }

    /// Random create/scale/delete sequences never break the cluster's
    /// resource accounting: every node stays within capacity and the
    /// memory metric equals the sum over live pods.
    #[test]
    fn cluster_accounting_survives_random_ops(
        ops in proptest::collection::vec((0usize..3, 0usize..4, 1usize..6), 1..40),
    ) {
        let mut cluster = Cluster::new(HardwareProfile::cpu_only_node(), Some(16));
        // Four deployment archetypes with varied footprints.
        let specs: Vec<PodSpec> = (0..4)
            .map(|i| {
                PodSpec::new(
                    format!("d{i}"),
                    ResourceRequest::cpu(4_000 + 9_000 * i as u64, (2 + 7 * i as u64) << 30),
                    1.0,
                )
            })
            .collect();
        let mut live = [false; 4];
        for (op, which, count) in ops {
            let name = format!("d{which}");
            match op {
                0 => {
                    if !live[which] {
                        let _ = cluster.create_deployment(
                            &name,
                            specs[which].clone(),
                            count,
                            SimTime::ZERO,
                        );
                        live[which] = true;
                    }
                }
                1 => {
                    if live[which] {
                        let _ = cluster.scale_to(&name, count, SimTime::ZERO);
                    }
                }
                _ => {
                    if live[which] {
                        let _ = cluster.delete_deployment(&name);
                        live[which] = false;
                    }
                }
            }
            // Invariant 1: no node over capacity.
            let cap = HardwareProfile::cpu_only_node();
            for (_, alloc) in cluster.node_allocations() {
                prop_assert!(alloc.cpu_millicores <= cap.cpu_millicores());
                prop_assert!(alloc.memory_bytes <= cap.mem_bytes.whole());
            }
            // Invariant 2: memory metric equals the sum over deployments.
            let expect: u64 = (0..4)
                .map(|i| {
                    cluster.replicas(&format!("d{i}")) as u64
                        * specs[i].resources().memory_bytes
                })
                .sum();
            prop_assert_eq!(cluster.memory_allocated_bytes(), expect);
            // Invariant 3: used nodes never exceed provisioned nodes.
            prop_assert!(cluster.nodes_used() <= cluster.nodes_provisioned());
        }
    }

    /// The blocked and row-parallel matmul kernels are bit-identical to
    /// the naive oracle — not merely close — for any shape, any data
    /// (including exact zeros, which exercise the skip path), and any
    /// thread count.
    #[test]
    fn fast_matmul_kernels_match_naive_exactly(
        (a, b) in matmul_operands(),
        threads in 1usize..9,
    ) {
        let naive = a.matmul(&b).expect("shapes conform");
        prop_assert_eq!(&naive, &a.matmul_blocked(&b).expect("shapes conform"));
        prop_assert_eq!(&naive, &a.matmul_parallel(&b, threads).expect("shapes conform"));
    }

    /// The fused gather+pool kernel is bit-identical to the slice-based
    /// reference for any lookup shape and embedding width.
    #[test]
    fn fused_gather_matches_reference_exactly(
        (indices, offsets) in lookup_strategy(64),
        dim in 1u32..33,
        seed in 0u64..1000,
    ) {
        let table = EmbeddingTable::with_seed(64, dim, seed);
        let lookup = TableLookup::new(indices, offsets).expect("strategy emits valid lookups");
        prop_assert_eq!(table.gather_pool(&lookup), table.gather_pool_fused(&lookup));
    }

    /// Table-parallel bucketization equals the per-table calls at every
    /// thread count.
    #[test]
    fn table_parallel_bucketize_matches_per_table(
        tables in proptest::collection::vec((lookup_strategy(64), plan_strategy(64)), 1..6),
        threads in 0usize..9,
    ) {
        let lookups: Vec<(&[u32], &[u32])> = tables
            .iter()
            .map(|((i, o), _)| (i.as_slice(), o.as_slice()))
            .collect();
        let plans: Vec<PartitionPlan> = tables.iter().map(|(_, p)| p.clone()).collect();
        let expect: Vec<_> = lookups
            .iter()
            .zip(&plans)
            .map(|(&(i, o), p)| bucketize(i, o, p))
            .collect();
        prop_assert_eq!(bucketize_tables(&lookups, &plans, threads), expect);
    }

    /// A forward pass on the parallel shard executor is bit-identical to
    /// the sequential shard walk for any partition, seed, and thread
    /// count.
    #[test]
    fn executor_forward_matches_sequential_for_any_partition(
        cuts in proptest::collection::btree_set(1u64..96, 0..4),
        threads in 1usize..9,
        seed in 0u64..100,
    ) {
        let rows = 96u64;
        let cfg = configs::rm1().scaled_tables(rows).with_num_tables(2);
        let model = Dlrm::with_seed(&cfg, seed);
        let counts: Vec<Vec<u64>> = (0..2u64)
            .map(|t| (0..rows).map(|i| ((i * 31 + seed + t) % rows) + 1).collect())
            .collect();
        let mut cuts: Vec<u64> = cuts.into_iter().collect();
        cuts.push(rows);
        let plans = vec![PartitionPlan::new(cuts, rows).expect("valid"); 2];
        let sharded = ShardedDlrm::new(model, &counts, plans).expect("valid");
        let par = sharded
            .clone()
            .with_executor(Arc::new(ParallelShardExecutor::new(threads)));
        let q = QueryGenerator::new(&cfg).generate(&mut SimRng::seed_from(seed));
        prop_assert_eq!(sharded.forward_seq(&q), par.forward(&q));
    }

    /// Partition plans tile their table for any cut set.
    #[test]
    fn plans_tile_the_table(plan in plan_strategy(1000)) {
        let total: u64 = (0..plan.num_shards()).map(|s| plan.shard_size(s)).sum();
        prop_assert_eq!(total, plan.table_len());
        // shard_of_id agrees with the shard ranges.
        for (s, (k, j)) in plan.shards().into_iter().enumerate() {
            prop_assert_eq!(plan.shard_of_id(k), s);
            prop_assert_eq!(plan.shard_of_id(j - 1), s);
        }
    }
}

//! Property-based tests over the core data structures and algorithms.

use proptest::prelude::*;

use er_cluster::{Cluster, HardwareProfile, PodSpec, ResourceRequest};
use er_distribution::sorting::HotnessPermutation;
use er_sim::SimTime;
use er_distribution::{AccessModel, EmpiricalCdf, LocalityTarget, ZipfDistribution};
use er_metrics::Histogram;
use er_partition::{bucketize, partition_exact, PartitionPlan};

/// Generates a valid (indices, offsets) lookup over a table of `rows`.
fn lookup_strategy(rows: u32) -> impl Strategy<Value = (Vec<u32>, Vec<u32>)> {
    (1usize..6).prop_flat_map(move |num_inputs| {
        proptest::collection::vec(0..rows, 0..40).prop_flat_map(move |indices| {
            let len = indices.len() as u32;
            proptest::collection::vec(0..=len, num_inputs - 1).prop_map(move |mut mids| {
                mids.sort_unstable();
                let mut offsets = vec![0u32];
                offsets.extend(mids);
                (indices.clone(), offsets)
            })
        })
    })
}

/// Generates a valid partition plan over a table of `rows`.
fn plan_strategy(rows: u64) -> impl Strategy<Value = PartitionPlan> {
    proptest::collection::btree_set(1..rows, 0..5).prop_map(move |cuts| {
        let mut cuts: Vec<u64> = cuts.into_iter().collect();
        cuts.push(rows);
        PartitionPlan::new(cuts, rows).expect("constructed valid")
    })
}

proptest! {
    /// Bucketization never drops, invents, or corrupts a gather: for every
    /// input, the multiset of global IDs reconstructed from the shards
    /// equals the original.
    #[test]
    fn bucketize_preserves_gather_multisets(
        (indices, offsets) in lookup_strategy(64),
        plan in plan_strategy(64),
    ) {
        let b = bucketize(&indices, &offsets, &plan);
        prop_assert_eq!(b.total_gathers(), indices.len());
        for input in 0..offsets.len() {
            let start = offsets[input] as usize;
            let end = offsets.get(input + 1).map_or(indices.len(), |&o| o as usize);
            let mut expect: Vec<u32> = indices[start..end].to_vec();
            expect.sort_unstable();
            let mut got: Vec<u32> = (0..plan.num_shards())
                .flat_map(|s| {
                    let base = plan.shard_base(s) as u32;
                    b.shard_input_indices(s, input).iter().map(move |&l| l + base)
                })
                .collect();
            got.sort_unstable();
            prop_assert_eq!(got, expect);
        }
    }

    /// Rebased shard-local IDs always fall inside their shard.
    #[test]
    fn bucketize_ids_stay_in_shard_bounds(
        (indices, offsets) in lookup_strategy(64),
        plan in plan_strategy(64),
    ) {
        let b = bucketize(&indices, &offsets, &plan);
        for s in 0..plan.num_shards() {
            let size = plan.shard_size(s) as u32;
            prop_assert!(b.indices[s].iter().all(|&i| i < size));
        }
    }

    /// The DP partitioner never loses to brute-force enumeration.
    #[test]
    fn dp_is_optimal_against_brute_force(
        n in 2u64..10,
        s_max in 1usize..4,
        a in 1.0f64..3.0,
        b in 0.5f64..5.0,
        c in 0.0f64..10.0,
    ) {
        let cost = move |k: u64, j: u64| ((j - k) as f64).powf(a) / (k as f64 + b) + c;
        let dp = partition_exact(n, s_max, cost);
        let dp_cost: f64 = dp.shards().iter().map(|&(k, j)| cost(k, j)).sum();

        let mut best = f64::INFINITY;
        for mask in 0u32..(1 << (n - 1)) {
            if mask.count_ones() as usize >= s_max {
                continue;
            }
            let mut cuts: Vec<u64> = (1..n).filter(|&cut| mask & (1 << (cut - 1)) != 0).collect();
            cuts.push(n);
            let plan = PartitionPlan::new(cuts, n).expect("valid");
            let total: f64 = plan.shards().iter().map(|&(k, j)| cost(k, j)).sum();
            best = best.min(total);
        }
        prop_assert!(dp_cost <= best + 1e-9, "dp {dp_cost} vs brute {best}");
    }

    /// Zipf CDFs are monotone and properly normalized for any exponent.
    #[test]
    fn zipf_cdf_is_monotone_and_normalized(
        n in 1u64..100_000,
        s in 0.0f64..3.0,
    ) {
        let z = ZipfDistribution::new(n, s);
        prop_assert_eq!(z.cdf(0), 0.0);
        prop_assert!((z.cdf(n) - 1.0).abs() < 1e-6);
        let step = (n / 17).max(1);
        let mut prev = 0.0;
        let mut x = 0;
        while x <= n {
            let c = z.cdf(x);
            prop_assert!(c >= prev - 1e-12);
            prev = c;
            x += step;
        }
    }

    /// The locality solver hits its target coverage for any feasible P.
    #[test]
    fn locality_solver_is_accurate(
        p in 0.10f64..0.995,
        n in 100u64..1_000_000,
    ) {
        let z = LocalityTarget::new(p).solve(n);
        let got = z.cdf(((n as f64) * 0.10).round() as u64);
        prop_assert!((got - p).abs() < 0.02, "p={p} got={got}");
    }

    /// Hotness sorting produces a true permutation with non-increasing
    /// counts.
    #[test]
    fn hotness_sort_is_a_valid_permutation(
        counts in proptest::collection::vec(0u64..1000, 1..200),
    ) {
        let perm = HotnessPermutation::from_counts(&counts);
        // Bijection.
        let mut seen = vec![false; counts.len()];
        for pos in 0..counts.len() as u32 {
            let orig = perm.to_original(pos);
            prop_assert!(!seen[orig as usize]);
            seen[orig as usize] = true;
            prop_assert_eq!(perm.to_sorted(orig), pos);
        }
        // Sorted order.
        let sorted = perm.apply(&counts);
        for w in sorted.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
    }

    /// Empirical CDFs built from any counts are valid access models.
    #[test]
    fn empirical_cdf_is_well_formed(
        mut counts in proptest::collection::vec(0u64..10_000, 1..300),
    ) {
        counts[0] += 1; // ensure at least one access
        let cdf = EmpiricalCdf::from_counts(&counts);
        prop_assert_eq!(cdf.len(), counts.len() as u64);
        prop_assert!((cdf.cdf(cdf.len()) - 1.0).abs() < 1e-9);
        let mut prev = 0.0;
        for x in 0..=cdf.len() {
            let c = cdf.cdf(x);
            prop_assert!(c >= prev - 1e-12);
            prev = c;
        }
        // Total probability splits across any cut.
        let mid = cdf.len() / 2;
        let total = cdf.coverage(0, mid) + cdf.coverage(mid, cdf.len());
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    /// Histogram percentiles are monotone in the quantile and bounded by
    /// the extremes for any sample set.
    #[test]
    fn histogram_percentiles_are_sane(
        samples in proptest::collection::vec(0.0f64..1e6, 1..500),
    ) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut prev = 0.0;
        for i in 0..=10 {
            let q = i as f64 / 10.0;
            let v = h.percentile(q);
            prop_assert!(v >= prev - 1e-9);
            prop_assert!(v <= h.max() + 1e-9);
            prev = v;
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
    }

    /// Random create/scale/delete sequences never break the cluster's
    /// resource accounting: every node stays within capacity and the
    /// memory metric equals the sum over live pods.
    #[test]
    fn cluster_accounting_survives_random_ops(
        ops in proptest::collection::vec((0usize..3, 0usize..4, 1usize..6), 1..40),
    ) {
        let mut cluster = Cluster::new(HardwareProfile::cpu_only_node(), Some(16));
        // Four deployment archetypes with varied footprints.
        let specs: Vec<PodSpec> = (0..4)
            .map(|i| {
                PodSpec::new(
                    format!("d{i}"),
                    ResourceRequest::cpu(4_000 + 9_000 * i as u64, (2 + 7 * i as u64) << 30),
                    1.0,
                )
            })
            .collect();
        let mut live = [false; 4];
        for (op, which, count) in ops {
            let name = format!("d{which}");
            match op {
                0 => {
                    if !live[which] {
                        let _ = cluster.create_deployment(
                            &name,
                            specs[which].clone(),
                            count,
                            SimTime::ZERO,
                        );
                        live[which] = true;
                    }
                }
                1 => {
                    if live[which] {
                        let _ = cluster.scale_to(&name, count, SimTime::ZERO);
                    }
                }
                _ => {
                    if live[which] {
                        let _ = cluster.delete_deployment(&name);
                        live[which] = false;
                    }
                }
            }
            // Invariant 1: no node over capacity.
            let cap = HardwareProfile::cpu_only_node();
            for (_, alloc) in cluster.node_allocations() {
                prop_assert!(alloc.cpu_millicores <= cap.cpu_millicores());
                prop_assert!(alloc.memory_bytes <= cap.mem_bytes);
            }
            // Invariant 2: memory metric equals the sum over deployments.
            let expect: u64 = (0..4)
                .map(|i| {
                    cluster.replicas(&format!("d{i}")) as u64
                        * specs[i].resources().memory_bytes
                })
                .sum();
            prop_assert_eq!(cluster.memory_allocated_bytes(), expect);
            // Invariant 3: used nodes never exceed provisioned nodes.
            prop_assert!(cluster.nodes_used() <= cluster.nodes_provisioned());
        }
    }

    /// Partition plans tile their table for any cut set.
    #[test]
    fn plans_tile_the_table(plan in plan_strategy(1000)) {
        let total: u64 = (0..plan.num_shards()).map(|s| plan.shard_size(s)).sum();
        prop_assert_eq!(total, plan.table_len());
        // shard_of_id agrees with the shard ranges.
        for (s, (k, j)) in plan.shards().into_iter().enumerate() {
            prop_assert_eq!(plan.shard_of_id(k), s);
            prop_assert_eq!(plan.shard_of_id(j - 1), s);
        }
    }
}

//! Quickstart: plan, deploy, and serve a recommendation model with
//! ElasticRec, and compare it against model-wise allocation.
//!
//! Run with `cargo run --release --example quickstart`.

use elasticrec::{
    plan, Calibration, Platform, Simulation, SimulationConfig, SteadyState, Strategy,
};
use er_model::configs;
use er_workload::TrafficSchedule;

fn main() {
    // 1. Pick a workload: RM1 from the paper's Table II — a DLRM with ten
    //    20M-entry embedding tables and 128 gathers per table.
    let model = configs::rm1();
    let calib = Calibration::cpu_only();
    println!(
        "Serving {} ({} embedding tables, {:.1} GiB of embeddings)\n",
        model.name,
        model.tables.len(),
        model.embedding_bytes() as f64 / (1u64 << 30) as f64,
    );

    // 2. Build both deployment plans. The Elastic plan runs the full paper
    //    pipeline: locality solving, gather-QPS profiling, Algorithm 1 cost
    //    estimation, and the Algorithm 2 DP partitioner.
    let mw = plan(&model, Platform::CpuOnly, Strategy::ModelWise, &calib);
    let er = plan(&model, Platform::CpuOnly, Strategy::Elastic, &calib);
    println!("model-wise plan: {} deployment(s)", mw.num_shards());
    println!(
        "elastic plan:    {} deployments (1 dense + {} embedding shards; {} shards/table)",
        er.num_shards(),
        er.num_shards() - 1,
        er.table_plans[0].num_shards(),
    );

    // 3. Size both for 100 QPS, the paper's CPU-only target.
    let mw_s = SteadyState::size(&mw, 100.0, &calib).expect("cluster fits");
    let er_s = SteadyState::size(&er, 100.0, &calib).expect("cluster fits");
    println!("\nAt 100 QPS:");
    println!(
        "  model-wise: {:5.1} GiB over {} nodes ({} replicas)",
        mw_s.memory_gib(),
        mw_s.nodes_used,
        mw_s.total_replicas()
    );
    println!(
        "  elastic:    {:5.1} GiB over {} nodes ({} replicas)",
        er_s.memory_gib(),
        er_s.nodes_used,
        er_s.total_replicas()
    );
    println!(
        "  -> {:.1}x less memory, {:.1}x fewer servers",
        mw_s.memory_gib() / er_s.memory_gib(),
        mw_s.nodes_used as f64 / er_s.nodes_used as f64
    );

    // 4. Actually serve traffic on the simulated cluster and check the SLA.
    let cfg = SimulationConfig::new(TrafficSchedule::constant(100.0), 60.0, 7);
    let out = Simulation::run(&er, &calib, &cfg);
    println!(
        "\nServed {} queries in 60 simulated seconds: mean latency {:.0} ms, p95 {:.0} ms (SLA 400 ms)",
        out.completed_queries,
        out.mean_latency_secs() * 1e3,
        out.latency.percentile(0.95) * 1e3,
    );
    assert!(out.latency.percentile(0.95) < 0.4, "the SLA must hold");
    println!("SLA respected — done.");
}

//! Parallel data plane: serve one query's shard gathers concurrently on a
//! [`ParallelShardExecutor`] and verify the result is bit-identical to the
//! sequential shard walk (and equivalent to the monolithic model).
//!
//! Run with `cargo run --release --example parallel_forward`.

// Demo timing is intentionally wall-clock; nothing here feeds results back
// into a deterministic path.
#![allow(clippy::disallowed_methods)]

use std::sync::Arc;
use std::time::Instant;

use elasticrec::{ParallelShardExecutor, ShardedDlrm};
use er_distribution::{EmpiricalCdf, LocalityTarget};
use er_model::{configs, Dlrm, QueryGenerator};
use er_partition::{partition_bucketed, AnalyticGatherModel, CostModel, PartitionPlan};
use er_sim::SimRng;
use er_units::{Bytes, BytesPerSec, Qps, Secs};

const ROWS: u64 = 4_000;
const QUERIES: usize = 20;

fn main() {
    // 1. A test-scale RM1 with real DP-partitioned shards.
    let cfg = configs::rm1().scaled_tables(ROWS).with_num_tables(4);
    let model = Dlrm::with_seed(&cfg, 7);
    let counts: Vec<Vec<u64>> = (0..cfg.tables.len())
        .map(|t| {
            let dist = LocalityTarget::new(0.9).solve(ROWS);
            let mut rng = SimRng::seed_from(40 + t as u64);
            let mut c = vec![0u64; ROWS as usize];
            for _ in 0..50_000 {
                c[(dist.quantile(rng.uniform()) * 2_654_435_761 % ROWS) as usize] += 1;
            }
            c
        })
        .collect();
    let qps = AnalyticGatherModel::new(
        Secs::of(3.0e-3),
        BytesPerSec::of(20.0e6),
        Bytes::of_u64(128),
    );
    let plans: Vec<PartitionPlan> = counts
        .iter()
        .map(|c| {
            let cdf = EmpiricalCdf::from_counts(c);
            let cost = CostModel::new(&cdf, &qps, 4096.0, Bytes::of_u64(128), Bytes::of_u64(4096))
                .with_target_traffic(Qps::of(10_000.0));
            partition_bucketed(ROWS, 4, 100, |k, j| cost.cost(k, j).raw())
        })
        .collect();
    let total_shards: usize = plans.iter().map(|p| p.num_shards()).sum();
    println!(
        "{}: {} tables partitioned into {} embedding shards",
        cfg.name,
        cfg.tables.len(),
        total_shards
    );

    let sharded = ShardedDlrm::new(model.clone(), &counts, plans).expect("valid decomposition");
    let gen = QueryGenerator::new(&cfg);
    let mut rng = SimRng::seed_from(3);
    let queries: Vec<_> = (0..QUERIES).map(|_| gen.generate(&mut rng)).collect();

    // 2. Sequential oracle: one shard gather at a time.
    let t0 = Instant::now();
    let seq: Vec<_> = queries.iter().map(|q| sharded.forward_seq(q)).collect();
    let seq_time = t0.elapsed();

    // 3. Parallel data plane: a persistent worker pool executes all shard
    //    gathers of a query concurrently; the dense bottom MLP overlaps
    //    with them, and partial pools merge in a fixed order.
    for threads in [1usize, 2, 4, 8] {
        let exec = Arc::new(ParallelShardExecutor::new(threads));
        let par_model = sharded.clone().with_executor(Arc::clone(&exec));
        let t0 = Instant::now();
        let par: Vec<_> = queries.iter().map(|q| par_model.forward(q)).collect();
        let par_time = t0.elapsed();
        assert_eq!(seq, par, "parallel output must be bit-identical");
        println!(
            "  {threads} worker(s): {:7.1} ms for {QUERIES} queries ({:.2}x vs sequential {:.1} ms), bit-identical",
            par_time.as_secs_f64() * 1e3,
            seq_time.as_secs_f64() / par_time.as_secs_f64(),
            seq_time.as_secs_f64() * 1e3,
        );
    }

    // 4. And the whole decomposition still matches the monolithic model.
    let max_diff = queries
        .iter()
        .zip(&seq)
        .map(|(q, s)| model.forward(q).max_abs_diff(s))
        .fold(0.0f32, f32::max);
    assert!(max_diff < 1e-4);
    println!("max |monolithic - sharded| over all queries: {max_diff:.2e} — equivalent");
}

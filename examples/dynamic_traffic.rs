//! Dynamic traffic: replay the paper's Figure 19 scenario — stepped query
//! traffic against both allocation strategies with Kubernetes-style
//! autoscaling — and print the timeline.
//!
//! Run with `cargo run --release --example dynamic_traffic`.

use elasticrec::{plan, Calibration, Platform, Simulation, SimulationConfig, Strategy};
use er_model::configs;
use er_workload::TrafficSchedule;

fn main() {
    let calib = Calibration::cpu_only();
    let model = configs::rm1();
    // Traffic climbs 20 -> 100 QPS in five steps, then falls back to 40.
    let schedule = TrafficSchedule::figure19(20.0, 30.0);
    let duration = 240.0;

    println!("RM1 under stepped traffic (SLA: p95 < 400 ms)\n");
    let mut results = Vec::new();
    for strategy in [Strategy::ModelWise, Strategy::Elastic] {
        let p = plan(&model, Platform::CpuOnly, strategy, &calib);
        let cfg = SimulationConfig::new(schedule.clone(), duration, 99);
        let out = Simulation::run(&p, &calib, &cfg);
        results.push((strategy, out));
    }

    println!(
        "{:>6} {:>7} | {:>8} {:>8} | {:>9} {:>9} | {:>9} {:>9}",
        "t(s)", "target", "qps(MW)", "qps(ER)", "mem(MW)", "mem(ER)", "p95(MW)", "p95(ER)"
    );
    let mw = &results[0].1;
    let er = &results[1].1;
    let mut t = 15.0;
    while t <= duration {
        println!(
            "{:>6.0} {:>7.0} | {:>8.0} {:>8.0} | {:>6.0}GiB {:>6.0}GiB | {:>7.0}ms {:>7.0}ms",
            t,
            schedule.rate_at(t),
            mw.achieved_qps.value_at(t).unwrap_or(0.0),
            er.achieved_qps.value_at(t).unwrap_or(0.0),
            mw.memory_gib.value_at(t).unwrap_or(0.0),
            er.memory_gib.value_at(t).unwrap_or(0.0),
            mw.p95_ms.value_at(t).unwrap_or(0.0),
            er.p95_ms.value_at(t).unwrap_or(0.0),
        );
        t += 15.0;
    }

    println!();
    for (strategy, out) in &results {
        println!(
            "{:?}: peak memory {:.0} GiB, mean latency {:.0} ms, SLA violations in {}/{} intervals",
            strategy,
            out.peak_memory_gib,
            out.mean_latency_secs() * 1e3,
            out.sla_violation_intervals,
            out.metric_intervals,
        );
    }
    println!(
        "\nElasticRec's small shards start in seconds; the monolith reloads \
         tens of GiB per replica,\nwhich is why model-wise lags every traffic step."
    );
}

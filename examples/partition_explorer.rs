//! Partition explorer: watch the utility-based partitioning pipeline work
//! on one embedding table — access distribution, gather-QPS profiling,
//! Algorithm 1 cost estimation, and the Algorithm 2 DP — across a range
//! of localities.
//!
//! Run with `cargo run --release --example partition_explorer`.

use er_distribution::{AccessModel, LocalityTarget};
use er_partition::{partition_bucketed, AnalyticGatherModel, CostModel, ProfiledQpsModel};
use er_units::{Bytes, BytesPerSec, Qps, Secs};

const TABLE_ROWS: u64 = 20_000_000;
const VECTOR_BYTES: u64 = 128; // dim 32 x f32
const GATHERS_PER_QUERY: f64 = 4096.0; // batch 32 x pooling 128
const MIN_MEM: u64 = 256 << 20;

fn main() {
    println!("Partitioning a {TABLE_ROWS}-row embedding table at varying locality\n");

    // One-time profiling of a shard container's gather throughput — the
    // paper's Figure 9 sweep, regressed into QPS(x).
    let hardware = AnalyticGatherModel::new(
        Secs::of(3.0e-3),
        BytesPerSec::of(20.0e6),
        Bytes::of_u64(VECTOR_BYTES),
    );
    let sweep = ProfiledQpsModel::standard_sweep(2.0 * GATHERS_PER_QUERY);
    let qps_model = ProfiledQpsModel::profile(&hardware, &sweep);
    println!(
        "profiled {} QPS points: QPS(1) = {:.0}, QPS({GATHERS_PER_QUERY}) = {:.0}\n",
        qps_model.points().len(),
        qps_model.points()[0].1.raw(),
        qps_model.points().last().expect("non-empty").1.raw(),
    );

    for p in [0.10, 0.50, 0.90, 0.99] {
        let access = LocalityTarget::new(p).solve(TABLE_ROWS);
        let cost = CostModel::new(
            &access,
            &qps_model,
            GATHERS_PER_QUERY,
            Bytes::of_u64(VECTOR_BYTES),
            Bytes::of_u64(MIN_MEM),
        )
        .with_target_traffic(Qps::of(1000.0));
        let plan = partition_bucketed(TABLE_ROWS, 8, 48, |k, j| cost.cost(k, j).raw());

        println!(
            "locality P={:.0}% (Zipf exponent {:.3}) -> {} shard(s)",
            p * 100.0,
            access.exponent(),
            plan.num_shards()
        );
        for (i, (k, j)) in plan.shards().into_iter().enumerate() {
            let rows = j - k;
            println!(
                "  shard {i}: {:>10} rows ({:5.2}% of table) serving {:5.1}% of gathers, \
                 ~{:.1} replicas at 1000 QPS",
                rows,
                100.0 * rows as f64 / TABLE_ROWS as f64,
                100.0 * access.coverage(k, j),
                cost.replicas(k, j),
            );
        }
        let single = cost.cost(0, TABLE_ROWS);
        let split: Bytes = plan.shards().iter().map(|&(k, j)| cost.cost(k, j)).sum();
        println!(
            "  estimated memory: {:.1} GiB monolithic vs {:.1} GiB partitioned ({:.2}x)\n",
            single.gib(),
            split.gib(),
            single / split
        );
    }
    println!("Higher locality -> finer hot shards and bigger savings.");
}

//! Extension: heterogeneous node pools.
//!
//! The paper evaluates homogeneous clusters, where ElasticRec's CPU-only
//! embedding shards occupy GPU-bearing nodes on the CPU-GPU platform and
//! waste the GPUs sitting under them. A natural extension — enabled by
//! exactly the fine-grained resource requests ElasticRec introduces — is a
//! mixed cluster: a pool of cheap CPU-only nodes for embedding shards plus
//! a pool of GPU nodes for dense shards. Model-wise allocation cannot use
//! the cheap pool at all (every monolithic replica needs a GPU).
//!
//! Run with `cargo run --release --example heterogeneous_cluster`.

use elasticrec::{plan, Calibration, Platform, SteadyState, Strategy};
use er_cluster::{HardwareProfile, NodePool};
use er_model::configs;

const TARGET_QPS: f64 = 200.0;

/// Rough relative node prices: a T4 GPU node rents at a premium over a
/// same-size CPU node (GCP list prices put the T4 attachment at roughly
/// a third of an n1-standard-32).
const GPU_NODE_COST: f64 = 1.35;
const CPU_NODE_COST: f64 = 1.0;

fn main() {
    let calib = Calibration::cpu_gpu();
    // Cheap CPU pool first so CPU-only pods prefer it.
    let pools = || {
        vec![
            NodePool::new(HardwareProfile::cpu_only_node(), None),
            NodePool::new(HardwareProfile::cpu_gpu_node(), None),
        ]
    };

    println!("CPU-GPU serving at {TARGET_QPS} QPS, homogeneous vs mixed node pools\n");
    for model in configs::all_rms() {
        let mw = plan(&model, Platform::CpuGpu, Strategy::ModelWise, &calib);
        let er = plan(&model, Platform::CpuGpu, Strategy::Elastic, &calib);

        let mw_homo = SteadyState::size(&mw, TARGET_QPS, &calib).expect("fits");
        let er_homo = SteadyState::size(&er, TARGET_QPS, &calib).expect("fits");
        let er_mixed = SteadyState::size_with_pools(&er, TARGET_QPS, pools()).expect("fits");

        let mw_cost = mw_homo.nodes_used as f64 * GPU_NODE_COST;
        let er_homo_cost = er_homo.nodes_used as f64 * GPU_NODE_COST;
        let er_mixed_cost = er_mixed.nodes_per_pool[0] as f64 * CPU_NODE_COST
            + er_mixed.nodes_per_pool[1] as f64 * GPU_NODE_COST;

        println!("{}:", model.name);
        println!(
            "  model-wise (GPU nodes only):   {:>2} GPU nodes            cost {:>5.2}",
            mw_homo.nodes_used, mw_cost
        );
        println!(
            "  elastic    (GPU nodes only):   {:>2} GPU nodes            cost {:>5.2}",
            er_homo.nodes_used, er_homo_cost
        );
        println!(
            "  elastic    (mixed pools):      {:>2} CPU + {:>2} GPU nodes   cost {:>5.2}  ({:.2}x cheaper than model-wise)",
            er_mixed.nodes_per_pool[0],
            er_mixed.nodes_per_pool[1],
            er_mixed_cost,
            mw_cost / er_mixed_cost,
        );
        // Only the GPU-needing dense shards occupy GPU nodes now.
        assert!(er_mixed.nodes_per_pool[1] <= er_homo.nodes_used);
        println!();
    }
    println!(
        "Embedding shards migrate to the CPU pool; GPUs serve only dense\n\
         shards — fine-grained requests turn into real node-cost savings."
    );
}

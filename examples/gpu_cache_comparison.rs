//! GPU-cache comparison: on the CPU-GPU platform, stack ElasticRec against
//! both the plain model-wise baseline and model-wise augmented with a
//! GPU-side embedding cache (the paper's Section VI-E study).
//!
//! Run with `cargo run --release --example gpu_cache_comparison`.

use elasticrec::{plan, Calibration, Platform, SteadyState, Strategy};
use er_model::configs;

const TARGET_QPS: f64 = 200.0;

fn main() {
    let calib = Calibration::cpu_gpu();
    println!("CPU-GPU platform (GKE n1-standard-32 + Tesla T4) at {TARGET_QPS} QPS\n");

    for model in configs::all_rms() {
        println!("{}:", model.name);
        for (label, strategy) in [
            ("model-wise", Strategy::ModelWise),
            (
                "model-wise + 90% GPU cache",
                Strategy::ModelWiseCached { gpu_hit_rate: 0.9 },
            ),
            ("elasticrec", Strategy::Elastic),
        ] {
            let p = plan(&model, Platform::CpuGpu, strategy, &calib);
            let s = SteadyState::size(&p, TARGET_QPS, &calib).expect("cluster fits");
            println!(
                "  {label:<27} {:>7.1} GiB, {:>2} nodes, {:>3} replicas, frontend {:>5.1} QPS/replica",
                s.memory_gib(),
                s.nodes_used,
                s.total_replicas(),
                p.frontend().qps_max(),
            );
        }
        println!();
    }
    println!(
        "The cache speeds up the embedding stage and trims replicas, but the\n\
         coarse-grained allocation remains: ElasticRec still wins on memory."
    );
}

//! Horizontal Pod Autoscaling.
//!
//! Reimplements the Kubernetes HPA semantics ElasticRec relies on
//! (Section IV-D): per-deployment targets, the
//! `desired = ceil(current × metric / target)` scaling rule, a tolerance
//! band so jitter does not flap replicas, and scale-down stabilization.
//! ElasticRec sets a *throughput* target for sparse shards (each shard's
//! profiled `QPS_max`) and a *latency* target for dense shards (65% of the
//! SLA).

use er_sim::SimTime;
use er_units::{Qps, Secs};
use serde::{Deserialize, Serialize};

/// What the autoscaler compares against its target.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ScalingTarget {
    /// Scale so each replica carries at most this traffic —
    /// ElasticRec's sparse-shard policy (threshold = profiled `QPS_max`).
    QpsPerReplica(Qps),
    /// Scale so observed p95 latency stays at or below this duration —
    /// ElasticRec's dense-shard policy (65% of the 400 ms SLA).
    LatencyP95(Secs),
}

/// A point-in-time metric observation for one deployment.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Observation {
    /// Aggregate traffic served by the deployment.
    pub qps: Qps,
    /// p95 latency over the observation window, if any queries completed.
    pub p95_latency: Option<Secs>,
}

/// Error from the fallible HPA entry points ([`HpaPolicy::try_new`],
/// [`HpaController::try_evaluate`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HpaError {
    /// `min_replicas`/`max_replicas` do not satisfy `1 <= min <= max`.
    InvalidBounds {
        /// The rejected floor.
        min_replicas: usize,
        /// The rejected ceiling.
        max_replicas: usize,
    },
    /// The deployment under evaluation has zero replicas — an HPA never
    /// manages a deployment scaled to nothing.
    NoReplicas,
}

impl std::fmt::Display for HpaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HpaError::InvalidBounds {
                min_replicas,
                max_replicas,
            } => write!(f, "need 1 <= min ({min_replicas}) <= max ({max_replicas})"),
            HpaError::NoReplicas => f.write_str("HPA requires at least one replica"),
        }
    }
}

impl std::error::Error for HpaError {}

/// Autoscaling policy for one deployment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HpaPolicy {
    /// Floor on replicas (Kubernetes `minReplicas`).
    pub min_replicas: usize,
    /// Ceiling on replicas (Kubernetes `maxReplicas`).
    pub max_replicas: usize,
    /// The metric/target pair.
    pub target: ScalingTarget,
    /// Ignore deviations smaller than this fraction of the target
    /// (Kubernetes' default tolerance is 0.1).
    pub tolerance: f64,
    /// Wait this long after the last scale-down before shrinking again
    /// (Kubernetes' `stabilizationWindowSeconds`).
    pub scale_down_stabilization: Secs,
    /// Per-evaluation scale-up bound: grow to at most
    /// `max(factor x current, current + pods)` — Kubernetes' default
    /// scale-up policy (100% increase or 4 pods, whichever is higher).
    pub max_scale_up_factor: f64,
    /// See [`HpaPolicy::max_scale_up_factor`].
    pub max_scale_up_pods: usize,
}

impl HpaPolicy {
    /// A policy with Kubernetes-like defaults: tolerance 10%, 60 s
    /// scale-down stabilization.
    ///
    /// # Panics
    ///
    /// Panics if `min_replicas` is 0 or exceeds `max_replicas`.
    pub fn new(min_replicas: usize, max_replicas: usize, target: ScalingTarget) -> Self {
        assert!(
            min_replicas >= 1 && min_replicas <= max_replicas,
            "need 1 <= min ({min_replicas}) <= max ({max_replicas})"
        );
        Self {
            min_replicas,
            max_replicas,
            target,
            tolerance: 0.10,
            scale_down_stabilization: Secs::of(60.0),
            max_scale_up_factor: 2.0,
            max_scale_up_pods: 4,
        }
    }

    /// Fallible [`HpaPolicy::new`] for policies built from untrusted
    /// configuration (e.g. a parsed deployment manifest).
    ///
    /// # Errors
    ///
    /// Returns [`HpaError::InvalidBounds`] unless
    /// `1 <= min_replicas <= max_replicas`.
    pub fn try_new(
        min_replicas: usize,
        max_replicas: usize,
        target: ScalingTarget,
    ) -> Result<Self, HpaError> {
        if min_replicas < 1 || min_replicas > max_replicas {
            return Err(HpaError::InvalidBounds {
                min_replicas,
                max_replicas,
            });
        }
        Ok(Self::new(min_replicas, max_replicas, target))
    }
}

/// Stateful HPA evaluator for one deployment.
///
/// # Examples
///
/// ```
/// use er_cluster::{HpaController, HpaPolicy, Observation, ScalingTarget};
/// use er_sim::SimTime;
/// use er_units::Qps;
///
/// let policy = HpaPolicy::new(1, 10, ScalingTarget::QpsPerReplica(Qps::of(100.0)));
/// let mut hpa = HpaController::new(policy);
/// let obs = Observation { qps: Qps::of(450.0), p95_latency: None };
/// // 450 QPS at 100 QPS/replica -> 5 replicas.
/// assert_eq!(hpa.evaluate(SimTime::ZERO, 2, obs), Some(5));
/// ```
#[derive(Debug, Clone)]
pub struct HpaController {
    policy: HpaPolicy,
    last_scale_down: Option<SimTime>,
}

impl HpaController {
    /// Creates a controller with no scaling history.
    pub fn new(policy: HpaPolicy) -> Self {
        Self {
            policy,
            last_scale_down: None,
        }
    }

    /// The controller's policy.
    pub fn policy(&self) -> &HpaPolicy {
        &self.policy
    }

    /// Raw desired replica count from the Kubernetes scaling rule, before
    /// bounds, tolerance, and stabilization.
    fn raw_desired(&self, current: usize, obs: &Observation) -> Option<(usize, f64)> {
        match self.policy.target {
            ScalingTarget::QpsPerReplica(target) => {
                // metric per replica = qps/current; desired = ceil(current *
                // metric/target) = ceil(qps/target). Qps ÷ Qps is a
                // dimensionless ratio.
                let ratio = (obs.qps / current.max(1) as f64) / target;
                Some(((obs.qps / target).ceil().max(0.0) as usize, ratio))
            }
            ScalingTarget::LatencyP95(target) => {
                let p95 = obs.p95_latency?;
                let ratio = p95 / target;
                Some((((current as f64) * ratio).ceil().max(0.0) as usize, ratio))
            }
        }
    }

    /// Evaluates the policy. Returns `Some(new_replicas)` when the
    /// deployment should be resized, `None` to leave it alone.
    ///
    /// # Panics
    ///
    /// Panics if `current` is zero — an HPA never manages a deployment with
    /// no replicas.
    pub fn evaluate(&mut self, now: SimTime, current: usize, obs: Observation) -> Option<usize> {
        assert!(current > 0, "HPA requires at least one replica");
        let (desired, ratio) = self.raw_desired(current, &obs)?;
        // Kubernetes' scale-up rate limit: without it a latency spike
        // during a backlog multiplies replicas straight to the cap.
        let up_limit = ((current as f64) * self.policy.max_scale_up_factor)
            .max((current + self.policy.max_scale_up_pods) as f64) as usize;
        let desired = desired
            .min(up_limit)
            .clamp(self.policy.min_replicas, self.policy.max_replicas);

        // Tolerance band: ignore small deviations (Kubernetes behaviour).
        if (ratio - 1.0).abs() <= self.policy.tolerance {
            return None;
        }
        if desired == current {
            return None;
        }
        if desired < current {
            // Scale-down stabilization window. SimTime subtraction yields
            // raw seconds; rewrap before comparing against the window.
            if let Some(last) = self.last_scale_down {
                if Secs::of(now - last) < self.policy.scale_down_stabilization {
                    return None;
                }
            }
            self.last_scale_down = Some(now);
        }
        Some(desired)
    }

    /// Fallible [`HpaController::evaluate`] for callers that can observe a
    /// deployment mid-teardown: `Ok(None)` means "leave it alone",
    /// `Ok(Some(n))` means "resize to `n`".
    ///
    /// # Errors
    ///
    /// Returns [`HpaError::NoReplicas`] if `current` is zero.
    pub fn try_evaluate(
        &mut self,
        now: SimTime,
        current: usize,
        obs: Observation,
    ) -> Result<Option<usize>, HpaError> {
        if current == 0 {
            return Err(HpaError::NoReplicas);
        }
        Ok(self.evaluate(now, current, obs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qps_policy() -> HpaPolicy {
        HpaPolicy::new(1, 100, ScalingTarget::QpsPerReplica(Qps::of(50.0)))
    }

    fn obs(qps: f64) -> Observation {
        Observation {
            qps: Qps::of(qps),
            p95_latency: None,
        }
    }

    #[test]
    fn qps_target_scales_to_traffic() {
        let mut hpa = HpaController::new(qps_policy());
        // 500 QPS at 50/replica wants 10 replicas; the scale-up rate limit
        // allows max(2x3, 3+4) = 7 this round.
        assert_eq!(hpa.evaluate(SimTime::ZERO, 3, obs(500.0)), Some(7));
        // The next round reaches the full 10.
        assert_eq!(
            hpa.evaluate(SimTime::from_secs(2.0), 7, obs(500.0)),
            Some(10)
        );
    }

    #[test]
    fn scale_up_rate_limit_small_deployments_use_pod_floor() {
        let mut hpa = HpaController::new(qps_policy());
        // 1 replica wanting 100: limited to 1+4 = 5 (the pod floor beats 2x).
        assert_eq!(hpa.evaluate(SimTime::ZERO, 1, obs(5000.0)), Some(5));
    }

    #[test]
    fn within_tolerance_is_a_noop() {
        let mut hpa = HpaController::new(qps_policy());
        // 2 replicas at 52.5 QPS each = 105 total: ratio 1.05 < 1.1.
        assert_eq!(hpa.evaluate(SimTime::ZERO, 2, obs(105.0)), None);
    }

    #[test]
    fn bounds_are_respected() {
        let mut hpa = HpaController::new(HpaPolicy::new(
            2,
            5,
            ScalingTarget::QpsPerReplica(Qps::of(50.0)),
        ));
        // Rate limit allows 7, but max_replicas caps at 5.
        assert_eq!(hpa.evaluate(SimTime::ZERO, 3, obs(10_000.0)), Some(5));
        let mut hpa2 = HpaController::new(HpaPolicy::new(
            2,
            5,
            ScalingTarget::QpsPerReplica(Qps::of(50.0)),
        ));
        assert_eq!(hpa2.evaluate(SimTime::ZERO, 4, obs(0.0)), Some(2));
    }

    #[test]
    fn latency_target_scales_up_under_pressure() {
        let policy = HpaPolicy::new(1, 50, ScalingTarget::LatencyP95(Secs::of(0.26)));
        let mut hpa = HpaController::new(policy);
        let o = Observation {
            qps: Qps::of(100.0),
            p95_latency: Some(Secs::of(0.52)),
        };
        // ratio 2.0 -> double the replicas (exactly the rate limit).
        assert_eq!(hpa.evaluate(SimTime::ZERO, 4, o), Some(8));
    }

    #[test]
    fn latency_target_without_samples_is_noop() {
        let policy = HpaPolicy::new(1, 50, ScalingTarget::LatencyP95(Secs::of(0.26)));
        let mut hpa = HpaController::new(policy);
        assert_eq!(hpa.evaluate(SimTime::ZERO, 4, obs(100.0)), None);
    }

    #[test]
    fn scale_down_is_stabilized() {
        let mut hpa = HpaController::new(qps_policy());
        // First scale-down goes through.
        assert_eq!(
            hpa.evaluate(SimTime::from_secs(100.0), 10, obs(100.0)),
            Some(2)
        );
        // A second one within the window is suppressed.
        assert_eq!(
            hpa.evaluate(SimTime::from_secs(110.0), 10, obs(100.0)),
            None
        );
        // After the window it proceeds.
        assert_eq!(
            hpa.evaluate(SimTime::from_secs(161.0), 10, obs(100.0)),
            Some(2)
        );
    }

    #[test]
    fn scale_up_is_never_stabilized() {
        let mut hpa = HpaController::new(qps_policy());
        assert_eq!(
            hpa.evaluate(SimTime::from_secs(1.0), 10, obs(100.0)),
            Some(2)
        );
        // Immediately after a scale-down, a burst still scales up (to the
        // rate limit: 2+4 = 6).
        assert_eq!(
            hpa.evaluate(SimTime::from_secs(2.0), 2, obs(1000.0)),
            Some(6)
        );
    }

    #[test]
    fn zero_traffic_shrinks_to_min() {
        let mut hpa = HpaController::new(qps_policy());
        assert_eq!(hpa.evaluate(SimTime::ZERO, 8, obs(0.0)), Some(1));
    }

    // ------------------------------------------------------------------
    // Boundary behaviour at exactly-on-target observations.
    // ------------------------------------------------------------------

    #[test]
    fn exactly_on_target_qps_is_a_noop() {
        let mut hpa = HpaController::new(qps_policy());
        // 4 replicas each carrying exactly the 50 QPS target: ratio 1.0.
        assert_eq!(hpa.evaluate(SimTime::ZERO, 4, obs(200.0)), None);
        // The target the controller holds is the typed Qps we configured.
        assert_eq!(
            hpa.policy().target,
            ScalingTarget::QpsPerReplica(Qps::of(50.0))
        );
    }

    #[test]
    fn exactly_on_target_latency_is_a_noop() {
        let target = Secs::from_millis(260.0);
        let mut hpa = HpaController::new(HpaPolicy::new(1, 50, ScalingTarget::LatencyP95(target)));
        let o = Observation {
            qps: Qps::of(100.0),
            p95_latency: Some(Secs::of(0.26)),
        };
        // p95 exactly at target: ratio 1.0, inside the tolerance band.
        assert_eq!(hpa.evaluate(SimTime::ZERO, 4, o), None);
        assert_eq!(hpa.policy().target, ScalingTarget::LatencyP95(target));
    }

    #[test]
    fn tolerance_edge_is_inclusive() {
        let mut hpa = HpaController::new(qps_policy());
        // ratio 1.09375 (exactly representable): inside the band, noop even
        // though ceil(4 × 1.09375) = 5 > 4 — the band suppresses rounding.
        assert_eq!(hpa.evaluate(SimTime::ZERO, 4, obs(218.75)), None);
        // Just past the band the controller acts.
        assert_eq!(hpa.evaluate(SimTime::ZERO, 4, obs(221.0)), Some(5));
    }

    #[test]
    fn tolerance_edge_below_target_is_inclusive() {
        let mut hpa = HpaController::new(qps_policy());
        // ratio exactly 0.9: still inside the band, no scale-down.
        assert_eq!(hpa.evaluate(SimTime::from_secs(5.0), 10, obs(450.0)), None);
        // ratio 0.8 scales down (first scale-down needs no stabilization).
        assert_eq!(
            hpa.evaluate(SimTime::from_secs(6.0), 10, obs(400.0)),
            Some(8)
        );
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_current_panics() {
        HpaController::new(qps_policy()).evaluate(SimTime::ZERO, 0, obs(1.0));
    }

    #[test]
    #[should_panic(expected = "min")]
    fn invalid_bounds_panic() {
        HpaPolicy::new(5, 2, ScalingTarget::QpsPerReplica(Qps::of(1.0)));
    }

    #[test]
    fn try_new_reports_bad_bounds() {
        let err = HpaPolicy::try_new(5, 2, ScalingTarget::QpsPerReplica(Qps::of(1.0))).unwrap_err();
        assert_eq!(
            err,
            HpaError::InvalidBounds {
                min_replicas: 5,
                max_replicas: 2
            }
        );
        assert!(err.to_string().contains("1 <= min (5) <= max (2)"));
        assert!(HpaPolicy::try_new(1, 2, ScalingTarget::QpsPerReplica(Qps::of(1.0))).is_ok());
    }

    #[test]
    fn try_evaluate_errors_on_zero_replicas_and_matches_evaluate() {
        let mut hpa = HpaController::new(qps_policy());
        assert_eq!(
            hpa.try_evaluate(SimTime::ZERO, 0, obs(1.0)),
            Err(HpaError::NoReplicas)
        );
        assert_eq!(hpa.try_evaluate(SimTime::ZERO, 3, obs(500.0)), Ok(Some(7)));
    }

    #[test]
    fn try_evaluate_zero_replicas_is_an_error_for_every_target_kind() {
        for target in [
            ScalingTarget::QpsPerReplica(Qps::of(50.0)),
            ScalingTarget::LatencyP95(Secs::of(0.26)),
        ] {
            let mut hpa = HpaController::new(HpaPolicy::new(1, 10, target));
            let o = Observation {
                qps: Qps::ZERO,
                p95_latency: Some(Secs::of(1.0)),
            };
            assert_eq!(
                hpa.try_evaluate(SimTime::ZERO, 0, o),
                Err(HpaError::NoReplicas),
                "target={target:?}"
            );
        }
    }
}

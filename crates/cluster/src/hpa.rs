//! Horizontal Pod Autoscaling.
//!
//! Reimplements the Kubernetes HPA semantics ElasticRec relies on
//! (Section IV-D): per-deployment targets, the
//! `desired = ceil(current × metric / target)` scaling rule, a tolerance
//! band so jitter does not flap replicas, and scale-down stabilization.
//! ElasticRec sets a *throughput* target for sparse shards (each shard's
//! profiled `QPS_max`) and a *latency* target for dense shards (65% of the
//! SLA).

use er_sim::SimTime;
use er_units::{Qps, Secs};
use serde::{Deserialize, Serialize};

/// What the autoscaler compares against its target.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ScalingTarget {
    /// Scale so each replica carries at most this traffic —
    /// ElasticRec's sparse-shard policy (threshold = profiled `QPS_max`).
    QpsPerReplica(Qps),
    /// Scale so observed p95 latency stays at or below this duration —
    /// ElasticRec's dense-shard policy (65% of the 400 ms SLA).
    LatencyP95(Secs),
}

/// A point-in-time metric observation for one deployment.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Observation {
    /// Aggregate traffic served by the deployment.
    pub qps: Qps,
    /// p95 latency over the observation window, if any queries completed.
    pub p95_latency: Option<Secs>,
}

/// Error from the fallible HPA entry points ([`HpaPolicy::try_new`],
/// [`HpaController::try_evaluate`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HpaError {
    /// `min_replicas`/`max_replicas` do not satisfy `1 <= min <= max`.
    InvalidBounds {
        /// The rejected floor.
        min_replicas: usize,
        /// The rejected ceiling.
        max_replicas: usize,
    },
    /// The deployment under evaluation has zero replicas — an HPA never
    /// manages a deployment scaled to nothing.
    NoReplicas,
}

impl std::fmt::Display for HpaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HpaError::InvalidBounds {
                min_replicas,
                max_replicas,
            } => write!(f, "need 1 <= min ({min_replicas}) <= max ({max_replicas})"),
            HpaError::NoReplicas => f.write_str("HPA requires at least one replica"),
        }
    }
}

impl std::error::Error for HpaError {}

/// Autoscaling policy for one deployment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HpaPolicy {
    /// Floor on replicas (Kubernetes `minReplicas`).
    pub min_replicas: usize,
    /// Ceiling on replicas (Kubernetes `maxReplicas`).
    pub max_replicas: usize,
    /// The metric/target pair.
    pub target: ScalingTarget,
    /// Ignore deviations smaller than this fraction of the target
    /// (Kubernetes' default tolerance is 0.1).
    pub tolerance: f64,
    /// Wait this long after the last scale-down before shrinking again
    /// (Kubernetes' `stabilizationWindowSeconds`).
    pub scale_down_stabilization: Secs,
    /// Per-evaluation scale-up bound: grow to at most
    /// `max(factor x current, current + pods)` — Kubernetes' default
    /// scale-up policy (100% increase or 4 pods, whichever is higher).
    pub max_scale_up_factor: f64,
    /// See [`HpaPolicy::max_scale_up_factor`].
    pub max_scale_up_pods: usize,
}

impl HpaPolicy {
    /// A policy with Kubernetes-like defaults: tolerance 10%, 60 s
    /// scale-down stabilization.
    ///
    /// # Panics
    ///
    /// Panics if `min_replicas` is 0 or exceeds `max_replicas`.
    pub fn new(min_replicas: usize, max_replicas: usize, target: ScalingTarget) -> Self {
        assert!(
            min_replicas >= 1 && min_replicas <= max_replicas,
            "need 1 <= min ({min_replicas}) <= max ({max_replicas})"
        );
        Self {
            min_replicas,
            max_replicas,
            target,
            tolerance: 0.10,
            scale_down_stabilization: Secs::of(60.0),
            max_scale_up_factor: 2.0,
            max_scale_up_pods: 4,
        }
    }

    /// Fallible [`HpaPolicy::new`] for policies built from untrusted
    /// configuration (e.g. a parsed deployment manifest).
    ///
    /// # Errors
    ///
    /// Returns [`HpaError::InvalidBounds`] unless
    /// `1 <= min_replicas <= max_replicas`.
    pub fn try_new(
        min_replicas: usize,
        max_replicas: usize,
        target: ScalingTarget,
    ) -> Result<Self, HpaError> {
        if min_replicas < 1 || min_replicas > max_replicas {
            return Err(HpaError::InvalidBounds {
                min_replicas,
                max_replicas,
            });
        }
        Ok(Self::new(min_replicas, max_replicas, target))
    }
}

/// The pure autoscaler state: everything [`HpaPolicy::step`] carries from
/// one evaluation to the next. A fresh deployment starts from
/// [`HpaState::default`] (no scaling history).
///
/// The state is a small value type so the explicit-state model checker
/// (`er-mc`) can enumerate and fingerprint it; the simulation engine's
/// [`HpaController`] wraps the same state and the same transition.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HpaState {
    last_scale_down: Option<SimTime>,
}

impl HpaState {
    /// Reconstructs a state from an explicit scale-down history — how the
    /// model checker materializes enumerated states for replay.
    pub fn with_last_scale_down(last_scale_down: Option<SimTime>) -> Self {
        Self { last_scale_down }
    }

    /// When the controller last decided to scale down, if ever.
    pub fn last_scale_down(&self) -> Option<SimTime> {
        self.last_scale_down
    }
}

impl HpaPolicy {
    /// Raw desired replica count from the Kubernetes scaling rule, before
    /// bounds, tolerance, and stabilization.
    fn raw_desired(&self, current: usize, obs: &Observation) -> Option<(usize, f64)> {
        match self.target {
            ScalingTarget::QpsPerReplica(target) => {
                // metric per replica = qps/current; desired = ceil(current *
                // metric/target) = ceil(qps/target). Qps ÷ Qps is a
                // dimensionless ratio.
                let ratio = (obs.qps / current.max(1) as f64) / target;
                Some(((obs.qps / target).ceil().max(0.0) as usize, ratio))
            }
            ScalingTarget::LatencyP95(target) => {
                let p95 = obs.p95_latency?;
                let ratio = p95 / target;
                Some((((current as f64) * ratio).ceil().max(0.0) as usize, ratio))
            }
        }
    }

    /// The pure HPA transition: one policy evaluation as a
    /// `(state, msg) -> (state', decision)` handler. No clocks, no RNG, no
    /// ambient state — the same inputs always produce the same outputs,
    /// which is what lets `er-mc` exhaustively explore interleavings of the
    /// *exact* code the simulation engine runs.
    ///
    /// Returns the successor state and `Some(new_replicas)` when the
    /// deployment should be resized (`None` to leave it alone).
    ///
    /// # Panics
    ///
    /// Panics if `current` is zero — an HPA never manages a deployment with
    /// no replicas.
    pub fn step(
        &self,
        state: &HpaState,
        now: SimTime,
        current: usize,
        obs: Observation,
    ) -> (HpaState, Option<usize>) {
        assert!(current > 0, "HPA requires at least one replica");
        let Some((desired, ratio)) = self.raw_desired(current, &obs) else {
            return (*state, None);
        };
        // Kubernetes' scale-up rate limit: without it a latency spike
        // during a backlog multiplies replicas straight to the cap.
        let up_limit = ((current as f64) * self.max_scale_up_factor)
            .max((current + self.max_scale_up_pods) as f64) as usize;
        let desired = desired
            .min(up_limit)
            .clamp(self.min_replicas, self.max_replicas);

        // Tolerance band: ignore small deviations (Kubernetes behaviour).
        if (ratio - 1.0).abs() <= self.tolerance {
            return (*state, None);
        }
        if desired == current {
            return (*state, None);
        }
        if desired < current {
            // Scale-down stabilization window. SimTime subtraction yields
            // raw seconds; rewrap before comparing against the window.
            if let Some(last) = state.last_scale_down {
                if Secs::of(now - last) < self.scale_down_stabilization {
                    return (*state, None);
                }
            }
            return (
                HpaState {
                    last_scale_down: Some(now),
                },
                Some(desired),
            );
        }
        (*state, Some(desired))
    }
}

/// Bounds a latency-driven frontend decision by what the offered load
/// justifies. Latency-driven scaling assumes latency tracks replica count,
/// which breaks around queue backlogs: a backlog inflates p95
/// (over-scaling) and a freshly drained queue deflates it (under-scaling).
/// Scale-ups are capped at twice the load-derived need; scale-downs are
/// floored at need/0.85 so capacity never drops below what the traffic
/// requires.
///
/// Pure like [`HpaPolicy::step`]: both simulation engines and the `er-mc`
/// control-plane model call this exact function.
pub fn bound_frontend_desired(
    desired: usize,
    current: usize,
    load_qps: Qps,
    capacity_qps: Qps,
) -> usize {
    let need = load_qps / capacity_qps;
    if desired > current {
        desired.min(((2.0 * need).ceil() as usize).max(current))
    } else {
        desired.max((need / 0.85).ceil() as usize).min(current)
    }
}

/// Apply-time guard against stale scale-downs.
///
/// A scale decision is computed against a load observation, but by the
/// time it is *applied* the offered load may have risen — the `er-mc`
/// control-plane model found exactly this race (a scale-down delivered
/// after a traffic step leaves fewer replicas than the new load needs).
/// The guard clamps a scale-down so post-apply capacity still covers the
/// load offered at apply time; scale-ups and no-ops pass through
/// untouched. When decision and apply are atomic (the simulation engines),
/// the clamp is an exact no-op, because the decision already covers the
/// same observation.
pub fn clamp_scale_to_load(
    target: usize,
    current: usize,
    load_qps: Qps,
    capacity_qps: Qps,
) -> usize {
    if target >= current {
        return target;
    }
    let need = (load_qps / capacity_qps).ceil() as usize;
    target.max(need).min(current)
}

/// Stateful HPA evaluator for one deployment: a thin shell holding the
/// [`HpaState`] that [`HpaPolicy::step`] threads through evaluations.
///
/// # Examples
///
/// ```
/// use er_cluster::{HpaController, HpaPolicy, Observation, ScalingTarget};
/// use er_sim::SimTime;
/// use er_units::Qps;
///
/// let policy = HpaPolicy::new(1, 10, ScalingTarget::QpsPerReplica(Qps::of(100.0)));
/// let mut hpa = HpaController::new(policy);
/// let obs = Observation { qps: Qps::of(450.0), p95_latency: None };
/// // 450 QPS at 100 QPS/replica -> 5 replicas.
/// assert_eq!(hpa.evaluate(SimTime::ZERO, 2, obs), Some(5));
/// ```
#[derive(Debug, Clone)]
pub struct HpaController {
    policy: HpaPolicy,
    state: HpaState,
}

impl HpaController {
    /// Creates a controller with no scaling history.
    pub fn new(policy: HpaPolicy) -> Self {
        Self {
            policy,
            state: HpaState::default(),
        }
    }

    /// The controller's policy.
    pub fn policy(&self) -> &HpaPolicy {
        &self.policy
    }

    /// The controller's current pure state.
    pub fn state(&self) -> &HpaState {
        &self.state
    }

    /// Evaluates the policy. Returns `Some(new_replicas)` when the
    /// deployment should be resized, `None` to leave it alone.
    ///
    /// Delegates to the pure [`HpaPolicy::step`] transition — the
    /// controller only stores the successor state.
    ///
    /// # Panics
    ///
    /// Panics if `current` is zero — an HPA never manages a deployment with
    /// no replicas.
    pub fn evaluate(&mut self, now: SimTime, current: usize, obs: Observation) -> Option<usize> {
        let (state, decision) = self.policy.step(&self.state, now, current, obs);
        self.state = state;
        decision
    }

    /// Fallible [`HpaController::evaluate`] for callers that can observe a
    /// deployment mid-teardown: `Ok(None)` means "leave it alone",
    /// `Ok(Some(n))` means "resize to `n`".
    ///
    /// # Errors
    ///
    /// Returns [`HpaError::NoReplicas`] if `current` is zero.
    pub fn try_evaluate(
        &mut self,
        now: SimTime,
        current: usize,
        obs: Observation,
    ) -> Result<Option<usize>, HpaError> {
        if current == 0 {
            return Err(HpaError::NoReplicas);
        }
        Ok(self.evaluate(now, current, obs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qps_policy() -> HpaPolicy {
        HpaPolicy::new(1, 100, ScalingTarget::QpsPerReplica(Qps::of(50.0)))
    }

    fn obs(qps: f64) -> Observation {
        Observation {
            qps: Qps::of(qps),
            p95_latency: None,
        }
    }

    #[test]
    fn qps_target_scales_to_traffic() {
        let mut hpa = HpaController::new(qps_policy());
        // 500 QPS at 50/replica wants 10 replicas; the scale-up rate limit
        // allows max(2x3, 3+4) = 7 this round.
        assert_eq!(hpa.evaluate(SimTime::ZERO, 3, obs(500.0)), Some(7));
        // The next round reaches the full 10.
        assert_eq!(
            hpa.evaluate(SimTime::from_secs(2.0), 7, obs(500.0)),
            Some(10)
        );
    }

    #[test]
    fn scale_up_rate_limit_small_deployments_use_pod_floor() {
        let mut hpa = HpaController::new(qps_policy());
        // 1 replica wanting 100: limited to 1+4 = 5 (the pod floor beats 2x).
        assert_eq!(hpa.evaluate(SimTime::ZERO, 1, obs(5000.0)), Some(5));
    }

    #[test]
    fn within_tolerance_is_a_noop() {
        let mut hpa = HpaController::new(qps_policy());
        // 2 replicas at 52.5 QPS each = 105 total: ratio 1.05 < 1.1.
        assert_eq!(hpa.evaluate(SimTime::ZERO, 2, obs(105.0)), None);
    }

    #[test]
    fn clamp_scale_to_load_cancels_stale_scale_down() {
        // The er-mc race: a down-to-1 decided at 100 QPS is delivered
        // after the load rose to 200 QPS — 2 replicas are still needed.
        assert_eq!(clamp_scale_to_load(1, 2, Qps::of(200.0), Qps::of(100.0)), 2);
        // Load rose above even current capacity: the down becomes a no-op,
        // never an up (scale-up stays the HPA's decision to make).
        assert_eq!(clamp_scale_to_load(1, 2, Qps::of(500.0), Qps::of(100.0)), 2);
    }

    #[test]
    fn clamp_scale_to_load_passes_covered_downs_and_all_ups() {
        // A down the current load still justifies is untouched.
        assert_eq!(clamp_scale_to_load(2, 3, Qps::of(200.0), Qps::of(100.0)), 2);
        // Scale-ups and no-ops pass through.
        assert_eq!(clamp_scale_to_load(5, 3, Qps::of(100.0), Qps::of(100.0)), 5);
        assert_eq!(clamp_scale_to_load(3, 3, Qps::of(900.0), Qps::of(100.0)), 3);
    }

    #[test]
    fn bounds_are_respected() {
        let mut hpa = HpaController::new(HpaPolicy::new(
            2,
            5,
            ScalingTarget::QpsPerReplica(Qps::of(50.0)),
        ));
        // Rate limit allows 7, but max_replicas caps at 5.
        assert_eq!(hpa.evaluate(SimTime::ZERO, 3, obs(10_000.0)), Some(5));
        let mut hpa2 = HpaController::new(HpaPolicy::new(
            2,
            5,
            ScalingTarget::QpsPerReplica(Qps::of(50.0)),
        ));
        assert_eq!(hpa2.evaluate(SimTime::ZERO, 4, obs(0.0)), Some(2));
    }

    #[test]
    fn latency_target_scales_up_under_pressure() {
        let policy = HpaPolicy::new(1, 50, ScalingTarget::LatencyP95(Secs::of(0.26)));
        let mut hpa = HpaController::new(policy);
        let o = Observation {
            qps: Qps::of(100.0),
            p95_latency: Some(Secs::of(0.52)),
        };
        // ratio 2.0 -> double the replicas (exactly the rate limit).
        assert_eq!(hpa.evaluate(SimTime::ZERO, 4, o), Some(8));
    }

    #[test]
    fn latency_target_without_samples_is_noop() {
        let policy = HpaPolicy::new(1, 50, ScalingTarget::LatencyP95(Secs::of(0.26)));
        let mut hpa = HpaController::new(policy);
        assert_eq!(hpa.evaluate(SimTime::ZERO, 4, obs(100.0)), None);
    }

    #[test]
    fn scale_down_is_stabilized() {
        let mut hpa = HpaController::new(qps_policy());
        // First scale-down goes through.
        assert_eq!(
            hpa.evaluate(SimTime::from_secs(100.0), 10, obs(100.0)),
            Some(2)
        );
        // A second one within the window is suppressed.
        assert_eq!(
            hpa.evaluate(SimTime::from_secs(110.0), 10, obs(100.0)),
            None
        );
        // After the window it proceeds.
        assert_eq!(
            hpa.evaluate(SimTime::from_secs(161.0), 10, obs(100.0)),
            Some(2)
        );
    }

    #[test]
    fn scale_up_is_never_stabilized() {
        let mut hpa = HpaController::new(qps_policy());
        assert_eq!(
            hpa.evaluate(SimTime::from_secs(1.0), 10, obs(100.0)),
            Some(2)
        );
        // Immediately after a scale-down, a burst still scales up (to the
        // rate limit: 2+4 = 6).
        assert_eq!(
            hpa.evaluate(SimTime::from_secs(2.0), 2, obs(1000.0)),
            Some(6)
        );
    }

    #[test]
    fn zero_traffic_shrinks_to_min() {
        let mut hpa = HpaController::new(qps_policy());
        assert_eq!(hpa.evaluate(SimTime::ZERO, 8, obs(0.0)), Some(1));
    }

    // ------------------------------------------------------------------
    // Boundary behaviour at exactly-on-target observations.
    // ------------------------------------------------------------------

    #[test]
    fn exactly_on_target_qps_is_a_noop() {
        let mut hpa = HpaController::new(qps_policy());
        // 4 replicas each carrying exactly the 50 QPS target: ratio 1.0.
        assert_eq!(hpa.evaluate(SimTime::ZERO, 4, obs(200.0)), None);
        // The target the controller holds is the typed Qps we configured.
        assert_eq!(
            hpa.policy().target,
            ScalingTarget::QpsPerReplica(Qps::of(50.0))
        );
    }

    #[test]
    fn exactly_on_target_latency_is_a_noop() {
        let target = Secs::from_millis(260.0);
        let mut hpa = HpaController::new(HpaPolicy::new(1, 50, ScalingTarget::LatencyP95(target)));
        let o = Observation {
            qps: Qps::of(100.0),
            p95_latency: Some(Secs::of(0.26)),
        };
        // p95 exactly at target: ratio 1.0, inside the tolerance band.
        assert_eq!(hpa.evaluate(SimTime::ZERO, 4, o), None);
        assert_eq!(hpa.policy().target, ScalingTarget::LatencyP95(target));
    }

    #[test]
    fn tolerance_edge_is_inclusive() {
        let mut hpa = HpaController::new(qps_policy());
        // ratio 1.09375 (exactly representable): inside the band, noop even
        // though ceil(4 × 1.09375) = 5 > 4 — the band suppresses rounding.
        assert_eq!(hpa.evaluate(SimTime::ZERO, 4, obs(218.75)), None);
        // Just past the band the controller acts.
        assert_eq!(hpa.evaluate(SimTime::ZERO, 4, obs(221.0)), Some(5));
    }

    #[test]
    fn tolerance_edge_below_target_is_inclusive() {
        let mut hpa = HpaController::new(qps_policy());
        // ratio exactly 0.9: still inside the band, no scale-down.
        assert_eq!(hpa.evaluate(SimTime::from_secs(5.0), 10, obs(450.0)), None);
        // ratio 0.8 scales down (first scale-down needs no stabilization).
        assert_eq!(
            hpa.evaluate(SimTime::from_secs(6.0), 10, obs(400.0)),
            Some(8)
        );
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_current_panics() {
        HpaController::new(qps_policy()).evaluate(SimTime::ZERO, 0, obs(1.0));
    }

    #[test]
    #[should_panic(expected = "min")]
    fn invalid_bounds_panic() {
        HpaPolicy::new(5, 2, ScalingTarget::QpsPerReplica(Qps::of(1.0)));
    }

    #[test]
    fn try_new_reports_bad_bounds() {
        let err = HpaPolicy::try_new(5, 2, ScalingTarget::QpsPerReplica(Qps::of(1.0))).unwrap_err();
        assert_eq!(
            err,
            HpaError::InvalidBounds {
                min_replicas: 5,
                max_replicas: 2
            }
        );
        assert!(err.to_string().contains("1 <= min (5) <= max (2)"));
        assert!(HpaPolicy::try_new(1, 2, ScalingTarget::QpsPerReplica(Qps::of(1.0))).is_ok());
    }

    #[test]
    fn try_evaluate_errors_on_zero_replicas_and_matches_evaluate() {
        let mut hpa = HpaController::new(qps_policy());
        assert_eq!(
            hpa.try_evaluate(SimTime::ZERO, 0, obs(1.0)),
            Err(HpaError::NoReplicas)
        );
        assert_eq!(hpa.try_evaluate(SimTime::ZERO, 3, obs(500.0)), Ok(Some(7)));
    }

    #[test]
    fn try_evaluate_zero_replicas_is_an_error_for_every_target_kind() {
        for target in [
            ScalingTarget::QpsPerReplica(Qps::of(50.0)),
            ScalingTarget::LatencyP95(Secs::of(0.26)),
        ] {
            let mut hpa = HpaController::new(HpaPolicy::new(1, 10, target));
            let o = Observation {
                qps: Qps::ZERO,
                p95_latency: Some(Secs::of(1.0)),
            };
            assert_eq!(
                hpa.try_evaluate(SimTime::ZERO, 0, o),
                Err(HpaError::NoReplicas),
                "target={target:?}"
            );
        }
    }
}

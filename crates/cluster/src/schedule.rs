//! Pure pod placement: the bin-packing decision of [`crate::Cluster`]
//! extracted as a side-effect-free function over value snapshots.
//!
//! [`place_pod`] is the single source of truth for where a pod goes — the
//! cluster's `add_pod` builds the views, calls it, and applies the
//! returned [`Placement`]; the `er-mc` control-plane model calls the same
//! function on model states. Keeping the decision pure (no clocks, no RNG,
//! no ambient state) is what makes scheduler policies enumerable by the
//! model checker and, down the road, pluggable values.

use crate::ResourceRequest;

/// Snapshot of one node as the placement decision sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeView {
    /// Index of the pool the node was provisioned from.
    pub pool: usize,
    /// Resources currently allocated on the node.
    pub allocated: ResourceRequest,
    /// Failed nodes accept no pods.
    pub failed: bool,
    /// Pods of the deployment being placed already on this node — the
    /// topology-spread input.
    pub same_deployment_pods: usize,
}

/// Snapshot of one node pool as the placement decision sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolView {
    /// Whole-node capacity of every node in the pool.
    pub capacity: ResourceRequest,
    /// Provisioning cap (`None` = unbounded).
    pub max_nodes: Option<usize>,
    /// Non-failed nodes currently provisioned from this pool, counted
    /// against `max_nodes`.
    pub live_nodes: usize,
}

/// Where a pod should go.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Place onto the existing node at this index.
    Existing(usize),
    /// Provision a fresh node from this pool and place onto it.
    Provision {
        /// Pool to provision from.
        pool: usize,
    },
}

/// Why no placement exists. The cluster attaches the deployment name when
/// converting to [`crate::ScheduleError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlaceError {
    /// The request exceeds every pool's whole-node capacity.
    PodLargerThanNode,
    /// Every fitting node is full and every fitting pool is at its cap.
    ClusterFull,
}

/// Decides where one pod of `request` goes, Kubernetes-style:
///
/// 1. Reject requests larger than every pool's whole-node capacity.
/// 2. Among existing nodes, walk pools in order; within a pool prefer the
///    node with the fewest same-deployment pods (topology-spread /
///    anti-affinity), breaking ties toward lower node indices so placement
///    is deterministic and packing dense.
/// 3. Otherwise provision from the first pool that can host the pod and
///    has budget left.
///
/// # Errors
///
/// [`PlaceError::PodLargerThanNode`] if step 1 rejects the request,
/// [`PlaceError::ClusterFull`] if steps 2–3 find nothing.
pub fn place_pod(
    nodes: &[NodeView],
    pools: &[PoolView],
    request: &ResourceRequest,
) -> Result<Placement, PlaceError> {
    if !pools
        .iter()
        .any(|p| ResourceRequest::default().fits_with(request, &p.capacity))
    {
        return Err(PlaceError::PodLargerThanNode);
    }
    for (pool, spec) in pools.iter().enumerate() {
        let best = nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| {
                n.pool == pool && !n.failed && n.allocated.fits_with(request, &spec.capacity)
            })
            .min_by_key(|&(i, n)| (n.same_deployment_pods, i))
            .map(|(i, _)| i);
        if let Some(i) = best {
            return Ok(Placement::Existing(i));
        }
    }
    for (pool, spec) in pools.iter().enumerate() {
        if !ResourceRequest::default().fits_with(request, &spec.capacity) {
            continue;
        }
        if spec.max_nodes.is_some_and(|max| spec.live_nodes >= max) {
            continue;
        }
        return Ok(Placement::Provision { pool });
    }
    Err(PlaceError::ClusterFull)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(cpu: u64, mem: u64) -> ResourceRequest {
        ResourceRequest::cpu(cpu, mem)
    }

    fn node(pool: usize, cpu: u64, same: usize) -> NodeView {
        NodeView {
            pool,
            allocated: req(cpu, 0),
            failed: false,
            same_deployment_pods: same,
        }
    }

    fn pool(cpu: u64, max: Option<usize>, live: usize) -> PoolView {
        PoolView {
            capacity: req(cpu, 1 << 40),
            max_nodes: max,
            live_nodes: live,
        }
    }

    #[test]
    fn oversized_request_is_rejected_before_anything_else() {
        let err = place_pod(&[], &[pool(64_000, None, 0)], &req(100_000, 0));
        assert_eq!(err, Err(PlaceError::PodLargerThanNode));
    }

    #[test]
    fn spread_prefers_fewest_same_deployment_pods_then_lowest_index() {
        let nodes = [node(0, 0, 2), node(0, 0, 1), node(0, 0, 1)];
        let got = place_pod(&nodes, &[pool(64_000, None, 3)], &req(1000, 0));
        assert_eq!(got, Ok(Placement::Existing(1)));
    }

    #[test]
    fn failed_and_full_nodes_are_skipped() {
        let mut failed = node(0, 0, 0);
        failed.failed = true;
        let full = node(0, 64_000, 0);
        let got = place_pod(&[failed, full], &[pool(64_000, Some(3), 1)], &req(1000, 0));
        assert_eq!(got, Ok(Placement::Provision { pool: 0 }));
    }

    #[test]
    fn earlier_pools_win_even_when_later_nodes_are_emptier() {
        let nodes = [node(1, 0, 0), node(0, 32_000, 0)];
        let got = place_pod(
            &nodes,
            &[pool(64_000, None, 1), pool(64_000, None, 1)],
            &req(1000, 0),
        );
        assert_eq!(got, Ok(Placement::Existing(1)));
    }

    #[test]
    fn provisioning_respects_pool_budgets() {
        let pools = [pool(8_000, Some(1), 1), pool(64_000, Some(2), 1)];
        let got = place_pod(&[], &pools, &req(16_000, 0));
        assert_eq!(got, Ok(Placement::Provision { pool: 1 }));
        let capped = [pool(64_000, Some(1), 1)];
        assert_eq!(
            place_pod(&[], &capped, &req(16_000, 0)),
            Err(PlaceError::ClusterFull)
        );
    }
}

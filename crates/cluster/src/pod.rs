//! Pods: the unit of deployment and resource allocation.

use er_sim::SimTime;
use serde::{Deserialize, Serialize};

use crate::ResourceRequest;

/// Template for a deployment's pods.
///
/// `startup_secs` models the time between scheduling and readiness —
/// container start plus loading the model parameters the container serves.
/// The paper's Figure 19 shows this is the decisive difference between
/// model-wise pods (tens of GB to load) and ElasticRec's small shards.
///
/// # Examples
///
/// ```
/// use er_cluster::{PodSpec, ResourceRequest};
///
/// let spec = PodSpec::new("emb-shard-a", ResourceRequest::cpu(2_000, 6 << 30), 8.0);
/// assert_eq!(spec.name(), "emb-shard-a");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PodSpec {
    name: String,
    resources: ResourceRequest,
    startup_secs: f64,
}

impl PodSpec {
    /// Creates a pod template.
    ///
    /// # Panics
    ///
    /// Panics if `startup_secs` is negative or not finite.
    pub fn new(name: impl Into<String>, resources: ResourceRequest, startup_secs: f64) -> Self {
        assert!(
            startup_secs.is_finite() && startup_secs >= 0.0,
            "startup time must be finite and non-negative, got {startup_secs}"
        );
        Self {
            name: name.into(),
            resources,
            startup_secs,
        }
    }

    /// Template name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Resource requests per replica.
    pub fn resources(&self) -> &ResourceRequest {
        &self.resources
    }

    /// Seconds from scheduling to readiness.
    pub fn startup_secs(&self) -> f64 {
        self.startup_secs
    }
}

/// A scheduled pod instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Pod {
    id: u64,
    node: usize,
    ready_at: SimTime,
}

impl Pod {
    pub(crate) fn new(id: u64, node: usize, ready_at: SimTime) -> Self {
        Self { id, node, ready_at }
    }

    /// Cluster-unique pod ID.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Index of the node hosting this pod.
    pub fn node(&self) -> usize {
        self.node
    }

    /// When the pod becomes ready to serve.
    pub fn ready_at(&self) -> SimTime {
        self.ready_at
    }

    /// Whether the pod is ready at `now`.
    pub fn is_ready(&self, now: SimTime) -> bool {
        now >= self.ready_at
    }

    pub(crate) fn set_ready_at(&mut self, at: SimTime) {
        self.ready_at = at;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_accessors() {
        let spec = PodSpec::new("x", ResourceRequest::cpu(100, 200), 1.5);
        assert_eq!(spec.name(), "x");
        assert_eq!(spec.resources().cpu_millicores, 100);
        assert_eq!(spec.startup_secs(), 1.5);
    }

    #[test]
    fn pod_readiness_tracks_time() {
        let p = Pod::new(1, 0, SimTime::from_secs(10.0));
        assert!(!p.is_ready(SimTime::from_secs(9.9)));
        assert!(p.is_ready(SimTime::from_secs(10.0)));
        assert_eq!(p.id(), 1);
        assert_eq!(p.node(), 0);
    }

    #[test]
    #[should_panic(expected = "startup time")]
    fn negative_startup_panics() {
        PodSpec::new("x", ResourceRequest::default(), -1.0);
    }
}

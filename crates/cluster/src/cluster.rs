//! The cluster: nodes, deployments, and the bin-packing scheduler.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use er_sim::SimTime;

use crate::schedule::{place_pod, NodeView, PlaceError, Placement, PoolView};
use crate::{HardwareProfile, Pod, PodSpec, ResourceRequest};

/// Why a pod could not be scheduled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// The pod's request exceeds a whole empty node — it can never fit.
    PodLargerThanNode {
        /// The deployment whose pod failed to schedule.
        deployment: String,
    },
    /// All provisioned nodes are full and the node budget is exhausted.
    ClusterFull {
        /// The deployment whose pod failed to schedule.
        deployment: String,
        /// The node-count cap that was hit.
        max_nodes: usize,
    },
    /// A deployment name was not found.
    UnknownDeployment(String),
    /// A deployment with this name already exists.
    DuplicateDeployment(String),
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::PodLargerThanNode { deployment } => {
                write!(f, "pod of deployment '{deployment}' exceeds node capacity")
            }
            ScheduleError::ClusterFull {
                deployment,
                max_nodes,
            } => write!(
                f,
                "no room for deployment '{deployment}' within {max_nodes} nodes"
            ),
            ScheduleError::UnknownDeployment(name) => {
                write!(f, "unknown deployment '{name}'")
            }
            ScheduleError::DuplicateDeployment(name) => {
                write!(f, "deployment '{name}' already exists")
            }
        }
    }
}

impl Error for ScheduleError {}

/// A homogeneous group of provisionable nodes within a cluster.
///
/// Single-pool clusters model the paper's testbeds; multi-pool clusters
/// support the heterogeneous extension where CPU-only embedding shards are
/// scheduled onto cheaper GPU-less nodes.
#[derive(Debug, Clone)]
pub struct NodePool {
    /// Hardware of every node in the pool.
    pub profile: HardwareProfile,
    /// Provisioning cap for the pool (None = unbounded).
    pub max_nodes: Option<usize>,
}

impl NodePool {
    /// A pool of `profile` nodes.
    pub fn new(profile: HardwareProfile, max_nodes: Option<usize>) -> Self {
        Self { profile, max_nodes }
    }

    fn capacity(&self) -> ResourceRequest {
        ResourceRequest {
            cpu_millicores: self.profile.cpu_millicores(),
            memory_bytes: self.profile.mem_bytes.whole(),
            gpus: u32::from(self.profile.has_gpu()),
        }
    }
}

#[derive(Debug, Clone)]
struct Node {
    pool: usize,
    allocated: ResourceRequest,
    pods: usize,
    failed: bool,
}

#[derive(Debug, Clone)]
struct DeploymentState {
    name: String,
    spec: PodSpec,
    pods: Vec<Pod>,
}

/// Dense handle to a deployment, resolved once via [`Cluster::deploy_id`]
/// and valid for the cluster's lifetime (deployments are never reindexed,
/// deletion leaves a tombstone). Handle-based accessors are plain `Vec`
/// indexing — the per-event string lookups the simulation engine used to
/// pay are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeployId(usize);

/// A homogeneous cluster of nodes managed like a Kubernetes cluster: pods
/// are placed first-fit onto nodes, and new nodes are provisioned on demand
/// up to an optional cap.
///
/// Auto-provisioning is the lens for the paper's cost experiments
/// (Figures 15/18): the number of nodes the scheduler ends up using *is*
/// the deployment cost.
///
/// # Examples
///
/// ```
/// use er_cluster::{Cluster, HardwareProfile, PodSpec, ResourceRequest};
/// use er_sim::SimTime;
///
/// let mut c = Cluster::new(HardwareProfile::cpu_only_node(), Some(4));
/// let spec = PodSpec::new("w", ResourceRequest::cpu(32_000, 64 << 30), 1.0);
/// c.create_deployment("workers", spec, 3, SimTime::ZERO)?;
/// assert_eq!(c.nodes_used(), 2); // two 32-core pods per 64-core node
/// # Ok::<(), er_cluster::ScheduleError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Cluster {
    pools: Vec<NodePool>,
    nodes: Vec<Node>,
    /// Deployment storage, indexed by [`DeployId`]. Deleted deployments
    /// leave a drained tombstone so existing handles stay valid.
    deployments: Vec<DeploymentState>,
    /// Live deployments by name, values indexing `deployments`. Sorted
    /// iteration order keeps name-driven operations deterministic.
    by_name: BTreeMap<String, usize>,
    next_pod_id: u64,
}

impl Cluster {
    /// Creates a cluster of `node_profile` nodes, provisioned on demand up
    /// to `max_nodes` (unbounded when `None`).
    pub fn new(node_profile: HardwareProfile, max_nodes: Option<usize>) -> Self {
        Self::with_pools(vec![NodePool::new(node_profile, max_nodes)])
    }

    /// Creates a heterogeneous cluster from several node pools. Pods are
    /// placed on the first pool (in order) that can host them, so list
    /// cheaper pools first to prefer them.
    ///
    /// # Panics
    ///
    /// Panics if `pools` is empty.
    pub fn with_pools(pools: Vec<NodePool>) -> Self {
        assert!(!pools.is_empty(), "a cluster needs at least one node pool");
        Self {
            pools,
            nodes: Vec::new(),
            deployments: Vec::new(),
            by_name: BTreeMap::new(),
            next_pod_id: 0,
        }
    }

    /// The first pool's node hardware profile (the only profile for
    /// single-pool clusters).
    pub fn node_profile(&self) -> &HardwareProfile {
        &self.pools[0].profile
    }

    /// The cluster's node pools.
    pub fn pools(&self) -> &[NodePool] {
        &self.pools
    }

    /// Creates a deployment with `replicas` initial pods.
    ///
    /// # Errors
    ///
    /// Returns an error if the name is taken or the pods cannot be placed.
    pub fn create_deployment(
        &mut self,
        name: impl Into<String>,
        spec: PodSpec,
        replicas: usize,
        now: SimTime,
    ) -> Result<(), ScheduleError> {
        let name = name.into();
        if self.by_name.contains_key(&name) {
            return Err(ScheduleError::DuplicateDeployment(name));
        }
        let idx = self.deployments.len();
        self.deployments.push(DeploymentState {
            name: name.clone(),
            spec,
            pods: Vec::new(),
        });
        self.by_name.insert(name, idx);
        self.scale_deployment(DeployId(idx), replicas, now)
    }

    /// Creates a deployment whose *initial* pods are ready immediately —
    /// a warmed-up service, as at the start of a measurement run. Pods
    /// added by later `scale_to` calls pay the spec's startup delay as
    /// usual.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Cluster::create_deployment`].
    pub fn create_deployment_warm(
        &mut self,
        name: impl Into<String>,
        spec: PodSpec,
        replicas: usize,
        now: SimTime,
    ) -> Result<(), ScheduleError> {
        let name = name.into();
        self.create_deployment(name.clone(), spec, replicas, now)?;
        let idx = self.by_name[&name];
        for pod in &mut self.deployments[idx].pods {
            pod.set_ready_at(now);
        }
        Ok(())
    }

    /// Resolves a deployment name to its dense handle. Do this once, then
    /// use the `*_of` accessors on the hot path.
    pub fn deploy_id(&self, name: &str) -> Option<DeployId> {
        self.by_name.get(name).copied().map(DeployId)
    }

    /// The name a handle was created under.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this cluster.
    pub fn deployment_name(&self, id: DeployId) -> &str {
        &self.deployments[id.0].name
    }

    /// The pods of a deployment, by handle.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this cluster.
    pub fn pods_of(&self, id: DeployId) -> &[Pod] {
        &self.deployments[id.0].pods
    }

    /// Desired (scheduled) replica count, by handle.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this cluster.
    pub fn replicas_of(&self, id: DeployId) -> usize {
        self.deployments[id.0].pods.len()
    }

    /// Memory requested by one deployment's pods, by handle.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this cluster.
    pub fn deployment_memory_of(&self, id: DeployId) -> u64 {
        let d = &self.deployments[id.0];
        d.spec.resources().memory_bytes * d.pods.len() as u64
    }

    /// Scales a deployment to exactly `replicas` pods, by handle. Same
    /// semantics as [`Cluster::scale_to`].
    ///
    /// # Errors
    ///
    /// Returns an error if a new pod cannot be placed; pods placed before
    /// the failure remain.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this cluster.
    pub fn scale_deployment(
        &mut self,
        id: DeployId,
        replicas: usize,
        now: SimTime,
    ) -> Result<(), ScheduleError> {
        let current = self.deployments[id.0].pods.len();
        if replicas > current {
            for _ in current..replicas {
                self.add_pod(id.0, now)?;
            }
        } else {
            for _ in replicas..current {
                self.remove_pod(id.0);
            }
        }
        Ok(())
    }

    /// Scales a deployment to exactly `replicas` pods. New pods become
    /// ready `startup_secs` after `now`; removed pods free their resources
    /// immediately (newest-first, Kubernetes' default victim order).
    ///
    /// # Errors
    ///
    /// Returns an error if the deployment is unknown or a new pod cannot be
    /// placed; pods placed before the failure remain.
    pub fn scale_to(
        &mut self,
        name: &str,
        replicas: usize,
        now: SimTime,
    ) -> Result<(), ScheduleError> {
        let id = self
            .deploy_id(name)
            .ok_or_else(|| ScheduleError::UnknownDeployment(name.to_owned()))?;
        self.scale_deployment(id, replicas, now)
    }

    fn add_pod(&mut self, idx: usize, now: SimTime) -> Result<(), ScheduleError> {
        let (request, startup) = {
            let d = &self.deployments[idx];
            (*d.spec.resources(), d.spec.startup_secs())
        };
        // The placement decision itself is the pure `place_pod` — the same
        // function the er-mc control-plane model explores. This method only
        // snapshots views, maps errors, and applies the returned placement.
        let mut same_dep_per_node = vec![0usize; self.nodes.len()];
        for pod in &self.deployments[idx].pods {
            same_dep_per_node[pod.node()] += 1;
        }
        let node_views: Vec<NodeView> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| NodeView {
                pool: n.pool,
                allocated: n.allocated,
                failed: n.failed,
                same_deployment_pods: same_dep_per_node[i],
            })
            .collect();
        let pool_views: Vec<PoolView> = self
            .pools
            .iter()
            .enumerate()
            .map(|(pool, spec)| PoolView {
                capacity: spec.capacity(),
                max_nodes: spec.max_nodes,
                live_nodes: self
                    .nodes
                    .iter()
                    .filter(|n| n.pool == pool && !n.failed)
                    .count(),
            })
            .collect();
        let node_idx = match place_pod(&node_views, &pool_views, &request) {
            Ok(Placement::Existing(i)) => i,
            Ok(Placement::Provision { pool }) => {
                self.nodes.push(Node {
                    pool,
                    allocated: ResourceRequest::default(),
                    pods: 0,
                    failed: false,
                });
                self.nodes.len() - 1
            }
            Err(PlaceError::PodLargerThanNode) => {
                return Err(ScheduleError::PodLargerThanNode {
                    deployment: self.deployments[idx].name.clone(),
                });
            }
            Err(PlaceError::ClusterFull) => {
                return Err(ScheduleError::ClusterFull {
                    deployment: self.deployments[idx].name.clone(),
                    max_nodes: self
                        .pools
                        .iter()
                        .map(|p| p.max_nodes.unwrap_or(usize::MAX))
                        .fold(0usize, |a, b| a.saturating_add(b)),
                });
            }
        };
        self.nodes[node_idx].allocated = self.nodes[node_idx].allocated.plus(&request);
        self.nodes[node_idx].pods += 1;
        let pod = Pod::new(self.next_pod_id, node_idx, now + startup);
        self.next_pod_id += 1;
        self.deployments[idx].pods.push(pod);
        Ok(())
    }

    fn remove_pod(&mut self, idx: usize) {
        let d = &mut self.deployments[idx];
        let Some(pod) = d.pods.pop() else { return };
        let request = *d.spec.resources();
        let node = &mut self.nodes[pod.node()];
        node.allocated = ResourceRequest {
            cpu_millicores: node.allocated.cpu_millicores - request.cpu_millicores,
            memory_bytes: node.allocated.memory_bytes - request.memory_bytes,
            gpus: node.allocated.gpus - request.gpus,
        };
        node.pods -= 1;
    }

    /// Deletes a deployment and frees all its pods.
    ///
    /// # Errors
    ///
    /// Returns an error if the deployment is unknown.
    pub fn delete_deployment(&mut self, name: &str) -> Result<(), ScheduleError> {
        let idx = *self
            .by_name
            .get(name)
            .ok_or_else(|| ScheduleError::UnknownDeployment(name.to_owned()))?;
        while !self.deployments[idx].pods.is_empty() {
            self.remove_pod(idx);
        }
        // Leave a drained tombstone in the slab so handles stay valid; only
        // the name mapping goes away (and can be reused).
        self.by_name.remove(name);
        Ok(())
    }

    /// Desired (scheduled) replica count of a deployment, 0 if unknown.
    pub fn replicas(&self, name: &str) -> usize {
        self.deploy_id(name).map_or(0, |id| self.replicas_of(id))
    }

    /// Replicas past their startup delay at `now`.
    pub fn ready_replicas(&self, name: &str, now: SimTime) -> usize {
        self.deploy_id(name).map_or(0, |id| {
            self.pods_of(id).iter().filter(|p| p.is_ready(now)).count()
        })
    }

    /// The pods of a deployment (empty if unknown).
    pub fn pods(&self, name: &str) -> &[Pod] {
        self.deploy_id(name).map_or(&[], |id| self.pods_of(id))
    }

    /// Deployment names in creation-independent (sorted) order.
    pub fn deployment_names(&self) -> Vec<&str> {
        self.by_name.keys().map(String::as_str).collect()
    }

    /// Total memory requested by all pods of all deployments — the paper's
    /// "memory allocation size" metric. Tombstones hold no pods and
    /// contribute nothing.
    pub fn memory_allocated_bytes(&self) -> u64 {
        self.deployments
            .iter()
            .map(|d| d.spec.resources().memory_bytes * d.pods.len() as u64)
            .sum()
    }

    /// Memory requested by one deployment's pods.
    pub fn deployment_memory_bytes(&self, name: &str) -> u64 {
        self.deploy_id(name)
            .map_or(0, |id| self.deployment_memory_of(id))
    }

    /// Number of provisioned nodes currently hosting at least one pod —
    /// the paper's server-count cost metric.
    pub fn nodes_used(&self) -> usize {
        self.nodes.iter().filter(|n| n.pods > 0).count()
    }

    /// Number of nodes ever provisioned (including now-empty ones).
    pub fn nodes_provisioned(&self) -> usize {
        self.nodes.len()
    }

    /// Fails a node: every pod on it vanishes (its deployments shrink —
    /// the autoscaler will notice and re-provision elsewhere) and the node
    /// stops accepting pods. Returns `(deployment, pods lost)` pairs in
    /// name-sorted order, so downstream recovery actions (and therefore
    /// pod-id assignment) are deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn fail_node(&mut self, node: usize) -> Vec<(DeployId, usize)> {
        assert!(node < self.nodes.len(), "node {node} out of range");
        self.nodes[node].failed = true;
        let mut losses = Vec::new();
        for &idx in self.by_name.values() {
            let state = &mut self.deployments[idx];
            let before = state.pods.len();
            state.pods.retain(|p| p.node() != node);
            let lost = before - state.pods.len();
            if lost > 0 {
                losses.push((DeployId(idx), lost));
            }
        }
        self.nodes[node].allocated = ResourceRequest::default();
        self.nodes[node].pods = 0;
        losses
    }

    /// Number of failed nodes.
    pub fn failed_nodes(&self) -> usize {
        self.nodes.iter().filter(|n| n.failed).count()
    }

    /// Per-node `(pool, allocated)` snapshots, for introspection and
    /// invariant checking.
    pub fn node_allocations(&self) -> Vec<(usize, ResourceRequest)> {
        self.nodes.iter().map(|n| (n.pool, n.allocated)).collect()
    }

    /// Nodes of pool `pool` currently hosting at least one pod.
    ///
    /// # Panics
    ///
    /// Panics if `pool` is out of range.
    pub fn nodes_used_in_pool(&self, pool: usize) -> usize {
        assert!(pool < self.pools.len(), "pool {pool} out of range");
        self.nodes
            .iter()
            .filter(|n| n.pool == pool && n.pods > 0)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(cpu: u64, mem: u64) -> PodSpec {
        PodSpec::new("p", ResourceRequest::cpu(cpu, mem), 2.0)
    }

    fn cluster(max: Option<usize>) -> Cluster {
        Cluster::new(HardwareProfile::cpu_only_node(), max)
    }

    #[test]
    fn pods_pack_first_fit() {
        let mut c = cluster(None);
        // 64-core nodes; 24-core pods -> 2 per node.
        c.create_deployment("d", spec(24_000, 1 << 30), 5, SimTime::ZERO)
            .unwrap();
        assert_eq!(c.nodes_used(), 3);
        assert_eq!(c.replicas("d"), 5);
    }

    #[test]
    fn memory_is_the_binding_constraint_when_larger() {
        let mut c = cluster(None);
        // 384 GB nodes; 200 GB pods -> 1 per node despite tiny CPU.
        c.create_deployment("big", spec(1000, 200 << 30), 3, SimTime::ZERO)
            .unwrap();
        assert_eq!(c.nodes_used(), 3);
    }

    #[test]
    fn startup_delay_gates_readiness() {
        let mut c = cluster(None);
        c.create_deployment("d", spec(1000, 1 << 30), 2, SimTime::from_secs(10.0))
            .unwrap();
        assert_eq!(c.ready_replicas("d", SimTime::from_secs(10.0)), 0);
        assert_eq!(c.ready_replicas("d", SimTime::from_secs(11.9)), 0);
        assert_eq!(c.ready_replicas("d", SimTime::from_secs(12.0)), 2);
    }

    #[test]
    fn scale_down_frees_resources() {
        let mut c = cluster(None);
        c.create_deployment("d", spec(32_000, 1 << 30), 4, SimTime::ZERO)
            .unwrap();
        assert_eq!(c.nodes_used(), 2);
        c.scale_to("d", 1, SimTime::ZERO).unwrap();
        assert_eq!(c.replicas("d"), 1);
        assert_eq!(c.nodes_used(), 1);
        // Freed capacity is reused by a second deployment.
        c.create_deployment("e", spec(32_000, 1 << 30), 3, SimTime::ZERO)
            .unwrap();
        assert_eq!(c.nodes_used(), 2);
    }

    #[test]
    fn node_cap_is_enforced() {
        let mut c = cluster(Some(1));
        let err = c
            .create_deployment("d", spec(40_000, 1 << 30), 2, SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(
            err,
            ScheduleError::ClusterFull { max_nodes: 1, .. }
        ));
        // The first pod stayed.
        assert_eq!(c.replicas("d"), 1);
    }

    #[test]
    fn oversized_pod_is_rejected() {
        let mut c = cluster(None);
        let err = c
            .create_deployment("d", spec(100_000, 1 << 30), 1, SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, ScheduleError::PodLargerThanNode { .. }));
    }

    #[test]
    fn gpu_pods_need_gpu_nodes() {
        let mut cpu_cluster = cluster(None);
        let gpu_spec = PodSpec::new("g", ResourceRequest::with_gpu(1000, 1 << 30, 1), 1.0);
        assert!(cpu_cluster
            .create_deployment("d", gpu_spec.clone(), 1, SimTime::ZERO)
            .is_err());

        let mut gpu_cluster = Cluster::new(HardwareProfile::cpu_gpu_node(), None);
        gpu_cluster
            .create_deployment("d", gpu_spec, 2, SimTime::ZERO)
            .unwrap();
        // One GPU per node -> two nodes.
        assert_eq!(gpu_cluster.nodes_used(), 2);
    }

    #[test]
    fn memory_accounting_tracks_pods() {
        let mut c = cluster(None);
        c.create_deployment("a", spec(1000, 10 << 30), 2, SimTime::ZERO)
            .unwrap();
        c.create_deployment("b", spec(1000, 5 << 30), 1, SimTime::ZERO)
            .unwrap();
        assert_eq!(c.memory_allocated_bytes(), (20 << 30) + (5 << 30));
        assert_eq!(c.deployment_memory_bytes("a"), 20 << 30);
        c.scale_to("a", 0, SimTime::ZERO).unwrap();
        assert_eq!(c.memory_allocated_bytes(), 5 << 30);
    }

    #[test]
    fn delete_deployment_frees_everything() {
        let mut c = cluster(None);
        c.create_deployment("d", spec(32_000, 1 << 30), 2, SimTime::ZERO)
            .unwrap();
        c.delete_deployment("d").unwrap();
        assert_eq!(c.replicas("d"), 0);
        assert_eq!(c.nodes_used(), 0);
        assert!(c.delete_deployment("d").is_err());
    }

    #[test]
    fn duplicate_and_unknown_names_error() {
        let mut c = cluster(None);
        c.create_deployment("d", spec(1000, 1), 1, SimTime::ZERO)
            .unwrap();
        assert!(matches!(
            c.create_deployment("d", spec(1000, 1), 1, SimTime::ZERO),
            Err(ScheduleError::DuplicateDeployment(_))
        ));
        assert!(matches!(
            c.scale_to("nope", 1, SimTime::ZERO),
            Err(ScheduleError::UnknownDeployment(_))
        ));
    }

    #[test]
    fn heterogeneous_pools_prefer_earlier_pools() {
        // CPU pool listed first: CPU pods land there; GPU pods spill to
        // the GPU pool.
        let mut c = Cluster::with_pools(vec![
            NodePool::new(HardwareProfile::cpu_only_node(), None),
            NodePool::new(HardwareProfile::cpu_gpu_node(), None),
        ]);
        c.create_deployment("cpu", spec(8_000, 1 << 30), 2, SimTime::ZERO)
            .unwrap();
        assert_eq!(c.nodes_used_in_pool(0), 1);
        assert_eq!(c.nodes_used_in_pool(1), 0);

        let gpu_spec = PodSpec::new("g", ResourceRequest::with_gpu(1000, 1 << 30, 1), 1.0);
        c.create_deployment("gpu", gpu_spec, 2, SimTime::ZERO)
            .unwrap();
        assert_eq!(c.nodes_used_in_pool(0), 1);
        assert_eq!(c.nodes_used_in_pool(1), 2); // one GPU per node
        assert_eq!(c.nodes_used(), 3);
    }

    #[test]
    fn pool_caps_are_independent() {
        let mut c = Cluster::with_pools(vec![
            NodePool::new(HardwareProfile::cpu_only_node(), Some(1)),
            NodePool::new(HardwareProfile::cpu_gpu_node(), Some(2)),
        ]);
        // 40-core pods: one per CPU node; overflow goes to 32-core GPU
        // nodes only if they fit — they don't (40 > 32), so the cluster
        // fills at one pod.
        let err = c
            .create_deployment("big", spec(40_000, 1 << 30), 2, SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, ScheduleError::ClusterFull { .. }));
        assert_eq!(c.replicas("big"), 1);
        // Smaller pods spill over into the second pool (one per 32-core
        // node), until that pool's cap also fills.
        c.create_deployment("small", spec(30_000, 1 << 30), 2, SimTime::ZERO)
            .unwrap();
        assert_eq!(c.nodes_used_in_pool(1), 2);
        assert!(c.scale_to("small", 3, SimTime::ZERO).is_err());
    }

    #[test]
    fn pod_too_big_for_every_pool_is_rejected() {
        let mut c = Cluster::with_pools(vec![NodePool::new(HardwareProfile::cpu_gpu_node(), None)]);
        let err = c
            .create_deployment("huge", spec(64_000, 1 << 30), 1, SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, ScheduleError::PodLargerThanNode { .. }));
    }

    #[test]
    fn warm_deployments_skip_initial_startup_only() {
        let mut c = cluster(None);
        let now = SimTime::from_secs(100.0);
        c.create_deployment_warm("d", spec(1000, 1 << 30), 2, now)
            .unwrap();
        assert_eq!(c.ready_replicas("d", now), 2);
        // Pods added later pay the 2 s startup.
        c.scale_to("d", 3, now).unwrap();
        assert_eq!(c.ready_replicas("d", now), 2);
        assert_eq!(c.ready_replicas("d", SimTime::from_secs(102.0)), 3);
    }

    #[test]
    fn replicas_spread_across_nodes() {
        let mut c = cluster(None);
        // Force two nodes into existence with a filler deployment.
        c.create_deployment("filler", spec(40_000, 1 << 30), 2, SimTime::ZERO)
            .unwrap();
        assert_eq!(c.nodes_used(), 2);
        // Small pods would all fit on node 0; spread puts one per node.
        c.create_deployment("svc", spec(4_000, 1 << 30), 2, SimTime::ZERO)
            .unwrap();
        let nodes: Vec<usize> = c.pods("svc").iter().map(|p| p.node()).collect();
        assert_ne!(nodes[0], nodes[1], "replicas must not share a node");
    }

    #[test]
    fn failed_node_loses_pods_and_stops_scheduling() {
        let mut c = cluster(None);
        // Two 24-core pods per 64-core node -> pods split across nodes.
        c.create_deployment("d", spec(24_000, 1 << 30), 4, SimTime::ZERO)
            .unwrap();
        assert_eq!(c.nodes_used(), 2);
        let losses = c.fail_node(0);
        assert_eq!(losses.len(), 1);
        assert_eq!(c.deployment_name(losses[0].0), "d");
        assert_eq!(losses[0].1, 2);
        assert_eq!(c.replicas("d"), 2);
        assert_eq!(c.failed_nodes(), 1);
        // Re-scaling provisions around the failed node.
        c.scale_to("d", 4, SimTime::from_secs(1.0)).unwrap();
        assert_eq!(c.replicas("d"), 4);
        assert!(c.pods("d").iter().all(|p| p.node() != 0));
    }

    #[test]
    fn failing_an_empty_node_is_harmless() {
        let mut c = cluster(None);
        c.create_deployment("d", spec(1000, 1), 1, SimTime::ZERO)
            .unwrap();
        c.scale_to("d", 0, SimTime::ZERO).unwrap();
        let losses = c.fail_node(0);
        assert!(losses.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn failing_unknown_node_panics() {
        cluster(None).fail_node(0);
    }

    #[test]
    #[should_panic(expected = "at least one node pool")]
    fn empty_pools_panics() {
        Cluster::with_pools(vec![]);
    }

    #[test]
    fn handle_api_matches_name_api() {
        let mut c = cluster(None);
        c.create_deployment("a", spec(1000, 4 << 30), 3, SimTime::ZERO)
            .unwrap();
        c.create_deployment("b", spec(1000, 2 << 30), 1, SimTime::ZERO)
            .unwrap();
        let a = c.deploy_id("a").unwrap();
        let b = c.deploy_id("b").unwrap();
        assert_ne!(a, b);
        assert!(c.deploy_id("nope").is_none());
        assert_eq!(c.deployment_name(a), "a");
        assert_eq!(c.replicas_of(a), c.replicas("a"));
        assert_eq!(c.pods_of(b).len(), c.pods("b").len());
        assert_eq!(c.deployment_memory_of(a), c.deployment_memory_bytes("a"));
        c.scale_deployment(a, 5, SimTime::ZERO).unwrap();
        assert_eq!(c.replicas("a"), 5);
    }

    #[test]
    fn handles_survive_deletion_and_recreation() {
        let mut c = cluster(None);
        c.create_deployment("d", spec(1000, 1 << 30), 2, SimTime::ZERO)
            .unwrap();
        let old = c.deploy_id("d").unwrap();
        c.delete_deployment("d").unwrap();
        // The tombstone keeps the old handle valid (drained, not dangling).
        assert_eq!(c.replicas_of(old), 0);
        assert_eq!(c.deployment_memory_of(old), 0);
        // The name is reusable and maps to a fresh handle.
        c.create_deployment("d", spec(1000, 1 << 30), 1, SimTime::ZERO)
            .unwrap();
        let new = c.deploy_id("d").unwrap();
        assert_ne!(old, new);
        assert_eq!(c.replicas_of(new), 1);
        assert_eq!(c.memory_allocated_bytes(), 1 << 30);
    }

    #[test]
    fn scale_to_same_count_is_noop() {
        let mut c = cluster(None);
        c.create_deployment("d", spec(1000, 1), 3, SimTime::ZERO)
            .unwrap();
        let pods_before: Vec<u64> = c.pods("d").iter().map(Pod::id).collect();
        c.scale_to("d", 3, SimTime::ZERO).unwrap();
        let pods_after: Vec<u64> = c.pods("d").iter().map(Pod::id).collect();
        assert_eq!(pods_before, pods_after);
    }
}

//! Kubernetes-substitute container orchestration for the ElasticRec
//! reproduction.
//!
//! The paper deploys model shards as containers managed by Kubernetes
//! (v1.26) with Horizontal Pod Autoscaling (Section II-B, IV-D). The
//! experiments rely on a specific slice of Kubernetes semantics, which this
//! crate reimplements over the `er-sim` virtual clock:
//!
//! * **Nodes** with finite CPU/memory/GPU capacity ([`HardwareProfile`]) —
//!   presets for the paper's Xeon CPU cluster and GKE `n1-standard-32 + T4`
//!   nodes;
//! * **Pods** with resource requests and startup delays ([`PodSpec`]) —
//!   startup is proportional to the model bytes a container loads, which is
//!   what makes monolithic model-wise pods slow to react in Figure 19;
//! * a first-fit bin-packing **scheduler** ([`Cluster`]) that provisions
//!   additional nodes on demand (the "how many servers do we need" metric of
//!   Figures 15/18);
//! * **HPA** ([`HpaController`]) with Kubernetes' `desired = ceil(current ×
//!   metric/target)` rule, tolerance band, and scale-down stabilization.
//!
//! # Examples
//!
//! ```
//! use er_cluster::{Cluster, HardwareProfile, PodSpec, ResourceRequest};
//! use er_sim::SimTime;
//!
//! let mut cluster = Cluster::new(HardwareProfile::cpu_only_node(), None);
//! let spec = PodSpec::new(
//!     "dense-shard",
//!     ResourceRequest::cpu(8_000, 2 << 30),
//!     5.0, // startup seconds
//! );
//! cluster.create_deployment("dense", spec, 2, SimTime::ZERO).unwrap();
//! assert_eq!(cluster.replicas("dense"), 2);
//! assert_eq!(cluster.ready_replicas("dense", SimTime::ZERO), 0); // still starting
//! assert_eq!(cluster.ready_replicas("dense", SimTime::from_secs(5.0)), 2);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations, unreachable_pub)]

mod cluster;
mod hardware;
mod hpa;
mod pod;
mod resources;
mod schedule;

pub use cluster::{Cluster, DeployId, NodePool, ScheduleError};
pub use hardware::{GpuSpec, HardwareProfile};
pub use hpa::{
    bound_frontend_desired, clamp_scale_to_load, HpaController, HpaError, HpaPolicy, HpaState,
    Observation, ScalingTarget,
};
pub use pod::{Pod, PodSpec};
pub use resources::ResourceRequest;
pub use schedule::{place_pod, NodeView, PlaceError, Placement, PoolView};

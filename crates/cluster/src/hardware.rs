//! Hardware profiles for the paper's two testbeds (Section V-A).

use er_units::{Bytes, BytesPerSec, Cores, FlopsPerSec};
use serde::{Deserialize, Serialize};

/// GPU attached to a node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Sustained single-precision throughput.
    pub flops_per_sec: FlopsPerSec,
    /// On-board HBM capacity.
    pub hbm_bytes: Bytes,
    /// Host↔device transfer bandwidth (PCIe).
    pub pcie_bytes_per_sec: BytesPerSec,
}

impl GpuSpec {
    /// NVIDIA Tesla T4: ~8.1 TFLOP/s FP32, 16 GB HBM, PCIe 3.0 x16.
    pub fn tesla_t4() -> Self {
        Self {
            flops_per_sec: FlopsPerSec::of(8.1e12),
            hbm_bytes: Bytes::of_u64(16 << 30),
            pcie_bytes_per_sec: BytesPerSec::of(12.0e9),
        }
    }
}

/// Capacity and performance characteristics of one server node.
///
/// The fields are exactly the quantities the paper's results depend on:
/// cores and FLOP rate bound dense-MLP throughput, memory bandwidth bounds
/// embedding gathers, DRAM capacity bounds how many shards pack per node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HardwareProfile {
    /// Profile name for reports.
    pub name: &'static str,
    /// Logical CPU cores.
    pub cpu_cores: Cores,
    /// Sustained CPU throughput across all cores. Sized for dense
    /// inference kernels, not peak marketing numbers.
    pub cpu_flops_per_sec: FlopsPerSec,
    /// DRAM capacity.
    pub mem_bytes: Bytes,
    /// Peak DRAM bandwidth.
    pub mem_bw_bytes_per_sec: BytesPerSec,
    /// Fraction of peak bandwidth achievable by random embedding gathers
    /// (sparse accesses miss in cache and under-utilize DRAM pages).
    pub gather_efficiency: f64,
    /// Attached GPU, if any.
    pub gpu: Option<GpuSpec>,
}

impl HardwareProfile {
    /// The paper's CPU-only compute node: dual-socket Xeon Gold 6242 — 64
    /// logical cores, 384 GB DRAM, 256 GB/s aggregate memory bandwidth.
    pub fn cpu_only_node() -> Self {
        Self {
            name: "xeon-gold-6242-2s",
            cpu_cores: Cores::of(64),
            // ~16 cores' worth of sustained AVX-512 FMA at inference
            // efficiency: ~1.5 TFLOP/s for the whole node.
            cpu_flops_per_sec: FlopsPerSec::of(1.5e12),
            mem_bytes: Bytes::of_u64(384 << 30),
            mem_bw_bytes_per_sec: BytesPerSec::of(256.0e9),
            gather_efficiency: 0.30,
            gpu: None,
        }
    }

    /// The paper's GKE node: `n1-standard-32` (32 vCPU, 120 GB) plus a
    /// Tesla T4 over PCIe.
    pub fn cpu_gpu_node() -> Self {
        Self {
            name: "gke-n1-standard-32-t4",
            cpu_cores: Cores::of(32),
            cpu_flops_per_sec: FlopsPerSec::of(0.6e12),
            mem_bytes: Bytes::of_u64(120 << 30),
            mem_bw_bytes_per_sec: BytesPerSec::of(100.0e9),
            gather_efficiency: 0.30,
            gpu: Some(GpuSpec::tesla_t4()),
        }
    }

    /// CPU millicores available for scheduling.
    pub fn cpu_millicores(&self) -> u64 {
        self.cpu_cores.millicores()
    }

    /// Effective bandwidth seen by random embedding gathers.
    pub fn effective_gather_bandwidth(&self) -> BytesPerSec {
        self.mem_bw_bytes_per_sec * self.gather_efficiency
    }

    /// Whether the node carries a GPU.
    pub fn has_gpu(&self) -> bool {
        self.gpu.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_node_matches_paper_specs() {
        let n = HardwareProfile::cpu_only_node();
        assert_eq!(n.cpu_cores, Cores::of(64));
        assert_eq!(n.mem_bytes, Bytes::of_u64(384 << 30));
        assert_eq!(n.mem_bw_bytes_per_sec, BytesPerSec::of(256.0e9));
        assert!(!n.has_gpu());
    }

    #[test]
    fn gpu_node_matches_paper_specs() {
        let n = HardwareProfile::cpu_gpu_node();
        assert_eq!(n.cpu_cores, Cores::of(32));
        assert_eq!(n.mem_bytes, Bytes::of_u64(120 << 30));
        let gpu = n.gpu.expect("has T4");
        assert_eq!(gpu.hbm_bytes, Bytes::of_u64(16 << 30));
        assert!(gpu.flops_per_sec > n.cpu_flops_per_sec);
    }

    #[test]
    fn gather_bandwidth_is_derated() {
        let n = HardwareProfile::cpu_only_node();
        assert!(n.effective_gather_bandwidth() < n.mem_bw_bytes_per_sec);
        assert!((n.effective_gather_bandwidth().raw() - 256.0e9 * 0.30).abs() < 1.0);
    }

    #[test]
    fn millicores_conversion() {
        assert_eq!(HardwareProfile::cpu_only_node().cpu_millicores(), 64_000);
    }
}

//! Schedulable resource quantities.

use serde::{Deserialize, Serialize};

/// Resources a pod requests from its node — the Kubernetes
/// `resources.requests` block.
///
/// # Examples
///
/// ```
/// use er_cluster::ResourceRequest;
///
/// let shard = ResourceRequest::cpu(4_000, 8 << 30); // 4 cores, 8 GiB
/// let dense_gpu = ResourceRequest::with_gpu(8_000, 4 << 30, 1);
/// assert!(dense_gpu.gpus > shard.gpus);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct ResourceRequest {
    /// CPU request in millicores (1000 = one core).
    pub cpu_millicores: u64,
    /// Memory request in bytes.
    pub memory_bytes: u64,
    /// Whole GPUs requested.
    pub gpus: u32,
}

impl ResourceRequest {
    /// A CPU-only request.
    pub fn cpu(cpu_millicores: u64, memory_bytes: u64) -> Self {
        Self {
            cpu_millicores,
            memory_bytes,
            gpus: 0,
        }
    }

    /// A request including GPUs (the paper's GPU-centric dense containers).
    pub fn with_gpu(cpu_millicores: u64, memory_bytes: u64, gpus: u32) -> Self {
        Self {
            cpu_millicores,
            memory_bytes,
            gpus,
        }
    }

    /// Component-wise sum.
    pub fn plus(&self, other: &ResourceRequest) -> ResourceRequest {
        ResourceRequest {
            cpu_millicores: self.cpu_millicores + other.cpu_millicores,
            memory_bytes: self.memory_bytes + other.memory_bytes,
            gpus: self.gpus + other.gpus,
        }
    }

    /// Whether `self + extra` fits within `capacity`.
    pub fn fits_with(&self, extra: &ResourceRequest, capacity: &ResourceRequest) -> bool {
        let total = self.plus(extra);
        total.cpu_millicores <= capacity.cpu_millicores
            && total.memory_bytes <= capacity.memory_bytes
            && total.gpus <= capacity.gpus
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plus_sums_componentwise() {
        let a = ResourceRequest::cpu(1000, 100);
        let b = ResourceRequest::with_gpu(500, 50, 1);
        let s = a.plus(&b);
        assert_eq!(s, ResourceRequest::with_gpu(1500, 150, 1));
    }

    #[test]
    fn fits_checks_every_dimension() {
        let cap = ResourceRequest::with_gpu(4000, 1000, 1);
        let used = ResourceRequest::cpu(3000, 500);
        assert!(used.fits_with(&ResourceRequest::cpu(1000, 500), &cap));
        assert!(!used.fits_with(&ResourceRequest::cpu(1001, 0), &cap)); // cpu
        assert!(!used.fits_with(&ResourceRequest::cpu(0, 501), &cap)); // mem
        assert!(used.fits_with(&ResourceRequest::with_gpu(0, 0, 1), &cap));
        assert!(!used.fits_with(&ResourceRequest::with_gpu(0, 0, 2), &cap)); // gpu
    }

    #[test]
    fn default_is_empty() {
        let d = ResourceRequest::default();
        assert_eq!(d.cpu_millicores, 0);
        assert_eq!(d.gpus, 0);
    }
}

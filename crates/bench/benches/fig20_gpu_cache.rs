//! Figure 20: ElasticRec vs model-wise allocation augmented with a GPU-side
//! embedding cache (CPU-GPU system, 200 QPS).
//!
//! Following the paper's methodology (after Kwon et al.), the cache is
//! conservatively modeled as capturing 90% of embedding gathers in GPU
//! HBM. Paper reference points: the cache cuts embedding latency ~47% and
//! system-wide memory ~41% vs plain model-wise, but ElasticRec still uses
//! 1.7x less memory than the cached baseline.

use elasticrec::{plan, Calibration, Platform, SteadyState, Strategy};
use er_bench::report;
use er_model::configs;
use er_units::Bytes;

const TARGET_QPS: f64 = 200.0;
const HIT_RATE: f64 = 0.90;

fn main() {
    let calib = Calibration::cpu_gpu();

    report::header(
        "Figure 20",
        "memory at 200 QPS: model-wise vs model-wise(cache) vs ElasticRec",
    );
    let mut cache_savings = Vec::new();
    let mut elastic_vs_cache = Vec::new();
    for cfg in configs::all_rms() {
        let mw = plan(&cfg, Platform::CpuGpu, Strategy::ModelWise, &calib);
        let cached = plan(
            &cfg,
            Platform::CpuGpu,
            Strategy::ModelWiseCached {
                gpu_hit_rate: HIT_RATE,
            },
            &calib,
        );
        let el = plan(&cfg, Platform::CpuGpu, Strategy::Elastic, &calib);
        let mw_s = SteadyState::size(&mw, TARGET_QPS, &calib).expect("fits");
        let ca_s = SteadyState::size(&cached, TARGET_QPS, &calib).expect("fits");
        let el_s = SteadyState::size(&el, TARGET_QPS, &calib).expect("fits");

        // Embedding-stage latency cut from the cache (paper: ~47%).
        let gather_bytes: Bytes = cfg
            .tables
            .iter()
            .map(|t| Bytes::of_u64(cfg.batch_size as u64 * t.pooling as u64 * t.vector_bytes()))
            .sum();
        let plain_secs = calib.cpu_sparse_secs(gather_bytes, calib.mw_cores);
        let cached_secs = calib.cached_sparse_secs(gather_bytes, calib.mw_cores, HIT_RATE);
        let latency_cut = 1.0 - cached_secs / plain_secs;

        report::row(
            &cfg.name,
            &[
                ("model-wise", report::gib(mw_s.memory_bytes)),
                ("mw(cache)", report::gib(ca_s.memory_bytes)),
                ("elastic", report::gib(el_s.memory_bytes)),
                ("emb_latency_cut", format!("{:.0}%", 100.0 * latency_cut)),
                (
                    "er_vs_cache",
                    report::ratio(ca_s.memory_bytes as f64, el_s.memory_bytes as f64),
                ),
            ],
        );
        assert!(
            ca_s.memory_bytes <= mw_s.memory_bytes,
            "{}: the cache must not increase memory",
            cfg.name
        );
        assert!(
            el_s.memory_bytes < ca_s.memory_bytes,
            "{}: elastic must beat even the cached baseline",
            cfg.name
        );
        cache_savings.push(1.0 - ca_s.memory_bytes as f64 / mw_s.memory_bytes as f64);
        elastic_vs_cache.push(ca_s.memory_bytes as f64 / el_s.memory_bytes as f64);
    }

    report::header("Figure 20 summary", "paper-vs-measured");
    report::row(
        "cache memory saving",
        &[
            (
                "measured",
                format!(
                    "{:?}",
                    cache_savings
                        .iter()
                        .map(|s| format!("{:.0}%", 100.0 * s))
                        .collect::<Vec<_>>()
                ),
            ),
            ("paper", "41%".to_string()),
        ],
    );
    report::row(
        "elastic vs cached",
        &[
            (
                "measured",
                format!(
                    "{:?}",
                    elastic_vs_cache
                        .iter()
                        .map(|r| format!("{r:.1}x"))
                        .collect::<Vec<_>>()
                ),
            ),
            ("paper", "1.7x".to_string()),
        ],
    );
    // At least one workload must show a substantial cache saving, and
    // elastic must beat the cached baseline on average.
    assert!(cache_savings.iter().cloned().fold(0.0, f64::max) > 0.2);
    let gmean = (elastic_vs_cache.iter().map(|x| x.ln()).sum::<f64>()
        / elastic_vs_cache.len() as f64)
        .exp();
    assert!(gmean > 1.3, "elastic-vs-cache gmean {gmean:.2} too small");
    println!("\n[ok] Figure 20 qualitative checks passed");
}

//! Figure 6: sorted access frequency of embedding vectors in the (synthetic
//! stand-ins for the) Amazon Books, Criteo, and MovieLens datasets, on a
//! log scale.
//!
//! The paper's observation: access patterns are power-law — e.g. 94% of
//! MovieLens lookups land on the hottest 10% of entries.

use er_bench::report;
use er_distribution::datasets;
use er_distribution::AccessModel;

const TOTAL_LOOKUPS: u64 = 10_000_000;
const POINTS: usize = 12;

fn main() {
    for profile in datasets::ALL {
        report::header(
            &format!("Figure 6 ({})", profile.name),
            "expected access count by hotness rank (log-spaced)",
        );
        let curve = profile.frequency_curve(TOTAL_LOOKUPS, POINTS);
        for (rank, count) in &curve {
            report::row(
                &format!("rank {rank}"),
                &[("expected_accesses", format!("{count:.2}"))],
            );
        }
        // Power-law shape: monotone decreasing, head >> tail.
        for w in curve.windows(2) {
            assert!(
                w[0].1 >= w[1].1 - 1e-9,
                "{}: curve must decrease",
                profile.name
            );
        }
        let head = curve.first().expect("non-empty").1;
        let tail = curve.last().expect("non-empty").1;
        assert!(
            head / tail > 100.0,
            "{}: head/tail ratio {} too small for a power law",
            profile.name,
            head / tail
        );
        // Locality metric check (the paper quotes P=94% for MovieLens).
        let dist = profile.distribution();
        let p = dist.cdf(profile.num_items / 10);
        report::row(
            "locality",
            &[(
                "top-10%-coverage",
                format!(
                    "{:.1}% (target {:.0}%)",
                    100.0 * p,
                    100.0 * profile.locality_p
                ),
            )],
        );
        assert!((p - profile.locality_p).abs() < 0.01);
    }
    println!("\n[ok] Figure 6 qualitative checks passed");
}

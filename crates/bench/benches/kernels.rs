//! Criterion microbenchmarks of the computational kernels underlying the
//! reproduction: MLP forward passes, embedding gather+pool, bucketization,
//! the DP partitioner, and Zipf sampling.
//!
//! These are not paper figures; they document the substrate's raw
//! performance and catch algorithmic regressions (e.g. the DP going
//! quadratic in the wrong variable).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use er_distribution::{LocalityTarget, ZipfDistribution};
use er_model::{configs, Dlrm, QueryGenerator};
use er_partition::{bucketize, partition_bucketed, PartitionPlan};
use er_sim::SimRng;
use er_tensor::{Activation, Matrix, Mlp};

fn bench_mlp_forward(c: &mut Criterion) {
    let mlp = Mlp::with_seed(13, &[256, 128, 32], Activation::Relu, 1);
    let input = Matrix::filled(32, 13, 0.5);
    c.bench_function("mlp_forward_rm1_bottom_batch32", |b| {
        b.iter(|| black_box(mlp.forward(black_box(&input))))
    });
}

fn bench_gather_pool(c: &mut Criterion) {
    let cfg = configs::rm1().scaled_tables(100_000).with_num_tables(1);
    let model = Dlrm::with_seed(&cfg, 2);
    let query = QueryGenerator::new(&cfg).generate(&mut SimRng::seed_from(3));
    c.bench_function("gather_pool_batch32_pooling128", |b| {
        b.iter(|| black_box(model.tables()[0].gather_pool(black_box(&query.lookups[0]))))
    });
}

fn bench_bucketize(c: &mut Criterion) {
    let cfg = configs::rm1().scaled_tables(1_000_000).with_num_tables(1);
    let query = QueryGenerator::new(&cfg).generate(&mut SimRng::seed_from(4));
    let plan = PartitionPlan::new(vec![10_000, 120_000, 400_000, 1_000_000], 1_000_000).unwrap();
    let lookup = &query.lookups[0];
    c.bench_function("bucketize_4096_gathers_4_shards", |b| {
        b.iter(|| {
            black_box(bucketize(
                black_box(lookup.indices()),
                black_box(lookup.offsets()),
                black_box(&plan),
            ))
        })
    });
}

fn bench_dp_partition(c: &mut Criterion) {
    // The paper's 20M-entry table, bucketed DP — must stay well under the
    // paper's 18-second reference implementation.
    c.bench_function("dp_partition_20m_rows_48_candidates", |b| {
        b.iter(|| {
            black_box(partition_bucketed(20_000_000, 4, 48, |k, j| {
                let size = (j - k) as f64;
                size * (1.0 + 1e5 / (k as f64 + 10.0)) + 1e6
            }))
        })
    });
}

fn bench_zipf_sampling(c: &mut Criterion) {
    let dist = LocalityTarget::new(0.90).solve(20_000_000);
    let mut rng = SimRng::seed_from(5);
    c.bench_function("zipf_quantile_analytic_20m", |b| {
        b.iter(|| black_box(dist.quantile(black_box(rng.uniform()))))
    });
    let table = ZipfDistribution::new(1_000_000, 1.0).tabulate();
    c.bench_function("zipf_quantile_tabulated_1m", |b| {
        b.iter_batched(
            || rng.uniform(),
            |u| black_box(table.quantile(black_box(u))),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_mlp_forward,
    bench_gather_pool,
    bench_bucketize,
    bench_dp_partition,
    bench_zipf_sampling
);
criterion_main!(benches);

//! Microbenchmarks of the computational kernels underlying the
//! reproduction: MLP forward passes, embedding gather+pool, bucketization,
//! the DP partitioner, Zipf sampling — and the fast-kernel comparisons
//! (naive vs blocked matmul, sequential vs parallel shard forward).
//!
//! These are not paper figures; they document the substrate's raw
//! performance and catch algorithmic regressions (e.g. the DP going
//! quadratic in the wrong variable).
//!
//! With the `bench-harness` feature the file is a criterion bench; without
//! it (the default, so the tier-1 gate never needs the criterion dep tree)
//! it is a plain wall-clock main printing a speedup summary table.

use std::sync::Arc;

use elasticrec::{ParallelShardExecutor, ShardedDlrm};
use er_model::{configs, Dlrm, QueryBatch, QueryGenerator};
use er_partition::PartitionPlan;
use er_sim::SimRng;
use er_tensor::Matrix;

/// Pseudo-random matrix with exact zeros sprinkled in, mirroring what the
/// kernels see in practice (ReLU outputs are zero-heavy).
fn scrambled(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let data: Vec<f32> = (0..rows * cols)
        .map(|_| {
            let r = next();
            if r % 5 == 0 {
                0.0
            } else {
                (r % 2000) as f32 / 1000.0 - 1.0
            }
        })
        .collect();
    Matrix::from_vec(rows, cols, data).expect("sized to rows*cols")
}

/// A DP-shaped sharded model plus a batch of queries for forward-pass
/// benchmarks.
fn sharded_setup() -> (ShardedDlrm, Vec<QueryBatch>) {
    let rows = 2_000u64;
    let cfg = configs::rm1().scaled_tables(rows).with_num_tables(4);
    let model = Dlrm::with_seed(&cfg, 7);
    let counts: Vec<Vec<u64>> = (0..4u64)
        .map(|t| {
            (0..rows)
                .map(|i| ((i * 7919 + t * 31) % rows) + 1)
                .collect()
        })
        .collect();
    let plans = vec![PartitionPlan::equal(rows, 4); 4];
    let sharded = ShardedDlrm::new(model, &counts, plans).expect("valid decomposition");
    let gen = QueryGenerator::new(&cfg);
    let mut rng = SimRng::seed_from(3);
    let queries = (0..4).map(|_| gen.generate(&mut rng)).collect();
    (sharded, queries)
}

#[cfg(feature = "bench-harness")]
mod harness {
    use super::*;
    use criterion::{criterion_group, BatchSize, Criterion};
    use std::hint::black_box;

    use er_distribution::{LocalityTarget, ZipfDistribution};
    use er_partition::{bucketize, partition_bucketed};
    use er_tensor::{Activation, Mlp};

    fn bench_mlp_forward(c: &mut Criterion) {
        let mlp = Mlp::with_seed(13, &[256, 128, 32], Activation::Relu, 1);
        let input = Matrix::filled(32, 13, 0.5);
        c.bench_function("mlp_forward_rm1_bottom_batch32", |b| {
            b.iter(|| black_box(mlp.forward(black_box(&input))))
        });
    }

    fn bench_matmul_kernels(c: &mut Criterion) {
        let a = scrambled(256, 512, 1);
        let b_m = scrambled(512, 256, 2);
        c.bench_function("matmul_256x512x256_naive", |b| {
            b.iter(|| black_box(a.matmul(black_box(&b_m)).expect("conforming")))
        });
        c.bench_function("matmul_256x512x256_blocked", |b| {
            b.iter(|| black_box(a.matmul_blocked(black_box(&b_m)).expect("conforming")))
        });
        c.bench_function("matmul_256x512x256_parallel4", |b| {
            b.iter(|| black_box(a.matmul_parallel(black_box(&b_m), 4).expect("conforming")))
        });
    }

    fn bench_gather_pool(c: &mut Criterion) {
        let cfg = configs::rm1().scaled_tables(100_000).with_num_tables(1);
        let model = Dlrm::with_seed(&cfg, 2);
        let query = QueryGenerator::new(&cfg).generate(&mut SimRng::seed_from(3));
        c.bench_function("gather_pool_batch32_pooling128", |b| {
            b.iter(|| black_box(model.tables()[0].gather_pool(black_box(&query.lookups[0]))))
        });
        c.bench_function("gather_pool_fused_batch32_pooling128", |b| {
            b.iter(|| black_box(model.tables()[0].gather_pool_fused(black_box(&query.lookups[0]))))
        });
    }

    fn bench_shard_forward(c: &mut Criterion) {
        let (sharded, queries) = sharded_setup();
        c.bench_function("shard_forward_seq_rm1_16shards", |b| {
            b.iter(|| {
                for q in &queries {
                    black_box(sharded.forward_seq(black_box(q)));
                }
            })
        });
        let exec = Arc::new(ParallelShardExecutor::new(4));
        let par = sharded.with_executor(exec);
        c.bench_function("shard_forward_par4_rm1_16shards", |b| {
            b.iter(|| {
                for q in &queries {
                    black_box(par.forward(black_box(q)));
                }
            })
        });
    }

    fn bench_bucketize(c: &mut Criterion) {
        let cfg = configs::rm1().scaled_tables(1_000_000).with_num_tables(1);
        let query = QueryGenerator::new(&cfg).generate(&mut SimRng::seed_from(4));
        let plan =
            PartitionPlan::new(vec![10_000, 120_000, 400_000, 1_000_000], 1_000_000).unwrap();
        let lookup = &query.lookups[0];
        c.bench_function("bucketize_4096_gathers_4_shards", |b| {
            b.iter(|| {
                black_box(bucketize(
                    black_box(lookup.indices()),
                    black_box(lookup.offsets()),
                    black_box(&plan),
                ))
            })
        });
    }

    fn bench_dp_partition(c: &mut Criterion) {
        // The paper's 20M-entry table, bucketed DP — must stay well under
        // the paper's 18-second reference implementation.
        c.bench_function("dp_partition_20m_rows_48_candidates", |b| {
            b.iter(|| {
                black_box(partition_bucketed(20_000_000, 4, 48, |k, j| {
                    let size = (j - k) as f64;
                    size * (1.0 + 1e5 / (k as f64 + 10.0)) + 1e6
                }))
            })
        });
    }

    fn bench_zipf_sampling(c: &mut Criterion) {
        let dist = LocalityTarget::new(0.90).solve(20_000_000);
        let mut rng = SimRng::seed_from(5);
        c.bench_function("zipf_quantile_analytic_20m", |b| {
            b.iter(|| black_box(dist.quantile(black_box(rng.uniform()))))
        });
        let table = ZipfDistribution::new(1_000_000, 1.0).tabulate();
        c.bench_function("zipf_quantile_tabulated_1m", |b| {
            b.iter_batched(
                || rng.uniform(),
                |u| black_box(table.quantile(black_box(u))),
                BatchSize::SmallInput,
            )
        });
    }

    criterion_group!(
        benches,
        bench_mlp_forward,
        bench_matmul_kernels,
        bench_gather_pool,
        bench_shard_forward,
        bench_bucketize,
        bench_dp_partition,
        bench_zipf_sampling
    );
}

#[cfg(feature = "bench-harness")]
criterion::criterion_main!(harness::benches);

/// Wall-clock fallback: times the oracle-vs-fast-kernel pairs directly and
/// prints a speedup table via [`er_bench::report`].
#[cfg(not(feature = "bench-harness"))]
fn main() {
    use er_bench::report;
    use std::hint::black_box;
    use std::time::Instant;

    /// Seconds per iteration, best of three timed runs after warmup.
    #[allow(clippy::disallowed_methods)] // benchmarks measure real elapsed time
    fn time<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
        for _ in 0..reps.div_ceil(5).max(1) {
            black_box(f());
        }
        (0..3)
            .map(|_| {
                // lint::allow(wall_clock): benchmarks measure real elapsed time by definition
                let t0 = Instant::now();
                for _ in 0..reps {
                    black_box(f());
                }
                t0.elapsed().as_secs_f64() / reps as f64
            })
            .fold(f64::INFINITY, f64::min)
    }

    let us = |secs: f64| format!("{:.1} us", secs * 1e6);

    report::header("kernels", "fast-kernel speedups vs naive oracles");

    let a = scrambled(256, 512, 1);
    let b = scrambled(512, 256, 2);
    let naive = time(20, || a.matmul(&b).expect("conforming"));
    let blocked = time(20, || a.matmul_blocked(&b).expect("conforming"));
    let par = time(20, || a.matmul_parallel(&b, 4).expect("conforming"));
    report::row(
        "matmul 256x512x256",
        &[
            ("naive", us(naive)),
            ("blocked", us(blocked)),
            ("par4", us(par)),
            ("blocked_speedup", report::ratio(naive, blocked)),
        ],
    );

    let mlp_in = scrambled(32, 256, 3);
    let w = scrambled(256, 128, 4);
    let naive_s = time(200, || mlp_in.matmul(&w).expect("conforming"));
    let blocked_s = time(200, || mlp_in.matmul_blocked(&w).expect("conforming"));
    report::row(
        "matmul 32x256x128",
        &[
            ("naive", us(naive_s)),
            ("blocked", us(blocked_s)),
            ("blocked_speedup", report::ratio(naive_s, blocked_s)),
        ],
    );

    let cfg = configs::rm1().scaled_tables(100_000).with_num_tables(1);
    let model = Dlrm::with_seed(&cfg, 2);
    let query = QueryGenerator::new(&cfg).generate(&mut SimRng::seed_from(3));
    let reference = time(50, || model.tables()[0].gather_pool(&query.lookups[0]));
    let fused = time(50, || {
        model.tables()[0].gather_pool_fused(&query.lookups[0])
    });
    report::row(
        "gather_pool b32 p128",
        &[
            ("reference", us(reference)),
            ("fused", us(fused)),
            ("fused_speedup", report::ratio(reference, fused)),
        ],
    );

    let (sharded, queries) = sharded_setup();
    let seq = time(5, || {
        for q in &queries {
            black_box(sharded.forward_seq(q));
        }
    });
    let exec = Arc::new(ParallelShardExecutor::new(4));
    let par_model = sharded.with_executor(exec);
    let par_fwd = time(5, || {
        for q in &queries {
            black_box(par_model.forward(q));
        }
    });
    report::row(
        "shard_forward 16 shards",
        &[
            ("seq", us(seq)),
            ("par4", us(par_fwd)),
            ("par_speedup", report::ratio(seq, par_fwd)),
        ],
    );

    println!("\n(re-run with --features er-bench/bench-harness for criterion statistics)");
}

//! Figure 5: service throughput (QPS) of the dense DNN layers and the
//! sparse embedding layers of each model, measured separately on (a)
//! CPU-only and (b) CPU-GPU servers.
//!
//! The paper's point: the two layer types have mismatched QPS on every
//! platform, so one of them always bottlenecks a monolithic server.

use elasticrec::{Calibration, Platform};
use er_bench::report;
use er_model::configs;
use er_units::Bytes;

fn layer_qps(platform: Platform, calib: &Calibration, cfg: &er_model::ModelConfig) -> (f64, f64) {
    let (bottom, top) = er_model::dense_phase_flops(cfg);
    let dense_secs = if platform.dense_on_gpu() {
        calib.gpu_dense_secs(bottom) + calib.gpu_dense_secs(top)
    } else {
        calib.cpu_dense_secs(bottom, calib.mw_worker_cores)
            + calib.cpu_dense_secs(top, calib.mw_worker_cores)
    };
    let gather_bytes: Bytes = cfg
        .tables
        .iter()
        .map(|t| Bytes::of_u64(cfg.batch_size as u64 * t.pooling as u64 * t.vector_bytes()))
        .sum();
    let sparse_secs = calib.cpu_sparse_secs(gather_bytes, calib.mw_cores);
    (1.0 / dense_secs, 1.0 / sparse_secs)
}

fn main() {
    for (label, platform, calib) in [
        (
            "Figure 5(a) CPU-only",
            Platform::CpuOnly,
            Calibration::cpu_only(),
        ),
        (
            "Figure 5(b) CPU-GPU",
            Platform::CpuGpu,
            Calibration::cpu_gpu(),
        ),
    ] {
        report::header(label, "per-layer QPS of one inference server");
        for cfg in configs::all_rms() {
            let (dense, sparse) = layer_qps(platform, &calib, &cfg);
            let mismatch = if dense > sparse {
                dense / sparse
            } else {
                sparse / dense
            };
            report::row(
                &cfg.name,
                &[
                    ("dense_qps", format!("{dense:.1}")),
                    ("sparse_qps", format!("{sparse:.1}")),
                    ("mismatch", format!("{mismatch:.2}x")),
                ],
            );
            assert!(
                mismatch > 1.2,
                "{}: layer QPS must be visibly mismatched",
                cfg.name
            );
        }
    }

    // RM3's heavy MLPs make its dense layer the slowest on CPU.
    let c = Calibration::cpu_only();
    let rm1 = layer_qps(Platform::CpuOnly, &c, &configs::rm1()).0;
    let rm3 = layer_qps(Platform::CpuOnly, &c, &configs::rm3()).0;
    assert!(rm3 < rm1 / 3.0, "RM3 dense must be much slower than RM1");
    println!("\n[ok] Figure 5 qualitative checks passed");
}

//! Figure 12 (with Table I): microbenchmark sensitivity of memory
//! consumption to (a) MLP size, (b) embedding-table locality, (c) number
//! of tables, and (d) the number of shards a table is partitioned into.
//! All runs use the CPU-only platform at the paper's 100 QPS target, on
//! the RM1-based microbenchmark model.
//!
//! Also prints the Figure 10 worked example of the DP partitioner.

use elasticrec::{plan, plan_elastic_fixed_shards, Calibration, Platform, SteadyState, Strategy};
use er_bench::report;
use er_model::{configs, MicrobenchGrid, ModelConfig};
use er_partition::partition_exact;

const TARGET_QPS: f64 = 100.0;

fn memory_gib(cfg: &ModelConfig, strategy: Strategy, calib: &Calibration) -> f64 {
    let p = plan(cfg, Platform::CpuOnly, strategy, calib);
    SteadyState::size(&p, TARGET_QPS, calib)
        .expect("sizing fits")
        .memory_gib()
}

fn main() {
    let calib = Calibration::cpu_only();
    let grid = MicrobenchGrid::default();

    report::header("Table I", "microbenchmark parameter grid");
    report::row(
        "grid",
        &[
            ("mlp", format!("{:?}", grid.mlp_sizes)),
            ("locality", format!("{:?}", grid.localities)),
            ("tables", format!("{:?}", grid.table_counts)),
            ("shards", format!("{:?}", grid.shard_counts)),
        ],
    );

    // ---- Figure 10 worked example -------------------------------------
    report::header(
        "Figure 10",
        "DP worked example: COST=(end-start+1)^2/start, N=5, S=3",
    );
    let toy = partition_exact(5, 3, |k, j| ((j - k) as f64).powi(2) / (k + 1) as f64);
    let total: f64 = toy
        .shards()
        .iter()
        .map(|&(k, j)| ((j - k) as f64).powi(2) / (k + 1) as f64)
        .sum();
    report::row(
        "optimal plan",
        &[
            ("cuts", format!("{:?}", toy.cuts())),
            ("cost", format!("{total}")),
        ],
    );
    assert_eq!(toy.cuts(), &[1, 3, 5], "must match the paper's example");
    assert_eq!(total, 4.0, "must match the paper's Mem[3][5]=4");

    // ---- (a) MLP layer size -------------------------------------------
    report::header("Figure 12(a)", "memory vs MLP size (Light/Medium/Heavy)");
    let mut mw_growth = Vec::new();
    let mut el_growth = Vec::new();
    for &size in &grid.mlp_sizes {
        let cfg = configs::microbench(size);
        let mw = memory_gib(&cfg, Strategy::ModelWise, &calib);
        let el = memory_gib(&cfg, Strategy::Elastic, &calib);
        report::row(
            &size.to_string(),
            &[
                ("model-wise", format!("{mw:.1} GiB")),
                ("elastic", format!("{el:.1} GiB")),
                ("saving", report::ratio(mw, el)),
            ],
        );
        mw_growth.push(mw);
        el_growth.push(el);
    }
    // Paper shape: heavier MLPs balloon model-wise memory (whole tables
    // get duplicated) but only modestly grow ElasticRec's.
    let mw_delta = mw_growth.last().unwrap() - mw_growth[0];
    let el_delta = el_growth.last().unwrap() - el_growth[0];
    assert!(
        mw_delta > 4.0 * el_delta,
        "model-wise growth {mw_delta:.1} must dwarf elastic growth {el_delta:.1}"
    );

    // ---- (b) locality ---------------------------------------------------
    report::header("Figure 12(b)", "memory vs table locality (P)");
    let mut el_by_locality = Vec::new();
    let mut mw_by_locality = Vec::new();
    for &p in &grid.localities {
        let cfg = configs::rm1().with_locality(p);
        let mw = memory_gib(&cfg, Strategy::ModelWise, &calib);
        let el = memory_gib(&cfg, Strategy::Elastic, &calib);
        report::row(
            &format!("P={:.0}%", p * 100.0),
            &[
                ("model-wise", format!("{mw:.1} GiB")),
                ("elastic", format!("{el:.1} GiB")),
                ("saving", report::ratio(mw, el)),
            ],
        );
        el_by_locality.push(el);
        mw_by_locality.push(mw);
    }
    // Paper shape: model-wise is locality-blind; ElasticRec's memory falls
    // as locality rises (2.2x savings at High in the paper).
    let mw_var = (mw_by_locality[2] - mw_by_locality[0]).abs() / mw_by_locality[0];
    assert!(mw_var < 0.05, "model-wise must be locality-insensitive");
    assert!(
        el_by_locality[2] < el_by_locality[0],
        "elastic memory must shrink with locality"
    );

    // ---- (c) number of tables -------------------------------------------
    report::header("Figure 12(c)", "memory vs number of embedding tables");
    let mut gaps = Vec::new();
    for &n in &grid.table_counts {
        let cfg = configs::rm1().with_num_tables(n);
        let mw = memory_gib(&cfg, Strategy::ModelWise, &calib);
        let el = memory_gib(&cfg, Strategy::Elastic, &calib);
        report::row(
            &format!("{n} tables"),
            &[
                ("model-wise", format!("{mw:.1} GiB")),
                ("elastic", format!("{el:.1} GiB")),
                ("saving", report::ratio(mw, el)),
            ],
        );
        gaps.push(mw - el);
    }
    // The absolute gap must widen with table count (scalability claim).
    for w in gaps.windows(2) {
        assert!(w[1] > w[0], "gap must widen with more tables");
    }

    // ---- (d) shards per table --------------------------------------------
    report::header("Figure 12(d)", "memory vs manual shard count per table");
    let cfg = configs::rm1();
    let auto = plan(&cfg, Platform::CpuOnly, Strategy::Elastic, &calib);
    let auto_shards = auto.table_plans[0].num_shards();
    let mut by_shards = Vec::new();
    for &k in &grid.shard_counts {
        let p = plan_elastic_fixed_shards(&cfg, Platform::CpuOnly, &calib, k);
        let mem = SteadyState::size(&p, TARGET_QPS, &calib)
            .expect("sizing fits")
            .memory_gib();
        report::row(
            &format!("{k} shard(s)"),
            &[("elastic", format!("{mem:.1} GiB"))],
        );
        by_shards.push((k, mem));
    }
    report::row("DP-chosen", &[("shards", auto_shards.to_string())]);
    // Paper shape: memory falls with shard count, then plateaus (diminishing
    // returns from per-container floors); the DP's choice sits at/near the
    // minimum.
    assert!(by_shards[1].1 < by_shards[0].1, "2 shards must beat 1");
    let best = by_shards
        .iter()
        .map(|&(_, m)| m)
        .fold(f64::INFINITY, f64::min);
    let dp_mem = SteadyState::size(&auto, TARGET_QPS, &calib)
        .expect("fits")
        .memory_gib();
    assert!(
        dp_mem <= best * 1.10,
        "DP plan ({dp_mem:.1} GiB) must be within 10% of the best manual plan ({best:.1} GiB)"
    );
    let last = by_shards.last().unwrap().1;
    let second_last = by_shards[by_shards.len() - 2].1;
    assert!(
        (last - second_last).abs() < 0.25 * by_shards[0].1,
        "memory must plateau at high shard counts"
    );
    println!("\n[ok] Figure 12 qualitative checks passed");
}

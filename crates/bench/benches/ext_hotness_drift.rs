//! Extension: partitioning staleness under hotness drift.
//!
//! The paper sorts and partitions each table from a snapshot of access
//! frequencies and argues re-sorting is cheap (Section IV-B), but does not
//! quantify what a *stale* plan costs while popularity drifts. This
//! experiment lets a fraction `d` of the access mass migrate away from the
//! snapshot's hot ranks (landing uniformly) and compares, at each drift
//! level, the memory needed by:
//!
//! * the **stale plan** — cuts from the original snapshot, replicas resized
//!   for the drifted load;
//! * a **fresh plan** — the DP re-run on the drifted distribution;
//! * **model-wise** — drift-insensitive by construction.

use elasticrec::Calibration;
use er_bench::report;
use er_distribution::{AccessModel, DriftedAccess, LocalityTarget};
use er_model::configs;
use er_partition::{
    partition_bucketed, AnalyticGatherModel, CostModel, PartitionPlan, ProfiledQpsModel, QpsModel,
};
use er_units::{Bytes, BytesPerSec, Qps, Secs};

const TARGET_QPS: Qps = Qps::of(400.0);

/// Memory (bytes) of deploying `plan` for one table when the true access
/// distribution is `access`, priced by the Algorithm 1 cost model — the
/// same objective the DP optimizes, so fresh-vs-stale comparisons are
/// apples to apples.
fn table_memory<M: AccessModel>(
    plan: &PartitionPlan,
    access: &M,
    qps: &impl QpsModel,
    n_t: f64,
    vector_bytes: Bytes,
    min_mem: Bytes,
) -> Bytes {
    let cost =
        CostModel::new(access, qps, n_t, vector_bytes, min_mem).with_target_traffic(TARGET_QPS);
    plan.shards().iter().map(|&(k, j)| cost.cost(k, j)).sum()
}

fn main() {
    let calib = Calibration::cpu_only();
    let model = configs::rm1();
    let table = model.tables[0];
    let rows = table.rows;
    let n_t = (model.batch_size as u64 * table.pooling as u64) as f64;
    let vector_bytes = Bytes::of_u64(table.vector_bytes());
    let min_mem = Bytes::of_u64(calib.min_mem_alloc_bytes);

    let snapshot = LocalityTarget::new(model.locality_p).solve(rows);
    let hardware = AnalyticGatherModel::new(
        Secs::of(calib.sparse_base_secs),
        BytesPerSec::of(calib.sparse_cores as f64 * calib.gather_bytes_per_sec_per_core),
        vector_bytes,
    );
    let qps = ProfiledQpsModel::profile(&hardware, &ProfiledQpsModel::standard_sweep(2.0 * n_t));

    // The plan computed from the (soon to be stale) snapshot.
    let stale_plan = {
        let cost = CostModel::new(&snapshot, &qps, n_t, vector_bytes, min_mem)
            .with_target_traffic(TARGET_QPS);
        partition_bucketed(rows, calib.s_max, calib.dp_candidates, |k, j| {
            cost.cost(k, j).raw()
        })
    };

    report::header(
        "Extension: hotness drift",
        "per-table memory at 400 QPS as popularity drifts (RM1 table)",
    );
    let mut stale_curve = Vec::new();
    let mut fresh_curve = Vec::new();
    for drift in [0.0, 0.1, 0.25, 0.5, 0.75, 1.0] {
        let truth = DriftedAccess::new(&snapshot, drift);
        let stale = table_memory(&stale_plan, &truth, &qps, n_t, vector_bytes, min_mem);
        let fresh_plan = {
            let cost = CostModel::new(&truth, &qps, n_t, vector_bytes, min_mem)
                .with_target_traffic(TARGET_QPS);
            partition_bucketed(rows, calib.s_max, calib.dp_candidates, |k, j| {
                cost.cost(k, j).raw()
            })
        };
        let fresh = table_memory(&fresh_plan, &truth, &qps, n_t, vector_bytes, min_mem);
        report::row(
            &format!("drift {:>3.0}%", drift * 100.0),
            &[
                ("stale_plan", format!("{:.2} GiB", stale.gib())),
                ("fresh_plan", format!("{:.2} GiB", fresh.gib())),
                ("staleness_penalty", format!("{:.2}x", stale / fresh)),
                ("fresh_shards", fresh_plan.num_shards().to_string()),
            ],
        );
        stale_curve.push(stale);
        fresh_curve.push(fresh);
    }

    // Claims.
    assert!(
        (stale_curve[0] - fresh_curve[0]).raw().abs() < 1e-6,
        "at zero drift the stale plan IS the fresh plan"
    );
    for (s, f) in stale_curve.iter().zip(&fresh_curve) {
        assert!(
            *s >= *f - Bytes::of(1e-6),
            "a stale plan can never beat the re-optimized one"
        );
    }
    // The penalty must be visible at heavy drift but bounded: partitioned
    // serving degrades gracefully, it does not collapse.
    let penalty = *stale_curve.last().expect("non-empty") / *fresh_curve.last().expect("non-empty");
    assert!(
        penalty > 1.02 && penalty < 10.0,
        "full-drift penalty {penalty:.2}x out of expected band"
    );
    println!("\n[ok] hotness-drift extension checks passed");
}

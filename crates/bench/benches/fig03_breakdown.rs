//! Figure 3: fraction of FLOPs, memory consumption, and end-to-end
//! inference latency attributable to sparse embedding vs dense DNN layers,
//! for RM1/RM2/RM3 on CPU-only and CPU-GPU systems.
//!
//! Paper reference points: dense layers take 98–99.9% of FLOPs but only
//! 0.02–0.4% of memory; dense accounts for 67% (RM1, CPU-only) vs 19%
//! (RM1, CPU-GPU) of end-to-end latency.

use elasticrec::{plan, Calibration, Platform, Strategy};
use er_bench::report;
use er_model::{configs, CostBreakdown};

fn latency_split(
    platform: Platform,
    calib: &Calibration,
    cfg: &er_model::ModelConfig,
) -> (f64, f64) {
    let mw = plan(cfg, platform, Strategy::ModelWise, calib);
    let (bottom, top) = er_model::dense_phase_flops(cfg);
    let dense_secs = if platform.dense_on_gpu() {
        calib.gpu_dense_secs(bottom) + calib.gpu_dense_secs(top)
    } else {
        calib.cpu_dense_secs(bottom, calib.mw_worker_cores)
            + calib.cpu_dense_secs(top, calib.mw_worker_cores)
    };
    let total = mw.frontend().service.busy_secs();
    (dense_secs / total, 1.0 - dense_secs / total)
}

fn main() {
    report::header(
        "Figure 3(a)",
        "FLOPs and memory split (architecture-independent)",
    );
    for cfg in configs::all_rms() {
        let b = CostBreakdown::for_config(&cfg);
        report::row(
            &cfg.name,
            &[
                (
                    "dense_flops",
                    format!("{:.1}%", 100.0 * b.dense_flops_fraction()),
                ),
                (
                    "sparse_flops",
                    format!("{:.1}%", 100.0 * (1.0 - b.dense_flops_fraction())),
                ),
                (
                    "dense_mem",
                    format!("{:.3}%", 100.0 * (1.0 - b.sparse_memory_fraction())),
                ),
                (
                    "sparse_mem",
                    format!("{:.1}%", 100.0 * b.sparse_memory_fraction()),
                ),
            ],
        );
        assert!(b.dense_flops_fraction() > 0.75, "dense must dominate FLOPs");
        assert!(
            b.sparse_memory_fraction() > 0.995,
            "sparse must dominate memory"
        );
    }

    report::header(
        "Figure 3(b)",
        "end-to-end latency split (model-wise server)",
    );
    for (label, platform, calib) in [
        ("CPU-only", Platform::CpuOnly, Calibration::cpu_only()),
        ("CPU-GPU", Platform::CpuGpu, Calibration::cpu_gpu()),
    ] {
        for cfg in configs::all_rms() {
            let (dense, sparse) = latency_split(platform, &calib, &cfg);
            report::row(
                &format!("{label} {}", cfg.name),
                &[
                    ("dense_latency", format!("{:.0}%", 100.0 * dense)),
                    ("sparse_latency", format!("{:.0}%", 100.0 * sparse)),
                ],
            );
        }
    }
    // Paper shape: offloading dense layers to the GPU shrinks the dense
    // share of latency (67% -> 19% for RM1).
    let cpu = latency_split(Platform::CpuOnly, &Calibration::cpu_only(), &configs::rm1()).0;
    let gpu = latency_split(Platform::CpuGpu, &Calibration::cpu_gpu(), &configs::rm1()).0;
    assert!(gpu < cpu, "GPU must shrink the dense latency share");
    println!("\n[ok] Figure 3 qualitative checks passed");
}

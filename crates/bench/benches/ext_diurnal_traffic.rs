//! Extension: long-horizon elasticity under diurnal traffic.
//!
//! The paper's Figure 19 covers one ramp; datacenter load is periodic.
//! This experiment drives RM1 through two full diurnal cycles
//! (20 ↔ 100 QPS) and measures the economics of elasticity: the average
//! memory an autoscaled deployment holds versus the peak-provisioned
//! static deployment a non-elastic operator must keep at all times.

use elasticrec::{
    plan, Calibration, Platform, Simulation, SimulationConfig, SteadyState, Strategy,
};
use er_bench::report;
use er_model::configs;
use er_workload::TrafficSchedule;

const LOW_QPS: f64 = 20.0;
const HIGH_QPS: f64 = 100.0;
const PERIOD_SECS: f64 = 600.0;

fn main() {
    let calib = Calibration::cpu_only();
    let model = configs::rm1();
    let schedule = TrafficSchedule::diurnal(LOW_QPS, HIGH_QPS, PERIOD_SECS, 10, 2);
    let duration = 2.0 * PERIOD_SECS;

    report::header(
        "Extension: diurnal",
        "two day/night cycles, 20-100 QPS (RM1, CPU-only)",
    );

    let mut avg_mems = Vec::new();
    for strategy in [Strategy::ModelWise, Strategy::Elastic] {
        let p = plan(&model, Platform::CpuOnly, strategy, &calib);
        let cfg = SimulationConfig::new(schedule.clone(), duration, 2024);
        let out = Simulation::run(&p, &calib, &cfg);

        // What a non-elastic operator would provision: peak, permanently.
        let static_peak = SteadyState::size(&p, HIGH_QPS, &calib)
            .expect("fits")
            .memory_gib();
        let avg = out.memory_gib.mean_value();
        report::row(
            &format!("{strategy:?}"),
            &[
                ("avg_mem", format!("{avg:.1} GiB")),
                ("peak_mem", format!("{:.1} GiB", out.peak_memory_gib)),
                ("static_peak", format!("{static_peak:.1} GiB")),
                ("elastic_saving", report::ratio(static_peak, avg)),
                (
                    "sla_violations",
                    format!("{}/{}", out.sla_violation_intervals, out.metric_intervals),
                ),
                (
                    "replicas(min..max)",
                    format!(
                        "{:.0}..{:.0}",
                        out.total_replicas
                            .points()
                            .iter()
                            .map(|p| p.value)
                            .fold(f64::INFINITY, f64::min),
                        out.total_replicas.max_value()
                    ),
                ),
            ],
        );
        avg_mems.push((strategy, avg, static_peak, out));
    }

    // Elasticity must pay for both strategies, and more for ElasticRec.
    let (_, mw_avg, mw_static, mw_out) = &avg_mems[0];
    let (_, er_avg, er_static, er_out) = &avg_mems[1];
    assert!(
        er_avg < mw_avg,
        "elastic average memory must undercut model-wise"
    );
    assert!(
        er_avg < er_static,
        "autoscaling must beat static peak provisioning"
    );
    let mw_saving = mw_static / mw_avg;
    let er_saving = er_static / er_avg;
    // ElasticRec scales small shards in and out; model-wise can only add or
    // remove whole-model replicas, so its footprint tracks load coarsely.
    report::row(
        "conclusion",
        &[
            ("mw_elastic_saving", format!("{mw_saving:.2}x")),
            ("er_elastic_saving", format!("{er_saving:.2}x")),
        ],
    );
    // Both must keep serving across cycles.
    for (name, out) in [("MW", mw_out), ("ER", er_out)] {
        let served = out.completed_queries as f64 / out.total_queries as f64;
        assert!(served > 0.9, "{name} served only {served:.2}");
    }
    assert!(
        er_out.violation_fraction() <= mw_out.violation_fraction(),
        "elastic must not violate the SLA more often than model-wise"
    );
    println!("\n[ok] diurnal extension checks passed");
}

//! Figures 13, 14, and 15 (with Table II): the CPU-only evaluation of the
//! state-of-the-art RecSys workloads at the paper's 100 QPS target.
//!
//! * Figure 13 — total memory consumption, model-wise vs ElasticRec
//!   (paper: 2.2x / 2.6x / 8.1x reductions for RM1/RM2/RM3);
//! * Figure 14 — per-shard memory utility of the first table plus replica
//!   counts (paper: ~6% utility for model-wise, ~8.1x higher for
//!   ElasticRec, replicas proportional to hotness);
//! * Figure 15 — CPU server nodes needed (paper: 1.67x / 1.67x / 2.0x
//!   fewer).

use elasticrec::utility::{aggregate_utility, measure_table_utility};
use elasticrec::{plan, Calibration, Platform, SteadyState, Strategy};
use er_bench::report;
use er_model::configs;
use er_partition::PartitionPlan;

const TARGET_QPS: f64 = 100.0;
/// The paper measures utility over the first 1,000 queries.
const UTILITY_QUERIES: usize = 1000;

fn main() {
    let calib = Calibration::cpu_only();

    report::header(
        "Table II",
        "state-of-the-art RecSys workload configurations",
    );
    for cfg in configs::all_rms() {
        report::row(
            &cfg.name,
            &[
                ("bottom", format!("{:?}", cfg.bottom_mlp)),
                ("top", format!("{:?}", cfg.top_mlp)),
                ("tables", cfg.tables.len().to_string()),
                ("rows", cfg.tables[0].rows.to_string()),
                ("dim", cfg.tables[0].dim.to_string()),
                ("gathers", cfg.tables[0].pooling.to_string()),
                ("P", format!("{:.0}%", cfg.locality_p * 100.0)),
            ],
        );
    }

    let mut mem_ratios = Vec::new();
    let mut node_ratios = Vec::new();
    let mut utility_ratios = Vec::new();

    for cfg in configs::all_rms() {
        let mw = plan(&cfg, Platform::CpuOnly, Strategy::ModelWise, &calib);
        let el = plan(&cfg, Platform::CpuOnly, Strategy::Elastic, &calib);
        let mw_s = SteadyState::size(&mw, TARGET_QPS, &calib).expect("fits");
        let el_s = SteadyState::size(&el, TARGET_QPS, &calib).expect("fits");

        report::header(
            &format!("Figure 13 ({})", cfg.name),
            "memory consumption at 100 QPS (CPU-only)",
        );
        report::row(
            "memory",
            &[
                ("model-wise", report::gib(mw_s.memory_bytes)),
                ("elastic", report::gib(el_s.memory_bytes)),
                (
                    "reduction",
                    report::ratio(mw_s.memory_bytes as f64, el_s.memory_bytes as f64),
                ),
                ("shards/table", el.table_plans[0].num_shards().to_string()),
            ],
        );
        assert!(el_s.memory_bytes < mw_s.memory_bytes);
        mem_ratios.push(mw_s.memory_bytes as f64 / el_s.memory_bytes as f64);

        report::header(
            &format!("Figure 14 ({})", cfg.name),
            "memory utility of table 0's shards + replica counts",
        );
        let gathers = cfg.batch_size * cfg.tables[0].pooling as usize;
        let mw_util = measure_table_utility(
            &PartitionPlan::single(cfg.tables[0].rows),
            cfg.locality_p,
            UTILITY_QUERIES,
            gathers,
            17,
        );
        report::row(
            "MW S1",
            &[
                ("utility", format!("{:.1}%", 100.0 * mw_util[0].utility())),
                ("replicas", mw_s.replicas_of("model-wise").to_string()),
            ],
        );
        let el_util = measure_table_utility(
            &el.table_plans[0],
            cfg.locality_p,
            UTILITY_QUERIES,
            gathers,
            17,
        );
        let mut prev_utility = f64::INFINITY;
        let mut prev_reps = usize::MAX;
        for (i, s) in el_util.iter().enumerate() {
            let reps = el_s.replicas_of(&format!("emb-t0-s{i}"));
            report::row(
                &format!("ER S{}", i + 1),
                &[
                    ("utility", format!("{:.1}%", 100.0 * s.utility())),
                    ("replicas", reps.to_string()),
                    ("rows", s.size.to_string()),
                ],
            );
            assert!(
                s.utility() <= prev_utility + 1e-9,
                "hotter shards must have higher utility"
            );
            assert!(reps <= prev_reps, "hotter shards must have >= replicas");
            prev_utility = s.utility();
            prev_reps = reps;
        }
        // The paper's fleet-level utility: mean utility across deployed
        // shard replicas. Model-wise replicas are whole-table copies at
        // ~6% utility each; ElasticRec preferentially replicates hot
        // shards whose utility approaches 100% (the 8.1x average gain).
        let mw_weighted = aggregate_utility(&mw_util);
        let el_weighted = {
            let mut sum = 0.0;
            let mut reps_total = 0.0;
            for (i, s) in el_util.iter().enumerate() {
                let reps = el_s.replicas_of(&format!("emb-t0-s{i}")) as f64;
                sum += s.utility() * reps;
                reps_total += reps;
            }
            sum / reps_total
        };
        report::row(
            "aggregate utility",
            &[
                ("model-wise", format!("{:.1}%", 100.0 * mw_weighted)),
                ("elastic", format!("{:.1}%", 100.0 * el_weighted)),
                ("gain", report::ratio(el_weighted, mw_weighted)),
            ],
        );
        assert!(el_weighted > mw_weighted, "elastic must use memory better");
        utility_ratios.push(el_weighted / mw_weighted);

        report::header(
            &format!("Figure 15 ({})", cfg.name),
            "CPU server nodes to reach 100 QPS",
        );
        report::row(
            "nodes",
            &[
                ("model-wise", mw_s.nodes_used.to_string()),
                ("elastic", el_s.nodes_used.to_string()),
                (
                    "reduction",
                    report::ratio(mw_s.nodes_used as f64, el_s.nodes_used as f64),
                ),
            ],
        );
        assert!(el_s.nodes_used <= mw_s.nodes_used);
        node_ratios.push(mw_s.nodes_used as f64 / el_s.nodes_used as f64);
    }

    let gmean = |v: &[f64]| (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp();
    report::header("Summary", "paper-vs-measured headline ratios (CPU-only)");
    report::row(
        "memory reduction",
        &[
            (
                "measured",
                format!(
                    "{:?} (mean {:.1}x)",
                    mem_ratios
                        .iter()
                        .map(|r| format!("{r:.1}x"))
                        .collect::<Vec<_>>(),
                    gmean(&mem_ratios)
                ),
            ),
            ("paper", "2.2x/2.6x/8.1x".to_string()),
        ],
    );
    report::row(
        "utility gain",
        &[
            ("measured", format!("mean {:.1}x", gmean(&utility_ratios))),
            ("paper", "8.1x avg".to_string()),
        ],
    );
    report::row(
        "node reduction",
        &[
            (
                "measured",
                format!(
                    "{:?}",
                    node_ratios
                        .iter()
                        .map(|r| format!("{r:.1}x"))
                        .collect::<Vec<_>>()
                ),
            ),
            ("paper", "1.67x/1.67x/2.0x".to_string()),
        ],
    );
    assert!(
        gmean(&mem_ratios) > 2.0,
        "mean memory reduction must exceed 2x"
    );
    assert!(node_ratios.iter().all(|&r| r >= 1.0));
    println!("\n[ok] Figures 13/14/15 qualitative checks passed");
}

//! Extension: fault injection — losing a server mid-run.
//!
//! Beyond the paper: a node fails while RM1 serves traffic at a level
//! where the lost capacity matters. The interesting contrast is
//! **time-to-recover**: a model-wise replacement replica must reload the
//! whole model (tens of GiB, ~30 s) before it serves again, while
//! ElasticRec's replacement shards are small and return in seconds — even
//! though dense packing gives ElasticRec a *larger blast radius* (more
//! pods lost per node), a finding this experiment reports honestly.

use elasticrec::{plan, Calibration, Platform, Simulation, SimulationConfig, Strategy};
use er_bench::report;
use er_metrics::TimeSeries;
use er_model::configs;
use er_workload::TrafficSchedule;

const QPS: f64 = 100.0;
const FAIL_AT: f64 = 40.0;
const DURATION: f64 = 160.0;
const SLA_MS: f64 = 400.0;

/// Last instant in `(from, to]` whose interval p95 exceeded the SLA, i.e.
/// when the system finished recovering (equal to `from` if it never
/// suffered).
fn recovered_at(p95: &TimeSeries, from: f64, to: f64) -> f64 {
    p95.points()
        .iter()
        .filter(|pt| pt.time > from && pt.time <= to && pt.value > SLA_MS)
        .map(|pt| pt.time)
        .fold(from, f64::max)
}

fn main() {
    let calib = Calibration::cpu_only();
    let model = configs::rm1();

    report::header(
        "Extension: node failure",
        "node 0 dies at t=40 s under 100 QPS (RM1, CPU-only)",
    );

    let mut results = Vec::new();
    for strategy in [Strategy::ModelWise, Strategy::Elastic] {
        let p = plan(&model, Platform::CpuOnly, strategy, &calib);
        let mut cfg = SimulationConfig::new(TrafficSchedule::constant(QPS), DURATION, 404);
        cfg.fail_node_at = Some(FAIL_AT);
        let out = Simulation::run(&p, &calib, &cfg);

        let recovered = recovered_at(&out.p95_ms, FAIL_AT, DURATION);
        let spike = out
            .p95_ms
            .points()
            .iter()
            .filter(|pt| pt.time > FAIL_AT)
            .map(|pt| pt.value)
            .fold(0.0, f64::max);
        let replicas = out.total_replicas.value_at(FAIL_AT - 1.0).unwrap_or(0.0);
        report::row(
            &format!("{strategy:?}"),
            &[
                ("replicas", format!("{replicas:.0}")),
                ("recovery_spike", format!("{spike:.0} ms")),
                ("recovered_after", format!("{:.0} s", recovered - FAIL_AT)),
                (
                    "served",
                    format!(
                        "{:.1}%",
                        100.0 * out.completed_queries as f64 / out.total_queries as f64
                    ),
                ),
            ],
        );
        results.push((strategy, recovered - FAIL_AT, out));
    }

    let (_, mw_recovery_secs, mw_out) = &results[0];
    let (_, er_recovery_secs, er_out) = &results[1];
    // Elastic recovers faster: replacement shards load MiB, the monolith
    // reloads the whole model.
    assert!(
        er_recovery_secs < mw_recovery_secs,
        "elastic recovery ({er_recovery_secs:.0} s) must beat model-wise ({mw_recovery_secs:.0} s)"
    );
    // Both systems end the run healthy and lose no queries outright.
    for (name, out) in [("MW", mw_out), ("ER", er_out)] {
        let tail = out
            .p95_ms
            .points()
            .iter()
            .filter(|pt| pt.time > DURATION - 20.0)
            .map(|pt| pt.value)
            .fold(0.0, f64::max);
        assert!(
            tail < SLA_MS,
            "{name} must end within the SLA (p95 {tail:.0} ms)"
        );
        assert!(out.completed_queries as f64 > 0.95 * out.total_queries as f64);
    }
    println!("\n[ok] node-failure extension checks passed");
}

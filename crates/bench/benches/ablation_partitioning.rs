//! Ablation: how much of ElasticRec's saving comes from each design
//! choice in the partitioning pipeline?
//!
//! Not a paper figure — this quantifies the design decisions the paper
//! motivates qualitatively (Figures 4 and 8):
//!
//! * **DP (paper)** — hotness-sorted table, cost-optimal cuts (Alg. 1+2);
//! * **greedy hot/cold** — hotness-sorted, a single cut where the CDF
//!   reaches 90% (the "cache-style" two-tier strawman);
//! * **equal-k** — hotness-sorted, equal-size shards (no cost model);
//! * **unsorted (Fig. 8a)** — shards cut from the *unsorted* table, so hot
//!   entries scatter uniformly across shards and every shard replicates
//!   like a hot one.
//!
//! All variants serve RM1 on the CPU-only platform at 400 QPS — high
//! enough that hot shards genuinely replicate, which is where the policies
//! separate.
//!
//! A finding worth noting: *sorting alone is not enough*. Equal-size cuts
//! on the sorted table concentrate ~90% of traffic on one table-quarter,
//! which then replicates as a huge shard; the DP's contribution is making
//! the hot shard small before replicating it.

use elasticrec::{plan, plan_elastic_with_plans, Calibration, Platform, SteadyState, Strategy};
use er_bench::report;
use er_distribution::{AccessModel, LocalityTarget};
use er_model::configs;
use er_partition::PartitionPlan;

const TARGET_QPS: f64 = 400.0;

fn main() {
    let calib = Calibration::cpu_only();
    let model = configs::rm1();
    let rows = model.tables[0].rows;
    let access = LocalityTarget::new(model.locality_p).solve(rows);

    report::header(
        "Ablation",
        "partitioning policy vs memory at 400 QPS (RM1, CPU-only)",
    );

    // Baseline: model-wise.
    let mw = SteadyState::size(
        &plan(&model, Platform::CpuOnly, Strategy::ModelWise, &calib),
        TARGET_QPS,
        &calib,
    )
    .expect("fits");
    report::row("model-wise", &[("memory", report::gib(mw.memory_bytes))]);

    // The paper's DP.
    let dp = SteadyState::size(
        &plan(&model, Platform::CpuOnly, Strategy::Elastic, &calib),
        TARGET_QPS,
        &calib,
    )
    .expect("fits");
    report::row(
        "DP (paper)",
        &[
            ("memory", report::gib(dp.memory_bytes)),
            (
                "vs MW",
                report::ratio(mw.memory_bytes as f64, dp.memory_bytes as f64),
            ),
        ],
    );

    // Greedy hot/cold: cut at the rank covering 90% of accesses.
    let hot_rank = (1..=rows)
        .step_by((rows / 10_000).max(1) as usize)
        .find(|&r| access.cdf(r) >= 0.90)
        .expect("coverage reaches 90%");
    let greedy_plans =
        vec![PartitionPlan::new(vec![hot_rank, rows], rows).expect("valid"); model.tables.len()];
    let greedy = SteadyState::size(
        &plan_elastic_with_plans(&model, Platform::CpuOnly, &calib, greedy_plans),
        TARGET_QPS,
        &calib,
    )
    .expect("fits");
    report::row(
        "greedy hot/cold @90%",
        &[
            ("memory", report::gib(greedy.memory_bytes)),
            (
                "vs MW",
                report::ratio(mw.memory_bytes as f64, greedy.memory_bytes as f64),
            ),
        ],
    );

    // Equal-size shards on the sorted table.
    let mut equal_results = Vec::new();
    for k in [2usize, 4, 8] {
        let plans = vec![PartitionPlan::equal(rows, k); model.tables.len()];
        let sized = SteadyState::size(
            &plan_elastic_with_plans(&model, Platform::CpuOnly, &calib, plans),
            TARGET_QPS,
            &calib,
        )
        .expect("fits");
        report::row(
            &format!("equal-{k} (sorted)"),
            &[
                ("memory", report::gib(sized.memory_bytes)),
                (
                    "vs MW",
                    report::ratio(mw.memory_bytes as f64, sized.memory_bytes as f64),
                ),
            ],
        );
        equal_results.push(sized.memory_bytes);
    }

    // Unsorted table (Figure 8(a)): equal shards, but hot entries scatter
    // uniformly, so every shard carries ~1/k of the hot traffic and every
    // shard replicates. Model it by pricing shards under a uniform access
    // model while keeping the skewed workload's total gather volume.
    let uniform_model = {
        let mut m = model.clone();
        m.locality_p = 0.10; // uniform: top 10% covers exactly 10%
        m
    };
    let mut unsorted_results = Vec::new();
    for k in [2usize, 4, 8] {
        let plans = vec![PartitionPlan::equal(rows, k); model.tables.len()];
        let sized = SteadyState::size(
            &plan_elastic_with_plans(&uniform_model, Platform::CpuOnly, &calib, plans),
            TARGET_QPS,
            &calib,
        )
        .expect("fits");
        report::row(
            &format!("equal-{k} (unsorted)"),
            &[
                ("memory", report::gib(sized.memory_bytes)),
                (
                    "vs MW",
                    report::ratio(mw.memory_bytes as f64, sized.memory_bytes as f64),
                ),
            ],
        );
        unsorted_results.push(sized.memory_bytes);
    }

    // The claims the ablation must support.
    assert!(
        dp.memory_bytes <= greedy.memory_bytes,
        "the DP must beat the greedy hot/cold split"
    );
    assert!(
        dp.memory_bytes <= *equal_results.iter().min().expect("non-empty"),
        "the DP must beat every sorted equal split"
    );
    assert!(
        dp.memory_bytes <= *unsorted_results.iter().min().expect("non-empty"),
        "the DP must beat every unsorted split"
    );
    // Unsorted partitioning degenerates toward model-wise behaviour: every
    // shard carries hot traffic, so scaling duplicates the whole table.
    let worst_unsorted = *unsorted_results.iter().max().expect("non-empty");
    assert!(
        worst_unsorted as f64 > 1.5 * dp.memory_bytes as f64,
        "scattered hot entries must cost substantially more than the DP"
    );
    println!("\n[ok] partitioning ablation checks passed");
}

//! Figures 16, 17, and 18: the CPU-GPU (GKE + T4) evaluation at the
//! paper's 200 QPS target.
//!
//! * Figure 16 — memory consumption (paper: 2.7x / 3.6x / 2.6x smaller);
//! * Figure 17 — memory utility + replicas (paper: ~6% for model-wise,
//!   ~8x average gain);
//! * Figure 18 — CPU-GPU server nodes (paper: 1.4x / 1.6x / 1.2x fewer).
//!
//! The paper's key cross-platform observation: RM3's memory saving is
//! *less* pronounced here than on CPU-only, because the GPU absorbs its
//! heavy MLPs and model-wise needs fewer replicas.

use elasticrec::utility::measure_table_utility;
use elasticrec::{plan, Calibration, Platform, SteadyState, Strategy};
use er_bench::report;
use er_model::configs;
use er_partition::PartitionPlan;

const TARGET_QPS: f64 = 200.0;
const UTILITY_QUERIES: usize = 1000;

fn main() {
    let gpu_calib = Calibration::cpu_gpu();
    let cpu_calib = Calibration::cpu_only();

    let mut ratios = Vec::new();
    for cfg in configs::all_rms() {
        let mw = plan(&cfg, Platform::CpuGpu, Strategy::ModelWise, &gpu_calib);
        let el = plan(&cfg, Platform::CpuGpu, Strategy::Elastic, &gpu_calib);
        let mw_s = SteadyState::size(&mw, TARGET_QPS, &gpu_calib).expect("fits");
        let el_s = SteadyState::size(&el, TARGET_QPS, &gpu_calib).expect("fits");

        report::header(
            &format!("Figure 16 ({})", cfg.name),
            "memory consumption at 200 QPS (CPU-GPU)",
        );
        report::row(
            "memory",
            &[
                ("model-wise", report::gib(mw_s.memory_bytes)),
                ("elastic", report::gib(el_s.memory_bytes)),
                (
                    "reduction",
                    report::ratio(mw_s.memory_bytes as f64, el_s.memory_bytes as f64),
                ),
                ("shards/table", el.table_plans[0].num_shards().to_string()),
            ],
        );
        assert!(el_s.memory_bytes < mw_s.memory_bytes);
        ratios.push(mw_s.memory_bytes as f64 / el_s.memory_bytes as f64);

        report::header(
            &format!("Figure 17 ({})", cfg.name),
            "memory utility of table 0's shards + replicas (CPU-GPU)",
        );
        let gathers = cfg.batch_size * cfg.tables[0].pooling as usize;
        let mw_util = measure_table_utility(
            &PartitionPlan::single(cfg.tables[0].rows),
            cfg.locality_p,
            UTILITY_QUERIES,
            gathers,
            23,
        );
        report::row(
            "MW S1",
            &[
                ("utility", format!("{:.1}%", 100.0 * mw_util[0].utility())),
                ("replicas", mw_s.replicas_of("model-wise").to_string()),
            ],
        );
        let el_util = measure_table_utility(
            &el.table_plans[0],
            cfg.locality_p,
            UTILITY_QUERIES,
            gathers,
            23,
        );
        for (i, s) in el_util.iter().enumerate() {
            report::row(
                &format!("ER S{}", i + 1),
                &[
                    ("utility", format!("{:.1}%", 100.0 * s.utility())),
                    (
                        "replicas",
                        el_s.replicas_of(&format!("emb-t0-s{i}")).to_string(),
                    ),
                ],
            );
        }
        assert!(
            el_util[0].utility() > 3.0 * mw_util[0].utility(),
            "hot shard must be far better utilized than the monolith"
        );

        report::header(
            &format!("Figure 18 ({})", cfg.name),
            "CPU-GPU server nodes to reach 200 QPS",
        );
        report::row(
            "nodes",
            &[
                ("model-wise", mw_s.nodes_used.to_string()),
                ("elastic", el_s.nodes_used.to_string()),
                (
                    "reduction",
                    report::ratio(mw_s.nodes_used as f64, el_s.nodes_used as f64),
                ),
            ],
        );
        // Dense shards land on GPUs; embedding shards stay CPU-only.
        assert_eq!(el.frontend().pod.resources().gpus, 1);
        assert!(el.embedding_shards().all(|s| s.pod.resources().gpus == 0));
    }

    // Cross-platform claim: RM3's saving is less pronounced on CPU-GPU than
    // on CPU-only (paper: 2.6x here vs 8.1x there).
    let rm3 = configs::rm3();
    let cpu_mw = SteadyState::size(
        &plan(&rm3, Platform::CpuOnly, Strategy::ModelWise, &cpu_calib),
        100.0,
        &cpu_calib,
    )
    .expect("fits");
    let cpu_el = SteadyState::size(
        &plan(&rm3, Platform::CpuOnly, Strategy::Elastic, &cpu_calib),
        100.0,
        &cpu_calib,
    )
    .expect("fits");
    let cpu_ratio = cpu_mw.memory_bytes as f64 / cpu_el.memory_bytes as f64;
    let gpu_ratio = ratios[2];
    report::header("Cross-platform", "RM3 memory-reduction comparison");
    report::row(
        "RM3",
        &[
            ("cpu_only", format!("{cpu_ratio:.1}x")),
            ("cpu_gpu", format!("{gpu_ratio:.1}x")),
        ],
    );
    assert!(
        gpu_ratio < cpu_ratio,
        "GPU offload must shrink RM3's model-wise disadvantage"
    );
    println!("\n[ok] Figures 16/17/18 qualitative checks passed");
}

//! Figure 9: QPS of embedding gather operations over a 20M-entry table as
//! a function of the number of gathers, for embedding dimensions 32–512.
//!
//! This is the one-time profiling sweep whose lookup table feeds the
//! QPS(x) regression in Algorithm 1. The paper's shape: QPS falls
//! hyperbolically with gather count, and larger vector dimensions shift
//! the whole curve down.

use elasticrec::Calibration;
use er_bench::report;
use er_partition::{AnalyticGatherModel, ProfiledQpsModel, QpsModel};
use er_units::{Bytes, BytesPerSec, Secs};

fn main() {
    let calib = Calibration::cpu_only();
    let dims = [32u64, 64, 128, 256, 512];
    let sweep: Vec<f64> = (0..=10).map(|i| 4f64.powi(i)).collect(); // 1 .. ~1e6

    report::header(
        "Figure 9",
        "gather QPS vs number of gathers (20M-entry table, one shard replica)",
    );
    let mut curves = Vec::new();
    for &dim in &dims {
        let hw = AnalyticGatherModel::new(
            Secs::of(calib.sparse_base_secs),
            BytesPerSec::of(calib.sparse_cores as f64 * calib.gather_bytes_per_sec_per_core),
            Bytes::of_u64(dim * 4),
        );
        let profiled = ProfiledQpsModel::profile(&hw, &sweep);
        let qps: Vec<f64> = sweep.iter().map(|&x| profiled.qps(x).raw()).collect();
        let cells: Vec<(String, String)> = sweep
            .iter()
            .zip(&qps)
            .map(|(&x, &q)| (format!("x={x:.0}"), format!("{q:.0}")))
            .collect();
        let cells_ref: Vec<(&str, String)> =
            cells.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
        report::row(&format!("dim {dim}"), &cells_ref);
        curves.push(qps);
    }

    // Each curve decreases in the gather count.
    for (d, curve) in dims.iter().zip(&curves) {
        for w in curve.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "dim {d}: QPS must fall with gathers");
        }
    }
    // Larger dimensions sit strictly below smaller ones at high gather
    // counts (read-traffic bound).
    let last = sweep.len() - 1;
    for w in curves.windows(2) {
        assert!(
            w[1][last] < w[0][last],
            "larger dims must have lower QPS at the bandwidth-bound end"
        );
    }
    // At x=1 the curves converge (overhead bound), spreading apart as x
    // grows — the crossover structure of the paper's figure.
    let spread_low = curves[0][0] / curves[dims.len() - 1][0];
    let spread_high = curves[0][last] / curves[dims.len() - 1][last];
    assert!(
        spread_high > 4.0 * spread_low,
        "curves must fan out with gather count (low {spread_low:.2} high {spread_high:.2})"
    );
    println!("\n[ok] Figure 9 qualitative checks passed");
}

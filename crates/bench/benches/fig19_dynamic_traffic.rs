//! Figure 19: robustness to dynamically changing input traffic (RM1,
//! CPU-only). Traffic rises in five increments and then drops; the paper
//! compares achieved QPS, memory consumption, and tail latency between
//! model-wise allocation and ElasticRec under Kubernetes HPA.
//!
//! Paper reference points: model-wise peaks at ~3.1x ElasticRec's memory,
//! reacts much more slowly to traffic steps (whole-model container
//! startup), and shows more frequent SLA-violating latency spikes.

use elasticrec::{plan, Calibration, Platform, Simulation, SimulationConfig, Strategy};
use er_bench::report;
use er_model::configs;
use er_workload::TrafficSchedule;

/// Base rate of the stepped schedule; peaks at 5x.
const BASE_QPS: f64 = 20.0;
/// Seconds between traffic steps.
const STEP_SECS: f64 = 40.0;
/// Total simulated duration.
const DURATION: f64 = 320.0;

fn main() {
    let calib = Calibration::cpu_only();
    let cfg_model = configs::rm1();
    let schedule = TrafficSchedule::figure19(BASE_QPS, STEP_SECS);

    let mut outcomes = Vec::new();
    for strategy in [Strategy::ModelWise, Strategy::Elastic] {
        let p = plan(&cfg_model, Platform::CpuOnly, strategy, &calib);
        let cfg = SimulationConfig::new(schedule.clone(), DURATION, 1234);
        outcomes.push((strategy, Simulation::run(&p, &calib, &cfg)));
    }

    report::header(
        "Figure 19",
        "QPS / memory / p95 latency under stepped traffic (RM1, CPU-only)",
    );
    println!(
        "{:>6}  {:>7} | {:>9} {:>9} | {:>10} {:>10} | {:>9} {:>9}",
        "t(s)", "target", "qps(MW)", "qps(ER)", "mem(MW)", "mem(ER)", "p95(MW)", "p95(ER)"
    );
    let (_, mw) = &outcomes[0];
    let (_, er) = &outcomes[1];
    let mut t = 10.0;
    while t <= DURATION {
        println!(
            "{:>6.0}  {:>7.0} | {:>9.1} {:>9.1} | {:>7.1}GiB {:>7.1}GiB | {:>7.0}ms {:>7.0}ms",
            t,
            schedule.rate_at(t),
            mw.achieved_qps.value_at(t).unwrap_or(0.0),
            er.achieved_qps.value_at(t).unwrap_or(0.0),
            mw.memory_gib.value_at(t).unwrap_or(0.0),
            er.memory_gib.value_at(t).unwrap_or(0.0),
            mw.p95_ms.value_at(t).unwrap_or(0.0),
            er.p95_ms.value_at(t).unwrap_or(0.0),
        );
        t += 20.0;
    }

    report::header("Figure 19 summary", "aggregates over the run");
    for (strategy, out) in &outcomes {
        report::row(
            &format!("{strategy:?}"),
            &[
                ("completed", out.completed_queries.to_string()),
                ("peak_mem", format!("{:.1} GiB", out.peak_memory_gib)),
                (
                    "mean_latency",
                    format!("{:.0} ms", out.mean_latency_secs() * 1e3),
                ),
                (
                    "sla_violations",
                    format!(
                        "{}/{} intervals",
                        out.sla_violation_intervals, out.metric_intervals
                    ),
                ),
            ],
        );
    }

    // Paper shapes.
    assert!(
        mw.peak_memory_gib > 2.0 * er.peak_memory_gib,
        "model-wise peak memory ({:.1}) must far exceed elastic ({:.1}) — paper reports 3.1x",
        mw.peak_memory_gib,
        er.peak_memory_gib
    );
    assert!(
        mw.violation_fraction() >= er.violation_fraction(),
        "model-wise must violate the SLA at least as often (mw {} vs er {})",
        mw.violation_fraction(),
        er.violation_fraction()
    );
    // Both ultimately serve the traffic.
    for (name, out) in [("MW", mw), ("ER", er)] {
        let served = out.completed_queries as f64 / out.total_queries as f64;
        assert!(served > 0.9, "{name} served only {served:.2} of queries");
    }
    println!("\n[ok] Figure 19 qualitative checks passed");
}

//! Performance baseline suite: times the serving fast path end to end and
//! writes `BENCH_perf.json` so every PR leaves a perf trajectory behind.
//!
//! Three timed sections, each with a deterministic work definition so runs
//! are comparable across commits on the same machine:
//!
//! * `event_queue` — raw schedule/pop throughput of [`er_sim::EventQueue`]
//!   under a churning future-event list (the discrete-event engine's inner
//!   loop);
//! * `forward` — steady-state [`elasticrec::ShardedDlrm`] forward passes
//!   (the functional serving path: remap → bucketize → gather → MLP);
//! * `fig19_sim` — the Figure 19 dynamic-traffic closed loop (arrivals,
//!   fan-out, HPA) at full duration, the wall-clock-dominant workload of
//!   the whole reproduction.
//!
//! Every section also folds its *simulation-visible* results into a
//! determinism digest, so a perf refactor that changes outputs is caught
//! here as well as in the test suite.
//!
//! A fourth group times the *parallel* simulation core: `par_seq` runs the
//! sequential engine on a shared scenario, and `par_sim_t{1,2,4,8}` run
//! the sharded windowed engine ([`elasticrec::ParSimulation`]) at 8 shards
//! on 1/2/4/8 worker threads. The four parallel digests must be identical
//! — the suite exits nonzero if any thread count changes a single bit.
//!
//! A fifth group covers the quantized data plane: `quant_{f32,f16,i8}_d64`
//! time the fused CSR gather over a dim-64 table in each storage kind
//! (same index stream, so the wall-clock ratio is the bandwidth win of
//! narrow storage; full mode enforces i8 >= 1.8x of f32), and the
//! `coalesce_{single,batched}` pair times per-query gathers against one
//! [`elasticrec::GatherCoalescer`] batch — their digests must be
//! bit-identical or the suite exits nonzero.
//!
//! Usage:
//!   perfsuite [--smoke] [--out PATH] [--baseline PATH] [--fleet]
//!             [--par-parity] [--quant-parity] [--mc]
//!             [--no-enforce-speedup]
//!
//! `--smoke` runs a tiny configuration (CI-sized), writes to
//! `target/BENCH_perf_smoke.json` by default, and validates the emitted
//! JSON schema. `--baseline` points at a previous `BENCH_perf.json`; its
//! `wall_secs` per section are embedded, speedups computed, and any
//! section slower than 0.95x of its baseline fails the run (opt out with
//! `--no-enforce-speedup`). `--par-parity` runs only the parallel-engine
//! digest-equality check (the CI stage); `--quant-parity` runs only the
//! quantized-data-plane checks: f32 gather digests bit-identical across
//! every available SIMD backend, and quantized gathers within their
//! analytic error bounds. `--mc` runs only the bounded er-mc control-plane
//! check at smoke scale (both route policies), timed like a perf section,
//! exiting nonzero on any counterexample. `--fleet` adds the 1000-node
//! synthetic fleet scenario as a timed section.

use std::time::Instant;

use elasticrec::{
    plan, Calibration, GatherCoalescer, ParSimConfig, ParSimulation, Platform, ShardedDlrm,
    Simulation, SimulationConfig, SimulationOutcome, Strategy,
};
use er_bench::perf::{self, Digest, PerfReport, Section};
use er_model::{configs, Dlrm, EmbeddingTable, QueryGenerator, TableLookup};
use er_partition::PartitionPlan;
use er_sim::{EventQueue, SimRng};
use er_tensor::simd::{gather_pool_csr_with, SimdBackend};
use er_tensor::Matrix;
use er_units::ElemKind;
use er_workload::TrafficSchedule;

/// Scale knobs for one suite run.
struct Scale {
    /// Events pushed through the event-queue churn loop.
    queue_ops: u64,
    /// Pending events held in the queue while churning.
    queue_depth: u64,
    /// Forward passes timed after warmup.
    forward_iters: u64,
    /// Embedding rows per table in the forward model.
    forward_rows: u64,
    /// Simulated seconds of the fig19 schedule.
    sim_duration: f64,
    /// Base QPS of the fig19 stepped schedule (peaks at 5x).
    sim_base_qps: f64,
    /// Embedding rows in the quantized-gather table (dim 64). Full scale
    /// puts every kind well past the private caches (f32 ~102 MB, i8
    /// ~26 MB) with hash-scattered indices, so each gather pays the
    /// memory hierarchy per row and — with cache-line-aligned storage —
    /// the kinds' line traffic is exactly their byte ratio. This is the
    /// regime where narrow storage pays and the paper's placement model
    /// applies.
    quant_rows: u32,
    /// Timed gather calls per storage kind, split across interleaved
    /// rounds by `bench_quant`.
    quant_iters: u64,
    /// Indices pooled per output row in the quantized-gather lookup.
    quant_pooling: usize,
}

const FULL: Scale = Scale {
    queue_ops: 4_000_000,
    queue_depth: 4096,
    forward_iters: 400,
    forward_rows: 2000,
    sim_duration: 320.0,
    sim_base_qps: 60.0,
    quant_rows: 400_000,
    quant_iters: 40,
    quant_pooling: 32,
};

const SMOKE: Scale = Scale {
    queue_ops: 50_000,
    queue_depth: 256,
    forward_iters: 5,
    forward_rows: 300,
    sim_duration: 20.0,
    sim_base_qps: 20.0,
    quant_rows: 2_000,
    quant_iters: 3,
    quant_pooling: 8,
};

/// Thread counts the parallel engine is timed (and parity-checked) at.
const PAR_THREADS: [usize; 4] = [1, 2, 4, 8];
/// Shard count for the parallel sections.
const PAR_SHARDS: usize = 8;
/// Minimum acceptable speedup vs the attached baseline per section.
const SPEEDUP_FLOOR: f64 = 0.95;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let par_parity = args.iter().any(|a| a == "--par-parity");
    let quant_parity = args.iter().any(|a| a == "--quant-parity");
    let mc = args.iter().any(|a| a == "--mc");
    let fleet = args.iter().any(|a| a == "--fleet");
    let enforce_speedup = !args.iter().any(|a| a == "--no-enforce-speedup");
    let out_path = flag_value(&args, "--out").unwrap_or_else(|| {
        if smoke {
            "target/BENCH_perf_smoke.json".to_string()
        } else {
            "BENCH_perf.json".to_string()
        }
    });
    let baseline_path = flag_value(&args, "--baseline");

    if par_parity {
        // The CI stage: parallel digest equality at smoke scale, nothing
        // written, nonzero exit on the first diverging thread count.
        let sections = bench_par(&SMOKE);
        let mut table = PerfReport::new("par-parity");
        for s in sections {
            table.push(s);
        }
        println!("{}", table.summary_table());
        println!(
            "par-sim parity ok: {} thread counts agree",
            PAR_THREADS.len()
        );
        return;
    }

    if quant_parity {
        // The CI stage: f32 gather digests must agree across every SIMD
        // backend this CPU offers, and quantized gathers must stay within
        // their analytic error bounds. Nothing written; nonzero exit on
        // the first violation.
        run_quant_parity();
        return;
    }

    if mc {
        // The CI stage: bounded explicit-state check of the control plane
        // at smoke scale, both route policies, timed like perf sections.
        // Nonzero exit on any counterexample or truncated exploration.
        let sections = bench_mc();
        let mut table = PerfReport::new("mc");
        for s in sections {
            table.push(s);
        }
        println!("{}", table.summary_table());
        println!("er-mc smoke bound clean: every property holds at both route policies");
        return;
    }

    let scale = if smoke { &SMOKE } else { &FULL };

    let mut report = PerfReport::new(if smoke { "smoke" } else { "full" });

    report.push(bench_event_queue(scale));
    report.push(bench_forward(scale));
    report.push(bench_fig19(scale));
    for s in bench_par(scale) {
        report.push(s);
    }
    for s in bench_quant(scale, !smoke) {
        report.push(s);
    }
    for s in bench_coalesce(scale) {
        report.push(s);
    }
    if fleet {
        report.push(bench_fleet());
    }

    if let Some(path) = &baseline_path {
        match std::fs::read_to_string(path) {
            Ok(text) => report.attach_baseline(&text),
            Err(e) => eprintln!("perfsuite: cannot read baseline {path}: {e}"),
        }
    }

    let json = report.to_json();
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            // lint::allow(env_io): the perf harness's whole job is writing the report file
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    // lint::allow(env_io): the perf harness's whole job is writing the report file
    std::fs::write(&out_path, &json).expect("write perf report");

    println!("{}", report.summary_table());
    println!("report written to {out_path}");

    // The emitted file must round-trip the schema check — this is what the
    // CI smoke stage relies on.
    // lint::allow(env_io): schema validation re-reads the file just written
    let reread = std::fs::read_to_string(&out_path).expect("reread perf report");
    match perf::validate_schema(&reread) {
        Ok(sections) => println!("schema ok ({sections} sections)"),
        Err(e) => {
            eprintln!("perfsuite: schema validation failed: {e}");
            std::process::exit(1);
        }
    }

    // The perf gate: with a baseline attached, any section below the
    // floor fails the suite (wall-time noise budget is the 5% margin).
    if enforce_speedup && baseline_path.is_some() {
        if let Err(e) = report.enforce_speedups(SPEEDUP_FLOOR) {
            eprintln!("perfsuite: speedup floor violated:\n{e}");
            std::process::exit(1);
        }
        println!("speedup floor ok (every section >= {SPEEDUP_FLOOR}x of baseline)");
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Event-queue churn: hold `depth` pending events, then pop-one/push-one
/// for `ops` iterations — the steady-state shape of the sim's future-event
/// list. The digest folds every popped timestamp so ordering changes are
/// caught.
#[allow(clippy::disallowed_methods)] // benchmarks measure real elapsed time
fn bench_event_queue(scale: &Scale) -> Section {
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut rng = SimRng::seed_from(7);
    for i in 0..scale.queue_depth {
        q.schedule_in(rng.uniform() * 10.0, i);
    }
    let mut digest = Digest::new();
    // lint::allow(wall_clock): benchmarks measure real elapsed time by definition
    let t0 = Instant::now();
    for i in 0..scale.queue_ops {
        let (t, ev) = q.pop().expect("queue holds `depth` pending events");
        digest.fold_f64(t.as_secs());
        digest.fold_u64(ev);
        q.schedule_in(rng.uniform() * 10.0, i);
    }
    let wall = t0.elapsed().as_secs_f64();
    while let Some((t, _)) = q.pop() {
        digest.fold_f64(t.as_secs());
    }
    Section::new("event_queue", wall, scale.queue_ops, digest)
}

/// Steady-state sharded forward passes over a fixed query set — the
/// zero-allocation fast path this suite exists to track. The digest folds
/// every output probability, so the path must stay bit-identical.
#[allow(clippy::disallowed_methods)] // benchmarks measure real elapsed time
fn bench_forward(scale: &Scale) -> Section {
    let cfg = configs::rm1()
        .scaled_tables(scale.forward_rows)
        .with_num_tables(4);
    let model = Dlrm::with_seed(&cfg, 11);
    let rows = scale.forward_rows;
    let counts: Vec<Vec<u64>> = (0..4)
        .map(|t| {
            (0..rows)
                .map(|i| ((i * 7919 + t as u64 * 31) % rows) + 1)
                .collect()
        })
        .collect();
    let cuts = vec![rows / 10, rows / 2, rows];
    let plans = vec![PartitionPlan::new(cuts, rows).expect("valid cuts"); 4];
    let sharded = ShardedDlrm::new(model, &counts, plans).expect("valid sharding");

    let gen = QueryGenerator::new(&cfg);
    let mut rng = SimRng::seed_from(3);
    let queries: Vec<_> = (0..8).map(|_| gen.generate(&mut rng)).collect();

    // Warm the workspace (and caches) so the timed region is the true
    // steady state: zero allocations per forward pass.
    let mut ws = sharded.workspace();
    for q in &queries {
        let _ = sharded.forward_ws(q, &mut ws);
    }
    let mut digest = Digest::new();
    // lint::allow(wall_clock): benchmarks measure real elapsed time by definition
    let t0 = Instant::now();
    for i in 0..scale.forward_iters {
        let out = sharded.forward_ws(&queries[(i % 8) as usize], &mut ws);
        digest.fold_f64(f64::from(out.get(0, 0)));
    }
    let wall = t0.elapsed().as_secs_f64();
    // Fold full output of one pass for a stronger fingerprint.
    let out = sharded.forward_ws(&queries[0], &mut ws);
    for r in 0..out.rows() {
        digest.fold_f64(f64::from(out.get(r, 0)));
    }
    Section::new("forward", wall, scale.forward_iters, digest)
}

/// The Figure 19 dynamic-traffic closed loop under the Elastic strategy.
/// Work units are completed queries; the digest folds the full metrics
/// time series and final replica counts — the bit-identical contract of
/// the scheduler/workspace rewrite.
#[allow(clippy::disallowed_methods)] // benchmarks measure real elapsed time
fn bench_fig19(scale: &Scale) -> Section {
    let calib = Calibration::cpu_only();
    let cfg_model = configs::rm1();
    let p = plan(&cfg_model, Platform::CpuOnly, Strategy::Elastic, &calib);
    let schedule = TrafficSchedule::figure19(scale.sim_base_qps, scale.sim_duration / 8.0);
    let cfg = SimulationConfig::new(schedule, scale.sim_duration, 1234);

    // lint::allow(wall_clock): benchmarks measure real elapsed time by definition
    let t0 = Instant::now();
    let out = Simulation::run(&p, &calib, &cfg);
    let wall = t0.elapsed().as_secs_f64();

    Section::new(
        "fig19_sim",
        wall,
        out.completed_queries,
        digest_outcome(&out),
    )
}

/// Folds a simulation outcome bit-for-bit: counters, latency percentiles,
/// and the full metrics time series. Any event-ordering change anywhere in
/// a run lands in this value.
fn digest_outcome(out: &SimulationOutcome) -> Digest {
    let mut digest = Digest::new();
    digest.fold_u64(out.total_queries);
    digest.fold_u64(out.completed_queries);
    digest.fold_u64(out.sla_violation_intervals as u64);
    digest.fold_u64(out.metric_intervals as u64);
    digest.fold_u64(out.final_nodes_used as u64);
    digest.fold_f64(out.peak_memory_gib);
    digest.fold_f64(out.latency.percentile(0.5));
    digest.fold_f64(out.latency.percentile(0.95));
    digest.fold_f64(out.latency.percentile(0.99));
    for series in [
        &out.achieved_qps,
        &out.target_qps,
        &out.memory_gib,
        &out.p95_ms,
        &out.total_replicas,
    ] {
        for pt in series.points() {
            digest.fold_f64(pt.time);
            digest.fold_f64(pt.value);
        }
    }
    digest
}

/// The parallel-engine section group: the sequential engine (`par_seq`)
/// and the sharded windowed engine at [`PAR_SHARDS`] shards across
/// [`PAR_THREADS`] worker counts, all on one shared Figure 19-class
/// scenario. Exits nonzero if any thread count produces a different
/// digest — thread-count invariance is this engine's core contract, so a
/// violation is a correctness failure, not a perf data point.
#[allow(clippy::disallowed_methods)] // benchmarks measure real elapsed time
fn bench_par(scale: &Scale) -> Vec<Section> {
    let calib = Calibration::cpu_only();
    let cfg_model = configs::rm1();
    let p = plan(&cfg_model, Platform::CpuOnly, Strategy::Elastic, &calib);
    let schedule = TrafficSchedule::figure19(scale.sim_base_qps, scale.sim_duration / 8.0);
    let cfg = SimulationConfig::new(schedule, scale.sim_duration, 4321);

    let mut sections = Vec::new();

    // lint::allow(wall_clock): benchmarks measure real elapsed time by definition
    let t0 = Instant::now();
    let seq = Simulation::run(&p, &calib, &cfg);
    let wall = t0.elapsed().as_secs_f64();
    sections.push(Section::new(
        "par_seq",
        wall,
        seq.completed_queries,
        digest_outcome(&seq),
    ));

    let mut digests: Vec<String> = Vec::new();
    for threads in PAR_THREADS {
        let par = ParSimConfig::new(PAR_SHARDS, threads);
        // lint::allow(wall_clock): benchmarks measure real elapsed time by definition
        let t0 = Instant::now();
        let out = ParSimulation::run(&p, &calib, &cfg, &par);
        let wall = t0.elapsed().as_secs_f64();
        let digest = digest_outcome(&out);
        digests.push(digest.hex());
        sections.push(Section::new(
            &format!("par_sim_t{threads}"),
            wall,
            out.completed_queries,
            digest,
        ));
    }
    if digests.iter().any(|d| d != &digests[0]) {
        eprintln!(
            "perfsuite: par_sim digests diverged across thread counts {PAR_THREADS:?}: {digests:?}"
        );
        std::process::exit(1);
    }
    sections
}

/// The 1000-node synthetic fleet: a heavy Figure 19-class scenario with a
/// hard 1000-node budget and a deep replica ceiling, run on the parallel
/// engine at full width. Exercises the sharded core under sustained
/// HPA churn and large pod sets rather than at toy cluster sizes.
#[allow(clippy::disallowed_methods)] // benchmarks measure real elapsed time
fn bench_fleet() -> Section {
    let calib = Calibration::cpu_only();
    let cfg_model = configs::rm1();
    let p = plan(&cfg_model, Platform::CpuOnly, Strategy::Elastic, &calib);
    let schedule = TrafficSchedule::figure19(400.0, 30.0);
    let mut cfg = SimulationConfig::new(schedule, 240.0, 77);
    cfg.max_nodes = Some(1000);
    cfg.max_replicas = 2048;
    cfg.fail_node_at = Some(90.0);

    let par = ParSimConfig::new(PAR_SHARDS, PAR_THREADS[PAR_THREADS.len() - 1]);
    // lint::allow(wall_clock): benchmarks measure real elapsed time by definition
    let t0 = Instant::now();
    let out = ParSimulation::run(&p, &calib, &cfg, &par);
    let wall = t0.elapsed().as_secs_f64();
    Section::new(
        "fleet_par",
        wall,
        out.completed_queries,
        digest_outcome(&out),
    )
}

/// The `--mc` CI stage: bounded explicit-state check of the er-mc
/// control-plane model at smoke scale, once with the deterministic
/// least-outstanding route policy and once with enumerated
/// power-of-two-choices sample pairs. Work units are distinct (deduped)
/// states; the digest folds the state/depth/terminal counts and every
/// property verdict, so a handler change that shifts the explored space
/// shows up as a digest change even while all properties still hold.
/// Exits nonzero on any counterexample or if a bound truncated the run.
#[allow(clippy::disallowed_methods)] // benchmarks measure real elapsed time
fn bench_mc() -> Vec<Section> {
    use er_mc::{check, control, Bounds, ControlPlane, CpConfig};

    let mut sections = Vec::new();
    for (name, p2c) in [("mc_smoke", false), ("mc_smoke_p2c", true)] {
        let model = ControlPlane::new(CpConfig {
            p2c,
            ..CpConfig::smoke()
        });
        let props = control::properties();
        // lint::allow(wall_clock): benchmarks measure real elapsed time by definition
        let t0 = Instant::now();
        let report = check(&model, &props, er_mc::Strategy::Bfs, Bounds::default());
        let wall = t0.elapsed().as_secs_f64();

        let mut digest = Digest::new();
        digest.fold_u64(report.states as u64);
        digest.fold_u64(report.max_depth as u64);
        digest.fold_u64(report.terminals as u64);
        for p in &report.properties {
            digest.fold_u64(u64::from(p.counterexample.is_none()));
        }
        if report.truncated {
            eprintln!("perfsuite: er-mc exploration truncated at the {name} bound");
            std::process::exit(1);
        }
        for p in &report.properties {
            if let Some(trace) = &p.counterexample {
                eprintln!(
                    "perfsuite: er-mc property {} violated at the {name} bound:\n{}",
                    p.name,
                    trace.render()
                );
            }
        }
        if !report.ok() {
            std::process::exit(1);
        }
        sections.push(Section::new(name, wall, report.states as u64, digest));
    }
    sections
}

/// Deterministic CSR lookup over `rows`: `inputs` bags of `pooling`
/// hash-scattered indices, so repeated gathers stream the whole table
/// instead of re-hitting a small cached working set.
fn quant_lookup(rows: u32, inputs: usize, pooling: usize) -> (Vec<u32>, Vec<u32>) {
    let mut indices = Vec::with_capacity(inputs * pooling);
    let mut offsets = Vec::with_capacity(inputs);
    for input in 0..inputs as u64 {
        offsets.push(indices.len() as u32);
        for k in 0..pooling as u64 {
            let h = (input * 131 + k)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .rotate_left(29);
            indices.push((h % u64::from(rows)) as u32);
        }
    }
    (indices, offsets)
}

/// Middle element of the sorted sample (upper median for even sizes).
fn median(xs: &[f64]) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

/// The quantized-gather group: the same dim-64 CSR gather in f32, f16,
/// and i8 storage. At full scale every kind sits well past the private
/// caches, so with cache-line-aligned rows each gather's memory traffic
/// is exactly the kind's row bytes (one line per i8 row, four per f32
/// row) — the bandwidth advantage quantization buys and the effect
/// ElasticRec's cost model prices into placement.
///
/// Timing is interleaved: each round runs every kind back to back
/// inside the same machine-state window, so a co-tenant burst perturbs
/// one round's ratio instead of one kind's entire wall. The recorded
/// wall is the per-round median scaled to the round count, and the
/// enforced speedup is the median of per-round f32/i8 ratios — both
/// reject transient noise on a shared box. With `enforce` set (full
/// mode), i8 must beat f32 by at least [`QUANT_I8_SPEEDUP_FLOOR`] or
/// the suite exits nonzero.
#[allow(clippy::disallowed_methods)] // benchmarks measure real elapsed time
fn bench_quant(scale: &Scale, enforce: bool) -> Vec<Section> {
    let dim = 64u32;
    let rows = scale.quant_rows;
    let f32_table = EmbeddingTable::with_seed(rows, dim, 97);
    let (indices, offsets) = quant_lookup(rows, 8192, scale.quant_pooling);
    let gathers_per_call = indices.len() as u64;

    const ROUNDS: u64 = 10;
    let per_round = (scale.quant_iters / ROUNDS).max(1);

    let tables: Vec<_> = ElemKind::ALL
        .iter()
        .map(|&kind| f32_table.quantized(kind))
        .collect();
    let mut outs: Vec<Matrix> = tables
        .iter()
        .map(|_| Matrix::zeros(offsets.len(), dim as usize))
        .collect();
    let mut digests = vec![Digest::new(); tables.len()];
    let mut walls = vec![Vec::with_capacity(ROUNDS as usize); tables.len()];

    // Warm-up round (discarded): faults every kind's storage and page
    // tables in; the first post-construction pass runs against caches
    // full of quantization write-back and measures warm-up, not the
    // storage kind.
    for _ in 0..per_round {
        for (table, out) in tables.iter().zip(&mut outs) {
            table.gather_pool_into(&indices, &offsets, out);
        }
    }
    for _ in 0..ROUNDS {
        for k in 0..tables.len() {
            // lint::allow(wall_clock): benchmarks measure real elapsed time by definition
            let t0 = Instant::now();
            for _ in 0..per_round {
                tables[k].gather_pool_into(&indices, &offsets, &mut outs[k]);
                digests[k].fold_f64(f64::from(outs[k].get(0, 0)));
            }
            walls[k].push(t0.elapsed().as_secs_f64());
        }
    }

    let mut sections = Vec::new();
    for (k, kind) in ElemKind::ALL.iter().enumerate() {
        // Fold one full pooled row for a stronger fingerprint.
        for j in 0..dim as usize {
            digests[k].fold_f64(f64::from(outs[k].get(0, j)));
        }
        sections.push(Section::new(
            &format!("quant_{kind}_d64"),
            median(&walls[k]) * ROUNDS as f64,
            ROUNDS * per_round * gathers_per_call,
            digests[k],
        ));
    }

    // walls is ordered like ElemKind::ALL = [F32, F16, I8].
    let paired = |num: &[f64], den: &[f64]| -> f64 {
        let ratios: Vec<f64> = num.iter().zip(den).map(|(n, d)| n / d).collect();
        median(&ratios)
    };
    let i8_speedup = paired(&walls[0], &walls[2]);
    println!(
        "quant gather d64: f16 {:.2}x, i8 {:.2}x vs f32 (median of {ROUNDS} paired rounds)",
        paired(&walls[0], &walls[1]),
        i8_speedup,
    );
    if enforce && i8_speedup < QUANT_I8_SPEEDUP_FLOOR {
        eprintln!(
            "perfsuite: i8 gather speedup {i8_speedup:.2}x below the \
             {QUANT_I8_SPEEDUP_FLOOR}x floor vs f32"
        );
        std::process::exit(1);
    }
    sections
}

/// Minimum i8-vs-f32 gather speedup the full suite enforces.
const QUANT_I8_SPEEDUP_FLOOR: f64 = 1.8;

/// The coalescing pair: `coalesce_single` serves a fixed query set one
/// gather per query; `coalesce_batched` pushes the same set through one
/// [`GatherCoalescer`] flush per iteration. Their digests must match
/// bit-for-bit (coalescing is a pure batching transform) or the suite
/// exits nonzero.
#[allow(clippy::disallowed_methods)] // benchmarks measure real elapsed time
fn bench_coalesce(scale: &Scale) -> Vec<Section> {
    let dim = 64u32;
    let rows = scale.quant_rows.min(50_000);
    let table = EmbeddingTable::with_seed(rows, dim, 101);
    let queries: Vec<TableLookup> = (0..64u32)
        .map(|q| {
            let (idx, off) = quant_lookup(rows, 32, 16);
            // Rotate each query's index stream so queries differ.
            let idx = idx
                .into_iter()
                .map(|i| (i + q * 977) % rows)
                .collect::<Vec<_>>();
            // lint::allow(no_panic): quant_lookup emits offsets starting at 0, non-decreasing, in range
            TableLookup::new(idx, off).expect("valid CSR")
        })
        .collect();
    let iters = scale.quant_iters.max(4);
    let work = iters * queries.len() as u64;

    let mut scratch = Matrix::zeros(1, 1);
    let mut single_digest = Digest::new();
    // lint::allow(wall_clock): benchmarks measure real elapsed time by definition
    let t0 = Instant::now();
    for _ in 0..iters {
        for q in &queries {
            table.gather_pool_into(q.indices(), q.offsets(), &mut scratch);
            single_digest.fold_f64(f64::from(scratch.get(0, 0)));
        }
    }
    let single_wall = t0.elapsed().as_secs_f64();

    let mut co = GatherCoalescer::new();
    let mut batched_digest = Digest::new();
    // lint::allow(wall_clock): benchmarks measure real elapsed time by definition
    let t0 = Instant::now();
    for _ in 0..iters {
        for q in &queries {
            co.push(q);
        }
        for pooled in co.flush(&table) {
            batched_digest.fold_f64(f64::from(pooled.get(0, 0)));
        }
    }
    let batched_wall = t0.elapsed().as_secs_f64();

    if single_digest.hex() != batched_digest.hex() {
        eprintln!(
            "perfsuite: coalesced gather digest {} != per-query digest {}",
            batched_digest.hex(),
            single_digest.hex()
        );
        std::process::exit(1);
    }
    vec![
        Section::new("coalesce_single", single_wall, work, single_digest),
        Section::new("coalesce_batched", batched_wall, work, batched_digest),
    ]
}

/// The `--quant-parity` CI stage: every SIMD backend this CPU offers must
/// produce bit-identical f32 gathers (absent backends are skipped with an
/// explicit log line), and the quantized gathers must stay within their
/// analytic error bounds against the f32 reference.
fn run_quant_parity() {
    let dim = 64u32;
    let rows = 4096u32;
    let table = EmbeddingTable::with_seed(rows, dim, 97);
    let (indices, offsets) = quant_lookup(rows, 512, 24);

    // Backend parity on the raw f32 kernel, over a deterministic buffer.
    let raw: Vec<f32> = (0..u64::from(rows) * u64::from(dim))
        .map(|i| {
            let h = i.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(31);
            ((h % 2001) as f32 - 1000.0) / 10_000.0
        })
        .collect();
    let mut digests = Vec::new();
    for backend in SimdBackend::ALL {
        if !backend.is_available() {
            println!("quant-parity: SKIPPING backend {backend}: not available on this CPU");
            continue;
        }
        let mut out = Matrix::zeros(offsets.len(), dim as usize);
        gather_pool_csr_with(backend, &raw, rows, &indices, &offsets, &mut out);
        let mut digest = Digest::new();
        for r in 0..out.rows() {
            for j in 0..out.cols() {
                digest.fold_f64(f64::from(out.get(r, j)));
            }
        }
        println!("quant-parity: backend {backend}: digest {}", digest.hex());
        digests.push(digest.hex());
    }
    if digests.iter().any(|d| d != &digests[0]) {
        eprintln!("perfsuite: f32 gather digests diverged across backends: {digests:?}");
        std::process::exit(1);
    }

    // Quantized error bounds against the f32 reference.
    let mut reference = Matrix::zeros(1, 1);
    table.gather_pool_into(&indices, &offsets, &mut reference);
    for kind in [ElemKind::F16, ElemKind::I8] {
        let q = table.quantized(kind);
        let mut got = Matrix::zeros(1, 1);
        q.gather_pool_into(&indices, &offsets, &mut got);
        let bound = table.quant_error_bound(kind, &indices, &offsets);
        let mut worst = 0.0f32;
        for r in 0..got.rows() {
            for j in 0..got.cols() {
                let err = (got.get(r, j) - reference.get(r, j)).abs();
                if err > bound.get(r, j) {
                    eprintln!(
                        "perfsuite: {kind} gather error {err} exceeds bound {} at ({r},{j})",
                        bound.get(r, j)
                    );
                    std::process::exit(1);
                }
                worst = worst.max(err / bound.get(r, j).max(f32::MIN_POSITIVE));
            }
        }
        println!("quant-parity: {kind} within analytic bound (worst {worst:.3} of bound)");
    }
    println!(
        "quant parity ok: {} backends agree, quantized errors bounded",
        digests.len()
    );
}

//! Performance baseline suite: times the serving fast path end to end and
//! writes `BENCH_perf.json` so every PR leaves a perf trajectory behind.
//!
//! Three timed sections, each with a deterministic work definition so runs
//! are comparable across commits on the same machine:
//!
//! * `event_queue` — raw schedule/pop throughput of [`er_sim::EventQueue`]
//!   under a churning future-event list (the discrete-event engine's inner
//!   loop);
//! * `forward` — steady-state [`elasticrec::ShardedDlrm`] forward passes
//!   (the functional serving path: remap → bucketize → gather → MLP);
//! * `fig19_sim` — the Figure 19 dynamic-traffic closed loop (arrivals,
//!   fan-out, HPA) at full duration, the wall-clock-dominant workload of
//!   the whole reproduction.
//!
//! Every section also folds its *simulation-visible* results into a
//! determinism digest, so a perf refactor that changes outputs is caught
//! here as well as in the test suite.
//!
//! A fourth group times the *parallel* simulation core: `par_seq` runs the
//! sequential engine on a shared scenario, and `par_sim_t{1,2,4,8}` run
//! the sharded windowed engine ([`elasticrec::ParSimulation`]) at 8 shards
//! on 1/2/4/8 worker threads. The four parallel digests must be identical
//! — the suite exits nonzero if any thread count changes a single bit.
//!
//! Usage:
//!   perfsuite [--smoke] [--out PATH] [--baseline PATH] [--fleet]
//!             [--par-parity] [--no-enforce-speedup]
//!
//! `--smoke` runs a tiny configuration (CI-sized), writes to
//! `target/BENCH_perf_smoke.json` by default, and validates the emitted
//! JSON schema. `--baseline` points at a previous `BENCH_perf.json`; its
//! `wall_secs` per section are embedded, speedups computed, and any
//! section slower than 0.95x of its baseline fails the run (opt out with
//! `--no-enforce-speedup`). `--par-parity` runs only the parallel-engine
//! digest-equality check (the CI stage). `--fleet` adds the 1000-node
//! synthetic fleet scenario as a timed section.

use std::time::Instant;

use elasticrec::{
    plan, Calibration, ParSimConfig, ParSimulation, Platform, ShardedDlrm, Simulation,
    SimulationConfig, SimulationOutcome, Strategy,
};
use er_bench::perf::{self, Digest, PerfReport, Section};
use er_model::{configs, Dlrm, QueryGenerator};
use er_partition::PartitionPlan;
use er_sim::{EventQueue, SimRng};
use er_workload::TrafficSchedule;

/// Scale knobs for one suite run.
struct Scale {
    /// Events pushed through the event-queue churn loop.
    queue_ops: u64,
    /// Pending events held in the queue while churning.
    queue_depth: u64,
    /// Forward passes timed after warmup.
    forward_iters: u64,
    /// Embedding rows per table in the forward model.
    forward_rows: u64,
    /// Simulated seconds of the fig19 schedule.
    sim_duration: f64,
    /// Base QPS of the fig19 stepped schedule (peaks at 5x).
    sim_base_qps: f64,
}

const FULL: Scale = Scale {
    queue_ops: 4_000_000,
    queue_depth: 4096,
    forward_iters: 400,
    forward_rows: 2000,
    sim_duration: 320.0,
    sim_base_qps: 60.0,
};

const SMOKE: Scale = Scale {
    queue_ops: 50_000,
    queue_depth: 256,
    forward_iters: 5,
    forward_rows: 300,
    sim_duration: 20.0,
    sim_base_qps: 20.0,
};

/// Thread counts the parallel engine is timed (and parity-checked) at.
const PAR_THREADS: [usize; 4] = [1, 2, 4, 8];
/// Shard count for the parallel sections.
const PAR_SHARDS: usize = 8;
/// Minimum acceptable speedup vs the attached baseline per section.
const SPEEDUP_FLOOR: f64 = 0.95;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let par_parity = args.iter().any(|a| a == "--par-parity");
    let fleet = args.iter().any(|a| a == "--fleet");
    let enforce_speedup = !args.iter().any(|a| a == "--no-enforce-speedup");
    let out_path = flag_value(&args, "--out").unwrap_or_else(|| {
        if smoke {
            "target/BENCH_perf_smoke.json".to_string()
        } else {
            "BENCH_perf.json".to_string()
        }
    });
    let baseline_path = flag_value(&args, "--baseline");

    if par_parity {
        // The CI stage: parallel digest equality at smoke scale, nothing
        // written, nonzero exit on the first diverging thread count.
        let sections = bench_par(&SMOKE);
        let mut table = PerfReport::new("par-parity");
        for s in sections {
            table.push(s);
        }
        println!("{}", table.summary_table());
        println!(
            "par-sim parity ok: {} thread counts agree",
            PAR_THREADS.len()
        );
        return;
    }

    let scale = if smoke { &SMOKE } else { &FULL };

    let mut report = PerfReport::new(if smoke { "smoke" } else { "full" });

    report.push(bench_event_queue(scale));
    report.push(bench_forward(scale));
    report.push(bench_fig19(scale));
    for s in bench_par(scale) {
        report.push(s);
    }
    if fleet {
        report.push(bench_fleet());
    }

    if let Some(path) = &baseline_path {
        match std::fs::read_to_string(path) {
            Ok(text) => report.attach_baseline(&text),
            Err(e) => eprintln!("perfsuite: cannot read baseline {path}: {e}"),
        }
    }

    let json = report.to_json();
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            // lint::allow(env_io): the perf harness's whole job is writing the report file
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    // lint::allow(env_io): the perf harness's whole job is writing the report file
    std::fs::write(&out_path, &json).expect("write perf report");

    println!("{}", report.summary_table());
    println!("report written to {out_path}");

    // The emitted file must round-trip the schema check — this is what the
    // CI smoke stage relies on.
    // lint::allow(env_io): schema validation re-reads the file just written
    let reread = std::fs::read_to_string(&out_path).expect("reread perf report");
    match perf::validate_schema(&reread) {
        Ok(sections) => println!("schema ok ({sections} sections)"),
        Err(e) => {
            eprintln!("perfsuite: schema validation failed: {e}");
            std::process::exit(1);
        }
    }

    // The perf gate: with a baseline attached, any section below the
    // floor fails the suite (wall-time noise budget is the 5% margin).
    if enforce_speedup && baseline_path.is_some() {
        if let Err(e) = report.enforce_speedups(SPEEDUP_FLOOR) {
            eprintln!("perfsuite: speedup floor violated:\n{e}");
            std::process::exit(1);
        }
        println!("speedup floor ok (every section >= {SPEEDUP_FLOOR}x of baseline)");
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Event-queue churn: hold `depth` pending events, then pop-one/push-one
/// for `ops` iterations — the steady-state shape of the sim's future-event
/// list. The digest folds every popped timestamp so ordering changes are
/// caught.
#[allow(clippy::disallowed_methods)] // benchmarks measure real elapsed time
fn bench_event_queue(scale: &Scale) -> Section {
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut rng = SimRng::seed_from(7);
    for i in 0..scale.queue_depth {
        q.schedule_in(rng.uniform() * 10.0, i);
    }
    let mut digest = Digest::new();
    // lint::allow(wall_clock): benchmarks measure real elapsed time by definition
    let t0 = Instant::now();
    for i in 0..scale.queue_ops {
        let (t, ev) = q.pop().expect("queue holds `depth` pending events");
        digest.fold_f64(t.as_secs());
        digest.fold_u64(ev);
        q.schedule_in(rng.uniform() * 10.0, i);
    }
    let wall = t0.elapsed().as_secs_f64();
    while let Some((t, _)) = q.pop() {
        digest.fold_f64(t.as_secs());
    }
    Section::new("event_queue", wall, scale.queue_ops, digest)
}

/// Steady-state sharded forward passes over a fixed query set — the
/// zero-allocation fast path this suite exists to track. The digest folds
/// every output probability, so the path must stay bit-identical.
#[allow(clippy::disallowed_methods)] // benchmarks measure real elapsed time
fn bench_forward(scale: &Scale) -> Section {
    let cfg = configs::rm1()
        .scaled_tables(scale.forward_rows)
        .with_num_tables(4);
    let model = Dlrm::with_seed(&cfg, 11);
    let rows = scale.forward_rows;
    let counts: Vec<Vec<u64>> = (0..4)
        .map(|t| {
            (0..rows)
                .map(|i| ((i * 7919 + t as u64 * 31) % rows) + 1)
                .collect()
        })
        .collect();
    let cuts = vec![rows / 10, rows / 2, rows];
    let plans = vec![PartitionPlan::new(cuts, rows).expect("valid cuts"); 4];
    let sharded = ShardedDlrm::new(model, &counts, plans).expect("valid sharding");

    let gen = QueryGenerator::new(&cfg);
    let mut rng = SimRng::seed_from(3);
    let queries: Vec<_> = (0..8).map(|_| gen.generate(&mut rng)).collect();

    // Warm the workspace (and caches) so the timed region is the true
    // steady state: zero allocations per forward pass.
    let mut ws = sharded.workspace();
    for q in &queries {
        let _ = sharded.forward_ws(q, &mut ws);
    }
    let mut digest = Digest::new();
    // lint::allow(wall_clock): benchmarks measure real elapsed time by definition
    let t0 = Instant::now();
    for i in 0..scale.forward_iters {
        let out = sharded.forward_ws(&queries[(i % 8) as usize], &mut ws);
        digest.fold_f64(f64::from(out.get(0, 0)));
    }
    let wall = t0.elapsed().as_secs_f64();
    // Fold full output of one pass for a stronger fingerprint.
    let out = sharded.forward_ws(&queries[0], &mut ws);
    for r in 0..out.rows() {
        digest.fold_f64(f64::from(out.get(r, 0)));
    }
    Section::new("forward", wall, scale.forward_iters, digest)
}

/// The Figure 19 dynamic-traffic closed loop under the Elastic strategy.
/// Work units are completed queries; the digest folds the full metrics
/// time series and final replica counts — the bit-identical contract of
/// the scheduler/workspace rewrite.
#[allow(clippy::disallowed_methods)] // benchmarks measure real elapsed time
fn bench_fig19(scale: &Scale) -> Section {
    let calib = Calibration::cpu_only();
    let cfg_model = configs::rm1();
    let p = plan(&cfg_model, Platform::CpuOnly, Strategy::Elastic, &calib);
    let schedule = TrafficSchedule::figure19(scale.sim_base_qps, scale.sim_duration / 8.0);
    let cfg = SimulationConfig::new(schedule, scale.sim_duration, 1234);

    // lint::allow(wall_clock): benchmarks measure real elapsed time by definition
    let t0 = Instant::now();
    let out = Simulation::run(&p, &calib, &cfg);
    let wall = t0.elapsed().as_secs_f64();

    Section::new(
        "fig19_sim",
        wall,
        out.completed_queries,
        digest_outcome(&out),
    )
}

/// Folds a simulation outcome bit-for-bit: counters, latency percentiles,
/// and the full metrics time series. Any event-ordering change anywhere in
/// a run lands in this value.
fn digest_outcome(out: &SimulationOutcome) -> Digest {
    let mut digest = Digest::new();
    digest.fold_u64(out.total_queries);
    digest.fold_u64(out.completed_queries);
    digest.fold_u64(out.sla_violation_intervals as u64);
    digest.fold_u64(out.metric_intervals as u64);
    digest.fold_u64(out.final_nodes_used as u64);
    digest.fold_f64(out.peak_memory_gib);
    digest.fold_f64(out.latency.percentile(0.5));
    digest.fold_f64(out.latency.percentile(0.95));
    digest.fold_f64(out.latency.percentile(0.99));
    for series in [
        &out.achieved_qps,
        &out.target_qps,
        &out.memory_gib,
        &out.p95_ms,
        &out.total_replicas,
    ] {
        for pt in series.points() {
            digest.fold_f64(pt.time);
            digest.fold_f64(pt.value);
        }
    }
    digest
}

/// The parallel-engine section group: the sequential engine (`par_seq`)
/// and the sharded windowed engine at [`PAR_SHARDS`] shards across
/// [`PAR_THREADS`] worker counts, all on one shared Figure 19-class
/// scenario. Exits nonzero if any thread count produces a different
/// digest — thread-count invariance is this engine's core contract, so a
/// violation is a correctness failure, not a perf data point.
#[allow(clippy::disallowed_methods)] // benchmarks measure real elapsed time
fn bench_par(scale: &Scale) -> Vec<Section> {
    let calib = Calibration::cpu_only();
    let cfg_model = configs::rm1();
    let p = plan(&cfg_model, Platform::CpuOnly, Strategy::Elastic, &calib);
    let schedule = TrafficSchedule::figure19(scale.sim_base_qps, scale.sim_duration / 8.0);
    let cfg = SimulationConfig::new(schedule, scale.sim_duration, 4321);

    let mut sections = Vec::new();

    // lint::allow(wall_clock): benchmarks measure real elapsed time by definition
    let t0 = Instant::now();
    let seq = Simulation::run(&p, &calib, &cfg);
    let wall = t0.elapsed().as_secs_f64();
    sections.push(Section::new(
        "par_seq",
        wall,
        seq.completed_queries,
        digest_outcome(&seq),
    ));

    let mut digests: Vec<String> = Vec::new();
    for threads in PAR_THREADS {
        let par = ParSimConfig::new(PAR_SHARDS, threads);
        // lint::allow(wall_clock): benchmarks measure real elapsed time by definition
        let t0 = Instant::now();
        let out = ParSimulation::run(&p, &calib, &cfg, &par);
        let wall = t0.elapsed().as_secs_f64();
        let digest = digest_outcome(&out);
        digests.push(digest.hex());
        sections.push(Section::new(
            &format!("par_sim_t{threads}"),
            wall,
            out.completed_queries,
            digest,
        ));
    }
    if digests.iter().any(|d| d != &digests[0]) {
        eprintln!(
            "perfsuite: par_sim digests diverged across thread counts {PAR_THREADS:?}: {digests:?}"
        );
        std::process::exit(1);
    }
    sections
}

/// The 1000-node synthetic fleet: a heavy Figure 19-class scenario with a
/// hard 1000-node budget and a deep replica ceiling, run on the parallel
/// engine at full width. Exercises the sharded core under sustained
/// HPA churn and large pod sets rather than at toy cluster sizes.
#[allow(clippy::disallowed_methods)] // benchmarks measure real elapsed time
fn bench_fleet() -> Section {
    let calib = Calibration::cpu_only();
    let cfg_model = configs::rm1();
    let p = plan(&cfg_model, Platform::CpuOnly, Strategy::Elastic, &calib);
    let schedule = TrafficSchedule::figure19(400.0, 30.0);
    let mut cfg = SimulationConfig::new(schedule, 240.0, 77);
    cfg.max_nodes = Some(1000);
    cfg.max_replicas = 2048;
    cfg.fail_node_at = Some(90.0);

    let par = ParSimConfig::new(PAR_SHARDS, PAR_THREADS[PAR_THREADS.len() - 1]);
    // lint::allow(wall_clock): benchmarks measure real elapsed time by definition
    let t0 = Instant::now();
    let out = ParSimulation::run(&p, &calib, &cfg, &par);
    let wall = t0.elapsed().as_secs_f64();
    Section::new(
        "fleet_par",
        wall,
        out.completed_queries,
        digest_outcome(&out),
    )
}

//! Calibration inspector: prints the steady-state metrics every figure
//! depends on, so calibration constants can be sanity-checked at a glance.
//!
//! Run with `cargo run -p er-bench --bin calibrate --release`.

#![forbid(unsafe_code)]

use elasticrec::{plan, Calibration, Platform, ServingPlan, SteadyState, Strategy};
use er_model::configs;

fn describe(p: &ServingPlan, target: f64, calib: &Calibration) {
    let s = SteadyState::size(p, target, calib).expect("sizing fits");
    let fe = p.frontend();
    println!(
        "  {:<12} shards={:<3} nodes={:<3} mem={:>8.1} GiB  fe_busy={:>6.1} ms fe_qps={:>6.1} fe_reps={}",
        format!("{:?}", p.strategy),
        p.num_shards(),
        s.nodes_used,
        s.memory_bytes as f64 / (1u64 << 30) as f64,
        fe.service.busy_secs() * 1e3,
        fe.qps_max(),
        s.replicas_of(&fe.name),
    );
    // Table-0 shard detail for Elastic plans.
    if matches!(p.strategy, Strategy::Elastic) {
        let plan0 = &p.table_plans[0];
        print!("      t0 shards:");
        for (i, (k, j)) in plan0.shards().into_iter().enumerate() {
            let name = format!("emb-t0-s{i}");
            let spec = p.shards.iter().find(|s| s.name == name).unwrap();
            print!(
                " s{i}[{:.2}% rows, n_s={:.0}, qps={:.0}, reps={}]",
                100.0 * (j - k) as f64 / plan0.table_len() as f64,
                spec.expected_gathers,
                spec.qps_max(),
                s.replicas_of(&name),
            );
        }
        println!();
    }
}

fn main() {
    for (label, platform, calib, target) in [
        (
            "CPU-only @100",
            Platform::CpuOnly,
            Calibration::cpu_only(),
            100.0,
        ),
        (
            "CPU-GPU @200",
            Platform::CpuGpu,
            Calibration::cpu_gpu(),
            200.0,
        ),
    ] {
        println!("\n===== {label} =====");
        for cfg in configs::all_rms() {
            println!("{}:", cfg.name);
            let mw = plan(&cfg, platform, Strategy::ModelWise, &calib);
            let el = plan(&cfg, platform, Strategy::Elastic, &calib);
            describe(&mw, target, &calib);
            describe(&el, target, &calib);
            let mw_s = SteadyState::size(&mw, target, &calib).unwrap();
            let el_s = SteadyState::size(&el, target, &calib).unwrap();
            println!(
                "      memory ratio {:.2}x   node ratio {:.2}x",
                mw_s.memory_bytes as f64 / el_s.memory_bytes as f64,
                mw_s.nodes_used as f64 / el_s.nodes_used as f64
            );
            if platform == Platform::CpuGpu {
                let mc = plan(
                    &cfg,
                    platform,
                    Strategy::ModelWiseCached { gpu_hit_rate: 0.9 },
                    &calib,
                );
                describe(&mc, target, &calib);
                let mc_s = SteadyState::size(&mc, target, &calib).unwrap();
                println!(
                    "      cache-vs-mw mem {:.2}x   elastic-vs-cache mem {:.2}x",
                    mw_s.memory_bytes as f64 / mc_s.memory_bytes as f64,
                    mc_s.memory_bytes as f64 / el_s.memory_bytes as f64
                );
            }
        }
    }
}

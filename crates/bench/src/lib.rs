//! Benchmark harness crate: every table and figure of the paper has a
//! corresponding bench target under `benches/`, plus reporting helpers
//! shared by those targets.

pub mod report;

//! Benchmark harness crate: every table and figure of the paper has a
//! corresponding bench target under `benches/`, plus reporting helpers
//! shared by those targets.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations, unreachable_pub)]

pub mod perf;
pub mod report;

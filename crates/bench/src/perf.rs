//! Shared plumbing for the `perfsuite` binary: determinism digests, the
//! `BENCH_perf.json` report format, and a schema validator the CI smoke
//! stage runs against the emitted file.
//!
//! The workspace deliberately has no JSON parser dependency (the vendored
//! `serde` stub only derives), so the report is written by hand and read
//! back by a small scanner that understands exactly this format. That is
//! fine: the file is machine-written by this crate and only ever consumed
//! by this crate and by humans.

use std::fmt::Write as _;

/// FNV-1a accumulator over the *bit patterns* of results.
///
/// Folding `f64::to_bits` (not rounded decimal strings) means two runs
/// produce the same digest iff their observable outputs are bit-identical
/// — the contract the zero-allocation refactor must preserve.
///
/// # Examples
///
/// ```
/// use er_bench::perf::Digest;
///
/// let mut a = Digest::new();
/// a.fold_f64(0.1 + 0.2);
/// let mut b = Digest::new();
/// b.fold_f64(0.3);
/// assert_ne!(a.value(), b.value()); // 0.1+0.2 != 0.3 bit-for-bit
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Digest(u64);

impl Default for Digest {
    fn default() -> Self {
        Self::new()
    }
}

impl Digest {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Creates an empty digest (FNV offset basis).
    pub fn new() -> Self {
        Self(Self::OFFSET)
    }

    /// Folds a raw 64-bit value, byte by byte.
    pub fn fold_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Folds the IEEE-754 bit pattern of `v`.
    pub fn fold_f64(&mut self, v: f64) {
        self.fold_u64(v.to_bits());
    }

    /// Current digest value.
    pub fn value(&self) -> u64 {
        self.0
    }

    /// Digest rendered the way the report stores it.
    pub fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }
}

/// One timed section of the suite.
#[derive(Debug, Clone)]
pub struct Section {
    name: String,
    wall_secs: f64,
    work_units: u64,
    digest: String,
    baseline_wall_secs: Option<f64>,
    baseline_digest: Option<String>,
}

impl Section {
    /// Creates a section from a measured wall time over `work_units` of work.
    pub fn new(name: &str, wall_secs: f64, work_units: u64, digest: Digest) -> Self {
        Self {
            name: name.to_string(),
            wall_secs,
            work_units,
            digest: digest.hex(),
            baseline_wall_secs: None,
            baseline_digest: None,
        }
    }

    /// Section name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Measured wall time in seconds.
    pub fn wall_secs(&self) -> f64 {
        self.wall_secs
    }

    /// Determinism digest (hex).
    pub fn digest(&self) -> &str {
        &self.digest
    }

    /// Work units per second, or 0 if the measurement was too fast to time.
    pub fn units_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.work_units as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// Speedup vs the attached baseline, if one was attached.
    pub fn speedup(&self) -> Option<f64> {
        self.baseline_wall_secs
            .filter(|_| self.wall_secs > 0.0)
            .map(|b| b / self.wall_secs)
    }
}

/// The whole suite run, serializable to `BENCH_perf.json`.
#[derive(Debug, Clone)]
pub struct PerfReport {
    mode: String,
    sections: Vec<Section>,
}

/// The `"schema"` marker every report carries; bump on format changes.
pub const SCHEMA: &str = "elasticrec-perfsuite-v1";

impl PerfReport {
    /// Creates an empty report for the given mode (`"full"` or `"smoke"`).
    pub fn new(mode: &str) -> Self {
        Self {
            mode: mode.to_string(),
            sections: Vec::new(),
        }
    }

    /// Appends a timed section.
    pub fn push(&mut self, section: Section) {
        self.sections.push(section);
    }

    /// Sections recorded so far.
    pub fn sections(&self) -> &[Section] {
        &self.sections
    }

    /// Attaches baseline wall times and digests from a previous report's
    /// JSON text, matched up by section name. Sections missing from the
    /// baseline are left without one.
    pub fn attach_baseline(&mut self, baseline_json: &str) {
        for s in &mut self.sections {
            if let Some(b) = scan_section(baseline_json, &s.name) {
                s.baseline_wall_secs = Some(b.wall_secs);
                s.baseline_digest = Some(b.digest);
            }
        }
    }

    /// Renders the report as JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
        let _ = writeln!(out, "  \"mode\": \"{}\",", self.mode);
        out.push_str("  \"sections\": [\n");
        for (i, s) in self.sections.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"name\": \"{}\",", s.name);
            let _ = writeln!(out, "      \"wall_secs\": {:.6},", s.wall_secs);
            let _ = writeln!(out, "      \"work_units\": {},", s.work_units);
            let _ = writeln!(out, "      \"units_per_sec\": {:.3},", s.units_per_sec());
            if let Some(b) = s.baseline_wall_secs {
                let _ = writeln!(out, "      \"baseline_wall_secs\": {b:.6},");
            }
            if let Some(sp) = s.speedup() {
                let _ = writeln!(out, "      \"speedup\": {sp:.3},");
            }
            if let Some(bd) = &s.baseline_digest {
                let _ = writeln!(out, "      \"baseline_digest\": \"{bd}\",");
                let _ = writeln!(
                    out,
                    "      \"digest_matches_baseline\": {},",
                    bd == &s.digest
                );
            }
            let _ = writeln!(out, "      \"digest\": \"{}\"", s.digest);
            out.push_str(if i + 1 < self.sections.len() {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Enforces the perf floor against the attached baseline: every
    /// section that has one must run at `floor` speedup or better.
    /// Sections without a baseline (new sections, renamed sections) are
    /// exempt — they have nothing to regress against.
    ///
    /// # Errors
    ///
    /// Returns one line per offending section.
    pub fn enforce_speedups(&self, floor: f64) -> Result<(), String> {
        let offenders: Vec<String> = self
            .sections
            .iter()
            .filter_map(|s| {
                s.speedup()
                    .filter(|&sp| sp < floor)
                    .map(|sp| format!("{} regressed to {sp:.3}x (floor {floor:.2}x)", s.name))
            })
            .collect();
        if offenders.is_empty() {
            Ok(())
        } else {
            Err(offenders.join("\n"))
        }
    }

    /// Human-readable summary for stdout.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<14} {:>12} {:>16} {:>10}  {:<18}",
            "section", "wall(s)", "units/sec", "speedup", "digest"
        );
        for s in &self.sections {
            let speedup = match s.speedup() {
                Some(sp) => format!("{sp:.2}x"),
                None => "-".to_string(),
            };
            let digest_note = match &s.baseline_digest {
                Some(bd) if bd == &s.digest => format!("{} (=base)", s.digest),
                Some(_) => format!("{} (DIFFERS)", s.digest),
                None => s.digest.clone(),
            };
            let _ = writeln!(
                out,
                "{:<14} {:>12.4} {:>16.0} {:>10}  {:<18}",
                s.name,
                s.wall_secs,
                s.units_per_sec(),
                speedup,
                digest_note
            );
        }
        out
    }
}

/// A section as read back from a report file.
#[derive(Debug, Clone, PartialEq)]
pub struct ScannedSection {
    /// Measured wall time in seconds.
    pub wall_secs: f64,
    /// Determinism digest (hex).
    pub digest: String,
}

/// Finds the named section in a report's JSON text and extracts its wall
/// time and digest. Returns `None` when the section (or a field) is absent
/// or malformed — a missing baseline is not an error.
pub fn scan_section(json: &str, name: &str) -> Option<ScannedSection> {
    let marker = format!("\"name\": \"{name}\"");
    let start = json.find(&marker)? + marker.len();
    // The section object ends at the next '}' — fields are flat scalars.
    let end = start + json[start..].find('}')?;
    let body = &json[start..end];
    let wall_secs: f64 = scan_field(body, "wall_secs")?.parse().ok()?;
    let digest = scan_field(body, "digest")?.trim_matches('"').to_string();
    Some(ScannedSection { wall_secs, digest })
}

/// Extracts the raw token following `"key": ` within `body`.
fn scan_field<'a>(body: &'a str, key: &str) -> Option<&'a str> {
    let marker = format!("\"{key}\": ");
    let start = body.find(&marker)? + marker.len();
    let rest = &body[start..];
    let end = rest.find([',', '\n']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

/// Validates that `json` looks like a well-formed perfsuite report:
/// schema marker, at least one section, and every section carrying a
/// positive wall time, a digest, and a throughput figure. Returns the
/// section count.
///
/// # Errors
///
/// Returns a human-readable description of the first violated rule.
pub fn validate_schema(json: &str) -> Result<usize, String> {
    if !json.contains(&format!("\"schema\": \"{SCHEMA}\"")) {
        return Err(format!("missing schema marker {SCHEMA:?}"));
    }
    if scan_field(json, "mode").is_none() {
        return Err("missing \"mode\" field".to_string());
    }
    let mut count = 0;
    let mut rest = json;
    while let Some(pos) = rest.find("\"name\": \"") {
        let after = &rest[pos + 9..];
        let name_end = after
            .find('"')
            .ok_or_else(|| "unterminated section name".to_string())?;
        let name = &after[..name_end];
        let section = scan_section(rest, name)
            .ok_or_else(|| format!("section {name:?} is missing wall_secs or digest"))?;
        if !section.wall_secs.is_finite() || section.wall_secs < 0.0 {
            return Err(format!(
                "section {name:?} has invalid wall_secs {}",
                section.wall_secs
            ));
        }
        if section.digest.len() != 16 || !section.digest.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(format!(
                "section {name:?} digest {:?} is not a 16-digit hex string",
                section.digest
            ));
        }
        count += 1;
        rest = &after[name_end..];
    }
    if count == 0 {
        return Err("report contains no sections".to_string());
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> PerfReport {
        let mut d1 = Digest::new();
        d1.fold_f64(1.5);
        let mut d2 = Digest::new();
        d2.fold_u64(7);
        let mut r = PerfReport::new("smoke");
        r.push(Section::new("event_queue", 0.25, 1000, d1));
        r.push(Section::new("fig19_sim", 2.0, 500, d2));
        r
    }

    #[test]
    fn digest_is_order_sensitive() {
        let mut a = Digest::new();
        a.fold_u64(1);
        a.fold_u64(2);
        let mut b = Digest::new();
        b.fold_u64(2);
        b.fold_u64(1);
        assert_ne!(a.value(), b.value());
    }

    #[test]
    fn digest_distinguishes_negative_zero() {
        let mut a = Digest::new();
        a.fold_f64(0.0);
        let mut b = Digest::new();
        b.fold_f64(-0.0);
        assert_ne!(a.value(), b.value(), "digest must be bit-exact, not ==");
    }

    #[test]
    fn report_round_trips_through_scanner() {
        let r = report();
        let json = r.to_json();
        let s = scan_section(&json, "event_queue").expect("section present");
        assert!((s.wall_secs - 0.25).abs() < 1e-9);
        assert_eq!(s.digest, r.sections()[0].digest());
        assert_eq!(validate_schema(&json), Ok(2));
    }

    #[test]
    fn baseline_attachment_computes_speedup() {
        let baseline = report().to_json();
        let mut current = report();
        current.sections[0].wall_secs = 0.125; // 2x faster
        current.attach_baseline(&baseline);
        let sp = current.sections()[0].speedup().expect("baseline attached");
        assert!((sp - 2.0).abs() < 1e-9);
        let json = current.to_json();
        assert!(json.contains("\"digest_matches_baseline\": true"));
        assert_eq!(validate_schema(&json), Ok(2));
    }

    #[test]
    fn baseline_digest_mismatch_is_reported() {
        let baseline = report().to_json();
        let mut current = report();
        let mut d = Digest::new();
        d.fold_u64(999);
        current.sections[0] = Section::new("event_queue", 0.25, 1000, d);
        current.attach_baseline(&baseline);
        assert!(current
            .to_json()
            .contains("\"digest_matches_baseline\": false"));
    }

    #[test]
    fn validator_rejects_malformed_reports() {
        assert!(validate_schema("{}").is_err());
        let json = report().to_json();
        assert!(validate_schema(&json.replace(SCHEMA, "bogus")).is_err());
        assert!(validate_schema(&json.replace("wall_secs", "wall_sex")).is_err());
        let broken = json.replace(
            &report().sections()[0].digest().to_string(),
            "nothexnothexnoth",
        );
        assert!(validate_schema(&broken).is_err());
    }

    #[test]
    fn speedup_floor_passes_and_fails_correctly() {
        let baseline = report().to_json();
        let mut current = report();
        current.attach_baseline(&baseline);
        // Identical wall times: speedup 1.0x, comfortably above 0.95x.
        assert_eq!(current.enforce_speedups(0.95), Ok(()));
        // A 20% regression on one section trips the floor and names it.
        current.sections[1].wall_secs = 2.5;
        let err = current.enforce_speedups(0.95).expect_err("regressed");
        assert!(err.contains("fig19_sim"), "{err}");
        assert!(err.contains("0.800x"), "{err}");
        assert!(!err.contains("event_queue"), "{err}");
    }

    #[test]
    fn speedup_floor_ignores_sections_without_baseline() {
        let mut r = report(); // no baseline attached at all
        r.sections[0].wall_secs = 1e9;
        assert_eq!(r.enforce_speedups(0.95), Ok(()));
    }

    #[test]
    fn missing_baseline_section_is_not_an_error() {
        let mut r = report();
        r.attach_baseline("{\"schema\": \"elasticrec-perfsuite-v1\", \"sections\": []}");
        assert_eq!(r.sections()[0].speedup(), None);
    }
}

//! Shared helpers for printing paper-style result tables.

/// Prints a section header for one experiment.
pub fn header(id: &str, title: &str) {
    println!();
    println!("==== {id}: {title} ====");
}

/// Prints one row of `label: value` pairs, aligned.
pub fn row(label: &str, cells: &[(&str, String)]) {
    let cells: Vec<String> = cells.iter().map(|(k, v)| format!("{k}={v}")).collect();
    println!("{label:<28} {}", cells.join("  "));
}

/// Formats a ratio like the paper quotes them, e.g. `2.2x`.
pub fn ratio(a: f64, b: f64) -> String {
    format!("{:.2}x", a / b)
}

/// Formats gibibytes.
pub fn gib(bytes: u64) -> String {
    format!("{:.2} GiB", bytes as f64 / (1u64 << 30) as f64)
}

//! Fixture: bytes + flops — the canonical dimensional-analysis bug the
//! er-units newtypes make unrepresentable, written in raw f64.

pub fn total_work(shard_bytes: f64, dense_flops: f64) -> f64 {
    // Adding a memory footprint to a compute count is meaningless.
    shard_bytes + dense_flops
}

//! Companion: the middle hop of the rpc -> cluster -> tensor chain.

use er_tensor::probe::probe_len;

/// Picks a slot for the probed entry.
pub(crate) fn choose_slot(m: Option<usize>) -> usize {
    probe_len(m) % 7
}

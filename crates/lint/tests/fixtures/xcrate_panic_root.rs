//! Companion: the public serving entry that roots the cross-crate
//! panic chain.

use er_cluster::placement::choose_slot;

/// Routes a query to its slot.
pub fn route(m: Option<usize>) -> usize {
    choose_slot(m)
}

//! Fixture: raw strings must not derail the lexer. The literal below
//! contains a `"#` that would fool naive hash matching, plus bait
//! (`Instant::now()`, `.unwrap()`) that must NOT be reported — while the
//! real `.unwrap()` after it MUST be.

pub fn template() -> &'static str {
    r##"bait: Instant::now() and x.unwrap() — note this "quote"# stays inside"##
}

pub fn serve(x: Option<u32>) -> u32 {
    x.unwrap()
}

//! Fixture: a panic two private hops away from a public serving entry
//! point. The token-level scan sees three unremarkable functions; only the
//! call-graph pass connects `serve` to the `.unwrap()` in `inner` and
//! reports the chain.

pub fn serve(x: Option<u32>) -> u32 {
    helper(x)
}

fn helper(x: Option<u32>) -> u32 {
    inner(x)
}

fn inner(x: Option<u32>) -> u32 {
    x.unwrap()
}

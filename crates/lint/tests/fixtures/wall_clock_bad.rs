//! Fixture: wall-clock reads that must be flagged in deterministic paths.

use std::time::{Instant, SystemTime};

pub fn elapsed_ms(start: Instant) -> u128 {
    let now = Instant::now(); // violation: wall_clock
    now.duration_since(start).as_millis()
}

pub fn unix_secs() -> u64 {
    let t = SystemTime::now(); // violation: wall_clock
    t.duration_since(std::time::UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0)
}

//! Fixture: wall-clock reads blessed by allow markers — must be clean.

use std::time::Instant;

pub fn fallback_timer() -> Instant {
    // lint::allow(wall_clock): plain-mode fallback timer, never feeds SimTime
    Instant::now()
}

pub fn inline_marker() -> Instant {
    Instant::now() // lint::allow(wall_clock): measured outside the simulation
}

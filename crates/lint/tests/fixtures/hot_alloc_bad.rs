//! Fixture: an allocation site reachable from the hot entry
//! `forward_ws` across the core -> tensor crate boundary.

/// Grows a scratch buffer — allocates on every call.
pub(crate) fn grow_scratch(n: usize) -> Vec<f32> {
    let mut v = Vec::new();
    v.resize(n, 0.0);
    v
}

//! Fixture: QPS × latency — Little's law in disguise. The product is a
//! dimensionless in-flight count, which er-units deliberately refuses to
//! express as an implicit `Mul`; spelling it in raw f64 must be flagged.

pub fn inflight(load_qps: f64, p95_latency: f64) -> f64 {
    load_qps * p95_latency
}

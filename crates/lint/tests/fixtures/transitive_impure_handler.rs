//! Companion: the replay-pure handler whose call graph reaches the
//! ambient RNG in the workload crate.

use er_workload::seed::seed_hint;

/// Handles one message; the model checker replays this, so every input
/// must arrive through the message.
pub fn on_msg(x: u64) -> u64 {
    x ^ seed_hint()
}

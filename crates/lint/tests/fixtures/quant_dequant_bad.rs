//! Fixture: hand-rolled dequantize-and-pool loops outside the blessed
//! quantized kernels (`crates/tensor/src/quant.rs`). Dequantization fixes
//! a reduction order ad hoc exactly like any other float reduction.

pub fn dequant_pool_i8(codes: &[i8], scale: f32) -> f32 {
    codes.iter().map(|&q| scale * f32::from(q)).sum::<f32>() // violation: float_reduction
}

pub fn dequant_pool_f16(halves: &[u16]) -> f32 {
    halves
        .iter()
        .map(|&h| f32::from_bits(u32::from(h) << 16))
        .sum::<f32>() // violation: float_reduction
}

pub fn integer_code_sums_are_fine(codes: &[i8]) -> i32 {
    codes.iter().map(i32::from).sum::<i32>()
}

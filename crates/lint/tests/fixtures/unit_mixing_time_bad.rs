//! Fixture: milliseconds mixed with seconds — same physical dimension,
//! different scale, silently off by 1000x in raw f64.

pub fn slo_margin(p95_ms: f64, budget_secs: f64) -> f64 {
    // A millisecond reading subtracted from a second budget.
    budget_secs - p95_ms
}

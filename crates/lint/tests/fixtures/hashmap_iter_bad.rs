//! Fixture: nondeterministic HashMap/HashSet iteration.

use std::collections::{HashMap, HashSet};

pub struct Tracker {
    in_flight: HashMap<u64, f64>,
    seen: HashSet<u64>,
}

impl Tracker {
    pub fn total(&self) -> f64 {
        self.in_flight.values().copied().fold(0.0, |a, b| a + b) // violation: hashmap_iter
    }

    pub fn drain_all(&mut self) {
        for id in &self.seen {
            // violation: hashmap_iter (loop header, previous line)
            let _ = id;
        }
    }

    pub fn lookup_is_fine(&self, id: u64) -> Option<f64> {
        self.in_flight.get(&id).copied()
    }
}

pub fn local_binding() -> usize {
    let mut counts = HashMap::new();
    counts.insert(1u32, 2u32);
    counts.iter().count() // violation: hashmap_iter
}

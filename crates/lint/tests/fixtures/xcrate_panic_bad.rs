//! Fixture: a panic site three crates deep on the serving path
//! (rpc -> cluster -> tensor). `pub(crate)`, so the long chain is the
//! only route that reaches it.

/// Returns the probed length; panics when the probe map has no entry.
pub(crate) fn probe_len(m: Option<usize>) -> usize {
    m.unwrap()
}

//! Fixture: nested block comments must not derail the lexer. A naive
//! scanner closes the comment at the first `*/` and reads the bait as
//! code; the real violation comes after the (fully closed) comment.

/* outer /* inner bait: x.unwrap() and panic!("no") */ still commented */
pub fn serve(x: Option<u32>) -> u32 {
    x.unwrap()
}

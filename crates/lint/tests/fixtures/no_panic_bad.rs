//! Fixture: panics in serving-path library code.

pub fn pick(xs: &[u32]) -> u32 {
    let first = xs.first().unwrap(); // violation: no_panic
    let last = xs.last().expect("non-empty"); // violation: no_panic
    if first > last {
        panic!("unsorted"); // violation: no_panic
    }
    *first
}

pub fn fine(xs: &[u32]) -> u32 {
    // unwrap_or and friends carry no panic and must not match.
    xs.first().copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_are_fine_in_tests() {
        let xs: Vec<u32> = vec![];
        assert!(xs.first().is_none());
        let _ = std::panic::catch_unwind(|| xs.first().unwrap());
    }
}

//! Fixture: an ambient input one crate away from a pure handler — the
//! handler's call graph reaches the thread RNG through er-workload.

/// Derives a seed hint from the ambient thread RNG (impure).
pub(crate) fn seed_hint() -> u64 {
    let r = thread_rng().next_u64();
    r ^ 0x9e37_79b9
}

//! Fixture: stale and unknown suppression markers that the workspace
//! `unused_allow` audit must flag.

// lint::allow(no_panic): the unwrap this blessed was removed long ago
pub fn tidy(x: u32) -> u32 {
    x + 1
}

// lint::allow(not_a_rule): typo'd rule names must not rot silently
pub fn renamed(x: u32) -> u32 {
    x + 2
}

pub fn live(x: Option<u32>) -> u32 {
    // lint::allow(no_panic): fixture-blessed unwrap stays suppressed
    x.unwrap()
}

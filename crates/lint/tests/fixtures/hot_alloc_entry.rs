//! Companion: the warm-path entry whose call graph reaches
//! `grow_scratch` in the tensor crate.

use er_tensor::scratch::grow_scratch;

/// The hot entry (`hot_alloc_entries` lists `forward_ws` by default).
pub fn forward_ws(n: usize) -> usize {
    grow_scratch(n).len()
}

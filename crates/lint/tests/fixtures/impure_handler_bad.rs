//! Fixture: an on_msg-shaped handler that smuggles in every ambient input
//! the `impure_handler` rule bans. Checked under a `handlers` path class.

// Ambient state outside any fn: flagged at the declaration.
static mut DELIVERED: u64 = 0;

/// Looks like a pure actor handler, but every line of the body is a
/// hidden input the model checker cannot replay.
pub fn on_msg(state: &u64, msg: &u64) -> (u64, Vec<u64>) {
    // Wall clock instead of message time.
    let now = std::time::Instant::now();
    // Ambient entropy instead of caller-enumerated choices.
    let jitter = thread_rng().gen_range(0..4);
    // Process environment instead of a parameter.
    let scale = std::env::var("HANDLER_SCALE").map_or(1, |v| v.len() as u64);
    let _ = now;
    (state + msg + jitter + scale, Vec::new())
}

/// A helper called from the handler is held to the same contract.
fn helper_seed() -> u64 {
    let t = SystemTime::now();
    let _ = t;
    7
}

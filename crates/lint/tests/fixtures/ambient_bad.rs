//! Fixture: ambient randomness and environment reads in deterministic code.

pub fn roll() -> u64 {
    let mut rng = thread_rng(); // violation: ambient_rng
    rng.next()
}

pub fn tuned_threads() -> usize {
    std::env::var("ER_THREADS") // violation: env_io
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

//! Fixture: ad-hoc f32 reductions outside the blessed kernel modules.

pub fn pool(xs: &[f32]) -> f32 {
    xs.iter().sum::<f32>() // violation: float_reduction
}

pub fn scaled(xs: &[f32]) -> f32 {
    xs.iter().copied().product::<f32>() // violation: float_reduction
}

pub fn integer_sums_are_fine(xs: &[u64]) -> u64 {
    xs.iter().sum::<u64>()
}

//! Keeps the static and dynamic allocation-freedom checks pointed at the
//! same code: the `hot_alloc_entries` list in `er-lint.toml` must contain
//! the entry point the counting-allocator test
//! (`crates/core/tests/zero_alloc.rs`) drives, and every configured entry
//! must still name a function that exists in the workspace — otherwise
//! one proof silently drifts away from the other.

use std::path::Path;

use er_lint::Config;

fn workspace_root() -> &'static Path {
    // crates/lint -> crates -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root")
}

fn workspace_config() -> Config {
    let toml = std::fs::read_to_string(workspace_root().join("er-lint.toml"))
        .expect("er-lint.toml at the workspace root");
    Config::from_toml_str(&toml).expect("er-lint.toml parses")
}

/// The dynamic test's entry point must be statically proven too.
#[test]
fn zero_alloc_entry_is_in_the_hot_alloc_list() {
    let cfg = workspace_config();
    assert!(
        cfg.hot_alloc_entries.iter().any(|e| e == "forward_ws"),
        "er-lint.toml hot_alloc_entries must include `forward_ws`, the \
         entry the zero_alloc counting-allocator test drives; got {:?}",
        cfg.hot_alloc_entries
    );
    let zero_alloc =
        std::fs::read_to_string(workspace_root().join("crates/core/tests/zero_alloc.rs"))
            .expect("zero_alloc test exists");
    assert!(
        zero_alloc.contains("forward_ws"),
        "crates/core/tests/zero_alloc.rs no longer drives forward_ws — \
         update hot_alloc_entries and this test together"
    );
}

/// Every configured hot entry still names a real function (same check the
/// binary performs via `hot_entry_drift`, pinned here so `cargo test`
/// catches a rename even without running the binary).
#[test]
fn every_hot_alloc_entry_matches_a_workspace_function() {
    let cfg = workspace_config();
    for entry in &cfg.hot_alloc_entries {
        let (file, name) = match entry.split_once("::") {
            Some((f, n)) => (Some(f), n),
            None => (None, entry.as_str()),
        };
        let needle = format!("fn {name}");
        let found = match file {
            Some(f) => std::fs::read_to_string(workspace_root().join(f))
                .map(|src| src.contains(&needle))
                .unwrap_or(false),
            None => {
                let mut hit = false;
                let crates_dir = workspace_root().join("crates");
                for krate in std::fs::read_dir(&crates_dir).expect("crates dir") {
                    let src_dir = krate.expect("dir entry").path().join("src");
                    if scan_dir_for(&src_dir, &needle) {
                        hit = true;
                        break;
                    }
                }
                hit
            }
        };
        assert!(
            found,
            "hot_alloc entry `{entry}` matches no function in the \
             workspace — the entry list has drifted from the code"
        );
    }
}

fn scan_dir_for(dir: &Path, needle: &str) -> bool {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return false;
    };
    for e in entries.flatten() {
        let p = e.path();
        if p.is_dir() {
            if scan_dir_for(&p, needle) {
                return true;
            }
        } else if p.extension().is_some_and(|x| x == "rs")
            && std::fs::read_to_string(&p)
                .map(|src| src.contains(needle))
                .unwrap_or(false)
        {
            return true;
        }
    }
    false
}

//! Per-rule fixture tests: each fixture file is lexed and checked exactly
//! as the `er-lint` binary would, under a path class that activates the
//! rule in question — positive fixtures must produce the expected
//! diagnostics, allowlisted fixtures must come back clean.

use er_lint::{check_file, check_workspace, render_json, Config, Diagnostic, FileContext};

fn check(path_class: &str, src: &str) -> Vec<Diagnostic> {
    let ctx = FileContext::new(path_class, src);
    check_file(&ctx, &Config::default())
}

/// The phase-2 path: the same source checked as the whole workspace, so
/// the call-graph `no_panic` replaces the token scan.
fn check_graph(path_class: &str, src: &str) -> Vec<Diagnostic> {
    let ctx = FileContext::new(path_class, src);
    check_workspace(std::slice::from_ref(&ctx), &Config::default())
}

/// The phase-3 path: several files checked as one mini-workspace, so
/// `use` chains resolve across crate boundaries.
fn check_graph_files(files: &[(&str, &str)]) -> Vec<Diagnostic> {
    let ctxs: Vec<FileContext<'_>> = files.iter().map(|&(p, s)| FileContext::new(p, s)).collect();
    check_workspace(&ctxs, &Config::default())
}

fn rules_and_lines(diags: &[Diagnostic]) -> Vec<(&'static str, u32)> {
    diags.iter().map(|d| (d.rule, d.line)).collect()
}

#[test]
fn wall_clock_fixture_flags_both_clock_reads() {
    let src = include_str!("fixtures/wall_clock_bad.rs");
    let diags = check("crates/sim/src/wall_clock_bad.rs", src);
    assert_eq!(
        rules_and_lines(&diags),
        vec![("wall_clock", 6), ("wall_clock", 11)],
        "{diags:#?}"
    );
    // Diagnostics carry file:line:col and the rule name — the format the
    // CI gate greps for.
    assert!(diags[0]
        .to_string()
        .starts_with("crates/sim/src/wall_clock_bad.rs:6:"));
    assert!(diags[0].to_string().contains("[wall_clock]"));
}

#[test]
fn wall_clock_allow_markers_suppress_cleanly() {
    let src = include_str!("fixtures/wall_clock_allowed.rs");
    let diags = check("crates/sim/src/wall_clock_allowed.rs", src);
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn wall_clock_fixture_is_clean_outside_scoped_paths() {
    let src = include_str!("fixtures/wall_clock_bad.rs");
    let diags = check("crates/metrics/src/wall_clock_bad.rs", src);
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn hashmap_iter_fixture_flags_iteration_not_lookup() {
    let src = include_str!("fixtures/hashmap_iter_bad.rs");
    let diags = check("crates/sim/src/hashmap_iter_bad.rs", src);
    assert_eq!(
        rules_and_lines(&diags),
        vec![
            ("hashmap_iter", 12),
            ("hashmap_iter", 16),
            ("hashmap_iter", 30)
        ],
        "{diags:#?}"
    );
}

#[test]
fn no_panic_fixture_flags_library_code_not_tests() {
    let src = include_str!("fixtures/no_panic_bad.rs");
    let diags = check("crates/rpc/src/no_panic_bad.rs", src);
    assert_eq!(
        rules_and_lines(&diags),
        vec![("no_panic", 4), ("no_panic", 5), ("no_panic", 7)],
        "{diags:#?}"
    );
}

#[test]
fn float_reduction_fixture_flags_f32_reductions_only() {
    let src = include_str!("fixtures/float_reduction_bad.rs");
    let diags = check("crates/model/src/float_reduction_bad.rs", src);
    assert_eq!(
        rules_and_lines(&diags),
        vec![("float_reduction", 4), ("float_reduction", 8)],
        "{diags:#?}"
    );
    // The same file inside a blessed kernel module is clean.
    let blessed = check("crates/tensor/src/matrix.rs", src);
    assert!(blessed.is_empty(), "{blessed:#?}");
}

#[test]
fn quant_dequant_fixture_flags_unblessed_dequant_loops() {
    let src = include_str!("fixtures/quant_dequant_bad.rs");
    let diags = check("crates/model/src/quant_dequant_bad.rs", src);
    assert_eq!(
        rules_and_lines(&diags),
        vec![("float_reduction", 6), ("float_reduction", 13)],
        "{diags:#?}"
    );
    // The same loops inside the blessed quantized-kernel module are fine:
    // that is where dequantization is supposed to live.
    let blessed = check("crates/tensor/src/quant.rs", src);
    assert!(blessed.is_empty(), "{blessed:#?}");
}

#[test]
fn ambient_fixture_flags_rng_and_env_reads() {
    let src = include_str!("fixtures/ambient_bad.rs");
    let diags = check("crates/partition/src/ambient_bad.rs", src);
    assert_eq!(
        rules_and_lines(&diags),
        vec![("ambient_rng", 4), ("env_io", 9)],
        "{diags:#?}"
    );
}

#[test]
fn fixtures_are_clean_when_classed_as_test_files() {
    // The same sources under tests/ or benches/ raise nothing for
    // hot-path rules (wall_clock still applies only via scoped paths).
    let src = include_str!("fixtures/no_panic_bad.rs");
    assert!(check("crates/rpc/tests/no_panic_bad.rs", src).is_empty());
    let src = include_str!("fixtures/float_reduction_bad.rs");
    assert!(check("crates/model/benches/float_reduction_bad.rs", src).is_empty());
}

#[test]
fn config_override_can_extend_a_scope() {
    let cfg = Config::from_toml_str("deterministic = [\"crates/metrics/src\"]").unwrap();
    let src = include_str!("fixtures/wall_clock_bad.rs");
    let ctx = FileContext::new("crates/metrics/src/qps.rs", src);
    let diags = check_file(&ctx, &cfg);
    assert_eq!(diags.len(), 2);
}

#[test]
fn unit_mixing_bytes_flops_fixture_flags_decls_and_the_add() {
    let src = include_str!("fixtures/unit_mixing_bytes_flops_bad.rs");
    let diags = check("crates/partition/src/cost.rs", src);
    assert_eq!(
        rules_and_lines(&diags),
        vec![
            ("unit_mixing", 4), // shard_bytes: f64
            ("unit_mixing", 4), // dense_flops: f64
            ("unit_mixing", 6), // bytes + flops
        ],
        "{diags:#?}"
    );
    assert!(diags[2].message.contains("bytes"), "{}", diags[2].message);
    assert!(diags[2].message.contains("flops"), "{}", diags[2].message);
}

#[test]
fn unit_mixing_time_fixture_flags_the_ms_secs_mix() {
    let src = include_str!("fixtures/unit_mixing_time_bad.rs");
    let diags = check("crates/cluster/src/hpa.rs", src);
    assert_eq!(
        rules_and_lines(&diags),
        vec![
            ("unit_mixing", 4), // p95_ms: f64
            ("unit_mixing", 4), // budget_secs: f64
            ("unit_mixing", 6), // secs - ms
        ],
        "{diags:#?}"
    );
    assert!(
        diags[2].message.contains("milliseconds"),
        "{}",
        diags[2].message
    );
}

#[test]
fn unit_mixing_qps_latency_fixture_flags_the_littles_law_product() {
    let src = include_str!("fixtures/unit_mixing_qps_latency_bad.rs");
    let diags = check("crates/cluster/src/hpa.rs", src);
    assert_eq!(
        rules_and_lines(&diags),
        vec![
            ("unit_mixing", 5), // load_qps: f64
            ("unit_mixing", 5), // p95_latency: f64
            ("unit_mixing", 6), // qps * latency
        ],
        "{diags:#?}"
    );
    assert!(diags[2].message.contains("Little"), "{}", diags[2].message);
}

#[test]
fn impure_handler_fixture_flags_every_ambient_input() {
    let src = include_str!("fixtures/impure_handler_bad.rs");
    // `crates/rpc/src/pure.rs` is in the `handlers` class (exact file).
    let diags = check("crates/rpc/src/pure.rs", src);
    assert_eq!(
        rules_and_lines(&diags),
        vec![
            ("impure_handler", 5),  // static mut
            ("impure_handler", 11), // Instant::now in on_msg
            ("impure_handler", 13), // thread_rng in on_msg
            ("impure_handler", 15), // env::var in on_msg
            ("impure_handler", 22), // SystemTime::now in helper
        ],
        "{diags:#?}"
    );
    // Diagnostics name the enclosing handler fn.
    assert!(
        diags[1].message.contains("`on_msg`"),
        "{}",
        diags[1].message
    );
    assert!(
        diags[4].message.contains("`helper_seed`"),
        "{}",
        diags[4].message
    );
    // The same source outside any handlers-classed path is clean.
    assert!(check("crates/metrics/src/qps.rs", src).is_empty());
}

#[test]
fn panic_reach_fixture_reports_the_cross_function_chain() {
    let src = include_str!("fixtures/panic_reach_bad.rs");
    let diags = check_graph("crates/rpc/src/panic_reach_bad.rs", src);
    assert_eq!(
        rules_and_lines(&diags),
        vec![("no_panic", 15)],
        "{diags:#?}"
    );
    assert_eq!(diags[0].chain, vec!["serve", "helper", "inner"]);
    assert!(
        diags[0].message.contains("serve -> helper -> inner"),
        "{}",
        diags[0].message
    );
    // The token-level scan sees the same site but knows no chain.
    let token = check("crates/rpc/src/panic_reach_bad.rs", src);
    assert_eq!(rules_and_lines(&token), vec![("no_panic", 15)]);
    assert!(token[0].chain.is_empty());
}

#[test]
fn raw_string_trap_fixture_flags_the_real_unwrap_not_the_bait() {
    let src = include_str!("fixtures/raw_string_trap_bad.rs");
    let diags = check_graph("crates/rpc/src/raw_string_trap_bad.rs", src);
    assert_eq!(
        rules_and_lines(&diags),
        vec![("no_panic", 11)],
        "{diags:#?}"
    );
    assert_eq!(diags[0].chain, vec!["serve"]);
}

#[test]
fn nested_comment_fixture_flags_the_real_unwrap_not_the_bait() {
    let src = include_str!("fixtures/nested_comment_bad.rs");
    let diags = check_graph("crates/rpc/src/nested_comment_bad.rs", src);
    assert_eq!(rules_and_lines(&diags), vec![("no_panic", 7)], "{diags:#?}");
    assert_eq!(diags[0].chain, vec!["serve"]);
}

#[test]
fn unused_allow_fixture_flags_stale_and_unknown_markers() {
    let src = include_str!("fixtures/unused_allow_bad.rs");
    let diags = check_graph("crates/rpc/src/unused_allow_bad.rs", src);
    assert_eq!(
        rules_and_lines(&diags),
        vec![("unused_allow", 4), ("unused_allow", 9)],
        "{diags:#?}"
    );
    assert!(
        diags[0].message.contains("no longer suppresses"),
        "{}",
        diags[0].message
    );
    assert!(
        diags[1].message.contains("names no known rule"),
        "{}",
        diags[1].message
    );
}

#[test]
fn hot_alloc_fixture_reports_the_cross_crate_chain_in_json() {
    let diags = check_graph_files(&[
        (
            "crates/core/src/entry.rs",
            include_str!("fixtures/hot_alloc_entry.rs"),
        ),
        (
            "crates/tensor/src/scratch.rs",
            include_str!("fixtures/hot_alloc_bad.rs"),
        ),
    ]);
    assert_eq!(
        rules_and_lines(&diags),
        vec![("hot_alloc", 6)],
        "{diags:#?}"
    );
    assert_eq!(diags[0].path, "crates/tensor/src/scratch.rs");
    assert_eq!(
        diags[0].chain,
        vec!["forward_ws", "er_tensor::grow_scratch"]
    );
    let json = render_json(&diags);
    assert!(json.contains("\"rule\": \"hot_alloc\""), "{json}");
    assert!(
        json.contains("\"chain\": [\"forward_ws\", \"er_tensor::grow_scratch\"]"),
        "{json}"
    );
}

#[test]
fn xcrate_panic_fixture_reports_the_three_crate_chain_in_json() {
    let diags = check_graph_files(&[
        (
            "crates/rpc/src/router.rs",
            include_str!("fixtures/xcrate_panic_root.rs"),
        ),
        (
            "crates/cluster/src/placement.rs",
            include_str!("fixtures/xcrate_panic_mid.rs"),
        ),
        (
            "crates/tensor/src/probe.rs",
            include_str!("fixtures/xcrate_panic_bad.rs"),
        ),
    ]);
    assert_eq!(rules_and_lines(&diags), vec![("no_panic", 7)], "{diags:#?}");
    assert_eq!(diags[0].path, "crates/tensor/src/probe.rs");
    assert_eq!(
        diags[0].chain,
        vec!["route", "er_cluster::choose_slot", "er_tensor::probe_len"]
    );
    let json = render_json(&diags);
    assert!(
        json.contains(
            "\"chain\": [\"route\", \"er_cluster::choose_slot\", \"er_tensor::probe_len\"]"
        ),
        "{json}"
    );
}

#[test]
fn transitive_impure_fixture_reports_the_handler_chain_in_json() {
    let diags = check_graph_files(&[
        (
            "crates/rpc/src/pure.rs",
            include_str!("fixtures/transitive_impure_handler.rs"),
        ),
        (
            "crates/workload/src/seed.rs",
            include_str!("fixtures/transitive_impure_bad.rs"),
        ),
    ]);
    assert_eq!(
        rules_and_lines(&diags),
        vec![("impure_handler", 6)],
        "{diags:#?}"
    );
    assert_eq!(diags[0].path, "crates/workload/src/seed.rs");
    assert_eq!(diags[0].chain, vec!["on_msg", "er_workload::seed_hint"]);
    let json = render_json(&diags);
    assert!(
        json.contains("\"chain\": [\"on_msg\", \"er_workload::seed_hint\"]"),
        "{json}"
    );
}

/// Every `*_bad.rs` fixture must be covered by an exact-expectation test
/// above AND must produce at least one diagnostic under its designated
/// path class — so adding a fixture without wiring its expectations fails
/// CI rather than rotting silently.
#[test]
fn every_bad_fixture_is_wired_to_expectations() {
    // fixture file -> (path class, graph pass?, count, companion files
    // checked in the same mini-workspace as (fixture name, path class)).
    type Companions = &'static [(&'static str, &'static str)];
    let expected: &[(&str, &str, bool, usize, Companions)] = &[
        ("wall_clock_bad.rs", "crates/sim/src/f.rs", false, 2, &[]),
        ("hashmap_iter_bad.rs", "crates/sim/src/f.rs", false, 3, &[]),
        ("no_panic_bad.rs", "crates/rpc/src/f.rs", false, 3, &[]),
        (
            "float_reduction_bad.rs",
            "crates/model/src/f.rs",
            false,
            2,
            &[],
        ),
        (
            "quant_dequant_bad.rs",
            "crates/model/src/f.rs",
            false,
            2,
            &[],
        ),
        ("ambient_bad.rs", "crates/partition/src/f.rs", false, 2, &[]),
        (
            "unit_mixing_bytes_flops_bad.rs",
            "crates/partition/src/cost.rs",
            false,
            3,
            &[],
        ),
        (
            "unit_mixing_time_bad.rs",
            "crates/cluster/src/hpa.rs",
            false,
            3,
            &[],
        ),
        (
            "unit_mixing_qps_latency_bad.rs",
            "crates/cluster/src/hpa.rs",
            false,
            3,
            &[],
        ),
        (
            "impure_handler_bad.rs",
            "crates/rpc/src/pure.rs",
            false,
            5,
            &[],
        ),
        ("panic_reach_bad.rs", "crates/rpc/src/f.rs", true, 1, &[]),
        (
            "raw_string_trap_bad.rs",
            "crates/rpc/src/f.rs",
            true,
            1,
            &[],
        ),
        ("nested_comment_bad.rs", "crates/rpc/src/f.rs", true, 1, &[]),
        ("unused_allow_bad.rs", "crates/rpc/src/f.rs", true, 2, &[]),
        (
            "hot_alloc_bad.rs",
            "crates/tensor/src/scratch.rs",
            true,
            1,
            &[("hot_alloc_entry.rs", "crates/core/src/entry.rs")],
        ),
        (
            "xcrate_panic_bad.rs",
            "crates/tensor/src/probe.rs",
            true,
            1,
            &[
                ("xcrate_panic_mid.rs", "crates/cluster/src/placement.rs"),
                ("xcrate_panic_root.rs", "crates/rpc/src/router.rs"),
            ],
        ),
        (
            "transitive_impure_bad.rs",
            "crates/workload/src/seed.rs",
            true,
            1,
            &[("transitive_impure_handler.rs", "crates/rpc/src/pure.rs")],
        ),
    ];
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let all_files: Vec<String> = std::fs::read_dir(&dir)
        .expect("fixtures dir")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    let mut on_disk: Vec<String> = all_files
        .iter()
        .filter(|n| n.ends_with("_bad.rs"))
        .cloned()
        .collect();
    on_disk.sort();
    let mut listed: Vec<String> = expected.iter().map(|(n, ..)| n.to_string()).collect();
    listed.sort();
    assert_eq!(
        on_disk, listed,
        "every *_bad.rs fixture needs an entry here (and a matching exact test)"
    );
    // Companion files (no `_bad`/`_allowed` suffix) must be wired into
    // some group — an orphan companion means a half-deleted fixture.
    for name in &all_files {
        if name.ends_with("_bad.rs") || name.ends_with("_allowed.rs") {
            continue;
        }
        assert!(
            expected
                .iter()
                .any(|(.., comps)| comps.iter().any(|(c, _)| c == name)),
            "{name} is not referenced as a companion of any fixture group"
        );
    }
    for (name, class, graph, count, companions) in expected {
        let src = std::fs::read_to_string(dir.join(name)).expect("fixture readable");
        let diags = if companions.is_empty() {
            if *graph {
                check_graph(class, &src)
            } else {
                check(class, &src)
            }
        } else {
            let comp_srcs: Vec<(String, String)> = companions
                .iter()
                .map(|(f, p)| {
                    (
                        p.to_string(),
                        std::fs::read_to_string(dir.join(f)).expect("companion readable"),
                    )
                })
                .collect();
            let mut files: Vec<(&str, &str)> = vec![(class, src.as_str())];
            files.extend(comp_srcs.iter().map(|(p, s)| (p.as_str(), s.as_str())));
            check_graph_files(&files)
        };
        assert_eq!(diags.len(), *count, "{name} under {class}: {diags:#?}");
    }
}

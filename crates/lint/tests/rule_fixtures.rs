//! Per-rule fixture tests: each fixture file is lexed and checked exactly
//! as the `er-lint` binary would, under a path class that activates the
//! rule in question — positive fixtures must produce the expected
//! diagnostics, allowlisted fixtures must come back clean.

use er_lint::{check_file, Config, Diagnostic, FileContext};

fn check(path_class: &str, src: &str) -> Vec<Diagnostic> {
    let ctx = FileContext::new(path_class, src);
    check_file(&ctx, &Config::default())
}

fn rules_and_lines(diags: &[Diagnostic]) -> Vec<(&'static str, u32)> {
    diags.iter().map(|d| (d.rule, d.line)).collect()
}

#[test]
fn wall_clock_fixture_flags_both_clock_reads() {
    let src = include_str!("fixtures/wall_clock_bad.rs");
    let diags = check("crates/sim/src/wall_clock_bad.rs", src);
    assert_eq!(
        rules_and_lines(&diags),
        vec![("wall_clock", 6), ("wall_clock", 11)],
        "{diags:#?}"
    );
    // Diagnostics carry file:line:col and the rule name — the format the
    // CI gate greps for.
    assert!(diags[0]
        .to_string()
        .starts_with("crates/sim/src/wall_clock_bad.rs:6:"));
    assert!(diags[0].to_string().contains("[wall_clock]"));
}

#[test]
fn wall_clock_allow_markers_suppress_cleanly() {
    let src = include_str!("fixtures/wall_clock_allowed.rs");
    let diags = check("crates/sim/src/wall_clock_allowed.rs", src);
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn wall_clock_fixture_is_clean_outside_scoped_paths() {
    let src = include_str!("fixtures/wall_clock_bad.rs");
    let diags = check("crates/metrics/src/wall_clock_bad.rs", src);
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn hashmap_iter_fixture_flags_iteration_not_lookup() {
    let src = include_str!("fixtures/hashmap_iter_bad.rs");
    let diags = check("crates/sim/src/hashmap_iter_bad.rs", src);
    assert_eq!(
        rules_and_lines(&diags),
        vec![
            ("hashmap_iter", 12),
            ("hashmap_iter", 16),
            ("hashmap_iter", 30)
        ],
        "{diags:#?}"
    );
}

#[test]
fn no_panic_fixture_flags_library_code_not_tests() {
    let src = include_str!("fixtures/no_panic_bad.rs");
    let diags = check("crates/rpc/src/no_panic_bad.rs", src);
    assert_eq!(
        rules_and_lines(&diags),
        vec![("no_panic", 4), ("no_panic", 5), ("no_panic", 7)],
        "{diags:#?}"
    );
}

#[test]
fn float_reduction_fixture_flags_f32_reductions_only() {
    let src = include_str!("fixtures/float_reduction_bad.rs");
    let diags = check("crates/model/src/float_reduction_bad.rs", src);
    assert_eq!(
        rules_and_lines(&diags),
        vec![("float_reduction", 4), ("float_reduction", 8)],
        "{diags:#?}"
    );
    // The same file inside a blessed kernel module is clean.
    let blessed = check("crates/tensor/src/matrix.rs", src);
    assert!(blessed.is_empty(), "{blessed:#?}");
}

#[test]
fn ambient_fixture_flags_rng_and_env_reads() {
    let src = include_str!("fixtures/ambient_bad.rs");
    let diags = check("crates/partition/src/ambient_bad.rs", src);
    assert_eq!(
        rules_and_lines(&diags),
        vec![("ambient_rng", 4), ("env_io", 9)],
        "{diags:#?}"
    );
}

#[test]
fn fixtures_are_clean_when_classed_as_test_files() {
    // The same sources under tests/ or benches/ raise nothing for
    // hot-path rules (wall_clock still applies only via scoped paths).
    let src = include_str!("fixtures/no_panic_bad.rs");
    assert!(check("crates/rpc/tests/no_panic_bad.rs", src).is_empty());
    let src = include_str!("fixtures/float_reduction_bad.rs");
    assert!(check("crates/model/benches/float_reduction_bad.rs", src).is_empty());
}

#[test]
fn config_override_can_extend_a_scope() {
    let cfg = Config::from_toml_str("deterministic = [\"crates/metrics/src\"]").unwrap();
    let src = include_str!("fixtures/wall_clock_bad.rs");
    let ctx = FileContext::new("crates/metrics/src/qps.rs", src);
    let diags = check_file(&ctx, &cfg);
    assert_eq!(diags.len(), 2);
}

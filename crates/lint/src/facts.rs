//! Phase 3, step 1: per-file structural fact extraction.
//!
//! The whole-workspace passes ([`crate::graph`]) operate on *facts*, not
//! token streams: every function a file defines (with its call sites and
//! panic / allocation / ambient-input sites), every `use` declaration
//! (including `pub use` re-exports and globs), every `lint::allow` marker,
//! and the file's per-file rule diagnostics computed *before* marker
//! suppression (so the unused-marker pass can tell which markers earned
//! their keep). Facts are pure functions of `(path, source, config)`,
//! which is what makes the incremental cache ([`crate::cache`]) sound: a
//! file whose content hash matches simply replays its serialized facts
//! without re-lexing.

use crate::config::Config;
use crate::lexer::TokenKind;
use crate::rules::{check_file_presuppress, Diagnostic, FileContext};

/// What kind of site a [`Site`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteKind {
    /// `.unwrap()` / `.expect(..)` / `panic!`-family — feeds `no_panic`.
    Panic,
    /// A heap-allocation shape (`Vec::new`, `vec!`, `Box::new`,
    /// `String::from`, `.clone()`, `.collect()`, `.to_vec()`) — feeds
    /// `hot_alloc`.
    Alloc,
    /// An ambient input (wall clock, ambient RNG, environment read) —
    /// feeds the transitive `impure_handler` pass.
    Impure,
}

/// One interesting token site inside a function body.
#[derive(Debug, Clone)]
pub struct Site {
    /// What the site feeds.
    pub kind: SiteKind,
    /// 1-based line of the site.
    pub line: u32,
    /// 1-based column of the site.
    pub col: u32,
    /// What the site spells, for the message (`` `.unwrap()` ``).
    pub what: String,
    /// Blessed by a `lint::allow(<rule>)` marker covering the site.
    pub suppressed: bool,
}

/// One outgoing call from a function body: the spelled path (one segment
/// for bare and method calls) plus its position, so `hot_alloc` markers
/// can bless individual call *edges* (a cold grow-only guard inside a hot
/// function cuts traversal at the call, not at the callee's body).
#[derive(Debug, Clone)]
pub struct CallRef {
    /// Path segments as spelled (`["er_tensor", "gather_pool_csr"]`,
    /// `["helper"]`).
    pub path: Vec<String>,
    /// True for `.name(..)` method calls.
    pub method: bool,
    /// 1-based line of the call's name token.
    pub line: u32,
    /// 1-based column of the call's name token.
    pub col: u32,
    /// A `lint::allow(hot_alloc)` marker covers the call line: the
    /// `hot_alloc` BFS does not follow this edge.
    pub hot_suppressed: bool,
}

/// One function definition with everything the graph passes need.
#[derive(Debug, Clone)]
pub struct FnFact {
    /// The function's name (methods and free functions alike).
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Declared with a bare `pub` (scoped `pub(..)` counts as private).
    pub is_pub: bool,
    /// Panic / alloc / impure sites inside the body, in token order.
    pub sites: Vec<Site>,
    /// Outgoing calls, in token order (duplicates preserved — each call
    /// site carries its own position and suppression state).
    pub calls: Vec<CallRef>,
}

/// One binding introduced by a `use` declaration, group-expanded: `use
/// a::{b, c as d, e::*};` yields three imports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Import {
    /// Declared `pub use` (a re-export visible to path resolution from
    /// other modules). `pub(crate)`/`pub(super)` count too — the resolver
    /// does not model visibility, it errs on the side of linking.
    pub is_pub: bool,
    /// Full path segments of the target (`["er_tensor", "gather",
    /// "gather_pool_csr"]`; `self`/`super`/`crate` kept as segments).
    pub path: Vec<String>,
    /// The local name bound (`d` for `c as d`, the last segment
    /// otherwise); `None` for a glob (`::*`).
    pub alias: Option<String>,
}

/// One `lint::allow(rule)` marker occurrence with its own position (the
/// suppression map in [`FileContext`] covers lines; this is the raw list
/// the unused-marker pass audits).
#[derive(Debug, Clone)]
pub struct MarkerFact {
    /// 1-based line of the comment holding the marker.
    pub line: u32,
    /// 1-based column of the comment token.
    pub col: u32,
    /// The rule name inside `lint::allow(..)`, verbatim.
    pub rule: String,
}

/// Everything the workspace passes need to know about one file.
#[derive(Debug, Clone, Default)]
pub struct FileFacts {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// Function definitions outside `#[cfg(test)]` items.
    pub fns: Vec<FnFact>,
    /// `use` declarations outside `#[cfg(test)]` items.
    pub imports: Vec<Import>,
    /// Every `lint::allow` marker in the file.
    pub markers: Vec<MarkerFact>,
    /// Per-file rule diagnostics **before** marker suppression.
    pub diags: Vec<Diagnostic>,
}

impl FileFacts {
    /// Reconstructs the marker-suppression check from the raw marker list
    /// (a marker covers its own line and the next), so cached facts can be
    /// replayed without re-lexing the file.
    pub fn suppressed(&self, line: u32, rule: &str) -> bool {
        self.markers
            .iter()
            .any(|m| (m.line == line || m.line + 1 == line) && (m.rule == rule || m.rule == "all"))
    }
}

/// Tokens that look like `name(` without being calls.
const NON_CALL_KEYWORDS: [&str; 14] = [
    "if", "while", "for", "match", "return", "loop", "fn", "as", "in", "move", "let", "else",
    "break", "continue",
];

/// True when the token before the `fn` keyword at `fn_ci` (skipping
/// `const`/`async`/`unsafe`/`extern "abi"` qualifiers) is a bare `pub`.
/// `pub(crate)`/`pub(super)` end on `)` and correctly read as private.
fn is_pub_fn(ctx: &FileContext<'_>, fn_ci: usize) -> bool {
    let mut j = fn_ci;
    while j >= 1 {
        let prev_kind = ctx.kind(j - 1);
        let qualifier = prev_kind == TokenKind::Literal
            || (prev_kind == TokenKind::Ident
                && matches!(ctx.text(j - 1), "const" | "async" | "unsafe" | "extern"));
        if !qualifier {
            break;
        }
        j -= 1;
    }
    j >= 1 && ctx.is_ident(j - 1, "pub")
}

/// Extracts all facts from one lexed file: runs the per-file rules
/// (pre-suppression) and walks the token stream once for function
/// definitions, sites, calls, and imports.
pub fn extract_facts(ctx: &FileContext<'_>, cfg: &Config) -> FileFacts {
    let mut facts = FileFacts {
        path: ctx.path.clone(),
        diags: check_file_presuppress(ctx, cfg),
        markers: ctx
            .raw_markers()
            .iter()
            .map(|(line, col, rule)| MarkerFact {
                line: *line,
                col: *col,
                rule: rule.clone(),
            })
            .collect(),
        ..FileFacts::default()
    };
    extract_fns_and_imports(ctx, &mut facts);
    facts
}

/// The single structural pass: tracks brace depth and a stack of open
/// function bodies so calls and sites land on the innermost enclosing
/// function; `#[cfg(test)]` items are dropped entirely.
fn extract_fns_and_imports(ctx: &FileContext<'_>, facts: &mut FileFacts) {
    let n = ctx.code.len();
    let mut fns: Vec<FnFact> = Vec::new();
    let mut test_fn: Vec<bool> = Vec::new();
    // (index into `fns`, brace depth of the body's opening `{`).
    let mut stack: Vec<(usize, u32)> = Vec::new();
    // A declared fn whose body `{` has not opened yet, with the paren
    // depth accumulated since the declaration (the body brace sits at
    // paren depth 0; a `;` there instead means a bodyless trait method).
    let mut pending: Option<usize> = None;
    let mut pending_paren: u32 = 0;
    let mut depth: u32 = 0;
    let mut ci = 0usize;

    while ci < n {
        match ctx.kind(ci) {
            TokenKind::Punct('(') if pending.is_some() => pending_paren += 1,
            TokenKind::Punct(')') if pending.is_some() => {
                pending_paren = pending_paren.saturating_sub(1);
            }
            TokenKind::Punct('{') => {
                depth += 1;
                if pending_paren == 0 {
                    if let Some(fi) = pending.take() {
                        stack.push((fi, depth));
                    }
                }
            }
            TokenKind::Punct('}') => {
                if stack.last().is_some_and(|&(_, d)| d == depth) {
                    stack.pop();
                }
                depth = depth.saturating_sub(1);
            }
            TokenKind::Punct(';') if pending_paren == 0 => pending = None,
            _ => {}
        }

        // A `use` declaration (item position: not `.use`, not a path
        // segment). Group syntax expands to one Import per leaf.
        if ctx.is_ident(ci, "use")
            && !ctx.is_test_token(ci)
            && (ci == 0 || !matches!(ctx.kind(ci - 1), TokenKind::PathSep | TokenKind::Punct('.')))
        {
            let is_pub = use_is_pub(ctx, ci);
            let end = parse_use_tree(ctx, ci + 1, &mut Vec::new(), is_pub, &mut facts.imports);
            ci = end;
            continue;
        }

        // A new definition: `fn name` (a `fn(..)` pointer type has no
        // name ident and falls through).
        if ctx.is_ident(ci, "fn") && ci + 1 < n && ctx.kind(ci + 1) == TokenKind::Ident {
            let tok = ctx.tok(ci);
            fns.push(FnFact {
                name: ctx.text(ci + 1).to_string(),
                line: tok.line,
                is_pub: is_pub_fn(ctx, ci),
                sites: Vec::new(),
                calls: Vec::new(),
            });
            test_fn.push(ctx.is_test_token(ci));
            pending = Some(fns.len() - 1);
            pending_paren = 0;
            ci += 1;
            continue;
        }

        let Some(&(cur, _)) = stack.last() else {
            ci += 1;
            continue;
        };
        if ctx.is_test_token(ci) {
            ci += 1;
            continue;
        }
        scan_body_token(ctx, ci, &mut fns[cur]);
        ci += 1;
    }

    facts.fns = fns
        .into_iter()
        .zip(test_fn)
        .filter(|(_, in_test)| !in_test)
        .map(|(f, _)| f)
        .collect();
}

/// Classifies one in-body code token: panic site, alloc site, impure
/// site, and/or a call reference on `cur`.
fn scan_body_token(ctx: &FileContext<'_>, ci: usize, cur: &mut FnFact) {
    let n = ctx.code.len();
    if ctx.kind(ci) != TokenKind::Ident {
        return;
    }
    let t = ctx.text(ci);
    let tok = *ctx.tok(ci);
    let next_is = |k: TokenKind| ci + 1 < n && ctx.kind(ci + 1) == k;
    let prev_is_dot = ci >= 1 && ctx.kind(ci - 1) == TokenKind::Punct('.');
    let mut site = |kind: SiteKind, what: String, rule: &str| {
        cur.sites.push(Site {
            kind,
            line: tok.line,
            col: tok.col,
            what,
            suppressed: ctx.suppressed(tok.line, rule),
        });
    };

    // Panic sites.
    if (t == "unwrap" || t == "expect") && prev_is_dot && next_is(TokenKind::Punct('(')) {
        site(SiteKind::Panic, format!("`.{t}()`"), "no_panic");
    } else if (t == "panic" || t == "todo" || t == "unimplemented")
        && next_is(TokenKind::Punct('!'))
    {
        site(SiteKind::Panic, format!("`{t}!`"), "no_panic");
    }

    // Alloc sites — exactly the documented shapes (see DESIGN §9): the
    // grow-only `resize`/`extend`/`with_capacity` family is deliberately
    // absent, so warm-up growth stays expressible while unconditional
    // per-call allocation is not.
    if (t == "Vec" || t == "Box" || t == "String")
        && ci + 2 < n
        && ctx.kind(ci + 1) == TokenKind::PathSep
        && ctx.kind(ci + 2) == TokenKind::Ident
    {
        let m = ctx.text(ci + 2);
        if ((t == "Vec" || t == "Box") && m == "new") || (t == "String" && m == "from") {
            site(SiteKind::Alloc, format!("`{t}::{m}`"), "hot_alloc");
        }
    } else if t == "vec" && next_is(TokenKind::Punct('!')) {
        site(SiteKind::Alloc, "`vec!`".to_string(), "hot_alloc");
    } else if prev_is_dot && (t == "clone" || t == "collect" || t == "to_vec") {
        // `.clone()` / `.to_vec()` need the call parens; `.collect` may
        // carry a turbofish first.
        let called =
            next_is(TokenKind::Punct('(')) || (t == "collect" && next_is(TokenKind::PathSep));
        if called {
            site(SiteKind::Alloc, format!("`.{t}()`"), "hot_alloc");
        }
    }

    // Impure sites (ambient inputs), for the transitive handler pass.
    if (t == "Instant" || t == "SystemTime")
        && ci + 2 < n
        && ctx.kind(ci + 1) == TokenKind::PathSep
        && ctx.is_ident(ci + 2, "now")
    {
        site(SiteKind::Impure, format!("`{t}::now()`"), "impure_handler");
    } else if t == "thread_rng"
        || t == "from_entropy"
        || (t == "random"
            && ci >= 2
            && ctx.kind(ci - 1) == TokenKind::PathSep
            && ctx.is_ident(ci - 2, "rand"))
    {
        site(SiteKind::Impure, format!("`{t}`"), "impure_handler");
    } else if t == "env"
        && ci + 2 < n
        && ctx.kind(ci + 1) == TokenKind::PathSep
        && ctx.kind(ci + 2) == TokenKind::Ident
        && crate::rules::ENV_CALLS.contains(&ctx.text(ci + 2))
    {
        site(
            SiteKind::Impure,
            format!("`env::{}`", ctx.text(ci + 2)),
            "impure_handler",
        );
    }

    // A call: `name(..)` or `.name(..)`, but not `name!(..)` macros and
    // not the name in a nested `fn name(` definition. The full spelled
    // path is reconstructed backwards over `seg::seg::name(`.
    if next_is(TokenKind::Punct('('))
        && !NON_CALL_KEYWORDS.contains(&t)
        && !(ci >= 1 && ctx.is_ident(ci - 1, "fn"))
    {
        let mut head = ci;
        while head >= 2
            && ctx.kind(head - 1) == TokenKind::PathSep
            && ctx.kind(head - 2) == TokenKind::Ident
        {
            head -= 2;
        }
        let path: Vec<String> = (head..=ci)
            .step_by(2)
            .map(|k| ctx.text(k).to_string())
            .collect();
        let method = head >= 1 && ctx.kind(head - 1) == TokenKind::Punct('.');
        cur.calls.push(CallRef {
            path,
            method,
            line: tok.line,
            col: tok.col,
            hot_suppressed: ctx.suppressed(tok.line, "hot_alloc"),
        });
    }
}

/// True when the `use` at code index `ci` is declared `pub` (bare or
/// scoped — re-export chains treat both as visible).
fn use_is_pub(ctx: &FileContext<'_>, ci: usize) -> bool {
    if ci == 0 {
        return false;
    }
    if ctx.is_ident(ci - 1, "pub") {
        return true;
    }
    // `pub(crate) use`: walk back over the `( .. )`.
    if ctx.kind(ci - 1) == TokenKind::Punct(')') {
        let mut j = ci - 1;
        let mut depth = 0usize;
        while j > 0 {
            match ctx.kind(j) {
                TokenKind::Punct(')') => depth += 1,
                TokenKind::Punct('(') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j -= 1;
        }
        return j >= 1 && ctx.is_ident(j - 1, "pub");
    }
    false
}

/// Parses a use tree starting at `ci` (just past `use` or a group comma),
/// appending leaf imports. Returns the code index just past the tree's
/// terminating `;` / `,` / `}` (the terminator itself is consumed for
/// `;`, left for the group caller otherwise).
fn parse_use_tree(
    ctx: &FileContext<'_>,
    mut ci: usize,
    prefix: &mut Vec<String>,
    is_pub: bool,
    out: &mut Vec<Import>,
) -> usize {
    let n = ctx.code.len();
    let depth_at_entry = prefix.len();
    let mut segs: Vec<String> = Vec::new();
    let flush = |segs: &mut Vec<String>,
                 prefix: &[String],
                 out: &mut Vec<Import>,
                 alias: Option<String>| {
        if segs.is_empty() {
            return;
        }
        let mut path: Vec<String> = prefix.to_vec();
        // `use a::b::{self}` / trailing `self` binds the module itself
        // under its own name.
        if segs.last().is_some_and(|s| s == "self") && segs.len() + path.len() > 1 {
            segs.pop();
        }
        path.append(segs);
        let alias = alias.or_else(|| path.last().cloned());
        out.push(Import {
            is_pub,
            path,
            alias,
        });
    };
    while ci < n {
        match ctx.kind(ci) {
            TokenKind::Ident if ctx.text(ci) == "as" => {
                // `path as name`.
                let alias = (ci + 1 < n && ctx.kind(ci + 1) == TokenKind::Ident)
                    .then(|| ctx.text(ci + 1).to_string());
                flush(&mut segs, prefix, out, alias);
                ci += 2;
            }
            TokenKind::Ident => {
                segs.push(ctx.text(ci).to_string());
                ci += 1;
            }
            TokenKind::PathSep => ci += 1,
            TokenKind::Punct('*') => {
                // Glob: bind everything under the prefix path.
                let mut path = prefix.clone();
                path.append(&mut segs);
                out.push(Import {
                    is_pub,
                    path,
                    alias: None,
                });
                ci += 1;
            }
            TokenKind::Punct('{') => {
                // Group: recurse per element with the accumulated prefix.
                prefix.append(&mut segs);
                ci += 1;
                loop {
                    ci = parse_use_tree(ctx, ci, prefix, is_pub, out);
                    if ci >= n || ctx.kind(ci) != TokenKind::Punct(',') {
                        break;
                    }
                    ci += 1;
                }
                if ci < n && ctx.kind(ci) == TokenKind::Punct('}') {
                    ci += 1;
                }
                prefix.truncate(depth_at_entry);
            }
            TokenKind::Punct(',') | TokenKind::Punct('}') => {
                flush(&mut segs, prefix, out, None);
                return ci;
            }
            TokenKind::Punct(';') => {
                flush(&mut segs, prefix, out, None);
                return ci + 1;
            }
            _ => {
                // Attributes or anything unexpected: bail out of this use.
                return ci + 1;
            }
        }
    }
    flush(&mut segs, prefix, out, None);
    ci
}

#[cfg(test)]
mod tests {
    use super::*;

    fn facts(path: &str, src: &str) -> FileFacts {
        let ctx = FileContext::new(path, src);
        extract_facts(&ctx, &Config::default())
    }

    #[test]
    fn imports_expand_groups_renames_and_globs() {
        let src = "\
use er_tensor::gather::gather_pool_csr;
pub use er_model::{Dlrm, configs::rm1 as small, prelude::*};
use crate::queue::{self, EventQueue};
";
        let f = facts("crates/core/src/x.rs", src);
        let got: Vec<(bool, String, Option<&str>)> = f
            .imports
            .iter()
            .map(|i| (i.is_pub, i.path.join("::"), i.alias.as_deref()))
            .collect();
        assert_eq!(
            got,
            vec![
                (
                    false,
                    "er_tensor::gather::gather_pool_csr".into(),
                    Some("gather_pool_csr")
                ),
                (true, "er_model::Dlrm".into(), Some("Dlrm")),
                (true, "er_model::configs::rm1".into(), Some("small")),
                (true, "er_model::prelude".into(), None),
                (false, "crate::queue".into(), Some("queue")),
                (false, "crate::queue::EventQueue".into(), Some("EventQueue")),
            ],
            "{f:#?}"
        );
    }

    #[test]
    fn calls_keep_spelled_paths_and_positions() {
        let src = "\
fn f(x: &M) {
    helper(1);
    er_tensor::reduce::dot_f32(a, b);
    x.clone_from(y);
    x.pick();
}
";
        let f = facts("crates/core/src/x.rs", src);
        let calls: Vec<(String, bool, u32)> = f.fns[0]
            .calls
            .iter()
            .map(|c| (c.path.join("::"), c.method, c.line))
            .collect();
        assert_eq!(
            calls,
            vec![
                ("helper".into(), false, 2),
                ("er_tensor::reduce::dot_f32".into(), false, 3),
                ("clone_from".into(), true, 4),
                ("pick".into(), true, 5),
            ]
        );
    }

    #[test]
    fn alloc_sites_cover_the_documented_shapes_only() {
        let src = "\
fn f() {
    let a = Vec::new();
    let b = vec![0; 4];
    let c = Box::new(1);
    let d = String::from(\"x\");
    let e = a.clone();
    let g: Vec<u32> = e.iter().copied().collect();
    let h = g.to_vec();
    let ok = g.len();
    let grown = Vec::with_capacity(4);
    let _ = (b, c, d, h, ok, grown);
}
";
        let f = facts("crates/core/src/x.rs", src);
        let allocs: Vec<u32> = f.fns[0]
            .sites
            .iter()
            .filter(|s| s.kind == SiteKind::Alloc)
            .map(|s| s.line)
            .collect();
        assert_eq!(allocs, vec![2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn vec_new_as_a_bare_function_reference_is_still_a_site() {
        let src = "fn f(out: &mut Vec<Vec<u32>>) { out.resize_with(4, Vec::new); }";
        let f = facts("crates/core/src/x.rs", src);
        assert_eq!(
            f.fns[0]
                .sites
                .iter()
                .filter(|s| s.kind == SiteKind::Alloc)
                .count(),
            1
        );
    }

    #[test]
    fn hot_alloc_markers_bless_sites_and_call_edges() {
        let src = "\
fn f() {
    // lint::allow(hot_alloc): cold grow-only guard
    let a = Vec::new();
    grow_buffers();
    let _ = a;
}
";
        let f = facts("crates/core/src/x.rs", src);
        let site = f.fns[0]
            .sites
            .iter()
            .find(|s| s.kind == SiteKind::Alloc)
            .unwrap();
        assert!(site.suppressed);
        // The marker covers lines 2-3 only; the call on line 4 is live.
        let grow = f.fns[0]
            .calls
            .iter()
            .find(|c| c.path == ["grow_buffers"])
            .unwrap();
        assert!(!grow.hot_suppressed);
        let src2 = "\
fn f() {
    // lint::allow(hot_alloc): cold grow-only guard
    grow_buffers();
}
";
        let f2 = facts("crates/core/src/x.rs", src2);
        assert!(f2.fns[0].calls[0].hot_suppressed);
    }

    #[test]
    fn impure_sites_and_markers_are_extracted_everywhere() {
        let src = "\
fn helper_seed() -> u64 {
    let t = SystemTime::now();
    let _ = std::env::var(\"SEED\");
    0
}
";
        // Not a handler-classed file: no per-file diags, but the sites are
        // still extracted for the transitive pass.
        let f = facts("crates/workload/src/x.rs", src);
        assert!(f.diags.is_empty());
        let impure: Vec<u32> = f.fns[0]
            .sites
            .iter()
            .filter(|s| s.kind == SiteKind::Impure)
            .map(|s| s.line)
            .collect();
        assert_eq!(impure, vec![2, 3]);
    }

    #[test]
    fn cfg_test_items_produce_no_facts() {
        let src = "\
pub fn live() -> u32 { 1 }

#[cfg(test)]
mod tests {
    use er_model::Dlrm;
    fn t() { let v = Vec::new(); let _ = v; }
}
";
        let f = facts("crates/core/src/x.rs", src);
        assert_eq!(f.fns.len(), 1);
        assert!(f.imports.is_empty());
    }
}

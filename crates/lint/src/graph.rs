//! Phase 3: whole-workspace call-graph passes.
//!
//! Phase 2 linked calls by name within a crate; this phase builds one
//! inter-crate graph from the resolved imports ([`crate::resolve`]) and
//! runs four passes over it:
//!
//! * **`no_panic`** — a panic site is reported when it is *reachable
//!   through calls* from a `pub fn` in a serving-scope file, now across
//!   crate boundaries (`rpc → cluster → tensor`). The diagnostic carries
//!   the shortest call chain, crate-qualified where it crosses crates
//!   (`serve -> er_cluster::choose -> er_tensor::probe`).
//! * **`hot_alloc`** — the warm serving fast path (the entry list in
//!   `er-lint.toml`, kept in sync with the dynamic `alloc-count` test)
//!   must reach no allocation site. A `lint::allow(hot_alloc)` marker on
//!   a *call* severs that edge (blessing a cold grow-only guard); on an
//!   allocation site it blesses the site itself.
//! * **transitive `impure_handler`** — purity propagates through the
//!   graph: a pure handler calling a helper in another file or crate that
//!   reads ambient inputs is flagged at the helper's site, chain attached.
//! * **`unused_allow`** — a `lint::allow(rule)` marker that no longer
//!   suppresses any diagnostic or site rots silently after refactors;
//!   report it (and unknown rule names) so markers stay honest.
//!
//! [`check_workspace`] lexes and extracts in-process;
//! [`check_workspace_facts`] is the cache-friendly entry point the binary
//! uses (facts replay from `target/er-lint-cache` when file hashes match).

use std::collections::VecDeque;

use crate::config::Config;
use crate::facts::{extract_facts, FileFacts, SiteKind};
use crate::resolve::{crate_display, Workspace};
use crate::rules::{is_test_or_tool_path, Diagnostic, FileContext, RULES};

/// Lints the workspace as one unit: every per-file rule plus the four
/// call-graph passes, in one deterministically sorted stream.
pub fn check_workspace(files: &[FileContext<'_>], cfg: &Config) -> Vec<Diagnostic> {
    let facts: Vec<FileFacts> = files.iter().map(|ctx| extract_facts(ctx, cfg)).collect();
    check_workspace_facts(&facts, cfg)
}

/// The fact-level entry point: identical output to [`check_workspace`],
/// but consumable from cached [`FileFacts`] without re-lexing.
pub fn check_workspace_facts(facts: &[FileFacts], cfg: &Config) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in facts {
        out.extend(
            f.diags
                .iter()
                .filter(|d| !f.suppressed(d.line, d.rule))
                .cloned(),
        );
    }
    let ws = Workspace::build(facts);
    no_panic_pass(&ws, cfg, &mut out);
    hot_alloc_pass(&ws, cfg, &mut out);
    impure_pass(&ws, cfg, &mut out);
    unused_allow_pass(facts, &mut out);
    out.sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    out
}

/// Multi-source BFS over the workspace graph, keeping parent pointers for
/// shortest-chain reconstruction. With `hot` set, call edges blessed by a
/// `lint::allow(hot_alloc)` marker are not followed.
fn bfs(ws: &Workspace<'_>, roots: &[usize], hot: bool) -> (Vec<bool>, Vec<Option<usize>>) {
    let n = ws.nodes.len();
    let mut visited = vec![false; n];
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut queue = VecDeque::new();
    for &r in roots {
        if !visited[r] {
            visited[r] = true;
            queue.push_back(r);
        }
    }
    while let Some(i) = queue.pop_front() {
        for e in &ws.edges[i] {
            if hot && e.hot_suppressed {
                continue;
            }
            if !visited[e.to] {
                visited[e.to] = true;
                parent[e.to] = Some(i);
                queue.push_back(e.to);
            }
        }
    }
    (visited, parent)
}

/// The shortest call chain ending at `ni`, crate-qualified relative to
/// the chain's root (`serve -> er_tensor::probe_len`).
fn chain_to(ws: &Workspace<'_>, parent: &[Option<usize>], ni: usize) -> Vec<String> {
    let mut idxs = vec![ni];
    let mut at = ni;
    while let Some(p) = parent[at] {
        idxs.push(p);
        at = p;
    }
    idxs.reverse();
    let root_crate = ws.nodes[idxs[0]].krate.clone();
    idxs.iter()
        .map(|&i| {
            let name = ws.func(i).name.clone();
            if ws.nodes[i].krate == root_crate {
                name
            } else {
                format!("{}::{name}", crate_display(&ws.nodes[i].krate))
            }
        })
        .collect()
}

/// Graph `no_panic`: unsuppressed panic sites reachable from a `pub fn`
/// defined in a serving-scope file, across crate boundaries.
fn no_panic_pass(ws: &Workspace<'_>, cfg: &Config, out: &mut Vec<Diagnostic>) {
    let roots: Vec<usize> = (0..ws.nodes.len())
        .filter(|&i| ws.func(i).is_pub && Config::in_paths(&ws.file(i).path, &cfg.serving))
        .collect();
    let (visited, parent) = bfs(ws, &roots, false);
    for (i, _) in visited.iter().enumerate().filter(|(_, v)| **v) {
        let chain = chain_to(ws, &parent, i);
        let via = chain.join(" -> ");
        let root = chain[0].clone();
        for site in ws.func(i).sites.iter() {
            if site.kind != SiteKind::Panic || site.suppressed {
                continue;
            }
            out.push(Diagnostic {
                path: ws.file(i).path.clone(),
                line: site.line,
                col: site.col,
                rule: "no_panic",
                message: format!(
                    "{} can panic and is reachable from public serving fn `{root}` via {via}; return a typed error up the chain, or add `// lint::allow(no_panic): <invariant>` at the site",
                    site.what
                ),
                chain: chain.clone(),
            });
        }
    }
}

/// Static allocation-freedom of the warm serving fast path.
fn hot_alloc_pass(ws: &Workspace<'_>, cfg: &Config, out: &mut Vec<Diagnostic>) {
    let roots = hot_entry_nodes(ws, cfg);
    let (visited, parent) = bfs(ws, &roots, true);
    for (i, _) in visited.iter().enumerate().filter(|(_, v)| **v) {
        let chain = chain_to(ws, &parent, i);
        let via = chain.join(" -> ");
        let root = chain[0].clone();
        for site in ws.func(i).sites.iter() {
            if site.kind != SiteKind::Alloc || site.suppressed {
                continue;
            }
            out.push(Diagnostic {
                path: ws.file(i).path.clone(),
                line: site.line,
                col: site.col,
                rule: "hot_alloc",
                message: format!(
                    "{} allocates and is reachable from hot entry `{root}` via {via}; the warm fast path must reuse workspace buffers — hoist the allocation into setup, or bless a grow-only guard with `// lint::allow(hot_alloc): <reason>`",
                    site.what
                ),
                chain: chain.clone(),
            });
        }
    }
}

/// The node indices the `hot_alloc_entries` config names. Each entry is a
/// bare fn name or `path.rs::name`.
fn hot_entry_nodes(ws: &Workspace<'_>, cfg: &Config) -> Vec<usize> {
    let mut roots = Vec::new();
    for entry in &cfg.hot_alloc_entries {
        roots.extend(match_entry(ws, entry));
    }
    roots.sort_unstable();
    roots.dedup();
    roots
}

/// Nodes matching one entry spec.
fn match_entry(ws: &Workspace<'_>, entry: &str) -> Vec<usize> {
    if let Some((path, name)) = entry.split_once("::") {
        (0..ws.nodes.len())
            .filter(|&i| ws.file(i).path == path && ws.func(i).name == name)
            .collect()
    } else {
        ws.nodes_named(entry)
    }
}

/// Config-drift check for the binary: `hot_alloc_entries` entries that
/// match no function in the scanned workspace. Kept out of
/// [`check_workspace_facts`] so fixture-sized workspaces don't trip over
/// the real entry list.
pub fn hot_entry_drift(facts: &[FileFacts], cfg: &Config) -> Vec<Diagnostic> {
    let ws = Workspace::build(facts);
    let mut out = Vec::new();
    for entry in &cfg.hot_alloc_entries {
        if match_entry(&ws, entry).is_empty() {
            out.push(Diagnostic {
                path: "er-lint.toml".to_string(),
                line: 1,
                col: 1,
                rule: "hot_alloc",
                message: format!(
                    "hot_alloc entry `{entry}` matches no function in the workspace; the entry list has drifted from the code — update er-lint.toml (and keep zero_alloc.rs in sync)"
                ),
                chain: Vec::new(),
            });
        }
    }
    out
}

/// Transitive purity: impure sites in non-handler files reachable from
/// any function defined in a handler-classed file. (Sites *inside*
/// handler files are the per-file `impure_handler` rule's job.)
fn impure_pass(ws: &Workspace<'_>, cfg: &Config, out: &mut Vec<Diagnostic>) {
    let roots: Vec<usize> = (0..ws.nodes.len())
        .filter(|&i| Config::in_paths(&ws.file(i).path, &cfg.handlers))
        .collect();
    let (visited, parent) = bfs(ws, &roots, false);
    for (i, _) in visited.iter().enumerate().filter(|(_, v)| **v) {
        if Config::in_paths(&ws.file(i).path, &cfg.handlers) {
            continue;
        }
        let chain = chain_to(ws, &parent, i);
        let via = chain.join(" -> ");
        let root = chain[0].clone();
        for site in ws.func(i).sites.iter() {
            if site.kind != SiteKind::Impure || site.suppressed {
                continue;
            }
            out.push(Diagnostic {
                path: ws.file(i).path.clone(),
                line: site.line,
                col: site.col,
                rule: "impure_handler",
                message: format!(
                    "{} is an ambient input reachable from handler fn `{root}` via {via}; purity is transitive — the model checker can only replay what is a pure function of handler inputs, so thread this through the message or state",
                    site.what
                ),
                chain: chain.clone(),
            });
        }
    }
}

/// Stale-marker audit: every `lint::allow(rule)` marker must still
/// suppress a diagnostic or sit on a site/call of its rule.
fn unused_allow_pass(facts: &[FileFacts], out: &mut Vec<Diagnostic>) {
    for f in facts {
        if is_test_or_tool_path(&f.path) {
            continue;
        }
        for m in &f.markers {
            let covered = |line: u32| line == m.line || line == m.line + 1;
            if m.rule != "all" && !RULES.contains(&m.rule.as_str()) {
                out.push(Diagnostic {
                    path: f.path.clone(),
                    line: m.line,
                    col: m.col,
                    rule: "unused_allow",
                    message: format!(
                        "`lint::allow({})` names no known rule; known rules: {}",
                        m.rule,
                        RULES.join(", ")
                    ),
                    chain: Vec::new(),
                });
                continue;
            }
            let matches_rule = |r: &str| m.rule == "all" || m.rule == r;
            let mut used = f
                .diags
                .iter()
                .any(|d| matches_rule(d.rule) && covered(d.line));
            for func in &f.fns {
                if used {
                    break;
                }
                used |= func.sites.iter().any(|s| {
                    covered(s.line)
                        && match s.kind {
                            SiteKind::Panic => matches_rule("no_panic"),
                            SiteKind::Alloc => matches_rule("hot_alloc"),
                            // An impure site anchors the graph rule *and*
                            // the per-file rule of its shape, so a marker
                            // stays live even where that rule is currently
                            // out of scope (it arms if the scope widens).
                            SiteKind::Impure => {
                                matches_rule("impure_handler")
                                    || (matches_rule("env_io") && s.what.contains("env::"))
                                    || (matches_rule("wall_clock") && s.what.contains("::now"))
                                    || (matches_rule("ambient_rng")
                                        && !s.what.contains("env::")
                                        && !s.what.contains("::now"))
                            }
                        }
                });
                // A hot_alloc marker on a call line cuts that edge — that
                // is a use even with no allocation on the line itself.
                used |= matches_rule("hot_alloc") && func.calls.iter().any(|c| covered(c.line));
            }
            if !used {
                out.push(Diagnostic {
                    path: f.path.clone(),
                    line: m.line,
                    col: m.col,
                    rule: "unused_allow",
                    message: format!(
                        "`lint::allow({})` no longer suppresses anything here; the code it blessed has moved or been fixed — remove the stale marker",
                        m.rule
                    ),
                    chain: Vec::new(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workspace(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let ctxs: Vec<FileContext<'_>> =
            files.iter().map(|&(p, s)| FileContext::new(p, s)).collect();
        check_workspace(&ctxs, &Config::default())
    }

    #[test]
    fn panic_reachable_through_two_hops_reports_the_chain() {
        let src = "\
pub fn serve(x: Option<u32>) -> u32 { helper(x) }
fn helper(x: Option<u32>) -> u32 { inner(x) }
fn inner(x: Option<u32>) -> u32 { x.unwrap() }
";
        let d = workspace(&[("crates/rpc/src/balancer.rs", src)]);
        assert_eq!(d.len(), 1, "{d:#?}");
        assert_eq!(d[0].rule, "no_panic");
        assert_eq!(d[0].line, 3);
        assert_eq!(d[0].chain, vec!["serve", "helper", "inner"]);
        assert!(d[0].message.contains("serve -> helper -> inner"));
    }

    #[test]
    fn unreachable_private_panic_is_not_reported() {
        let src = "\
pub fn serve() -> u32 { 1 }
fn dead(x: Option<u32>) -> u32 { x.unwrap() }
";
        let d = workspace(&[("crates/rpc/src/balancer.rs", src)]);
        assert!(d.is_empty(), "{d:#?}");
    }

    #[test]
    fn reachability_crosses_files_within_a_crate_but_not_crates() {
        let entry = "pub fn serve(x: Option<u32>) -> u32 { shared_helper(x) }";
        let helper = "pub(crate) fn shared_helper(x: Option<u32>) -> u32 { x.unwrap() }";
        // Same crate: the chain crosses the file boundary.
        let d = workspace(&[
            ("crates/rpc/src/server.rs", entry),
            ("crates/rpc/src/util.rs", helper),
        ]);
        assert_eq!(d.len(), 1, "{d:#?}");
        assert_eq!(d[0].path, "crates/rpc/src/util.rs");
        assert_eq!(d[0].chain, vec!["serve", "shared_helper"]);
        // Different crates, no import: no edge, no report (and
        // `shared_helper` is `pub(crate)`, so it is not a root on its own).
        let d = workspace(&[
            ("crates/rpc/src/server.rs", entry),
            ("crates/metrics/src/util.rs", helper),
        ]);
        assert!(d.is_empty(), "{d:#?}");
    }

    #[test]
    fn panic_reachable_across_crates_through_imports() {
        // rpc → cluster → tensor, each hop through a `use`. The tensor fn
        // is `pub(crate)`, so it is not a serving root itself and the
        // three-crate chain is the only way to reach it.
        let d = workspace(&[
            (
                "crates/rpc/src/entry.rs",
                "use er_cluster::placement::choose_slot;\n\
                 pub fn route(x: Option<u32>) -> u32 { choose_slot(x) }\n",
            ),
            (
                "crates/cluster/src/placement.rs",
                "use er_tensor::align::probe_len;\n\
                 pub(crate) fn choose_slot(x: Option<u32>) -> u32 { probe_len(x) }\n",
            ),
            (
                "crates/tensor/src/align.rs",
                "pub(crate) fn probe_len(x: Option<u32>) -> u32 { x.unwrap() }\n",
            ),
        ]);
        assert_eq!(d.len(), 1, "{d:#?}");
        assert_eq!(d[0].rule, "no_panic");
        assert_eq!(d[0].path, "crates/tensor/src/align.rs");
        assert_eq!(
            d[0].chain,
            vec!["route", "er_cluster::choose_slot", "er_tensor::probe_len"]
        );
    }

    #[test]
    fn allow_marker_suppresses_the_reachable_site() {
        let src = "\
pub fn serve(x: Option<u32>) -> u32 {
    // lint::allow(no_panic): validated by the planner before dispatch
    x.unwrap()
}
";
        let d = workspace(&[("crates/rpc/src/balancer.rs", src)]);
        assert!(d.is_empty(), "{d:#?}");
    }

    #[test]
    fn pub_fn_with_direct_panic_has_a_single_link_chain() {
        let src = "pub fn serve() { panic!(\"boom\") }";
        let d = workspace(&[("crates/model/src/dlrm.rs", src)]);
        assert_eq!(d.len(), 1, "{d:#?}");
        assert_eq!(d[0].chain, vec!["serve"]);
    }

    #[test]
    fn test_functions_and_tool_files_stay_out_of_the_graph() {
        let src = "\
pub fn serve(x: Option<u32>) -> u32 { x.unwrap_or(0) }

#[cfg(test)]
mod tests {
    fn serve_helper(x: Option<u32>) -> u32 { x.unwrap() }
}
";
        assert!(workspace(&[("crates/rpc/src/server.rs", src)]).is_empty());
        let bad = "pub fn serve(x: Option<u32>) -> u32 { x.unwrap() }";
        assert!(workspace(&[("crates/rpc/tests/it.rs", bad)]).is_empty());
    }

    #[test]
    fn method_calls_link_by_name() {
        let src = "\
pub fn serve(b: Balancer) -> u32 { b.pick() }
struct Balancer;
impl Balancer {
    fn pick(&self) -> u32 { panic!(\"empty\") }
}
";
        let d = workspace(&[("crates/rpc/src/balancer.rs", src)]);
        assert_eq!(d.len(), 1, "{d:#?}");
        assert_eq!(d[0].chain, vec!["serve", "pick"]);
    }

    #[test]
    fn hot_alloc_flags_allocation_reachable_from_an_entry() {
        // `forward_ws` is in the default entry list; the allocation sits
        // one import away in another crate.
        let d = workspace(&[
            (
                "crates/core/src/fastpath.rs",
                "use er_tensor::scratch::grow_scratch;\n\
                 pub fn forward_ws(n: usize) { grow_scratch(n); }\n",
            ),
            (
                "crates/tensor/src/scratch.rs",
                "pub fn grow_scratch(n: usize) { let v: Vec<f32> = Vec::new(); let _ = (v, n); }\n",
            ),
        ]);
        assert_eq!(d.len(), 1, "{d:#?}");
        assert_eq!(d[0].rule, "hot_alloc");
        assert_eq!(d[0].path, "crates/tensor/src/scratch.rs");
        assert_eq!(d[0].chain, vec!["forward_ws", "er_tensor::grow_scratch"]);
        assert!(d[0].message.contains("`Vec::new`"), "{}", d[0].message);
    }

    #[test]
    fn hot_alloc_marker_on_a_call_cuts_the_edge() {
        let d = workspace(&[(
            "crates/core/src/fastpath.rs",
            "\
pub fn forward_ws(n: usize) {
    // lint::allow(hot_alloc): grow-only warm-up guard, cold after first call
    grow(n);
}
fn grow(n: usize) { let v: Vec<f32> = Vec::new(); let _ = (v, n); }
",
        )]);
        assert!(d.is_empty(), "{d:#?}");
    }

    #[test]
    fn transitive_impure_handler_reports_the_cross_file_chain() {
        let d = workspace(&[
            (
                "crates/rpc/src/pure.rs",
                "use er_workload::jitter::seed_hint;\n\
                 pub fn on_msg(state: &u32, msg: &u32) -> u32 { state + msg + seed_hint() }\n",
            ),
            (
                "crates/workload/src/jitter.rs",
                "pub fn seed_hint() -> u32 { let t = Instant::now(); let _ = t; 0 }\n",
            ),
        ]);
        assert_eq!(d.len(), 1, "{d:#?}");
        assert_eq!(d[0].rule, "impure_handler");
        assert_eq!(d[0].path, "crates/workload/src/jitter.rs");
        assert_eq!(d[0].chain, vec!["on_msg", "er_workload::seed_hint"]);
    }

    #[test]
    fn unused_allow_flags_stale_and_unknown_markers() {
        let src = "\
// lint::allow(no_panic): this unwrap was removed long ago
pub fn serve(x: Option<u32>) -> u32 { x.unwrap_or(0) }
// lint::allow(no_such_rule): typo
pub fn other() -> u32 { 1 }
";
        let d = workspace(&[("crates/rpc/src/balancer.rs", src)]);
        let got: Vec<(&str, u32)> = d.iter().map(|x| (x.rule, x.line)).collect();
        assert_eq!(
            got,
            vec![("unused_allow", 1), ("unused_allow", 3)],
            "{d:#?}"
        );
        assert!(d[1].message.contains("no known rule"), "{}", d[1].message);
    }

    #[test]
    fn live_markers_are_not_flagged_as_unused() {
        let src = "\
pub fn serve(x: Option<u32>) -> u32 {
    // lint::allow(no_panic): validated upstream
    x.unwrap()
}
";
        let d = workspace(&[("crates/rpc/src/balancer.rs", src)]);
        assert!(d.is_empty(), "{d:#?}");
    }
}

//! Phase 2: symbol table, intra-crate call graph, and graph-aware rules.
//!
//! The per-file rules in [`crate::rules`] see one token stream at a time;
//! this module sees the whole workspace. It extracts every function
//! definition (name, visibility, file, crate), records each function's
//! outgoing calls and panic sites, and links calls *by name within a
//! crate* — a deliberate over-approximation (no type resolution, so two
//! same-named functions in one crate both receive the edge) that errs on
//! the side of reporting.
//!
//! On top of the graph, `no_panic` is upgraded from "a panic token exists
//! in this serving file" to "a panic site is *reachable through calls*
//! from a public function in a serving-scope file". A multi-source BFS
//! from all such roots yields a shortest call chain per reachable panic
//! site, reported in the diagnostic (`serve -> helper -> inner`) so the
//! reader sees how the hot path gets there, not just where it lands.
//!
//! [`check_workspace`] is the binary's entry point: per-file rules (minus
//! the token-level `no_panic` scan) plus the graph pass, sorted into one
//! deterministic diagnostic stream.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::config::Config;
use crate::lexer::TokenKind;
use crate::rules::{check_file_inner, is_test_or_tool_path, Diagnostic, FileContext};

/// Tokens that look like `name(` without being calls.
const NON_CALL_KEYWORDS: [&str; 14] = [
    "if", "while", "for", "match", "return", "loop", "fn", "as", "in", "move", "let", "else",
    "break", "continue",
];

/// A `.unwrap()` / `.expect(..)` / `panic!`-family site inside a function
/// body.
#[derive(Debug, Clone)]
struct PanicSite {
    line: u32,
    col: u32,
    /// What the site spells, for the message (`` `.unwrap()` ``).
    what: String,
    /// Blessed by a `lint::allow(no_panic)` marker at the site.
    suppressed: bool,
}

/// One function definition with its outgoing edges and panic sites.
#[derive(Debug, Clone)]
struct FnInfo {
    name: String,
    /// Workspace-relative file holding the definition.
    path: String,
    /// Crate the file belongs to (`crates/<name>/..` prefix).
    krate: String,
    /// Declared with a bare `pub` (scoped `pub(..)` counts as private).
    is_pub: bool,
    /// Names this function calls (free calls and method calls alike).
    calls: BTreeSet<String>,
    panics: Vec<PanicSite>,
}

/// Which crate a workspace-relative path belongs to, for intra-crate call
/// linking. Top-level `src/`, `tests/`, etc. form one "workspace-root"
/// crate.
fn crate_of(path: &str) -> String {
    path.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("workspace-root")
        .to_string()
}

/// True when the token before the `fn` keyword at `fn_ci` (skipping
/// `const`/`async`/`unsafe`/`extern "abi"` qualifiers) is a bare `pub`.
/// `pub(crate)`/`pub(super)` end on `)` and correctly read as private.
fn is_pub_fn(ctx: &FileContext<'_>, fn_ci: usize) -> bool {
    let mut j = fn_ci;
    while j >= 1 {
        let prev_kind = ctx.kind(j - 1);
        let qualifier = prev_kind == TokenKind::Literal
            || (prev_kind == TokenKind::Ident
                && matches!(ctx.text(j - 1), "const" | "async" | "unsafe" | "extern"));
        if !qualifier {
            break;
        }
        j -= 1;
    }
    j >= 1 && ctx.is_ident(j - 1, "pub")
}

/// Extracts every function defined in `ctx`: a single pass over the code
/// tokens tracking brace depth and a stack of open function bodies, so
/// calls and panic sites land on the innermost enclosing function.
/// `#[cfg(test)]` functions are dropped entirely.
fn extract_fns(ctx: &FileContext<'_>) -> Vec<FnInfo> {
    let n = ctx.code.len();
    let krate = crate_of(&ctx.path);
    let mut fns: Vec<FnInfo> = Vec::new();
    let mut test_fn: Vec<bool> = Vec::new();
    // (index into `fns`, brace depth of the body's opening `{`).
    let mut stack: Vec<(usize, u32)> = Vec::new();
    // A declared fn whose body `{` has not opened yet, with the paren
    // depth accumulated since the declaration (the body brace sits at
    // paren depth 0; a `;` there instead means a bodyless trait method).
    let mut pending: Option<usize> = None;
    let mut pending_paren: u32 = 0;
    let mut depth: u32 = 0;

    for ci in 0..n {
        match ctx.kind(ci) {
            TokenKind::Punct('(') if pending.is_some() => pending_paren += 1,
            TokenKind::Punct(')') if pending.is_some() => {
                pending_paren = pending_paren.saturating_sub(1);
            }
            TokenKind::Punct('{') => {
                depth += 1;
                if pending_paren == 0 {
                    if let Some(fi) = pending.take() {
                        stack.push((fi, depth));
                    }
                }
            }
            TokenKind::Punct('}') => {
                if stack.last().is_some_and(|&(_, d)| d == depth) {
                    stack.pop();
                }
                depth = depth.saturating_sub(1);
            }
            TokenKind::Punct(';') if pending_paren == 0 => pending = None,
            _ => {}
        }

        // A new definition: `fn name` (a `fn(..)` pointer type has no
        // name ident and falls through).
        if ctx.is_ident(ci, "fn") && ci + 1 < n && ctx.kind(ci + 1) == TokenKind::Ident {
            fns.push(FnInfo {
                name: ctx.text(ci + 1).to_string(),
                path: ctx.path.clone(),
                krate: krate.clone(),
                is_pub: is_pub_fn(ctx, ci),
                calls: BTreeSet::new(),
                panics: Vec::new(),
            });
            test_fn.push(ctx.is_test_token(ci));
            pending = Some(fns.len() - 1);
            pending_paren = 0;
            continue;
        }

        let Some(&(cur, _)) = stack.last() else {
            continue;
        };
        if ctx.is_test_token(ci) || ctx.kind(ci) != TokenKind::Ident {
            continue;
        }
        let t = ctx.text(ci);
        let next_is = |k: TokenKind| ci + 1 < n && ctx.kind(ci + 1) == k;
        if (t == "unwrap" || t == "expect")
            && ci >= 1
            && ctx.kind(ci - 1) == TokenKind::Punct('.')
            && next_is(TokenKind::Punct('('))
        {
            let tok = ctx.tok(ci);
            fns[cur].panics.push(PanicSite {
                line: tok.line,
                col: tok.col,
                what: format!("`.{t}()`"),
                suppressed: ctx.suppressed(tok.line, "no_panic"),
            });
            continue;
        }
        if (t == "panic" || t == "todo" || t == "unimplemented") && next_is(TokenKind::Punct('!')) {
            let tok = ctx.tok(ci);
            fns[cur].panics.push(PanicSite {
                line: tok.line,
                col: tok.col,
                what: format!("`{t}!`"),
                suppressed: ctx.suppressed(tok.line, "no_panic"),
            });
            continue;
        }
        // A call: `name(..)` or `.name(..)`, but not `name!(..)` macros
        // and not the name in a nested `fn name(` definition.
        if next_is(TokenKind::Punct('('))
            && !NON_CALL_KEYWORDS.contains(&t)
            && !(ci >= 1 && ctx.is_ident(ci - 1, "fn"))
        {
            fns[cur].calls.insert(t.to_string());
        }
    }

    fns.into_iter()
        .zip(test_fn)
        .filter(|(_, in_test)| !in_test)
        .map(|(f, _)| f)
        .collect()
}

/// Graph-aware `no_panic`: reports every unsuppressed panic site reachable
/// through intra-crate calls from a `pub fn` defined in a serving-scope
/// file, with the shortest call chain from that entry point.
fn reachable_panics(files: &[FileContext<'_>], cfg: &Config) -> Vec<Diagnostic> {
    let mut per_crate: BTreeMap<String, Vec<FnInfo>> = BTreeMap::new();
    for ctx in files {
        if is_test_or_tool_path(&ctx.path) {
            continue;
        }
        for f in extract_fns(ctx) {
            per_crate.entry(f.krate.clone()).or_default().push(f);
        }
    }

    let mut out = Vec::new();
    for fns in per_crate.values_mut() {
        // Deterministic node order regardless of input file order.
        fns.sort_by(|a, b| (&a.path, &a.name).cmp(&(&b.path, &b.name)));
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(&f.name).or_default().push(i);
        }

        // Multi-source BFS from the public serving entry points, keeping
        // parent pointers for shortest-chain reconstruction.
        let mut parent: Vec<Option<usize>> = vec![None; fns.len()];
        let mut visited = vec![false; fns.len()];
        let mut queue = VecDeque::new();
        for (i, f) in fns.iter().enumerate() {
            if f.is_pub && Config::in_paths(&f.path, &cfg.serving) {
                visited[i] = true;
                queue.push_back(i);
            }
        }
        while let Some(i) = queue.pop_front() {
            for callee in &fns[i].calls {
                for &j in by_name.get(callee.as_str()).into_iter().flatten() {
                    if !visited[j] {
                        visited[j] = true;
                        parent[j] = Some(i);
                        queue.push_back(j);
                    }
                }
            }
        }

        for (i, f) in fns.iter().enumerate() {
            if !visited[i] {
                continue;
            }
            let mut chain = vec![f.name.clone()];
            let mut at = i;
            while let Some(p) = parent[at] {
                chain.push(fns[p].name.clone());
                at = p;
            }
            chain.reverse();
            let root = chain[0].clone();
            let via = chain.join(" -> ");
            for site in f.panics.iter().filter(|s| !s.suppressed) {
                out.push(Diagnostic {
                    path: f.path.clone(),
                    line: site.line,
                    col: site.col,
                    rule: "no_panic",
                    message: format!(
                        "{} can panic and is reachable from public serving fn `{root}` via {via}; return a typed error up the chain, or add `// lint::allow(no_panic): <invariant>` at the site",
                        site.what
                    ),
                    chain: chain.clone(),
                });
            }
        }
    }
    out
}

/// Lints the workspace as one unit: every per-file rule plus the
/// call-graph `no_panic` pass, in one deterministically sorted stream.
pub fn check_workspace(files: &[FileContext<'_>], cfg: &Config) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for ctx in files {
        out.extend(check_file_inner(ctx, cfg, false));
    }
    out.extend(reachable_panics(files, cfg));
    out.sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workspace(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let ctxs: Vec<FileContext<'_>> =
            files.iter().map(|&(p, s)| FileContext::new(p, s)).collect();
        check_workspace(&ctxs, &Config::default())
    }

    #[test]
    fn panic_reachable_through_two_hops_reports_the_chain() {
        let src = "\
pub fn serve(x: Option<u32>) -> u32 { helper(x) }
fn helper(x: Option<u32>) -> u32 { inner(x) }
fn inner(x: Option<u32>) -> u32 { x.unwrap() }
";
        let d = workspace(&[("crates/rpc/src/balancer.rs", src)]);
        assert_eq!(d.len(), 1, "{d:#?}");
        assert_eq!(d[0].rule, "no_panic");
        assert_eq!(d[0].line, 3);
        assert_eq!(d[0].chain, vec!["serve", "helper", "inner"]);
        assert!(d[0].message.contains("serve -> helper -> inner"));
    }

    #[test]
    fn unreachable_private_panic_is_not_reported() {
        let src = "\
pub fn serve() -> u32 { 1 }
fn dead(x: Option<u32>) -> u32 { x.unwrap() }
";
        let d = workspace(&[("crates/rpc/src/balancer.rs", src)]);
        assert!(d.is_empty(), "{d:#?}");
    }

    #[test]
    fn reachability_crosses_files_within_a_crate_but_not_crates() {
        let entry = "pub fn serve(x: Option<u32>) -> u32 { shared_helper(x) }";
        let helper = "pub(crate) fn shared_helper(x: Option<u32>) -> u32 { x.unwrap() }";
        // Same crate: the chain crosses the file boundary.
        let d = workspace(&[
            ("crates/rpc/src/server.rs", entry),
            ("crates/rpc/src/util.rs", helper),
        ]);
        assert_eq!(d.len(), 1, "{d:#?}");
        assert_eq!(d[0].path, "crates/rpc/src/util.rs");
        assert_eq!(d[0].chain, vec!["serve", "shared_helper"]);
        // Different crates: no edge, no report (and `shared_helper` is
        // `pub(crate)`, so it is not a root on its own).
        let d = workspace(&[
            ("crates/rpc/src/server.rs", entry),
            ("crates/metrics/src/util.rs", helper),
        ]);
        assert!(d.is_empty(), "{d:#?}");
    }

    #[test]
    fn allow_marker_suppresses_the_reachable_site() {
        let src = "\
pub fn serve(x: Option<u32>) -> u32 {
    // lint::allow(no_panic): validated by the planner before dispatch
    x.unwrap()
}
";
        let d = workspace(&[("crates/rpc/src/balancer.rs", src)]);
        assert!(d.is_empty(), "{d:#?}");
    }

    #[test]
    fn pub_fn_with_direct_panic_has_a_single_link_chain() {
        let src = "pub fn serve() { panic!(\"boom\") }";
        let d = workspace(&[("crates/model/src/dlrm.rs", src)]);
        assert_eq!(d.len(), 1, "{d:#?}");
        assert_eq!(d[0].chain, vec!["serve"]);
    }

    #[test]
    fn test_functions_and_tool_files_stay_out_of_the_graph() {
        let src = "\
pub fn serve(x: Option<u32>) -> u32 { x.unwrap_or(0) }

#[cfg(test)]
mod tests {
    fn serve_helper(x: Option<u32>) -> u32 { x.unwrap() }
}
";
        assert!(workspace(&[("crates/rpc/src/server.rs", src)]).is_empty());
        let bad = "pub fn serve(x: Option<u32>) -> u32 { x.unwrap() }";
        assert!(workspace(&[("crates/rpc/tests/it.rs", bad)]).is_empty());
    }

    #[test]
    fn method_calls_link_by_name() {
        let src = "\
pub fn serve(b: Balancer) -> u32 { b.pick() }
struct Balancer;
impl Balancer {
    fn pick(&self) -> u32 { panic!(\"empty\") }
}
";
        let d = workspace(&[("crates/rpc/src/balancer.rs", src)]);
        assert_eq!(d.len(), 1, "{d:#?}");
        assert_eq!(d[0].chain, vec!["serve", "pick"]);
    }
}

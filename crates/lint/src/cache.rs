//! Incremental fact cache: replay [`FileFacts`] for unchanged files.
//!
//! The workspace pass re-lexes ~200 files on every ci.sh run; almost all
//! of them are unchanged between runs. Facts are a pure function of
//! `(path, content, config)`, so the cache keys each file by an FNV-1a
//! hash of its content, and the whole cache by a hash of the config — any
//! config edit invalidates everything, any file edit invalidates that
//! file.
//!
//! The format is a plain line-oriented text file (`target/er-lint-cache`)
//! with a versioned header; a malformed or version-skewed cache is simply
//! ignored (the pass falls back to extraction), never an error. Fields
//! that can contain arbitrary text (messages, paths) are escaped; the
//! schema mirrors [`FileFacts`] one record per line:
//!
//! ```text
//! er-lint-cache v1 <config-hash>
//! F <content-hash> <path>
//! N <line> <is_pub> <name>            function (sites/calls attach to it)
//! S <kind> <line> <col> <sup> <what>  site of the last N
//! C <line> <col> <m> <hot> <path>     call of the last N (`a::b` segments)
//! I <is_pub> <alias|*> <path>         import
//! M <line> <col> <rule>               marker
//! D <line> <col> <rule> <message>     pre-suppression per-file diagnostic
//! ```

use std::collections::BTreeMap;

use crate::facts::{CallRef, FileFacts, FnFact, Import, MarkerFact, Site, SiteKind};
use crate::rules::{Diagnostic, RULES};

/// FNV-1a 64-bit, the workspace's stock dependency-free hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Escapes a free-text field: spaces survive (fields are space-split with
/// a bounded count), newlines and backslashes do not.
fn esc(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
}

fn unesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut it = s.chars();
    while let Some(c) = it.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match it.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('\\') => out.push('\\'),
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

/// A loaded cache: per-path content hash and replayable facts.
#[derive(Debug, Default)]
pub struct Cache {
    entries: BTreeMap<String, (u64, FileFacts)>,
}

impl Cache {
    /// Loads the cache from `text`, discarding it wholesale when the
    /// version or config hash differs.
    pub fn load(text: &str, config_hash: u64) -> Self {
        let mut lines = text.lines();
        let Some(header) = lines.next() else {
            return Self::default();
        };
        let mut hp = header.split(' ');
        if hp.next() != Some("er-lint-cache")
            || hp.next() != Some("v1")
            || hp.next().and_then(|h| h.parse::<u64>().ok()) != Some(config_hash)
        {
            return Self::default();
        }
        let mut cache = Self::default();
        let mut cur: Option<(String, u64, FileFacts)> = None;
        for line in lines {
            let Some((tag, rest)) = line.split_once(' ') else {
                continue;
            };
            if tag == "F" {
                if let Some((path, hash, facts)) = cur.take() {
                    cache.entries.insert(path, (hash, facts));
                }
                let Some((hash, path)) = rest.split_once(' ') else {
                    continue;
                };
                let Ok(hash) = hash.parse::<u64>() else {
                    continue;
                };
                let path = unesc(path);
                cur = Some((
                    path.clone(),
                    hash,
                    FileFacts {
                        path,
                        ..FileFacts::default()
                    },
                ));
                continue;
            }
            let Some((_, _, facts)) = cur.as_mut() else {
                continue;
            };
            if parse_record(tag, rest, facts).is_none() {
                // One malformed record poisons the whole load: a partial
                // fact set would silently drop diagnostics.
                return Self::default();
            }
        }
        if let Some((path, hash, facts)) = cur.take() {
            cache.entries.insert(path, (hash, facts));
        }
        cache
    }

    /// Replayed facts for `path` when the cached content hash matches.
    pub fn get(&self, path: &str, content_hash: u64) -> Option<&FileFacts> {
        self.entries
            .get(path)
            .filter(|(h, _)| *h == content_hash)
            .map(|(_, f)| f)
    }

    /// Serializes facts for the next run.
    pub fn render(files: &[(u64, &FileFacts)], config_hash: u64) -> String {
        let mut out = format!("er-lint-cache v1 {config_hash}\n");
        for (hash, f) in files {
            out.push_str(&format!("F {hash} "));
            esc(&f.path, &mut out);
            out.push('\n');
            for imp in &f.imports {
                out.push_str(&format!(
                    "I {} {} {}\n",
                    u8::from(imp.is_pub),
                    imp.alias.as_deref().unwrap_or("*"),
                    imp.path.join("::")
                ));
            }
            for m in &f.markers {
                out.push_str(&format!("M {} {} {}\n", m.line, m.col, m.rule));
            }
            for d in &f.diags {
                out.push_str(&format!("D {} {} {} ", d.line, d.col, d.rule));
                esc(&d.message, &mut out);
                out.push('\n');
            }
            for func in &f.fns {
                out.push_str(&format!("N {} {} ", func.line, u8::from(func.is_pub)));
                esc(&func.name, &mut out);
                out.push('\n');
                for s in &func.sites {
                    let kind = match s.kind {
                        SiteKind::Panic => 'P',
                        SiteKind::Alloc => 'A',
                        SiteKind::Impure => 'I',
                    };
                    out.push_str(&format!(
                        "S {kind} {} {} {} ",
                        s.line,
                        s.col,
                        u8::from(s.suppressed)
                    ));
                    esc(&s.what, &mut out);
                    out.push('\n');
                }
                for c in &func.calls {
                    out.push_str(&format!(
                        "C {} {} {} {} {}\n",
                        c.line,
                        c.col,
                        u8::from(c.method),
                        u8::from(c.hot_suppressed),
                        c.path.join("::")
                    ));
                }
            }
        }
        out
    }
}

/// Parses one non-`F` record into the current file. `None` on malformed
/// input.
fn parse_record(tag: &str, rest: &str, facts: &mut FileFacts) -> Option<()> {
    match tag {
        "I" => {
            let mut p = rest.splitn(3, ' ');
            let is_pub = p.next()? == "1";
            let alias = p.next()?;
            let path: Vec<String> = p.next()?.split("::").map(str::to_string).collect();
            facts.imports.push(Import {
                is_pub,
                path,
                alias: (alias != "*").then(|| alias.to_string()),
            });
        }
        "M" => {
            let mut p = rest.splitn(3, ' ');
            facts.markers.push(MarkerFact {
                line: p.next()?.parse().ok()?,
                col: p.next()?.parse().ok()?,
                rule: p.next()?.to_string(),
            });
        }
        "D" => {
            let mut p = rest.splitn(4, ' ');
            let line = p.next()?.parse().ok()?;
            let col = p.next()?.parse().ok()?;
            let rule_name = p.next()?;
            // `Diagnostic.rule` is `&'static str`: intern via the RULES
            // table; an unknown rule means a format skew — reject.
            let rule = RULES.iter().find(|r| **r == rule_name)?;
            facts.diags.push(Diagnostic {
                path: facts.path.clone(),
                line,
                col,
                rule,
                message: unesc(p.next()?),
                chain: Vec::new(),
            });
        }
        "N" => {
            let mut p = rest.splitn(3, ' ');
            facts.fns.push(FnFact {
                line: p.next()?.parse().ok()?,
                is_pub: p.next()? == "1",
                name: unesc(p.next()?),
                sites: Vec::new(),
                calls: Vec::new(),
            });
        }
        "S" => {
            let mut p = rest.splitn(5, ' ');
            let kind = match p.next()? {
                "P" => SiteKind::Panic,
                "A" => SiteKind::Alloc,
                "I" => SiteKind::Impure,
                _ => return None,
            };
            let site = Site {
                kind,
                line: p.next()?.parse().ok()?,
                col: p.next()?.parse().ok()?,
                suppressed: p.next()? == "1",
                what: unesc(p.next()?),
            };
            facts.fns.last_mut()?.sites.push(site);
        }
        "C" => {
            let mut p = rest.splitn(5, ' ');
            let call = CallRef {
                line: p.next()?.parse().ok()?,
                col: p.next()?.parse().ok()?,
                method: p.next()? == "1",
                hot_suppressed: p.next()? == "1",
                path: p.next()?.split("::").map(str::to_string).collect(),
            };
            facts.fns.last_mut()?.calls.push(call);
        }
        _ => return None,
    }
    Some(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::facts::extract_facts;
    use crate::rules::FileContext;

    #[test]
    fn roundtrip_preserves_facts_and_diagnostics() {
        let src = "\
use er_tensor::gather::gather_pool_csr as gpc;
// lint::allow(no_panic): upstream invariant
pub fn serve(x: Option<u32>) -> u32 {
    let t = Instant::now();
    let v = vec![0u32; 2];
    let _ = (t, v);
    gpc();
    x.unwrap()
}
";
        let cfg = Config::default();
        let path = "crates/sim/src/probe.rs";
        let facts = extract_facts(&FileContext::new(path, src), &cfg);
        assert!(!facts.fns.is_empty());
        assert!(!facts.diags.is_empty(), "wall_clock should pre-fire");

        let src_hash = fnv1a(src.as_bytes());
        let rendered = Cache::render(&[(src_hash, &facts)], 42);
        let cache = Cache::load(&rendered, 42);
        let replayed = cache.get(path, src_hash).expect("hash matches");
        assert_eq!(format!("{facts:?}"), format!("{replayed:?}"));
    }

    #[test]
    fn config_or_content_skew_misses_cleanly() {
        let src = "pub fn f() {}";
        let cfg = Config::default();
        let facts = extract_facts(&FileContext::new("crates/core/src/a.rs", src), &cfg);
        let h = fnv1a(src.as_bytes());
        let rendered = Cache::render(&[(h, &facts)], 1);
        assert!(Cache::load(&rendered, 2)
            .get("crates/core/src/a.rs", h)
            .is_none());
        assert!(Cache::load(&rendered, 1)
            .get("crates/core/src/a.rs", h + 1)
            .is_none());
        assert!(Cache::load("garbage", 1)
            .get("crates/core/src/a.rs", h)
            .is_none());
    }
}

//! The `er-lint` binary: lint the workspace, print diagnostics, exit
//! nonzero on any violation.
//!
//! ```text
//! er-lint [ROOT]   # ROOT defaults to the current directory
//! ```
//!
//! Reads `ROOT/er-lint.toml` when present (see [`er_lint::Config`]); every
//! diagnostic prints as `path:line:col: [rule] message`.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use er_lint::{check_file, walk, Config, FileContext};

fn main() -> ExitCode {
    let root = PathBuf::from(std::env::args().nth(1).unwrap_or_else(|| ".".into()));
    let cfg = match load_config(&root) {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("er-lint: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let files = match walk::rust_files(&root, &cfg) {
        Ok(files) => files,
        Err(e) => {
            eprintln!("er-lint: walking {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    let mut violations = 0usize;
    let mut files_with = 0usize;
    for path in &files {
        let Ok(src) = std::fs::read_to_string(path) else {
            // Non-UTF-8 or unreadable: nothing for a Rust lexer to do.
            continue;
        };
        let rel = walk::relative(&root, path);
        let ctx = FileContext::new(rel, &src);
        let diags = check_file(&ctx, &cfg);
        if !diags.is_empty() {
            files_with += 1;
            violations += diags.len();
            for d in &diags {
                println!("{d}");
            }
        }
    }

    if violations > 0 {
        eprintln!(
            "er-lint: FAIL — {violations} violation(s) in {files_with} file(s) ({} scanned)",
            files.len()
        );
        ExitCode::FAILURE
    } else {
        eprintln!("er-lint: OK — {} files scanned, 0 violations", files.len());
        ExitCode::SUCCESS
    }
}

fn load_config(root: &std::path::Path) -> Result<Config, String> {
    let path = root.join("er-lint.toml");
    match std::fs::read_to_string(&path) {
        Ok(text) => Config::from_toml_str(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Config::default()),
        Err(e) => Err(format!("reading {}: {e}", path.display())),
    }
}

//! The `er-lint` binary: lint the workspace, print diagnostics, exit
//! nonzero on any violation.
//!
//! ```text
//! er-lint [--format json|text] [--only PREFIX]... [ROOT]
//! ```
//!
//! `ROOT` defaults to the current directory. The whole workspace is always
//! scanned (the call graph needs every file); `--only` filters which
//! diagnostics are *reported* by path prefix — useful for focused gates
//! like the CI self-check over `crates/lint` and `crates/units`.
//!
//! Reads `ROOT/er-lint.toml` when present (see [`er_lint::Config`]). Text
//! output prints `path:line:col: [rule] message` per violation; JSON output
//! prints one stable array of `{"rule", "path", "line", "col", "message",
//! "chain"}` objects to stdout. A per-rule count summary always goes to
//! stderr.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use er_lint::{check_workspace, walk, Config, Diagnostic, FileContext};

/// Every rule the engine can emit, for the stable per-rule summary.
const RULES: [&str; 8] = [
    "wall_clock",
    "ambient_rng",
    "env_io",
    "hashmap_iter",
    "no_panic",
    "float_reduction",
    "unit_mixing",
    "impure_handler",
];

struct Args {
    root: PathBuf,
    json: bool,
    only: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        json: false,
        only: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next().as_deref() {
                Some("json") => args.json = true,
                Some("text") => args.json = false,
                other => return Err(format!("--format takes `json` or `text`, got {other:?}")),
            },
            "--only" => match it.next() {
                Some(prefix) => args.only.push(prefix),
                None => return Err("--only needs a path prefix".into()),
            },
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            root => args.root = PathBuf::from(root),
        }
    }
    Ok(args)
}

fn json_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The stable machine-readable schema: an array of objects with exactly
/// the keys `rule`, `path`, `line`, `col`, `message`, `chain`.
fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[\n");
    for (i, d) in diags.iter().enumerate() {
        out.push_str("  {\"rule\": ");
        json_escaped(d.rule, &mut out);
        out.push_str(", \"path\": ");
        json_escaped(&d.path, &mut out);
        out.push_str(&format!(
            ", \"line\": {}, \"col\": {}, \"message\": ",
            d.line, d.col
        ));
        json_escaped(&d.message, &mut out);
        out.push_str(", \"chain\": [");
        for (j, link) in d.chain.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            json_escaped(link, &mut out);
        }
        out.push_str("]}");
        out.push_str(if i + 1 < diags.len() { ",\n" } else { "\n" });
    }
    out.push(']');
    out
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("er-lint: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let cfg = match load_config(&args.root) {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("er-lint: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let files = match walk::rust_files(&args.root, &cfg) {
        Ok(files) => files,
        Err(e) => {
            eprintln!("er-lint: walking {}: {e}", args.root.display());
            return ExitCode::FAILURE;
        }
    };

    // Read every source first: FileContext borrows, and the call graph
    // wants the whole workspace at once.
    let mut sources: Vec<(String, String)> = Vec::new();
    for path in &files {
        // Non-UTF-8 or unreadable: nothing for a Rust lexer to do.
        if let Ok(src) = std::fs::read_to_string(path) {
            sources.push((walk::relative(&args.root, path), src));
        }
    }
    let ctxs: Vec<FileContext<'_>> = sources
        .iter()
        .map(|(rel, src)| FileContext::new(rel.clone(), src))
        .collect();

    let mut diags = check_workspace(&ctxs, &cfg);
    if !args.only.is_empty() {
        diags.retain(|d| {
            args.only
                .iter()
                .any(|p| Config::in_paths(&d.path, std::slice::from_ref(p)))
        });
    }

    if args.json {
        println!("{}", render_json(&diags));
    } else {
        for d in &diags {
            println!("{d}");
        }
    }

    let mut summary = String::new();
    for rule in RULES {
        let count = diags.iter().filter(|d| d.rule == rule).count();
        summary.push_str(&format!(" {rule}={count}"));
    }
    eprintln!("er-lint: per-rule:{summary}");

    if diags.is_empty() {
        eprintln!("er-lint: OK — {} files scanned, 0 violations", ctxs.len());
        ExitCode::SUCCESS
    } else {
        let files_with: std::collections::BTreeSet<&str> =
            diags.iter().map(|d| d.path.as_str()).collect();
        eprintln!(
            "er-lint: FAIL — {} violation(s) in {} file(s) ({} scanned)",
            diags.len(),
            files_with.len(),
            ctxs.len()
        );
        ExitCode::FAILURE
    }
}

fn load_config(root: &std::path::Path) -> Result<Config, String> {
    let path = root.join("er-lint.toml");
    match std::fs::read_to_string(&path) {
        Ok(text) => Config::from_toml_str(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Config::default()),
        Err(e) => Err(format!("reading {}: {e}", path.display())),
    }
}

//! The `er-lint` binary: lint the workspace, print diagnostics, exit
//! nonzero on any violation (or, with a baseline, on any ratchet
//! regression).
//!
//! ```text
//! er-lint [--format json|text] [--only PREFIX]...
//!         [--baseline FILE] [--write-baseline FILE] [--no-cache] [ROOT]
//! ```
//!
//! `ROOT` defaults to the current directory. The whole workspace is always
//! scanned (the call graph needs every file); `--only` filters which
//! diagnostics are *reported* by path prefix — useful for focused gates
//! like the CI self-check over `crates/lint` and `crates/units`.
//!
//! `--baseline FILE` switches the exit code to ratchet semantics: the run
//! passes as long as no rule's violation count exceeds the committed
//! baseline, fails (with the suggested tightened JSON) on any increase,
//! and reminds on any decrease. `--write-baseline FILE` writes the current
//! counts in canonical form. Counts are taken over the *full* diagnostic
//! stream, before `--only` filtering.
//!
//! Facts are cached per file-content hash in `ROOT/target/er-lint-cache`
//! (config-hash keyed; `--no-cache` bypasses both read and write).
//!
//! Reads `ROOT/er-lint.toml` when present (see [`er_lint::Config`]). Text
//! output prints `path:line:col: [rule] message` per violation; JSON output
//! prints one stable array of `{"rule", "path", "line", "col", "message",
//! "chain"}` objects to stdout. A per-rule count summary always goes to
//! stderr.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use er_lint::cache::{fnv1a, Cache};
use er_lint::facts::extract_facts;
use er_lint::{
    baseline, check_workspace_facts, hot_entry_drift, render_json, walk, Config, FileContext,
    FileFacts, RULES,
};

struct Args {
    root: PathBuf,
    json: bool,
    only: Vec<String>,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    no_cache: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        json: false,
        only: Vec::new(),
        baseline: None,
        write_baseline: None,
        no_cache: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next().as_deref() {
                Some("json") => args.json = true,
                Some("text") => args.json = false,
                other => return Err(format!("--format takes `json` or `text`, got {other:?}")),
            },
            "--only" => match it.next() {
                Some(prefix) => args.only.push(prefix),
                None => return Err("--only needs a path prefix".into()),
            },
            "--baseline" => match it.next() {
                Some(p) => args.baseline = Some(PathBuf::from(p)),
                None => return Err("--baseline needs a file path".into()),
            },
            "--write-baseline" => match it.next() {
                Some(p) => args.write_baseline = Some(PathBuf::from(p)),
                None => return Err("--write-baseline needs a file path".into()),
            },
            "--no-cache" => args.no_cache = true,
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            root => args.root = PathBuf::from(root),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("er-lint: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;
    let cfg = load_config(&args.root)?;
    let files = walk::rust_files(&args.root, &cfg)
        .map_err(|e| format!("walking {}: {e}", args.root.display()))?;

    // Read every source first: the call graph wants the whole workspace
    // at once.
    let mut sources: Vec<(String, String)> = Vec::new();
    for path in &files {
        // Non-UTF-8 or unreadable: nothing for a Rust lexer to do.
        if let Ok(src) = std::fs::read_to_string(path) {
            sources.push((walk::relative(&args.root, path), src));
        }
    }

    // Facts: replayed from the cache for unchanged files, extracted
    // fresh otherwise. The config hash keys the whole cache.
    let config_hash = fnv1a(format!("{cfg:?}").as_bytes());
    let target_dir = args.root.join("target");
    let cache_path = target_dir.join("er-lint-cache");
    let cache = if args.no_cache {
        Cache::default()
    } else {
        match std::fs::read_to_string(&cache_path) {
            Ok(text) => Cache::load(&text, config_hash),
            Err(_) => Cache::default(),
        }
    };
    let mut cache_hits = 0usize;
    let hashed: Vec<(u64, &String, &String)> = sources
        .iter()
        .map(|(rel, src)| (fnv1a(src.as_bytes()), rel, src))
        .collect();
    let facts: Vec<FileFacts> = hashed
        .iter()
        .map(|(hash, rel, src)| match cache.get(rel, *hash) {
            Some(f) => {
                cache_hits += 1;
                f.clone()
            }
            None => extract_facts(&FileContext::new((*rel).clone(), src), &cfg),
        })
        .collect();
    if !args.no_cache {
        let entries: Vec<(u64, &FileFacts)> = hashed
            .iter()
            .zip(&facts)
            .map(|((hash, _, _), f)| (*hash, f))
            .collect();
        // Best effort: a read-only target dir just means no cache.
        let _ = std::fs::create_dir_all(&target_dir);
        let _ = std::fs::write(&cache_path, Cache::render(&entries, config_hash));
    }

    let mut diags = check_workspace_facts(&facts, &cfg);
    diags.extend(hot_entry_drift(&facts, &cfg));
    diags.sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));

    // Ratchet counts cover everything, before reporting filters.
    let counts = baseline::count_by_rule(&diags);
    if !args.only.is_empty() {
        diags.retain(|d| {
            args.only
                .iter()
                .any(|p| Config::in_paths(&d.path, std::slice::from_ref(p)))
        });
    }

    if args.json {
        println!("{}", render_json(&diags));
    } else {
        for d in &diags {
            println!("{d}");
        }
    }

    let mut summary = String::new();
    for rule in RULES {
        let count = diags.iter().filter(|d| d.rule == rule).count();
        summary.push_str(&format!(" {rule}={count}"));
    }
    eprintln!("er-lint: per-rule:{summary}");
    eprintln!(
        "er-lint: {} files scanned ({cache_hits} from cache)",
        facts.len()
    );

    if let Some(path) = &args.write_baseline {
        std::fs::write(path, baseline::render(&counts))
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        eprintln!("er-lint: baseline written to {}", path.display());
    }

    if let Some(path) = &args.baseline {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let base = baseline::parse(&text)?;
        return Ok(match baseline::compare(&counts, &base) {
            baseline::Verdict::Clean => {
                eprintln!("er-lint: ratchet OK — counts match {}", path.display());
                ExitCode::SUCCESS
            }
            baseline::Verdict::Tighten(improved) => {
                eprintln!("er-lint: ratchet OK — counts dropped below the baseline:");
                for line in improved {
                    eprintln!("er-lint:   {line}");
                }
                eprintln!(
                    "er-lint: tighten {} to lock the improvement in:\n{}",
                    path.display(),
                    baseline::render(&counts)
                );
                ExitCode::SUCCESS
            }
            baseline::Verdict::Regressed(regressed) => {
                eprintln!(
                    "er-lint: ratchet FAIL — counts increased over {}:",
                    path.display()
                );
                for line in regressed {
                    eprintln!("er-lint:   {line}");
                }
                eprintln!(
                    "er-lint: fix the new violations (the baseline only ratchets down); current counts for reference:\n{}",
                    baseline::render(&counts)
                );
                ExitCode::FAILURE
            }
        });
    }

    if diags.is_empty() {
        eprintln!("er-lint: OK — 0 violations");
        Ok(ExitCode::SUCCESS)
    } else {
        let files_with: std::collections::BTreeSet<&str> =
            diags.iter().map(|d| d.path.as_str()).collect();
        eprintln!(
            "er-lint: FAIL — {} violation(s) in {} file(s)",
            diags.len(),
            files_with.len(),
        );
        Ok(ExitCode::FAILURE)
    }
}

fn load_config(root: &std::path::Path) -> Result<Config, String> {
    let path = root.join("er-lint.toml");
    match std::fs::read_to_string(&path) {
        Ok(text) => Config::from_toml_str(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Config::default()),
        Err(e) => Err(format!("reading {}: {e}", path.display())),
    }
}

//! `er-lint` — dependency-free static analysis for the ElasticRec
//! workspace.
//!
//! The simulator's headline guarantees are *determinism invariants*: the
//! parallel shard executor is bit-identical to the sequential walk, the
//! discrete-event simulation replays exactly per seed, and float
//! reductions happen in one documented order. Property tests exercise
//! those guarantees; this crate enforces the coding rules they rest on, so
//! a violation is caught at lint time rather than as a flaky repro:
//!
//! | rule | scope | catches |
//! |------|-------|---------|
//! | `wall_clock` | deterministic paths + `er-bench` | `Instant::now` / `SystemTime::now` |
//! | `ambient_rng` | deterministic paths | `thread_rng`, `from_entropy`, `rand::random` |
//! | `env_io` | deterministic paths | `env::var` and friends |
//! | `hashmap_iter` | deterministic paths | iteration over `HashMap`/`HashSet` bindings |
//! | `no_panic` | serving hot path | panics *reachable through the call graph* from a public serving fn |
//! | `float_reduction` | serving minus blessed kernels | ad-hoc `sum::<f32>` / `product::<f32>` |
//! | `unit_mixing` | er-units adopter files | raw-f64 arithmetic on resource-named symbols |
//!
//! Scopes are path prefixes configured in `er-lint.toml` (see
//! [`Config`]); intentional exceptions carry a
//! `// lint::allow(rule): reason` marker. The repo is offline, so the
//! lexer is hand-rolled ([`lexer`]) — no `syn`, no dependencies at all.
//!
//! Phase 3 widens the lens to the whole workspace: `use`/`pub use`/glob
//! re-exports across all crates resolve into one symbol table
//! ([`resolve`]), and three dataflow rules run over the resulting
//! inter-crate call graph ([`graph`]) — `hot_alloc` (the warm serving
//! fast path reaches no allocation site; entries configured via
//! `hot_alloc_entries`, cross-checked against the dynamic `alloc-count`
//! test), cross-crate `no_panic`, and transitive `impure_handler` —
//! plus an `unused_allow` audit for markers that no longer suppress
//! anything. Violation counts ratchet against `er-lint-baseline.json`
//! ([`baseline`]): counts may only decrease, CI fails on any increase.
//! An incremental file-hash cache ([`cache`]) keeps the whole-workspace
//! pass fast enough for every ci.sh run.
//!
//! The analysis runs in two layers. Layer 1 ([`check_file`]) is the
//! per-file token scan; layer 2 ([`check_workspace`]) additionally
//! extracts per-file facts ([`facts`]), resolves them into the workspace
//! graph, and reports graph rules with the full call chain from the
//! entry point to the offending site — crate-qualified where the chain
//! crosses crates.
//!
//! # Examples
//!
//! ```
//! use er_lint::{check_file, Config, FileContext};
//!
//! let src = "fn now_ms() -> u128 { Instant::now().elapsed().as_millis() }";
//! let ctx = FileContext::new("crates/sim/src/time.rs", src);
//! let diags = check_file(&ctx, &Config::default());
//! assert_eq!(diags[0].rule, "wall_clock");
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations, unreachable_pub, missing_docs)]

pub mod baseline;
pub mod cache;
pub mod config;
pub mod facts;
pub mod graph;
pub mod lexer;
pub mod resolve;
pub mod rules;
pub mod walk;

pub use config::Config;
pub use facts::FileFacts;
pub use graph::{check_workspace, check_workspace_facts, hot_entry_drift};
pub use rules::{check_file, render_json, Diagnostic, FileContext, RULES};

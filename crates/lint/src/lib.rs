//! `er-lint` — dependency-free static analysis for the ElasticRec
//! workspace.
//!
//! The simulator's headline guarantees are *determinism invariants*: the
//! parallel shard executor is bit-identical to the sequential walk, the
//! discrete-event simulation replays exactly per seed, and float
//! reductions happen in one documented order. Property tests exercise
//! those guarantees; this crate enforces the coding rules they rest on, so
//! a violation is caught at lint time rather than as a flaky repro:
//!
//! | rule | scope | catches |
//! |------|-------|---------|
//! | `wall_clock` | deterministic paths + `er-bench` | `Instant::now` / `SystemTime::now` |
//! | `ambient_rng` | deterministic paths | `thread_rng`, `from_entropy`, `rand::random` |
//! | `env_io` | deterministic paths | `env::var` and friends |
//! | `hashmap_iter` | deterministic paths | iteration over `HashMap`/`HashSet` bindings |
//! | `no_panic` | serving hot path | panics *reachable through the call graph* from a public serving fn |
//! | `float_reduction` | serving minus blessed kernels | ad-hoc `sum::<f32>` / `product::<f32>` |
//! | `unit_mixing` | er-units adopter files | raw-f64 arithmetic on resource-named symbols |
//!
//! Scopes are path prefixes configured in `er-lint.toml` (see
//! [`Config`]); intentional exceptions carry a
//! `// lint::allow(rule): reason` marker. The repo is offline, so the
//! lexer is hand-rolled ([`lexer`]) — no `syn`, no dependencies at all.
//!
//! The analysis runs in two phases. Phase 1 ([`check_file`]) is the
//! per-file token scan; phase 2 ([`check_workspace`]) additionally builds
//! an intra-crate call graph ([`graph`]) so `no_panic` reports the call
//! chain from the public entry point to the panic site, and private
//! helpers only trip it when a serving path can actually reach them.
//!
//! # Examples
//!
//! ```
//! use er_lint::{check_file, Config, FileContext};
//!
//! let src = "fn now_ms() -> u128 { Instant::now().elapsed().as_millis() }";
//! let ctx = FileContext::new("crates/sim/src/time.rs", src);
//! let diags = check_file(&ctx, &Config::default());
//! assert_eq!(diags[0].rule, "wall_clock");
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations, unreachable_pub, missing_docs)]

pub mod config;
pub mod graph;
pub mod lexer;
pub mod rules;
pub mod walk;

pub use config::Config;
pub use graph::check_workspace;
pub use rules::{check_file, Diagnostic, FileContext};

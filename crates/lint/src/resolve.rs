//! Phase 3, step 2: whole-workspace symbol resolution.
//!
//! Turns the per-file [`crate::facts`] into one inter-crate call graph.
//! Modules are derived from file paths (`crates/tensor/src/gather.rs` is
//! module `gather` of crate `tensor`), `use` declarations — including
//! `pub use` re-export chains, `{..}` groups, `as` renames, and globs —
//! are resolved against that module tree, and every recorded call is
//! linked to the function definitions it can reach.
//!
//! Resolution is deliberately *lenient* where the type system would be
//! needed and *precise* where paths suffice:
//!
//! * A spelled-out path whose root is `crate`/`self`/`super` or a
//!   workspace extern crate (`er_tensor::reduce::dot_f32`, the package
//!   names map `er_x` → `crates/x`, `elasticrec` → `crates/core`) is
//!   walked through the module tree, following `pub use` re-exports and
//!   globs up to a fixed depth.
//! * A bare call `f(..)` prefers functions defined in the *same file*
//!   (local definitions shadow imports), then `use`-imported ones, then
//!   falls back to every same-named function in the crate — the phase-2
//!   over-approximation, kept so untyped code keeps its edges.
//! * A method call `.f(..)` links by name within the crate only; cross
//!   crates the `hot_alloc` entry list names the kernels individually
//!   instead, so no method edge is silently missing from the hot path.
//! * `Type::method(..)` where `Type` is `use`-imported from another crate
//!   links by name into *that* crate (no visibility or self-type
//!   modelling — it errs on the side of reporting).
//!
//! Unresolvable roots (`std`, vendored stubs) fall back to intra-crate
//! by-name linking, exactly phase 2's behaviour.

use std::collections::BTreeMap;

use crate::facts::{CallRef, FileFacts, FnFact};
use crate::rules::is_test_or_tool_path;

/// How deep re-export / glob chains are followed before giving up (guards
/// against `pub use` cycles).
const MAX_RESOLVE_DEPTH: u32 = 16;

/// Which crate a workspace-relative path belongs to. Top-level `src/`,
/// `tests/`, etc. form one "workspace-root" crate.
pub fn crate_of(path: &str) -> String {
    path.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("workspace-root")
        .to_string()
}

/// The crate directory a root path segment names, when it is a workspace
/// extern crate as spelled in source: `er_tensor` → `tensor`,
/// `elasticrec` → `core`.
pub fn extern_crate_dir(seg: &str) -> Option<String> {
    if seg == "elasticrec" {
        return Some("core".to_string());
    }
    seg.strip_prefix("er_").map(|s| s.to_string())
}

/// The package-style display name of a crate directory, for call chains
/// that cross crates: `tensor` → `er_tensor`, `core` → `elasticrec`.
pub fn crate_display(dir: &str) -> String {
    if dir == "core" {
        "elasticrec".to_string()
    } else {
        format!("er_{dir}")
    }
}

/// The `(crate, module path)` a file defines: `crates/x/src/lib.rs` is
/// `(x, [])`, `crates/x/src/a.rs` and `crates/x/src/a/mod.rs` are
/// `(x, [a])`, `crates/x/src/main.rs` is `(x, [main])` (a binary module
/// nothing imports from).
pub fn module_of(path: &str) -> (String, Vec<String>) {
    let krate = crate_of(path);
    let prefix = format!("crates/{krate}/src/");
    let rest = path.strip_prefix(&prefix).unwrap_or(path);
    let rest = rest.strip_suffix(".rs").unwrap_or(rest);
    let mut segs: Vec<String> = rest.split('/').map(str::to_string).collect();
    if segs.len() == 1 && segs[0] == "lib" {
        segs.clear();
    } else if segs.len() > 1 && segs.last().is_some_and(|s| s == "mod") {
        segs.pop();
    }
    (krate, segs)
}

/// One function node in the workspace graph: indices into the facts
/// slice, plus cached identity.
#[derive(Debug, Clone)]
pub struct Node {
    /// Index of the defining file in the facts slice.
    pub file: usize,
    /// Index of the function within that file's `fns`.
    pub func: usize,
    /// Crate directory of the defining file.
    pub krate: String,
}

/// One resolved call edge. The same callee can appear several times when
/// a function calls it at several sites; each occurrence carries its own
/// `hot_suppressed` flag so `lint::allow(hot_alloc)` cuts exactly the
/// marked edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Target node index.
    pub to: usize,
    /// A `lint::allow(hot_alloc)` marker covers the call site: the
    /// `hot_alloc` traversal skips this occurrence.
    pub hot_suppressed: bool,
}

/// Per-module symbol data.
#[derive(Debug, Default)]
struct ModData {
    /// Function name → node indices defined in this module.
    fns: BTreeMap<String, Vec<usize>>,
    /// `(is_pub, path, alias)` imports declared by this module's files.
    imports: Vec<(bool, Vec<String>, Option<String>)>,
}

/// What a use-path resolves to.
enum Target {
    /// Function definitions.
    Fns(Vec<usize>),
    /// A module, identified by `(crate, module path)`.
    Module(String, Vec<String>),
    /// Nothing the workspace knows about (std, vendored stubs, types).
    Unknown,
}

/// The whole-workspace call graph: nodes for every function defined in
/// non-test, non-tool files, and resolved call edges between them.
#[derive(Debug)]
pub struct Workspace<'a> {
    facts: &'a [FileFacts],
    /// All graph nodes, in deterministic (file path, fn index) order.
    pub nodes: Vec<Node>,
    /// `edges[i]` are the resolved outgoing calls of `nodes[i]`.
    pub edges: Vec<Vec<Edge>>,
    /// (crate, fn name) → node indices, the by-name fallback index.
    by_crate_name: BTreeMap<(String, String), Vec<usize>>,
    /// (crate, module path) → symbol data.
    modules: BTreeMap<(String, Vec<String>), ModData>,
    /// Node indices defined per file, aligned with `facts`.
    file_nodes: Vec<Vec<usize>>,
}

impl<'a> Workspace<'a> {
    /// Builds the graph over every non-test, non-tool file in `facts`.
    pub fn build(facts: &'a [FileFacts]) -> Self {
        let mut ws = Workspace {
            facts,
            nodes: Vec::new(),
            edges: Vec::new(),
            by_crate_name: BTreeMap::new(),
            modules: BTreeMap::new(),
            file_nodes: vec![Vec::new(); facts.len()],
        };
        // Deterministic node order regardless of input file order.
        let mut order: Vec<usize> = (0..facts.len()).collect();
        order.sort_by(|&a, &b| facts[a].path.cmp(&facts[b].path));
        for fi in order {
            let f = &facts[fi];
            if is_test_or_tool_path(&f.path) {
                continue;
            }
            let (krate, module) = module_of(&f.path);
            let slot = ws
                .modules
                .entry((krate.clone(), module.clone()))
                .or_default();
            for imp in &f.imports {
                slot.imports
                    .push((imp.is_pub, imp.path.clone(), imp.alias.clone()));
            }
            // Node creation mutates other workspace fields, so the module
            // slot is re-filled after the borrow on it ends.
            let mut mod_fns: Vec<(String, usize)> = Vec::new();
            for (fj, func) in f.fns.iter().enumerate() {
                let ni = ws.nodes.len();
                ws.nodes.push(Node {
                    file: fi,
                    func: fj,
                    krate: krate.clone(),
                });
                ws.file_nodes[fi].push(ni);
                ws.by_crate_name
                    .entry((krate.clone(), func.name.clone()))
                    .or_default()
                    .push(ni);
                mod_fns.push((func.name.clone(), ni));
            }
            let slot = ws
                .modules
                .entry((krate.clone(), module.clone()))
                .or_default();
            for (name, ni) in mod_fns {
                slot.fns.entry(name).or_default().push(ni);
            }
        }
        ws.edges = ws.nodes.iter().map(|n| ws.link_calls(n)).collect();
        ws
    }

    /// The [`FnFact`] behind a node.
    pub fn func(&self, ni: usize) -> &FnFact {
        let n = &self.nodes[ni];
        &self.facts[n.file].fns[n.func]
    }

    /// The facts of the file defining a node.
    pub fn file(&self, ni: usize) -> &FileFacts {
        &self.facts[self.nodes[ni].file]
    }

    /// All node indices whose function name is `name`, across crates.
    pub fn nodes_named(&self, name: &str) -> Vec<usize> {
        self.by_crate_name
            .iter()
            .filter(|((_, n), _)| n == name)
            .flat_map(|(_, v)| v.iter().copied())
            .collect()
    }

    /// Resolves every call of one function into edges.
    fn link_calls(&self, n: &Node) -> Vec<Edge> {
        let f = &self.facts[n.file].fns[n.func];
        let mut out = Vec::new();
        for call in &f.calls {
            for to in self.resolve_call(n, call) {
                let e = Edge {
                    to,
                    hot_suppressed: call.hot_suppressed,
                };
                if !out.contains(&e) {
                    out.push(e);
                }
            }
        }
        out
    }

    /// All node indices one call can reach, per the precedence rules in
    /// the module docs.
    fn resolve_call(&self, n: &Node, call: &CallRef) -> Vec<usize> {
        let name = call.path.last().map(String::as_str).unwrap_or_default();
        let by_name_here = |ws: &Self| -> Vec<usize> {
            ws.by_crate_name
                .get(&(n.krate.clone(), name.to_string()))
                .cloned()
                .unwrap_or_default()
        };
        if call.method {
            return by_name_here(self);
        }
        if call.path.len() == 1 {
            // Local definitions shadow imports.
            let local: Vec<usize> = self.file_nodes[n.file]
                .iter()
                .copied()
                .filter(|&ni| self.func(ni).name == name)
                .collect();
            if !local.is_empty() {
                return local;
            }
            if let Some(found) = self.resolve_via_file_imports(n.file, name) {
                return found;
            }
            return by_name_here(self);
        }
        // A spelled-out path.
        match self.resolve_path_call(n, &call.path) {
            Some(found) if !found.is_empty() => found,
            _ => by_name_here(self),
        }
    }

    /// Resolves a bare name through the calling file's own `use`
    /// declarations (named imports first, then globs). `None` means "no
    /// import mentions this name" — distinct from an import that resolves
    /// to something callable-free.
    fn resolve_via_file_imports(&self, fi: usize, name: &str) -> Option<Vec<usize>> {
        let (krate, module) = module_of(&self.facts[fi].path);
        let mut mentioned = false;
        let mut found = Vec::new();
        for imp in &self.facts[fi].imports {
            match &imp.alias {
                Some(alias) if alias == name => {
                    mentioned = true;
                    if let Target::Fns(f) =
                        self.resolve_use_path(&krate, &module, &imp.path, MAX_RESOLVE_DEPTH)
                    {
                        found.extend(f);
                    }
                }
                None => {
                    // A glob: look the name up inside the target module.
                    if let Target::Module(k, m) =
                        self.resolve_use_path(&krate, &module, &imp.path, MAX_RESOLVE_DEPTH)
                    {
                        if let Target::Fns(f) =
                            self.resolve_in_module(&k, &m, name, MAX_RESOLVE_DEPTH)
                        {
                            mentioned = true;
                            found.extend(f);
                        }
                    }
                }
                _ => {}
            }
        }
        if found.is_empty() && !mentioned {
            None
        } else {
            Some(found)
        }
    }

    /// Resolves a multi-segment call path (`er_tensor::reduce::dot_f32`,
    /// `self::util::clamp`, `Matrix::zeros`). `None` means the path is
    /// not workspace-resolvable and the caller should fall back.
    fn resolve_path_call(&self, n: &Node, path: &[String]) -> Option<Vec<usize>> {
        let (krate, module) = module_of(&self.facts[n.file].path);
        // Root handling mirrors rustc name lookup, leniently.
        let seg0 = path[0].as_str();
        let (start_k, start_m, rest): (String, Vec<String>, &[String]) = match seg0 {
            "crate" => (krate.clone(), Vec::new(), &path[1..]),
            "self" => (krate.clone(), module.clone(), &path[1..]),
            "super" => {
                let mut m = module.clone();
                let mut rest = &path[1..];
                m.pop();
                while rest.first().is_some_and(|s| s == "super") {
                    m.pop();
                    rest = &rest[1..];
                }
                (krate.clone(), m, rest)
            }
            _ => {
                if let Some(dir) = extern_crate_dir(seg0) {
                    if self.crate_exists(&dir) {
                        (dir, Vec::new(), &path[1..])
                    } else {
                        return None;
                    }
                } else {
                    // A bare module or type name: child module of the
                    // current module, crate-root module, or an imported
                    // name.
                    let mut child = module.clone();
                    child.push(seg0.to_string());
                    if self.modules.contains_key(&(krate.clone(), child.clone())) {
                        (krate.clone(), child, &path[1..])
                    } else if self
                        .modules
                        .contains_key(&(krate.clone(), vec![seg0.to_string()]))
                    {
                        (krate.clone(), vec![seg0.to_string()], &path[1..])
                    } else {
                        return self.resolve_rooted_in_import(n.file, path);
                    }
                }
            }
        };
        Some(self.walk_modules(&start_k, &start_m, rest))
    }

    /// Walks `segs` from a module: every segment but the last must reach
    /// a module (directly or through a `pub use` re-export); the last must
    /// reach functions. Empty result means a dead end.
    fn walk_modules(&self, krate: &str, module: &[String], segs: &[String]) -> Vec<usize> {
        let mut k = krate.to_string();
        let mut m = module.to_vec();
        for (i, seg) in segs.iter().enumerate() {
            let last = i + 1 == segs.len();
            match self.resolve_in_module(&k, &m, seg, MAX_RESOLVE_DEPTH) {
                Target::Fns(f) if last => return f,
                Target::Module(nk, nm) if !last => {
                    k = nk;
                    m = nm;
                }
                _ => return Vec::new(),
            }
        }
        Vec::new()
    }

    /// A path whose root is a `use`-imported name in the calling file:
    /// either the import targets a module (continue walking from it) or a
    /// type re-exported from another workspace crate, in which case
    /// `Type::method` links by name into that crate.
    fn resolve_rooted_in_import(&self, fi: usize, path: &[String]) -> Option<Vec<usize>> {
        let (krate, module) = module_of(&self.facts[fi].path);
        let seg0 = &path[0];
        for imp in &self.facts[fi].imports {
            if imp.alias.as_ref() != Some(seg0) {
                continue;
            }
            match self.resolve_use_path(&krate, &module, &imp.path, MAX_RESOLVE_DEPTH) {
                Target::Module(k, m) => {
                    return Some(self.walk_modules(&k, &m, &path[1..]));
                }
                _ => {
                    // `Type::method(..)` heuristic: the import names a
                    // type; when it comes from a workspace extern crate,
                    // the method lives somewhere in that crate.
                    if let Some(dir) = imp.path.first().and_then(|s| extern_crate_dir(s)) {
                        if self.crate_exists(&dir) {
                            let name = path.last().cloned().unwrap_or_default();
                            return Some(
                                self.by_crate_name
                                    .get(&(dir, name))
                                    .cloned()
                                    .unwrap_or_default(),
                            );
                        }
                    }
                    return None;
                }
            }
        }
        None
    }

    /// Resolves a `use` path declared in `(krate, module)` to its target.
    fn resolve_use_path(
        &self,
        krate: &str,
        module: &[String],
        path: &[String],
        depth: u32,
    ) -> Target {
        if depth == 0 || path.is_empty() {
            return Target::Unknown;
        }
        let seg0 = path[0].as_str();
        let (k, m, rest): (String, Vec<String>, &[String]) = match seg0 {
            "crate" => (krate.to_string(), Vec::new(), &path[1..]),
            "self" => (krate.to_string(), module.to_vec(), &path[1..]),
            "super" => {
                let mut m = module.to_vec();
                let mut rest = &path[1..];
                m.pop();
                while rest.first().is_some_and(|s| s == "super") {
                    m.pop();
                    rest = &rest[1..];
                }
                (krate.to_string(), m, rest)
            }
            _ => match extern_crate_dir(seg0) {
                Some(dir) if self.crate_exists(&dir) => (dir, Vec::new(), &path[1..]),
                _ => {
                    // 2015-style / crate-root-relative module path.
                    if self
                        .modules
                        .contains_key(&(krate.to_string(), vec![seg0.to_string()]))
                    {
                        (krate.to_string(), vec![seg0.to_string()], &path[1..])
                    } else {
                        return Target::Unknown;
                    }
                }
            },
        };
        let mut k = k;
        let mut m = m;
        for (i, seg) in rest.iter().enumerate() {
            let last = i + 1 == rest.len();
            match self.resolve_in_module(&k, &m, seg, depth - 1) {
                Target::Module(nk, nm) => {
                    if last {
                        return Target::Module(nk, nm);
                    }
                    k = nk;
                    m = nm;
                }
                Target::Fns(f) if last => return Target::Fns(f),
                _ => return Target::Unknown,
            }
        }
        Target::Module(k, m)
    }

    /// Resolves one name inside a module: child module first, then
    /// functions defined there, then `pub use` re-exports (named, then
    /// glob).
    fn resolve_in_module(&self, krate: &str, module: &[String], name: &str, depth: u32) -> Target {
        if depth == 0 {
            return Target::Unknown;
        }
        let mut child = module.to_vec();
        child.push(name.to_string());
        if self
            .modules
            .contains_key(&(krate.to_string(), child.clone()))
        {
            return Target::Module(krate.to_string(), child);
        }
        let Some(data) = self.modules.get(&(krate.to_string(), module.to_vec())) else {
            return Target::Unknown;
        };
        if let Some(fns) = data.fns.get(name) {
            return Target::Fns(fns.clone());
        }
        for (is_pub, path, alias) in &data.imports {
            if !is_pub {
                continue;
            }
            match alias {
                Some(a) if a == name => {
                    let t = self.resolve_use_path(krate, module, path, depth - 1);
                    if !matches!(t, Target::Unknown) {
                        return t;
                    }
                }
                None => {
                    if let Target::Module(k, m) =
                        self.resolve_use_path(krate, module, path, depth - 1)
                    {
                        let t = self.resolve_in_module(&k, &m, name, depth - 1);
                        if !matches!(t, Target::Unknown) {
                            return t;
                        }
                    }
                }
                _ => {}
            }
        }
        Target::Unknown
    }

    /// True when any scanned file belongs to crate directory `dir`.
    fn crate_exists(&self, dir: &str) -> bool {
        self.modules.keys().any(|(k, _)| k == dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::facts::extract_facts;
    use crate::rules::FileContext;

    #[allow(clippy::type_complexity)]
    fn build(files: &[(&str, &str)]) -> (Vec<FileFacts>, Vec<(String, String, Vec<String>)>) {
        let cfg = Config::default();
        let facts: Vec<FileFacts> = files
            .iter()
            .map(|&(p, s)| extract_facts(&FileContext::new(p, s), &cfg))
            .collect();
        let ws = Workspace::build(&facts);
        // Flatten edges to (caller path, caller name, callee names).
        let mut flat = Vec::new();
        for (ni, edges) in ws.edges.iter().enumerate() {
            let callees: Vec<String> = edges
                .iter()
                .map(|e| format!("{}::{}", ws.nodes[e.to].krate, ws.func(e.to).name))
                .collect();
            flat.push((ws.file(ni).path.clone(), ws.func(ni).name.clone(), callees));
        }
        (facts, flat)
    }

    fn edges_of(flat: &[(String, String, Vec<String>)], path: &str, name: &str) -> Vec<String> {
        flat.iter()
            .find(|(p, n, _)| p == path && n == name)
            .map(|(_, _, e)| e.clone())
            .expect("caller present")
    }

    #[test]
    fn module_paths_follow_file_layout() {
        assert_eq!(
            module_of("crates/tensor/src/lib.rs"),
            ("tensor".into(), vec![])
        );
        assert_eq!(
            module_of("crates/tensor/src/gather.rs"),
            ("tensor".into(), vec!["gather".into()])
        );
        assert_eq!(
            module_of("crates/mc/src/sub/mod.rs"),
            ("mc".into(), vec!["sub".into()])
        );
        assert_eq!(
            module_of("crates/mc/src/main.rs"),
            ("mc".into(), vec!["main".into()])
        );
    }

    #[test]
    fn direct_cross_crate_import_links_to_the_definition() {
        let (_f, flat) = build(&[
            (
                "crates/rpc/src/entry.rs",
                "use er_cluster::placement::choose_slot;\npub fn route() { choose_slot(); }\n",
            ),
            (
                "crates/cluster/src/placement.rs",
                "pub fn choose_slot() {}\n",
            ),
        ]);
        assert_eq!(
            edges_of(&flat, "crates/rpc/src/entry.rs", "route"),
            vec!["cluster::choose_slot"]
        );
    }

    #[test]
    fn pub_use_reexport_chain_resolves_through_two_crates() {
        // rpc imports from cluster's root, which re-exports from a
        // submodule, which itself re-exports from er_tensor.
        let (_f, flat) = build(&[
            (
                "crates/rpc/src/entry.rs",
                "use er_cluster::probe_len;\npub fn route() { probe_len(); }\n",
            ),
            (
                "crates/cluster/src/lib.rs",
                "pub use wiring::probe_len;\npub mod wiring;\n",
            ),
            (
                "crates/cluster/src/wiring.rs",
                "pub use er_tensor::align::probe_len;\n",
            ),
            ("crates/tensor/src/align.rs", "pub fn probe_len() {}\n"),
        ]);
        assert_eq!(
            edges_of(&flat, "crates/rpc/src/entry.rs", "route"),
            vec!["tensor::probe_len"]
        );
    }

    #[test]
    fn glob_imports_bind_the_target_modules_functions() {
        let (_f, flat) = build(&[
            (
                "crates/rpc/src/entry.rs",
                "use er_cluster::placement::*;\npub fn route() { choose_slot(); }\n",
            ),
            (
                "crates/cluster/src/placement.rs",
                "pub fn choose_slot() {}\npub fn other() {}\n",
            ),
        ]);
        assert_eq!(
            edges_of(&flat, "crates/rpc/src/entry.rs", "route"),
            vec!["cluster::choose_slot"]
        );
    }

    #[test]
    fn renamed_imports_link_under_the_alias() {
        let (_f, flat) = build(&[
            (
                "crates/rpc/src/entry.rs",
                "use er_cluster::placement::choose_slot as pick;\npub fn route() { pick(); }\n",
            ),
            (
                "crates/cluster/src/placement.rs",
                "pub fn choose_slot() {}\npub fn pick() {}\n",
            ),
        ]);
        // The alias wins over the same-named `pick` in the other crate —
        // and over the intra-crate fallback.
        assert_eq!(
            edges_of(&flat, "crates/rpc/src/entry.rs", "route"),
            vec!["cluster::choose_slot"]
        );
    }

    #[test]
    fn local_definitions_shadow_imports() {
        let (_f, flat) = build(&[
            (
                "crates/rpc/src/entry.rs",
                "use er_cluster::placement::choose_slot;\n\
                 pub fn route() { choose_slot(); }\n\
                 fn choose_slot() {}\n",
            ),
            (
                "crates/cluster/src/placement.rs",
                "pub fn choose_slot() {}\n",
            ),
        ]);
        assert_eq!(
            edges_of(&flat, "crates/rpc/src/entry.rs", "route"),
            vec!["rpc::choose_slot"]
        );
    }

    #[test]
    fn unresolved_bare_calls_fall_back_to_intra_crate_by_name() {
        let (_f, flat) = build(&[
            ("crates/rpc/src/entry.rs", "pub fn route() { helper(); }\n"),
            ("crates/rpc/src/util.rs", "pub(crate) fn helper() {}\n"),
            ("crates/metrics/src/util.rs", "pub fn helper() {}\n"),
        ]);
        // Same crate links, other crates do not (phase-2 behaviour).
        assert_eq!(
            edges_of(&flat, "crates/rpc/src/entry.rs", "route"),
            vec!["rpc::helper"]
        );
    }

    #[test]
    fn spelled_out_extern_paths_link_without_imports() {
        let (_f, flat) = build(&[
            (
                "crates/model/src/interaction.rs",
                "pub fn dot() { er_tensor::reduce::dot_f32(); }\n",
            ),
            ("crates/tensor/src/reduce.rs", "pub fn dot_f32() {}\n"),
        ]);
        assert_eq!(
            edges_of(&flat, "crates/model/src/interaction.rs", "dot"),
            vec!["tensor::dot_f32"]
        );
    }

    #[test]
    fn imported_type_method_links_by_name_into_the_source_crate() {
        let (_f, flat) = build(&[
            (
                "crates/core/src/sharded.rs",
                "use er_tensor::Matrix;\npub fn warm() { let m = Matrix::zeros(1, 1); }\n",
            ),
            (
                "crates/tensor/src/matrix.rs",
                "pub fn zeros(r: usize, c: usize) {}\n",
            ),
        ]);
        assert_eq!(
            edges_of(&flat, "crates/core/src/sharded.rs", "warm"),
            vec!["tensor::zeros"]
        );
    }

    #[test]
    fn method_calls_stay_intra_crate() {
        let (_f, flat) = build(&[
            (
                "crates/rpc/src/entry.rs",
                "pub fn route(b: B) { b.pick(); }\nfn pick() {}\n",
            ),
            ("crates/cluster/src/placement.rs", "pub fn pick() {}\n"),
        ]);
        assert_eq!(
            edges_of(&flat, "crates/rpc/src/entry.rs", "route"),
            vec!["rpc::pick"]
        );
    }
}

//! Rule-set configuration: which path classes each rule applies to.
//!
//! The configuration lives in `er-lint.toml` at the workspace root and is
//! parsed by a deliberately tiny reader (single-line string arrays only —
//! the workspace is offline, so no `toml` crate). Every key falls back to
//! the baked-in default when absent, so an empty or missing file means
//! "lint the workspace the standard way".

/// Path classes driving rule applicability. All paths are
/// workspace-relative with forward slashes; matching is by prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// Deterministic-execution paths: wall-clock, ambient RNG,
    /// environment reads, and `HashMap` iteration are banned here.
    pub deterministic: Vec<String>,
    /// Serving hot-path crates: `unwrap`/`expect`/`panic!` are banned in
    /// non-test library code here.
    pub serving: Vec<String>,
    /// Blessed kernel modules: the only places allowed to spell out raw
    /// `f32` reductions (everything else goes through `er_tensor::reduce`).
    pub blessed_kernels: Vec<String>,
    /// Extra paths where wall-clock use is flagged even though they are
    /// not deterministic (benchmark fallbacks — must carry allow markers).
    pub wall_clock_extra: Vec<String>,
    /// Files that have adopted er-units typed quantities: raw-f64
    /// arithmetic on resource-named symbols (`unit_mixing`) is banned here.
    pub units: Vec<String>,
    /// Pure actor-style handler modules (`fn on_msg(&State, Msg) ->
    /// (State, Vec<Out>)` and the helpers they call): wall-clock reads,
    /// ambient RNG, environment reads, and mutable ambient state
    /// (`impure_handler`) are banned inside every fn here — the er-mc
    /// model checker can only explore what is a pure function of its
    /// inputs.
    pub handlers: Vec<String>,
    /// Paths the workspace walk skips entirely.
    pub skip: Vec<String>,
    /// Entry points of the warm serving fast path for the `hot_alloc`
    /// rule: functions statically proven to reach no allocation site.
    /// Each entry is a bare fn name (`forward_ws`, matching every fn of
    /// that name) or `path.rs::name` to pin one definition
    /// (`crates/core/src/engine.rs::event_loop`). The list mirrors what
    /// the dynamic `alloc-count` test drives (see `zero_alloc.rs`); the
    /// `hot_alloc_sync` test keeps the two in lockstep.
    pub hot_alloc_entries: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            deterministic: strs(&["crates/sim/src", "crates/core/src", "crates/partition/src"]),
            serving: strs(&[
                "crates/tensor/src",
                "crates/model/src",
                "crates/core/src",
                "crates/rpc/src",
            ]),
            blessed_kernels: strs(&[
                "crates/tensor/src/matrix.rs",
                "crates/tensor/src/simd.rs",
                "crates/tensor/src/gather.rs",
                "crates/tensor/src/reduce.rs",
                "crates/tensor/src/quant.rs",
            ]),
            wall_clock_extra: strs(&["crates/bench"]),
            units: strs(&[
                "crates/partition/src/cost.rs",
                "crates/partition/src/qps_model.rs",
                "crates/cluster/src/hardware.rs",
                "crates/cluster/src/hpa.rs",
                "crates/model/src/flops.rs",
            ]),
            handlers: strs(&[
                "crates/cluster/src/hpa.rs",
                "crates/cluster/src/schedule.rs",
                "crates/rpc/src/pure.rs",
                "crates/mc/src/actor.rs",
                "crates/mc/src/checker.rs",
                "crates/mc/src/control.rs",
                "crates/mc/src/report.rs",
            ]),
            skip: strs(&["vendor", "target", ".git", "crates/lint/tests/fixtures"]),
            hot_alloc_entries: strs(&[
                "forward_ws",
                "crates/core/src/engine.rs::event_loop",
                "bucketize_into",
                "gather_pool_into",
                "dot_interaction_into",
                "forward_into",
                "matmul_blocked_into",
                "gather_pool_csr",
                "gather_pool_csr_f16",
                "gather_pool_csr_i8",
            ]),
        }
    }
}

fn strs(xs: &[&str]) -> Vec<String> {
    xs.iter().map(|s| s.to_string()).collect()
}

impl Config {
    /// Parses the `er-lint.toml` subset: `key = ["a", "b"]` lines, `#`
    /// comments, section headers ignored. Unknown keys are errors so typos
    /// fail loudly rather than silently disabling a rule.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line on malformed input.
    pub fn from_toml_str(text: &str) -> Result<Self, String> {
        let mut cfg = Config::default();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') || line.starts_with('[') {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "er-lint.toml line {}: expected `key = [..]`",
                    i + 1
                ));
            };
            let items = parse_string_array(value.trim())
                .ok_or_else(|| format!("er-lint.toml line {}: expected a string array", i + 1))?;
            match key.trim() {
                "deterministic" => cfg.deterministic = items,
                "serving" => cfg.serving = items,
                "blessed_kernels" => cfg.blessed_kernels = items,
                "wall_clock_extra" => cfg.wall_clock_extra = items,
                "units" => cfg.units = items,
                "handlers" => cfg.handlers = items,
                "skip" => cfg.skip = items,
                "hot_alloc_entries" => cfg.hot_alloc_entries = items,
                other => {
                    return Err(format!(
                        "er-lint.toml line {}: unknown key `{other}`",
                        i + 1
                    ));
                }
            }
        }
        Ok(cfg)
    }

    /// True when `path` (workspace-relative, forward slashes) falls under
    /// any prefix in `prefixes`.
    pub fn in_paths(path: &str, prefixes: &[String]) -> bool {
        prefixes.iter().any(|p| {
            path == p
                || path
                    .strip_prefix(p.as_str())
                    .is_some_and(|r| r.starts_with('/'))
        })
    }
}

fn parse_string_array(value: &str) -> Option<Vec<String>> {
    let inner = value.strip_prefix('[')?.strip_suffix(']')?;
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue; // trailing comma
        }
        out.push(part.strip_prefix('"')?.strip_suffix('"')?.to_string());
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_covers_the_deterministic_crates() {
        let cfg = Config::default();
        assert!(Config::in_paths(
            "crates/sim/src/time.rs",
            &cfg.deterministic
        ));
        assert!(Config::in_paths(
            "crates/core/src/engine.rs",
            &cfg.deterministic
        ));
        assert!(!Config::in_paths(
            "crates/metrics/src/qps.rs",
            &cfg.deterministic
        ));
    }

    #[test]
    fn prefix_match_is_per_component() {
        let p = vec!["crates/sim/src".to_string()];
        assert!(Config::in_paths("crates/sim/src/rng.rs", &p));
        // A sibling directory sharing the prefix string must not match.
        assert!(!Config::in_paths("crates/sim/srcfoo/x.rs", &p));
    }

    #[test]
    fn toml_overrides_one_key_and_keeps_the_rest() {
        let cfg = Config::from_toml_str("# comment\n[paths]\nderministic_typo = []");
        assert!(cfg.is_err());
        let cfg = Config::from_toml_str("deterministic = [\"x/y\"]").unwrap();
        assert_eq!(cfg.deterministic, vec!["x/y".to_string()]);
        assert_eq!(cfg.serving, Config::default().serving);
    }

    #[test]
    fn arrays_allow_trailing_commas() {
        let cfg = Config::from_toml_str("skip = [\"a\", \"b\",]").unwrap();
        assert_eq!(cfg.skip, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn malformed_lines_are_reported_with_line_numbers() {
        let err = Config::from_toml_str("serving = not-an-array").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }
}

//! A hand-rolled Rust lexer.
//!
//! The workspace builds offline, so `er-lint` cannot lean on `syn` or
//! `proc-macro2`; instead this module tokenizes Rust source directly. The
//! rules in [`crate::rules`] operate on token *shapes* (identifier / path /
//! punctuation sequences), so the lexer only needs to be faithful about the
//! things that can hide or fake a match: comments, string and character
//! literals (including raw strings), lifetimes, and the `::` path
//! separator. It does not parse; it never fails — unknown bytes become
//! single-character punctuation tokens.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (including raw identifiers like `r#match`).
    Ident,
    /// A lifetime such as `'static` (the quote is part of the token).
    Lifetime,
    /// An integer or float literal, suffix included.
    Number,
    /// A string, byte-string, raw-string, C-string, or char literal.
    Literal,
    /// A line (`//`) or block (`/* */`) comment, doc or not.
    Comment {
        /// `true` for `/* */`, `false` for `//`.
        block: bool,
    },
    /// The `::` path separator.
    PathSep,
    /// Any other single character.
    Punct(char),
}

/// One lexed token with its position in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Byte offset of the token's first byte.
    pub start: usize,
    /// Byte length of the token.
    pub len: usize,
    /// 1-based line of the token's first byte.
    pub line: u32,
    /// 1-based byte column of the token's first byte.
    pub col: u32,
}

impl Token {
    /// The token's text within `src` (the source it was lexed from).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.start + self.len]
    }
}

/// Tokenizes `src`. Comments are kept (rules need them for allow markers);
/// whitespace is dropped.
pub fn tokenize(src: &str) -> Vec<Token> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn run(mut self) -> Vec<Token> {
        let mut out = Vec::new();
        loop {
            while matches!(self.peek(), Some(b) if b.is_ascii_whitespace()) {
                self.bump();
            }
            let Some(b) = self.peek() else { break };
            let (start, line, col) = (self.pos, self.line, self.col);
            let kind = self.next_kind(b);
            out.push(Token {
                kind,
                start,
                len: self.pos - start,
                line,
                col,
            });
        }
        out
    }

    fn next_kind(&mut self, b: u8) -> TokenKind {
        match b {
            b'/' if self.peek_at(1) == Some(b'/') => self.line_comment(),
            b'/' if self.peek_at(1) == Some(b'*') => self.block_comment(),
            b'"' => self.string(true),
            b'\'' => self.char_or_lifetime(),
            b'0'..=b'9' => self.number(),
            b':' if self.peek_at(1) == Some(b':') => {
                self.bump();
                self.bump();
                TokenKind::PathSep
            }
            _ if is_ident_start(b) => self.ident_or_prefixed_literal(),
            _ => {
                self.bump();
                TokenKind::Punct(b as char)
            }
        }
    }

    fn line_comment(&mut self) -> TokenKind {
        while let Some(b) = self.peek() {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        TokenKind::Comment { block: false }
    }

    fn block_comment(&mut self) -> TokenKind {
        // `/*` nests in Rust.
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(), self.peek_at(1)) {
                (Some(b'/'), Some(b'*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some(b'*'), Some(b'/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break, // unterminated: tolerate
            }
        }
        TokenKind::Comment { block: true }
    }

    /// A `"`-delimited literal. `escapes` is false for raw strings.
    fn string(&mut self, escapes: bool) -> TokenKind {
        self.bump(); // opening quote
        while let Some(b) = self.bump() {
            match b {
                b'\\' if escapes => {
                    self.bump();
                }
                b'"' => break,
                _ => {}
            }
        }
        TokenKind::Literal
    }

    /// A raw string already positioned at its `#` run or opening quote:
    /// consumes `#* " ... " #*` with matching hash counts.
    fn raw_string(&mut self) -> TokenKind {
        let mut hashes = 0usize;
        while self.peek() == Some(b'#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        loop {
            match self.bump() {
                Some(b'"') => {
                    let mut seen = 0usize;
                    while seen < hashes && self.peek() == Some(b'#') {
                        seen += 1;
                        self.bump();
                    }
                    if seen == hashes {
                        return TokenKind::Literal;
                    }
                }
                Some(_) => {}
                None => return TokenKind::Literal, // unterminated: tolerate
            }
        }
    }

    fn char_or_lifetime(&mut self) -> TokenKind {
        self.bump(); // the quote
        match self.peek() {
            Some(b'\\') => {
                // Escaped char literal: '\n', '\'', '\u{..}'.
                self.bump();
                self.bump();
                while let Some(b) = self.peek() {
                    self.bump();
                    if b == b'\'' {
                        break;
                    }
                }
                TokenKind::Literal
            }
            Some(b) if is_ident_start(b) => {
                // 'a' is a char literal; 'a (no closing quote) a lifetime.
                while matches!(self.peek(), Some(c) if is_ident_continue(c)) {
                    self.bump();
                }
                if self.peek() == Some(b'\'') {
                    self.bump();
                    TokenKind::Literal
                } else {
                    TokenKind::Lifetime
                }
            }
            _ => {
                // '1', '.', ' ', or a multi-byte char: scan to closing quote.
                while let Some(b) = self.bump() {
                    if b == b'\'' {
                        break;
                    }
                }
                TokenKind::Literal
            }
        }
    }

    fn number(&mut self) -> TokenKind {
        let mut prev = 0u8;
        while let Some(b) = self.peek() {
            let take = b.is_ascii_alphanumeric()
                || b == b'_'
                || (b == b'.' && matches!(self.peek_at(1), Some(d) if d.is_ascii_digit()))
                || ((b == b'+' || b == b'-') && (prev == b'e' || prev == b'E'));
            if !take {
                break;
            }
            prev = b;
            self.bump();
        }
        TokenKind::Number
    }

    fn ident_or_prefixed_literal(&mut self) -> TokenKind {
        let start = self.pos;
        while matches!(self.peek(), Some(b) if is_ident_continue(b)) {
            self.bump();
        }
        let ident = &self.src[start..self.pos];
        let is_literal_prefix = matches!(ident, b"r" | b"b" | b"br" | b"rb" | b"c" | b"cr");
        if is_literal_prefix {
            let raw = ident != b"b" && ident != b"c";
            match self.peek() {
                Some(b'"') => return self.string(!raw),
                Some(b'#') if raw => {
                    // `r#"..."#` is a raw string; `r#ident` a raw identifier.
                    if ident == b"r" && matches!(self.peek_at(1), Some(c) if is_ident_start(c)) {
                        self.bump(); // '#'
                        while matches!(self.peek(), Some(c) if is_ident_continue(c)) {
                            self.bump();
                        }
                        return TokenKind::Ident;
                    }
                    return self.raw_string();
                }
                _ => {}
            }
        }
        if ident == b"b" && self.peek() == Some(b'\'') {
            return self.char_or_lifetime();
        }
        TokenKind::Ident
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).into_iter().map(|t| t.kind).collect()
    }

    fn texts(src: &str) -> Vec<String> {
        tokenize(src)
            .into_iter()
            .map(|t| t.text(src).to_string())
            .collect()
    }

    #[test]
    fn idents_paths_and_calls() {
        assert_eq!(
            texts("Instant::now()"),
            vec!["Instant", "::", "now", "(", ")"]
        );
        assert_eq!(
            kinds("Instant::now()"),
            vec![
                TokenKind::Ident,
                TokenKind::PathSep,
                TokenKind::Ident,
                TokenKind::Punct('('),
                TokenKind::Punct(')'),
            ]
        );
    }

    #[test]
    fn single_colon_is_not_a_path_sep() {
        assert_eq!(
            kinds("x: u32"),
            vec![TokenKind::Ident, TokenKind::Punct(':'), TokenKind::Ident]
        );
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = tokenize(r#"let s = "Instant::now()";"#);
        assert!(toks
            .iter()
            .all(|t| t.kind != TokenKind::Ident
                || t.text(r#"let s = "Instant::now()";"#) != "Instant"));
    }

    #[test]
    fn escaped_quotes_stay_inside_the_string() {
        let src = r#""a \" b" x"#;
        let toks = tokenize(src);
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].kind, TokenKind::Literal);
        assert_eq!(toks[1].text(src), "x");
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r###"r#"has "quotes" and # inside"# tail"###;
        let toks = tokenize(src);
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].kind, TokenKind::Literal);
        assert_eq!(toks[1].text(src), "tail");
    }

    #[test]
    fn byte_and_c_strings() {
        assert_eq!(kinds(r#"b"x""#), vec![TokenKind::Literal]);
        assert_eq!(kinds(r##"br#"x"#"##), vec![TokenKind::Literal]);
        assert_eq!(kinds(r#"c"x""#), vec![TokenKind::Literal]);
        assert_eq!(kinds("b'x'"), vec![TokenKind::Literal]);
    }

    #[test]
    fn raw_identifiers() {
        let src = "r#match + rb";
        let toks = tokenize(src);
        assert_eq!(toks[0].kind, TokenKind::Ident);
        assert_eq!(toks[0].text(src), "r#match");
        assert_eq!(toks[2].text(src), "rb");
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let src = "&'a str, 'x', '\\n'";
        let toks = tokenize(src);
        assert_eq!(toks[1].kind, TokenKind::Lifetime);
        assert_eq!(toks[1].text(src), "'a");
        let lits: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .collect();
        assert_eq!(lits.len(), 2);
    }

    #[test]
    fn line_and_block_comments_are_tokens() {
        let src = "a // Instant::now()\n/* nested /* block */ still */ b";
        let toks = tokenize(src);
        let idents: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(idents, vec!["a", "b"]);
        assert_eq!(
            toks.iter()
                .filter(|t| matches!(t.kind, TokenKind::Comment { .. }))
                .count(),
            2
        );
    }

    #[test]
    fn numbers_including_float_exponents() {
        assert_eq!(
            kinds("1_000 0xff 1.5e-3 2.0f32"),
            vec![TokenKind::Number; 4]
        );
        // `1..n` must not eat the range operator.
        assert_eq!(texts("1..n"), vec!["1", ".", ".", "n"]);
        // Method calls on integers keep the dot separate.
        assert_eq!(texts("1.max(2)"), vec!["1", ".", "max", "(", "2", ")"]);
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let src = "a\n  bb";
        let toks = tokenize(src);
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn unterminated_inputs_do_not_hang() {
        let _ = tokenize("\"unterminated");
        let _ = tokenize("/* unterminated");
        let _ = tokenize("r#\"unterminated");
        let _ = tokenize("'u");
    }
}

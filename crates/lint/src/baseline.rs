//! The ratchet baseline: per-rule violation counts that may only go down.
//!
//! `er-lint-baseline.json` at the workspace root records, per rule, how
//! many violations the workspace is currently allowed to carry. CI runs
//! the workspace pass with `--baseline er-lint-baseline.json`:
//!
//! * any rule whose current count **exceeds** its baselined count fails
//!   the run, printing the offending rules and the JSON for the *current*
//!   counts (never to be committed as-is — fix the regressions instead);
//! * any rule whose count **dropped** prints a reminder to tighten the
//!   committed baseline (the suggested JSON is the tightened one), but
//!   passes — the ratchet only turns one way, and it turns by committing
//!   the lower number.
//!
//! The file is a flat JSON object, `{"rule": count, ...}`; rules absent
//! from it default to 0, unknown rule names are an error (a typo would
//! otherwise silently stop ratcheting that rule).

use std::collections::BTreeMap;

use crate::rules::{Diagnostic, RULES};

/// Per-rule count map in stable rule order.
pub type Counts = BTreeMap<&'static str, usize>;

/// Counts the diagnostics per rule, every known rule present.
pub fn count_by_rule(diags: &[Diagnostic]) -> Counts {
    let mut counts: Counts = RULES.iter().map(|r| (*r, 0)).collect();
    for d in diags {
        *counts.entry(d.rule).or_insert(0) += 1;
    }
    counts
}

/// Parses the flat `{"rule": count}` JSON object.
///
/// # Errors
///
/// Returns a message on malformed JSON or unknown rule names.
pub fn parse(text: &str) -> Result<Counts, String> {
    let body = text.trim();
    let body = body
        .strip_prefix('{')
        .and_then(|b| b.strip_suffix('}'))
        .ok_or("baseline: expected a JSON object {\"rule\": count, ...}")?;
    let mut counts: Counts = RULES.iter().map(|r| (*r, 0)).collect();
    for pair in body.split(',') {
        let pair = pair.trim();
        if pair.is_empty() {
            continue;
        }
        let (key, value) = pair
            .split_once(':')
            .ok_or_else(|| format!("baseline: expected `\"rule\": count`, got `{pair}`"))?;
        let key = key
            .trim()
            .strip_prefix('"')
            .and_then(|k| k.strip_suffix('"'))
            .ok_or_else(|| format!("baseline: rule name must be quoted in `{pair}`"))?;
        let rule = RULES.iter().find(|r| **r == key).ok_or_else(|| {
            format!(
                "baseline: unknown rule `{key}` (known: {})",
                RULES.join(", ")
            )
        })?;
        let value: usize = value
            .trim()
            .parse()
            .map_err(|_| format!("baseline: count for `{key}` is not a number"))?;
        counts.insert(rule, value);
    }
    Ok(counts)
}

/// Renders counts as the canonical committed format: one rule per line,
/// stable RULES order, zeros included (an explicit zero is the ratchet's
/// strongest claim).
pub fn render(counts: &Counts) -> String {
    let mut out = String::from("{\n");
    for (i, rule) in RULES.iter().enumerate() {
        let n = counts.get(rule).copied().unwrap_or(0);
        out.push_str(&format!("  \"{rule}\": {n}"));
        out.push_str(if i + 1 < RULES.len() { ",\n" } else { "\n" });
    }
    out.push_str("}\n");
    out
}

/// The ratchet verdict for one comparison.
#[derive(Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Every rule at or below its baseline, none below: nothing to do.
    Clean,
    /// Some rules dropped below baseline: pass, but suggest tightening.
    Tighten(Vec<String>),
    /// Some rules exceed baseline: fail.
    Regressed(Vec<String>),
}

/// Compares current counts to the baseline. Regressions dominate the
/// verdict; improvements are listed for the tightening reminder.
pub fn compare(current: &Counts, baseline: &Counts) -> Verdict {
    let mut regressed = Vec::new();
    let mut improved = Vec::new();
    for rule in RULES {
        let cur = current.get(rule).copied().unwrap_or(0);
        let base = baseline.get(rule).copied().unwrap_or(0);
        if cur > base {
            regressed.push(format!("{rule}: {base} -> {cur}"));
        } else if cur < base {
            improved.push(format!("{rule}: {base} -> {cur}"));
        }
    }
    if !regressed.is_empty() {
        Verdict::Regressed(regressed)
    } else if !improved.is_empty() {
        Verdict::Tighten(improved)
    } else {
        Verdict::Clean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(pairs: &[(&'static str, usize)]) -> Counts {
        let mut c: Counts = RULES.iter().map(|r| (*r, 0)).collect();
        for (r, n) in pairs {
            c.insert(r, *n);
        }
        c
    }

    #[test]
    fn parse_and_render_roundtrip() {
        let c = counts(&[("no_panic", 3), ("hot_alloc", 1)]);
        let parsed = parse(&render(&c)).unwrap();
        assert_eq!(parsed, c);
    }

    #[test]
    fn unknown_rules_and_malformed_input_are_errors() {
        assert!(parse("{\"no_such\": 1}")
            .unwrap_err()
            .contains("unknown rule"));
        assert!(parse("not json").is_err());
        assert!(parse("{\"no_panic\": x}").is_err());
    }

    #[test]
    fn missing_rules_default_to_zero() {
        let parsed = parse("{\"no_panic\": 2}").unwrap();
        assert_eq!(parsed.get("no_panic"), Some(&2));
        assert_eq!(parsed.get("hot_alloc"), Some(&0));
    }

    #[test]
    fn ratchet_fails_on_increase_passes_on_decrease() {
        let base = counts(&[("no_panic", 2)]);
        assert_eq!(compare(&counts(&[("no_panic", 2)]), &base), Verdict::Clean);
        match compare(&counts(&[("no_panic", 3)]), &base) {
            Verdict::Regressed(lines) => assert_eq!(lines, vec!["no_panic: 2 -> 3"]),
            other => panic!("expected Regressed, got {other:?}"),
        }
        match compare(&counts(&[("no_panic", 1)]), &base) {
            Verdict::Tighten(lines) => assert_eq!(lines, vec!["no_panic: 2 -> 1"]),
            other => panic!("expected Tighten, got {other:?}"),
        }
    }
}

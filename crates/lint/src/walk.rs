//! Workspace traversal: find every `.rs` file the lint should see.

use std::path::{Path, PathBuf};

use crate::config::Config;

/// Collects workspace-relative paths of all `.rs` files under `root`,
/// skipping the configured prefixes (vendored stubs, build output, lint
/// fixtures). Results are sorted so diagnostics are stable run to run.
///
/// # Errors
///
/// Returns the first I/O error hit while reading a directory.
pub fn rust_files(root: &Path, cfg: &Config) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            let rel = relative(root, &path);
            if cfg
                .skip
                .iter()
                .any(|s| Config::in_paths(&rel, std::slice::from_ref(s)))
                || rel.starts_with('.')
            {
                continue;
            }
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// `path` relative to `root`, with forward slashes — the form every rule
/// scope and skip list uses.
pub fn relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let mut s = String::new();
    for comp in rel.components() {
        if !s.is_empty() {
            s.push('/');
        }
        s.push_str(&comp.as_os_str().to_string_lossy());
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_uses_forward_slashes() {
        let root = Path::new("/a/b");
        assert_eq!(relative(root, Path::new("/a/b/c/d.rs")), "c/d.rs");
    }

    #[test]
    fn skip_list_prunes_by_prefix() {
        let cfg = Config::default();
        // `vendor` is skipped by default; anything under it never appears.
        assert!(cfg.skip.iter().any(|s| s == "vendor"));
    }
}

//! The rule engine: determinism and hot-path hygiene checks over the
//! token stream.
//!
//! Rules are shape matchers over [`crate::lexer`] tokens, scoped by path
//! class (see [`Config`]) and aware of two escape hatches:
//!
//! * `#[cfg(test)]` items (and whole files under `tests/`, `benches/`,
//!   `examples/`, or `bin/`) are exempt from hot-path rules;
//! * a comment containing `lint::allow(rule_name): reason` suppresses
//!   `rule_name` on its own line and the line directly below — the
//!   documented way to bless an intentional exception.

use std::collections::{BTreeMap, BTreeSet};

use crate::config::Config;
use crate::lexer::{tokenize, Token, TokenKind};

/// Every rule the engine can emit, in stable summary order. This is also
/// the vocabulary `lint::allow(..)` markers and the ratchet baseline are
/// validated against.
pub const RULES: [&str; 10] = [
    "wall_clock",
    "ambient_rng",
    "env_io",
    "hashmap_iter",
    "no_panic",
    "float_reduction",
    "unit_mixing",
    "impure_handler",
    "hot_alloc",
    "unused_allow",
];

/// One rule violation, pointing at the first token of the match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line of the match.
    pub line: u32,
    /// 1-based column of the match.
    pub col: u32,
    /// Stable rule name (what `lint::allow(..)` takes).
    pub rule: &'static str,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
    /// For call-graph rules, the function chain from the public entry
    /// point to the function containing the match (`["serve", "helper",
    /// "inner"]`). Empty for per-file token rules.
    pub chain: Vec<String>,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

fn json_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The stable machine-readable schema: an array of objects with exactly
/// the keys `rule`, `path`, `line`, `col`, `message`, `chain`. This is
/// what `--format json` prints and what `target/er-lint.json` holds.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[\n");
    for (i, d) in diags.iter().enumerate() {
        out.push_str("  {\"rule\": ");
        json_escaped(d.rule, &mut out);
        out.push_str(", \"path\": ");
        json_escaped(&d.path, &mut out);
        out.push_str(&format!(
            ", \"line\": {}, \"col\": {}, \"message\": ",
            d.line, d.col
        ));
        json_escaped(&d.message, &mut out);
        out.push_str(", \"chain\": [");
        for (j, link) in d.chain.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            json_escaped(link, &mut out);
        }
        out.push_str("]}");
        out.push_str(if i + 1 < diags.len() { ",\n" } else { "\n" });
    }
    out.push(']');
    out
}

/// A lexed file plus everything the rules need to scope their matches.
#[derive(Debug)]
pub struct FileContext<'a> {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// The file's source text.
    pub src: &'a str,
    /// All tokens, comments included.
    pub tokens: Vec<Token>,
    /// Indices (into `tokens`) of non-comment tokens, in order.
    pub(crate) code: Vec<usize>,
    /// `in_test[i]` is true when `tokens[i]` sits inside a `#[cfg(test)]`
    /// item.
    in_test: Vec<bool>,
    /// Line -> rule names suppressed on that line by allow markers.
    allows: BTreeMap<u32, BTreeSet<String>>,
    /// Every non-doc-comment marker occurrence as `(line, col, rule)`,
    /// for the unused-marker audit.
    raw_allows: Vec<(u32, u32, String)>,
}

impl<'a> FileContext<'a> {
    /// Lexes `src` and precomputes test regions and allow markers.
    pub fn new(path: impl Into<String>, src: &'a str) -> Self {
        let tokens = tokenize(src);
        let code = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.kind, TokenKind::Comment { .. }))
            .map(|(i, _)| i)
            .collect();
        let in_test = test_regions(&tokens, src);
        let (allows, raw_allows) = allow_markers(&tokens, src);
        Self {
            path: path.into(),
            src,
            tokens,
            code,
            in_test,
            allows,
            raw_allows,
        }
    }

    pub(crate) fn text(&self, code_idx: usize) -> &str {
        self.tokens[self.code[code_idx]].text(self.src)
    }

    pub(crate) fn kind(&self, code_idx: usize) -> TokenKind {
        self.tokens[self.code[code_idx]].kind
    }

    pub(crate) fn tok(&self, code_idx: usize) -> &Token {
        &self.tokens[self.code[code_idx]]
    }

    pub(crate) fn is_test_token(&self, code_idx: usize) -> bool {
        self.in_test[self.code[code_idx]]
    }

    pub(crate) fn is_ident(&self, code_idx: usize, name: &str) -> bool {
        self.kind(code_idx) == TokenKind::Ident && self.text(code_idx) == name
    }

    pub(crate) fn suppressed(&self, line: u32, rule: &str) -> bool {
        self.allows
            .get(&line)
            .is_some_and(|set| set.contains(rule) || set.contains("all"))
    }

    /// The raw `(line, col, rule)` marker list, doc comments excluded —
    /// the unused-marker audit walks this.
    pub(crate) fn raw_markers(&self) -> &[(u32, u32, String)] {
        &self.raw_allows
    }
}

/// Marks every token inside a `#[cfg(test)]` item (attribute through the
/// item's closing brace or semicolon).
fn test_regions(tokens: &[Token], src: &str) -> Vec<bool> {
    let mut marked = vec![false; tokens.len()];
    let code: Vec<usize> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.kind, TokenKind::Comment { .. }))
        .map(|(i, _)| i)
        .collect();
    let is = |ci: usize, k: TokenKind| code.get(ci).is_some_and(|&i| tokens[i].kind == k);
    let mut ci = 0;
    while ci < code.len() {
        if is(ci, TokenKind::Punct('#')) && is(ci + 1, TokenKind::Punct('[')) {
            // Find the attribute's closing bracket and whether it is a
            // cfg(..test..) attribute.
            let mut depth = 0usize;
            let mut j = ci + 1;
            let mut mentions_cfg = false;
            let mut mentions_test = false;
            while j < code.len() {
                match tokens[code[j]].kind {
                    TokenKind::Punct('[') => depth += 1,
                    TokenKind::Punct(']') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    TokenKind::Ident => {
                        let t = tokens[code[j]].text(src);
                        mentions_cfg |= t == "cfg";
                        mentions_test |= t == "test";
                    }
                    _ => {}
                }
                j += 1;
            }
            if mentions_cfg && mentions_test && j < code.len() {
                // Skip any further attributes on the same item, then mark
                // the item body: through the matching `}` of its first
                // top-level `{`, or through a terminating `;`.
                let mut k = j + 1;
                while is(k, TokenKind::Punct('#')) && is(k + 1, TokenKind::Punct('[')) {
                    let mut d = 0usize;
                    while k < code.len() {
                        match tokens[code[k]].kind {
                            TokenKind::Punct('[') => d += 1,
                            TokenKind::Punct(']') => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    k += 1;
                }
                let body_start = k;
                let mut brace = 0usize;
                let mut paren = 0usize;
                let mut end = code.len().saturating_sub(1);
                while k < code.len() {
                    match tokens[code[k]].kind {
                        TokenKind::Punct('(') => paren += 1,
                        TokenKind::Punct(')') => paren = paren.saturating_sub(1),
                        TokenKind::Punct('{') => brace += 1,
                        TokenKind::Punct('}') => {
                            brace = brace.saturating_sub(1);
                            if brace == 0 {
                                end = k;
                                break;
                            }
                        }
                        TokenKind::Punct(';') if brace == 0 && paren == 0 => {
                            end = k;
                            break;
                        }
                        _ => {}
                    }
                    k += 1;
                }
                // Mark raw token range (comments inside included).
                for slot in marked
                    .iter_mut()
                    .take(code[end.min(code.len() - 1)] + 1)
                    .skip(code[ci])
                {
                    *slot = true;
                }
                ci = end + 1;
                let _ = body_start;
                continue;
            }
        }
        ci += 1;
    }
    marked
}

/// Collects `lint::allow(rule, ...)` markers from comments. A marker
/// covers its own line and the next line, so it can sit inline or on the
/// line above the exception it blesses. Also returns the raw occurrence
/// list `(line, col, rule)` — minus doc comments, which merely *document*
/// the marker syntax — for the unused-marker audit.
#[allow(clippy::type_complexity)]
fn allow_markers(
    tokens: &[Token],
    src: &str,
) -> (BTreeMap<u32, BTreeSet<String>>, Vec<(u32, u32, String)>) {
    let mut map: BTreeMap<u32, BTreeSet<String>> = BTreeMap::new();
    let mut raw: Vec<(u32, u32, String)> = Vec::new();
    for t in tokens {
        if !matches!(t.kind, TokenKind::Comment { .. }) {
            continue;
        }
        let text = t.text(src);
        let doc = text.starts_with("///")
            || text.starts_with("//!")
            || text.starts_with("/**")
            || text.starts_with("/*!");
        let mut rest = text;
        while let Some(at) = rest.find("lint::allow(") {
            let args = &rest[at + "lint::allow(".len()..];
            let Some(close) = args.find(')') else { break };
            for rule in args[..close].split(',') {
                let rule = rule.trim().to_string();
                if !rule.is_empty() {
                    map.entry(t.line).or_default().insert(rule.clone());
                    map.entry(t.line + 1).or_default().insert(rule.clone());
                    if !doc {
                        raw.push((t.line, t.col, rule));
                    }
                }
            }
            rest = &args[close..];
        }
    }
    (map, raw)
}

/// True for file classes exempt from hot-path rules: test, bench, example,
/// and CLI-binary code.
pub fn is_test_or_tool_path(path: &str) -> bool {
    let p = format!("/{path}");
    ["/tests/", "/benches/", "/examples/", "/bin/", "/fixtures/"]
        .iter()
        .any(|seg| p.contains(seg))
}

/// Runs every applicable per-file rule over one file, `no_panic` as a
/// plain token scan. The workspace entry point
/// [`crate::graph::check_workspace`] runs the same rules but replaces the
/// token scan with call-graph reachability from public serving functions.
pub fn check_file(ctx: &FileContext<'_>, cfg: &Config) -> Vec<Diagnostic> {
    check_file_inner(ctx, cfg, true)
}

/// The per-file rule pass. With `token_no_panic` false the token-level
/// `no_panic` scan is skipped (the caller supplies the call-graph version
/// instead).
pub(crate) fn check_file_inner(
    ctx: &FileContext<'_>,
    cfg: &Config,
    token_no_panic: bool,
) -> Vec<Diagnostic> {
    let mut out = rules_pass(ctx, cfg, token_no_panic);
    out.retain(|d| !ctx.suppressed(d.line, d.rule));
    out
}

/// Per-file rules *before* marker suppression and without the token-level
/// `no_panic` scan — what the workspace fact extractor records, so the
/// unused-marker audit can see which markers actually suppress something.
pub(crate) fn check_file_presuppress(ctx: &FileContext<'_>, cfg: &Config) -> Vec<Diagnostic> {
    rules_pass(ctx, cfg, false)
}

/// The shared rule dispatcher (no suppression applied).
fn rules_pass(ctx: &FileContext<'_>, cfg: &Config, token_no_panic: bool) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let det = Config::in_paths(&ctx.path, &cfg.deterministic);
    let serving = Config::in_paths(&ctx.path, &cfg.serving);
    let blessed = Config::in_paths(&ctx.path, &cfg.blessed_kernels);
    let tool = is_test_or_tool_path(&ctx.path);

    if det || Config::in_paths(&ctx.path, &cfg.wall_clock_extra) {
        wall_clock(ctx, &mut out);
    }
    if det && !tool {
        ambient_rng(ctx, &mut out);
        env_io(ctx, &mut out);
        hashmap_iter(ctx, &mut out);
    }
    if serving && !tool {
        if token_no_panic {
            no_panic(ctx, &mut out);
        }
        if !blessed {
            float_reduction(ctx, &mut out);
        }
    }
    if Config::in_paths(&ctx.path, &cfg.units) && !blessed && !tool {
        unit_mixing(ctx, &mut out);
    }
    if Config::in_paths(&ctx.path, &cfg.handlers) && !tool {
        impure_handler(ctx, &mut out);
    }
    out
}

fn push(
    out: &mut Vec<Diagnostic>,
    ctx: &FileContext<'_>,
    ci: usize,
    rule: &'static str,
    msg: String,
) {
    let t = ctx.tok(ci);
    out.push(Diagnostic {
        path: ctx.path.clone(),
        line: t.line,
        col: t.col,
        rule,
        message: msg,
        chain: Vec::new(),
    });
}

/// `wall_clock`: `Instant::now` / `SystemTime::now` in deterministic
/// paths. Simulated components must take time from `er_sim::SimTime`.
fn wall_clock(ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    for ci in 0..ctx.code.len().saturating_sub(2) {
        let head = ctx.text(ci);
        if ctx.kind(ci) == TokenKind::Ident
            && (head == "Instant" || head == "SystemTime")
            && ctx.kind(ci + 1) == TokenKind::PathSep
            && ctx.is_ident(ci + 2, "now")
        {
            push(
                out,
                ctx,
                ci,
                "wall_clock",
                format!("`{head}::now()` reads the wall clock; deterministic paths must take time from `er_sim::SimTime`"),
            );
        }
    }
}

/// `ambient_rng`: ambient (unseeded) randomness in deterministic paths.
fn ambient_rng(ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    for ci in 0..ctx.code.len() {
        if ctx.is_test_token(ci) || ctx.kind(ci) != TokenKind::Ident {
            continue;
        }
        let t = ctx.text(ci);
        let hit = t == "thread_rng"
            || t == "from_entropy"
            || (t == "random"
                && ci >= 2
                && ctx.kind(ci - 1) == TokenKind::PathSep
                && ctx.is_ident(ci - 2, "rand"));
        if hit {
            push(
                out,
                ctx,
                ci,
                "ambient_rng",
                format!("`{t}` draws entropy from the environment; deterministic paths must use a seeded `er_sim::SimRng`"),
            );
        }
    }
}

/// Process-environment accessors shared by `env_io` and `impure_handler`.
pub(crate) const ENV_CALLS: [&str; 7] = [
    "var", "var_os", "vars", "vars_os", "args", "args_os", "temp_dir",
];

/// `env_io`: process-environment reads in deterministic paths.
fn env_io(ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    const CALLS: [&str; 7] = ENV_CALLS;
    for ci in 0..ctx.code.len().saturating_sub(2) {
        if ctx.is_test_token(ci) {
            continue;
        }
        if ctx.is_ident(ci, "env")
            && ctx.kind(ci + 1) == TokenKind::PathSep
            && ctx.kind(ci + 2) == TokenKind::Ident
            && CALLS.contains(&ctx.text(ci + 2))
        {
            push(
                out,
                ctx,
                ci,
                "env_io",
                format!(
                    "`env::{}` makes behaviour depend on the process environment; thread configuration through explicit parameters",
                    ctx.text(ci + 2)
                ),
            );
        }
    }
}

/// `hashmap_iter`: iteration over `HashMap`/`HashSet` bindings in
/// deterministic paths — iteration order varies run to run; use
/// `BTreeMap`/`BTreeSet` or sort keys first.
fn hashmap_iter(ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    const ITERS: [&str; 9] = [
        "iter",
        "iter_mut",
        "keys",
        "values",
        "values_mut",
        "into_iter",
        "drain",
        "retain",
        "extend",
    ];
    // Pass 1: names declared with a HashMap/HashSet type or initializer.
    let mut tracked: BTreeSet<String> = BTreeSet::new();
    for ci in 0..ctx.code.len() {
        let t = ctx.text(ci);
        if ctx.kind(ci) != TokenKind::Ident || (t != "HashMap" && t != "HashSet") {
            continue;
        }
        // Walk back over a path prefix (`std::collections::`).
        let mut head = ci;
        while head >= 2
            && ctx.kind(head - 1) == TokenKind::PathSep
            && ctx.kind(head - 2) == TokenKind::Ident
        {
            head -= 2;
        }
        if head == 0 {
            continue;
        }
        match ctx.kind(head - 1) {
            // `name: HashMap<..>` (field or let with type annotation).
            TokenKind::Punct(':') if head >= 2 && ctx.kind(head - 2) == TokenKind::Ident => {
                tracked.insert(ctx.text(head - 2).to_string());
            }
            // `let [mut] name = HashMap::new()`.
            TokenKind::Punct('=') if head >= 2 && ctx.kind(head - 2) == TokenKind::Ident => {
                tracked.insert(ctx.text(head - 2).to_string());
            }
            _ => {}
        }
    }
    if tracked.is_empty() {
        return;
    }
    // Pass 2: iteration over a tracked name.
    for ci in 0..ctx.code.len() {
        if ctx.is_test_token(ci) || ctx.kind(ci) != TokenKind::Ident {
            continue;
        }
        let name = ctx.text(ci);
        if !tracked.contains(name) {
            continue;
        }
        // `name.iter()` and friends.
        if ci + 2 < ctx.code.len()
            && ctx.kind(ci + 1) == TokenKind::Punct('.')
            && ctx.kind(ci + 2) == TokenKind::Ident
            && ITERS.contains(&ctx.text(ci + 2))
        {
            push(
                out,
                ctx,
                ci,
                "hashmap_iter",
                format!(
                    "iterating `{name}` (a HashMap/HashSet) via `.{}()` is order-nondeterministic; use BTreeMap/BTreeSet or walk sorted keys",
                    ctx.text(ci + 2)
                ),
            );
            continue;
        }
        // `for x in [&[mut]] [self.]name` — the name must end the loop
        // header expression (next token opens the body or punctuates).
        let mut j = ci;
        while j >= 1 {
            match ctx.kind(j - 1) {
                TokenKind::Punct('&') | TokenKind::Punct('.') => j -= 1,
                TokenKind::Ident if ctx.text(j - 1) == "mut" || ctx.text(j - 1) == "self" => j -= 1,
                _ => break,
            }
        }
        if j >= 1
            && ctx.is_ident(j - 1, "in")
            && ci + 1 < ctx.code.len()
            && ctx.kind(ci + 1) == TokenKind::Punct('{')
        {
            push(
                out,
                ctx,
                ci,
                "hashmap_iter",
                format!("`for .. in {name}` iterates a HashMap/HashSet in nondeterministic order; use BTreeMap/BTreeSet or walk sorted keys"),
            );
        }
    }
}

/// `no_panic`: `unwrap`/`expect`/`panic!` in non-test serving-path code.
/// Hot-path errors must be typed (`Result`) or documented invariants with
/// an allow marker stating the reason.
fn no_panic(ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    for ci in 0..ctx.code.len() {
        if ctx.is_test_token(ci) || ctx.kind(ci) != TokenKind::Ident {
            continue;
        }
        let t = ctx.text(ci);
        // `.unwrap()` / `.expect(..)`: require the dot so `unwrap_or`,
        // `my_unwrap`, and definitions don't match.
        if (t == "unwrap" || t == "expect")
            && ci >= 1
            && ctx.kind(ci - 1) == TokenKind::Punct('.')
            && ci + 1 < ctx.code.len()
            && ctx.kind(ci + 1) == TokenKind::Punct('(')
        {
            push(
                out,
                ctx,
                ci,
                "no_panic",
                format!("`.{t}()` can panic in the serving hot path; return a typed error, or add `// lint::allow(no_panic): <invariant>`"),
            );
        }
        if (t == "panic" || t == "todo" || t == "unimplemented")
            && ci + 1 < ctx.code.len()
            && ctx.kind(ci + 1) == TokenKind::Punct('!')
        {
            push(
                out,
                ctx,
                ci,
                "no_panic",
                format!("`{t}!` aborts the serving hot path; return a typed error, or add `// lint::allow(no_panic): <invariant>`"),
            );
        }
    }
}

/// `float_reduction`: explicit `sum::<f32>` / `product::<f32>` outside the
/// blessed kernel modules. Reduction order decides the bits; go through
/// the oracle-ordered helpers in `er_tensor::reduce`.
fn float_reduction(ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    for ci in 0..ctx.code.len().saturating_sub(3) {
        if ctx.is_test_token(ci) || ctx.kind(ci) != TokenKind::Ident {
            continue;
        }
        let t = ctx.text(ci);
        if (t == "sum" || t == "product")
            && ctx.kind(ci + 1) == TokenKind::PathSep
            && ctx.kind(ci + 2) == TokenKind::Punct('<')
            && ctx.is_ident(ci + 3, "f32")
        {
            push(
                out,
                ctx,
                ci,
                "float_reduction",
                format!("`{t}::<f32>` fixes a reduction order ad hoc; route float reductions through the oracle-ordered helpers in `er_tensor::reduce`"),
            );
        }
    }
}

/// The physical dimension a resource-named identifier carries, inferred
/// from its name suffix. This is the er-units catalogue plus the two time
/// scales (`_ms`, `_us`) whose mixing with `_secs` the rule exists to
/// catch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dim {
    Bytes,
    Flops,
    Secs,
    Millis,
    Micros,
    Qps,
    Cores,
    BytesPerSec,
    FlopsPerSec,
}

impl Dim {
    fn label(self) -> &'static str {
        match self {
            Dim::Bytes => "bytes",
            Dim::Flops => "flops",
            Dim::Secs => "seconds",
            Dim::Millis => "milliseconds",
            Dim::Micros => "microseconds",
            Dim::Qps => "queries/sec",
            Dim::Cores => "cores",
            Dim::BytesPerSec => "bytes/sec",
            Dim::FlopsPerSec => "flops/sec",
        }
    }

    fn is_time(self) -> bool {
        matches!(self, Dim::Secs | Dim::Millis | Dim::Micros)
    }
}

/// Infers a dimension from an identifier's name, most specific suffix
/// first (`bytes_per_sec` before `bytes`). Returns `None` for names that
/// carry no resource dimension.
fn dim_of(ident: &str) -> Option<Dim> {
    let s = ident.to_ascii_lowercase();
    if s.ends_with("bytes_per_sec") || s.ends_with("_bw") || s == "bw" || s.contains("bandwidth") {
        return Some(Dim::BytesPerSec);
    }
    if s.ends_with("flops_per_sec") {
        return Some(Dim::FlopsPerSec);
    }
    if s.ends_with("flops") {
        return Some(Dim::Flops);
    }
    if s.ends_with("bytes") {
        return Some(Dim::Bytes);
    }
    if s.ends_with("secs") || s.ends_with("latency") {
        return Some(Dim::Secs);
    }
    if s.ends_with("_ms") || s.ends_with("millis") {
        return Some(Dim::Millis);
    }
    if s.ends_with("_us") || s.ends_with("micros") {
        return Some(Dim::Micros);
    }
    if s.ends_with("qps") {
        return Some(Dim::Qps);
    }
    if s.ends_with("cores") {
        return Some(Dim::Cores);
    }
    None
}

/// Raw numeric types whose use on a dimension-named slot defeats er-units.
const RAW_NUMERIC: [&str; 10] = [
    "f64", "f32", "u64", "u32", "u16", "usize", "i64", "i32", "i16", "isize",
];

/// Resolves the operand ending at code index `ci` (its final `Ident`):
/// `self.policy.tolerance` resolves to `tolerance`. Returns the name and
/// dimension, or `None` when the final segment carries no dimension or
/// the operand participates in a higher-precedence `*`/`/` (so this rule
/// cannot tell what the `+`/`-` actually combines).
fn operand_before<'a>(ctx: &'a FileContext<'_>, op: usize) -> Option<(&'a str, Dim)> {
    if op == 0 || ctx.kind(op - 1) != TokenKind::Ident {
        return None;
    }
    let name = ctx.text(op - 1);
    let dim = dim_of(name)?;
    // Walk to the chain head over `a.b` / `a::b` segments.
    let mut head = op - 1;
    while head >= 2
        && matches!(
            ctx.kind(head - 1),
            TokenKind::Punct('.') | TokenKind::PathSep
        )
        && ctx.kind(head - 2) == TokenKind::Ident
    {
        head -= 2;
    }
    if head >= 1
        && matches!(
            ctx.kind(head - 1),
            TokenKind::Punct('*') | TokenKind::Punct('/')
        )
    {
        return None;
    }
    Some((name, dim))
}

/// Resolves the operand starting at code index `start`: walks forward over
/// `a.b` / `a::b` segments and dimensions the final identifier. `None` for
/// calls (`name(..)` — the return type is unknown) and for operands feeding
/// a higher-precedence `*`/`/`.
fn operand_after<'a>(ctx: &'a FileContext<'_>, start: usize) -> Option<(&'a str, Dim)> {
    let n = ctx.code.len();
    if start >= n || ctx.kind(start) != TokenKind::Ident {
        return None;
    }
    let mut i = start;
    while i + 2 < n
        && matches!(ctx.kind(i + 1), TokenKind::Punct('.') | TokenKind::PathSep)
        && ctx.kind(i + 2) == TokenKind::Ident
    {
        i += 2;
    }
    let name = ctx.text(i);
    let dim = dim_of(name)?;
    if i + 1 < n
        && matches!(
            ctx.kind(i + 1),
            TokenKind::Punct('(') | TokenKind::Punct('*') | TokenKind::Punct('/')
        )
    {
        return None;
    }
    Some((name, dim))
}

/// `unit_mixing`: raw-f64 arithmetic on resource-named symbols in files
/// that have adopted er-units. Four shapes:
///
/// 1. declaring a dimension-named slot with a raw numeric type
///    (`shard_bytes: f64`) instead of the er-units newtype;
/// 2. adding/subtracting identifiers of *different* dimensions
///    (`shard_bytes + dense_flops`, `p95_ms - budget_secs`);
/// 3. multiplying a QPS by a latency — the Little's-law in-flight count
///    er-units deliberately refuses to express implicitly;
/// 4. casting a dimension-named identifier to a raw numeric
///    (`shard_bytes as f64`) instead of calling `.raw()`.
fn unit_mixing(ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    let n = ctx.code.len();
    for ci in 0..n {
        if ctx.is_test_token(ci) {
            continue;
        }
        // Shapes 1 and 4 anchor on the dimension-named identifier.
        if ctx.kind(ci) == TokenKind::Ident {
            if let Some(dim) = dim_of(ctx.text(ci)) {
                let name = ctx.text(ci);
                // 1. `name: [Option<] f64`.
                if ci + 2 < n && ctx.kind(ci + 1) == TokenKind::Punct(':') {
                    let mut j = ci + 2;
                    if ctx.is_ident(j, "Option")
                        && j + 2 < n
                        && ctx.kind(j + 1) == TokenKind::Punct('<')
                    {
                        j += 2;
                    }
                    if ctx.kind(j) == TokenKind::Ident && RAW_NUMERIC.contains(&ctx.text(j)) {
                        push(
                            out,
                            ctx,
                            ci,
                            "unit_mixing",
                            format!(
                                "`{name}` carries a dimension ({}) but is declared as raw `{}`; use the er-units newtype",
                                dim.label(),
                                ctx.text(j)
                            ),
                        );
                    }
                }
                // 4. `name as f64`.
                if ci + 2 < n
                    && ctx.is_ident(ci + 1, "as")
                    && ctx.kind(ci + 2) == TokenKind::Ident
                    && RAW_NUMERIC.contains(&ctx.text(ci + 2))
                {
                    push(
                        out,
                        ctx,
                        ci,
                        "unit_mixing",
                        format!(
                            "`{name} as {}` strips the {} dimension; convert explicitly via `.raw()`",
                            ctx.text(ci + 2),
                            dim.label()
                        ),
                    );
                }
            }
        }
        // Shapes 2 and 3 anchor on the operator.
        let (op, is_mul) = match ctx.kind(ci) {
            TokenKind::Punct('+') => ('+', false),
            TokenKind::Punct('-') => ('-', false),
            TokenKind::Punct('*') => ('*', true),
            _ => continue,
        };
        // `->` is the return-type arrow, not a subtraction.
        if op == '-' && ci + 1 < n && ctx.kind(ci + 1) == TokenKind::Punct('>') {
            continue;
        }
        // Compound assignment `+=` / `-=` / `*=`: the right operand starts
        // after the `=`.
        let rhs = if ci + 1 < n && ctx.kind(ci + 1) == TokenKind::Punct('=') {
            ci + 2
        } else {
            ci + 1
        };
        let Some((lname, ldim)) = operand_before(ctx, ci) else {
            continue;
        };
        let Some((rname, rdim)) = operand_after(ctx, rhs) else {
            continue;
        };
        if is_mul {
            // 3. QPS × latency.
            if (ldim == Dim::Qps && rdim.is_time()) || (rdim == Dim::Qps && ldim.is_time()) {
                push(
                    out,
                    ctx,
                    ci,
                    "unit_mixing",
                    format!(
                        "`{lname} * {rname}` multiplies {} by {} — an implicit Little's-law in-flight count er-units refuses to express; compute it explicitly from `.raw()` values",
                        ldim.label(),
                        rdim.label()
                    ),
                );
            }
        } else if ldim != rdim {
            // 2. Cross-dimension addition/subtraction.
            push(
                out,
                ctx,
                ci,
                "unit_mixing",
                format!(
                    "`{lname} {op} {rname}` mixes {} with {}; convert to one er-units dimension first",
                    ldim.label(),
                    rdim.label()
                ),
            );
        }
    }
}

/// Spans of every `fn` body in the file: `(name, body_open, body_close)`
/// as code-token indices. Nested fns produce nested spans; the *innermost*
/// span containing a token names the function it belongs to.
fn fn_spans(ctx: &FileContext<'_>) -> Vec<(String, usize, usize)> {
    let n = ctx.code.len();
    let mut spans = Vec::new();
    let mut ci = 0;
    while ci < n {
        if ctx.is_ident(ci, "fn") && ci + 1 < n && ctx.kind(ci + 1) == TokenKind::Ident {
            let name = ctx.text(ci + 1).to_string();
            // Find the body's opening brace, skipping the parameter list;
            // a `;` at paren depth 0 means a bodyless trait declaration.
            let mut j = ci + 2;
            let mut paren = 0usize;
            let mut body = None;
            while j < n {
                match ctx.kind(j) {
                    TokenKind::Punct('(') => paren += 1,
                    TokenKind::Punct(')') => paren = paren.saturating_sub(1),
                    TokenKind::Punct('{') if paren == 0 => {
                        body = Some(j);
                        break;
                    }
                    TokenKind::Punct(';') if paren == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            if let Some(start) = body {
                let mut depth = 0usize;
                let mut k = start;
                let mut end = n - 1;
                while k < n {
                    match ctx.kind(k) {
                        TokenKind::Punct('{') => depth += 1,
                        TokenKind::Punct('}') => {
                            depth -= 1;
                            if depth == 0 {
                                end = k;
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                spans.push((name, start, end));
            }
        }
        ci += 1;
    }
    spans
}

/// `impure_handler`: ambient inputs inside handler-classed modules.
///
/// Files in the `handlers` path class hold pure actor-style handlers
/// (`fn on_msg(&State, Msg) -> (State, Vec<Out>)`) and the helpers they
/// call — the code the `er-mc` model checker replays, where any hidden
/// input (wall clock, ambient RNG, process environment, mutable statics)
/// silently invalidates every explored trace. Four shapes:
///
/// 1. `Instant::now()` / `SystemTime::now()` inside any fn — time must
///    arrive in the message;
/// 2. `thread_rng` / `from_entropy` / `rand::random` inside any fn —
///    nondeterminism must be enumerated or seeded by the caller;
/// 3. `env::var` and friends inside any fn — configuration must be a
///    parameter;
/// 4. `static mut` / `thread_local!` declarations anywhere — handler
///    state must live in the state value the checker fingerprints.
fn impure_handler(ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    let n = ctx.code.len();
    let spans = fn_spans(ctx);
    let enclosing = |ci: usize| -> Option<&str> {
        spans
            .iter()
            .rev()
            .find(|(_, start, end)| *start < ci && ci < *end)
            .map(|(name, _, _)| name.as_str())
    };
    for ci in 0..n {
        if ctx.is_test_token(ci) {
            continue;
        }
        // Shape 4 anchors on declarations, inside fns or not.
        if ctx.is_ident(ci, "static") && ci + 1 < n && ctx.is_ident(ci + 1, "mut") {
            push(
                out,
                ctx,
                ci,
                "impure_handler",
                "`static mut` is ambient state a pure handler can mutate invisibly; keep handler state in the state value the model checker fingerprints".to_string(),
            );
            continue;
        }
        if ctx.is_ident(ci, "thread_local")
            && ci + 1 < n
            && ctx.kind(ci + 1) == TokenKind::Punct('!')
        {
            push(
                out,
                ctx,
                ci,
                "impure_handler",
                "`thread_local!` is ambient state invisible to the model checker; keep handler state in the state value it fingerprints".to_string(),
            );
            continue;
        }
        if ctx.kind(ci) != TokenKind::Ident {
            continue;
        }
        let Some(fn_name) = enclosing(ci) else {
            continue;
        };
        let t = ctx.text(ci);
        // 1. Wall clock.
        if (t == "Instant" || t == "SystemTime")
            && ci + 2 < n
            && ctx.kind(ci + 1) == TokenKind::PathSep
            && ctx.is_ident(ci + 2, "now")
        {
            push(
                out,
                ctx,
                ci,
                "impure_handler",
                format!("`{t}::now()` inside handler fn `{fn_name}` reads the wall clock; pure on_msg-shaped handlers must take time from the message"),
            );
            continue;
        }
        // 2. Ambient RNG.
        let rng_hit = t == "thread_rng"
            || t == "from_entropy"
            || (t == "random"
                && ci >= 2
                && ctx.kind(ci - 1) == TokenKind::PathSep
                && ctx.is_ident(ci - 2, "rand"));
        if rng_hit {
            push(
                out,
                ctx,
                ci,
                "impure_handler",
                format!("`{t}` inside handler fn `{fn_name}` draws ambient entropy; pure on_msg-shaped handlers must have nondeterminism enumerated or seeded by the caller"),
            );
            continue;
        }
        // 3. Environment reads.
        if t == "env"
            && ci + 2 < n
            && ctx.kind(ci + 1) == TokenKind::PathSep
            && ctx.kind(ci + 2) == TokenKind::Ident
            && ENV_CALLS.contains(&ctx.text(ci + 2))
        {
            push(
                out,
                ctx,
                ci,
                "impure_handler",
                format!(
                    "`env::{}` inside handler fn `{fn_name}` reads the process environment; pure on_msg-shaped handlers must take configuration as parameters",
                    ctx.text(ci + 2)
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(path: &str, src: &str) -> Vec<Diagnostic> {
        let ctx = FileContext::new(path, src);
        check_file(&ctx, &Config::default())
    }

    #[test]
    fn wall_clock_fires_in_sim_paths_with_position() {
        let d = check(
            "crates/sim/src/time.rs",
            "fn t() -> f64 {\n    let t0 = Instant::now();\n    0.0\n}\n",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "wall_clock");
        assert_eq!((d[0].line, d[0].col), (2, 14));
        assert!(d[0].to_string().contains("crates/sim/src/time.rs:2:14"));
    }

    #[test]
    fn wall_clock_ignores_other_crates_and_comments() {
        assert!(check("crates/metrics/src/qps.rs", "let t = Instant::now();").is_empty());
        assert!(check(
            "crates/sim/src/time.rs",
            "// Instant::now() would be wrong here\nlet x = 1;"
        )
        .is_empty());
    }

    #[test]
    fn allow_marker_suppresses_on_its_line_and_the_next() {
        let src = "\
// lint::allow(wall_clock): plain fallback timer, not simulated time
let t0 = Instant::now();
let t1 = Instant::now();
";
        let d = check("crates/sim/src/time.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn no_panic_fires_on_unwrap_expect_panic_only() {
        let src = "\
pub fn f(x: Option<u32>) -> u32 {
    let a = x.unwrap();
    let b = x.expect(\"msg\");
    let c = x.unwrap_or(0);
    if a + b + c == 0 { panic!(\"boom\"); }
    a
}
";
        let d = check("crates/rpc/src/balancer.rs", src);
        let rules: Vec<_> = d.iter().map(|x| (x.rule, x.line)).collect();
        assert_eq!(
            rules,
            vec![("no_panic", 2), ("no_panic", 3), ("no_panic", 5)]
        );
    }

    #[test]
    fn no_panic_skips_cfg_test_modules() {
        let src = "\
pub fn ok() -> u32 { 1 }

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let x: Option<u32> = None;
        x.unwrap();
        panic!(\"fine in tests\");
    }
}
";
        assert!(check("crates/core/src/sharded.rs", src).is_empty());
    }

    #[test]
    fn no_panic_skips_test_bench_example_and_bin_files() {
        let src = "fn main() { None::<u32>.unwrap(); }";
        assert!(check("crates/core/src/bin/elasticrec.rs", src).is_empty());
        assert!(check("crates/core/tests/it.rs", src).is_empty());
        assert!(check("crates/model/benches/b.rs", src).is_empty());
    }

    #[test]
    fn hashmap_iteration_is_flagged_lookups_are_not() {
        let src = "\
use std::collections::HashMap;
struct S { pod_free: HashMap<u64, f64> }
impl S {
    fn ok(&self) -> Option<&f64> { self.pod_free.get(&1) }
    fn bad(&self) -> usize { self.pod_free.iter().count() }
    fn bad2(&self) { for kv in &self.pod_free { let _ = kv; } }
}
";
        let d = check("crates/core/src/engine.rs", src);
        let lines: Vec<_> = d.iter().map(|x| x.line).collect();
        assert_eq!(lines, vec![5, 6], "{d:?}");
        assert!(d.iter().all(|x| x.rule == "hashmap_iter"));
    }

    #[test]
    fn ambient_rng_and_env_io_fire_in_deterministic_paths() {
        let src = "fn f() { let r = thread_rng(); let v = std::env::var(\"X\"); let _ = (r, v); }";
        let d = check("crates/partition/src/dp.rs", src);
        let rules: Vec<_> = d.iter().map(|x| x.rule).collect();
        assert_eq!(rules, vec!["ambient_rng", "env_io"]);
    }

    #[test]
    fn float_reduction_fires_outside_blessed_kernels_only() {
        let src = "fn f(xs: &[f32]) -> f32 { xs.iter().sum::<f32>() }";
        assert_eq!(check("crates/model/src/interaction.rs", src).len(), 1);
        assert!(check("crates/tensor/src/matrix.rs", src).is_empty());
        // `sum::<f64>` and untyped `.sum()` are out of scope for this rule.
        let f64_src = "fn f(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }";
        assert!(check("crates/model/src/interaction.rs", f64_src).is_empty());
    }

    #[test]
    fn strings_and_raw_strings_never_match_rules() {
        let src = r##"pub fn f() -> &'static str { r#"Instant::now() .unwrap() panic!"# }"##;
        assert!(check("crates/core/src/engine.rs", src).is_empty());
    }

    #[test]
    fn unit_mixing_flags_cross_dimension_addition() {
        let src = "pub fn f(a: Bytes, b: Flops) -> f64 { a.raw() + shard_bytes - dense_flops }";
        // Only identifiers with dimension suffixes participate; `a.raw()`
        // ends in `)` so the `+` has no resolvable left operand, while
        // `shard_bytes - dense_flops` mixes bytes with flops.
        let d = check("crates/partition/src/cost.rs", src);
        assert_eq!(d.len(), 1, "{d:#?}");
        assert_eq!(d[0].rule, "unit_mixing");
        assert!(d[0].message.contains("bytes"), "{}", d[0].message);
        assert!(d[0].message.contains("flops"), "{}", d[0].message);
    }

    #[test]
    fn unit_mixing_flags_raw_decls_and_casts() {
        let src = "\
struct S { shard_bytes: f64 }
fn f(s: &S) -> u64 { s.shard_bytes as u64 }
";
        let d = check("crates/partition/src/cost.rs", src);
        let rules: Vec<_> = d.iter().map(|x| (x.rule, x.line)).collect();
        assert_eq!(
            rules,
            vec![("unit_mixing", 1), ("unit_mixing", 2)],
            "{d:#?}"
        );
    }

    #[test]
    fn unit_mixing_flags_qps_times_latency() {
        let src = "fn f(load_qps: Qps, p95_latency: Secs) -> f64 { load_qps * p95_latency }";
        let d = check("crates/cluster/src/hpa.rs", src);
        assert_eq!(d.len(), 1, "{d:#?}");
        assert!(d[0].message.contains("Little"), "{}", d[0].message);
    }

    #[test]
    fn unit_mixing_ignores_same_dimension_and_unknown_operands() {
        // Same dimension adds, dimensionless names, and typed decls are
        // all fine; higher-precedence `*`/`/` neighbours disable the
        // `+`/`-` check rather than mis-attributing operands.
        let ok = "\
fn f(a_bytes: Bytes, b_bytes: Bytes, gathers: f64) -> Bytes {
    a_bytes + b_bytes * gathers / bandwidth
}
";
        assert!(check("crates/partition/src/qps_model.rs", ok).is_empty());
    }

    #[test]
    fn unit_mixing_only_applies_to_adopter_files() {
        let src = "fn f(shard_bytes: f64, dense_flops: f64) -> f64 { shard_bytes + dense_flops }";
        assert!(check("crates/core/src/engine.rs", src).is_empty());
        assert_eq!(check("crates/model/src/flops.rs", src).len(), 3);
    }

    #[test]
    fn impure_handler_fires_only_in_handler_files_and_names_the_fn() {
        let src = "\
pub fn on_msg(state: &u32, msg: &u32) -> (u32, Vec<u32>) {
    let t = Instant::now();
    (*state + *msg + t.elapsed().as_secs() as u32, Vec::new())
}
";
        let d = check("crates/rpc/src/pure.rs", src);
        assert_eq!(d.len(), 1, "{d:#?}");
        assert_eq!(d[0].rule, "impure_handler");
        assert!(d[0].message.contains("`on_msg`"), "{}", d[0].message);
        // The same source outside the handlers class is clean.
        assert!(check("crates/metrics/src/qps.rs", src).is_empty());
    }

    #[test]
    fn impure_handler_flags_rng_env_and_ambient_state() {
        let src = "\
static mut HITS: u32 = 0;
pub fn step(state: &u32) -> u32 {
    let r = thread_rng();
    let v = std::env::var(\"SEED\");
    let _ = (r, v);
    *state
}
";
        let d = check("crates/cluster/src/schedule.rs", src);
        let rules: Vec<_> = d.iter().map(|x| (x.rule, x.line)).collect();
        assert_eq!(
            rules,
            vec![
                ("impure_handler", 1),
                ("impure_handler", 3),
                ("impure_handler", 4)
            ],
            "{d:#?}"
        );
    }

    #[test]
    fn impure_handler_ignores_fn_signatures_and_test_code() {
        // Mentions outside fn bodies (docs are comments anyway) and inside
        // #[cfg(test)] items don't count; a pure handler passes clean.
        let src = "\
pub fn on_msg(state: &u32, now_secs: f64, msg: &u32) -> (u32, Vec<u32>) {
    let _ = now_secs;
    (state + msg, Vec::new())
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let t0 = Instant::now();
        let _ = t0;
    }
}
";
        assert!(check("crates/rpc/src/pure.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_fn_item_is_exempt_not_the_rest_of_the_file() {
        let src = "\
#[cfg(test)]
fn helper(x: Option<u32>) -> u32 { x.unwrap() }

pub fn hot(x: Option<u32>) -> u32 { x.unwrap() }
";
        let d = check("crates/core/src/planning.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 4);
    }
}

//! Scalar / AVX2 / AVX-512 dispatch parity: every kernel forced onto every
//! available backend must produce bit-identical outputs on the same inputs
//! — f32 kernels because the recompiled bodies share one FP op sequence,
//! quantized kernels because dequantization is deterministic and pooled in
//! the same order. Backends this CPU lacks are *skipped with an explicit
//! log line*, never silently passed.

use er_tensor::simd::{
    gather_pool_csr_f16_with, gather_pool_csr_i8_with, gather_pool_csr_with, matmul_rows_with,
    SimdBackend,
};
use er_tensor::{quantize_f16, quantize_i8_rows, Matrix};

/// The backends to test on this machine, with a loud skip for absent ones.
fn backends() -> Vec<SimdBackend> {
    let mut present = Vec::new();
    for b in SimdBackend::ALL {
        if b.is_available() {
            present.push(b);
        } else {
            eprintln!("dispatch-parity: SKIPPING backend {b}: not available on this CPU");
        }
    }
    assert!(
        present.contains(&SimdBackend::Scalar),
        "scalar backend must always be available"
    );
    present
}

/// Deterministic pseudo-random f32 in (-0.1, 0.1) — embedding-value range.
fn val(i: u64) -> f32 {
    let h = i.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(31);
    ((h % 2001) as f32 - 1000.0) / 10_000.0
}

fn table(rows: u32, dim: usize) -> Vec<f32> {
    (0..rows as u64 * dim as u64).map(val).collect()
}

/// A CSR lookup with varied run lengths (incl. an empty bag) over `rows`.
fn lookup(rows: u32) -> (Vec<u32>, Vec<u32>) {
    let mut indices = Vec::new();
    let mut offsets = Vec::new();
    let mut next = 7u32;
    for input in 0..17u32 {
        offsets.push(indices.len() as u32);
        for _ in 0..(input % 5) {
            indices.push(next % rows);
            next = next.wrapping_mul(2654435761).wrapping_add(1);
        }
    }
    (indices, offsets)
}

#[test]
fn f32_gather_is_bit_identical_across_backends() {
    for dim in [1usize, 7, 16, 64] {
        let rows = 97u32;
        let data = table(rows, dim);
        let (indices, offsets) = lookup(rows);
        let mut reference: Option<Matrix> = None;
        for b in backends() {
            let mut out = Matrix::zeros(offsets.len(), dim);
            gather_pool_csr_with(b, &data, rows, &indices, &offsets, &mut out);
            match &reference {
                None => reference = Some(out),
                Some(r) => assert_eq!(&out, r, "f32 gather dim {dim} backend {b}"),
            }
        }
    }
}

#[test]
fn f16_gather_is_bit_identical_across_backends() {
    for dim in [3usize, 8, 64] {
        let rows = 97u32;
        let stored = quantize_f16(&table(rows, dim));
        let (indices, offsets) = lookup(rows);
        let mut reference: Option<Matrix> = None;
        for b in backends() {
            let mut out = Matrix::zeros(offsets.len(), dim);
            gather_pool_csr_f16_with(b, &stored, rows, &indices, &offsets, &mut out);
            match &reference {
                None => reference = Some(out),
                Some(r) => assert_eq!(&out, r, "f16 gather dim {dim} backend {b}"),
            }
        }
    }
}

#[test]
fn i8_gather_is_bit_identical_across_backends() {
    for dim in [3usize, 8, 64] {
        let rows = 97u32;
        let (codes, scales) = quantize_i8_rows(&table(rows, dim), dim);
        let (indices, offsets) = lookup(rows);
        let mut reference: Option<Matrix> = None;
        for b in backends() {
            let mut out = Matrix::zeros(offsets.len(), dim);
            gather_pool_csr_i8_with(b, &codes, &scales, rows, &indices, &offsets, &mut out);
            match &reference {
                None => reference = Some(out),
                Some(r) => assert_eq!(&out, r, "i8 gather dim {dim} backend {b}"),
            }
        }
    }
}

#[test]
fn matmul_is_bit_identical_across_backends() {
    // Shapes exercising the 6x16 micro-kernel's full blocks and remainders.
    for (m, k, n) in [(1usize, 1usize, 1usize), (6, 8, 16), (13, 32, 37)] {
        let a: Vec<f32> = (0..m * k).map(|i| val(i as u64)).collect();
        let b: Vec<f32> = (0..k * n).map(|i| val(1000 + i as u64)).collect();
        let mut reference: Option<Vec<f32>> = None;
        for backend in backends() {
            let mut out = vec![0.0f32; m * n];
            matmul_rows_with(backend, &a, &b, &mut out, k, n);
            let bits: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
            match &reference {
                None => reference = Some(out.clone()),
                Some(r) => {
                    let rbits: Vec<u32> = r.iter().map(|v| v.to_bits()).collect();
                    assert_eq!(bits, rbits, "matmul {m}x{k}x{n} backend {backend}");
                }
            }
        }
    }
}

#[test]
fn forcing_an_unavailable_backend_panics_loudly() {
    // Find an absent rung if there is one; otherwise nothing to assert here
    // (this box runs the full ladder) — log that explicitly.
    let Some(absent) = SimdBackend::ALL.iter().copied().find(|b| !b.is_available()) else {
        eprintln!("dispatch-parity: all backends available; unavailability panic not exercised");
        return;
    };
    let err = std::panic::catch_unwind(|| {
        let mut out = Matrix::zeros(1, 2);
        gather_pool_csr_with(absent, &[0.0; 8], 4, &[0], &[0], &mut out);
    });
    assert!(err.is_err(), "forcing {absent} should panic");
}

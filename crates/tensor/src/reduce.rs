//! Oracle-ordered float reductions.
//!
//! Floating-point addition is not associative, so a reduction's *order* is
//! part of its result. The workspace's bit-exactness guarantees (parallel
//! shard executor vs. sequential walk, AVX2 kernels vs. portable builds)
//! hold because every float reduction happens in one documented order:
//! **ascending index, one scalar accumulator**. These helpers are that
//! order, named; `er-lint`'s `float_reduction` rule steers ad-hoc
//! `sum::<f32>()` call sites here so a refactor to a tree or SIMD-lane
//! reduction can never slip in silently at one site.
//!
//! # Examples
//!
//! ```
//! use er_tensor::reduce;
//!
//! let xs = [0.1f32, 0.2, 0.3];
//! assert_eq!(reduce::sum_f32(&xs), ((0.1f32 + 0.2) + 0.3));
//! let ys = [0.5f32, 2.0, 4.0];
//! assert_eq!(reduce::dot_f32(&xs, &ys), reduce::sum_f32(&[0.05, 0.4, 1.2]));
//! ```

/// Sum of `xs` in ascending index order with a single `f32` accumulator
/// starting at `+0.0` — the reference order every kernel in this
/// workspace reduces in.
pub fn sum_f32(xs: &[f32]) -> f32 {
    xs.iter().fold(0.0, |acc, &x| acc + x)
}

/// Dot product `Σ a[i] * b[i]` in ascending index order with a single
/// `f32` accumulator — the reduction used by the feature-interaction and
/// matmul reference kernels.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot_f32(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot operands must have equal length");
    a.iter().zip(b).fold(0.0, |acc, (&x, &y)| acc + x * y)
}

/// Sum of `xs` in ascending index order with a single `f64` accumulator.
pub fn sum_f64(xs: &[f64]) -> f64 {
    xs.iter().fold(0.0, |acc, &x| acc + x)
}

/// Arithmetic mean via [`sum_f64`]'s ordered sum.
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn mean_f64(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "mean of an empty slice is undefined");
    sum_f64(xs) / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_matches_the_left_fold_exactly() {
        // A sequence chosen so reassociation changes the result: summing
        // left-to-right loses the small terms, a pairwise tree would not.
        let xs = [1.0e8f32, 1.0, 1.0, 1.0, -1.0e8];
        let mut acc = 0.0f32;
        for &x in &xs {
            acc += x;
        }
        assert_eq!(sum_f32(&xs), acc);
        // And the iterator `sum` (same order) agrees — the helper's value
        // is not exotic, it is the *named* default order.
        let it: f32 = xs.iter().sum();
        assert_eq!(sum_f32(&xs), it);
    }

    #[test]
    fn dot_is_mul_then_ordered_sum() {
        let a = [1.5f32, -2.0, 0.25, 8.0];
        let b = [2.0f32, 0.5, -4.0, 0.125];
        let prods: Vec<f32> = a.iter().zip(&b).map(|(&x, &y)| x * y).collect();
        assert_eq!(dot_f32(&a, &b), sum_f32(&prods));
    }

    #[test]
    fn empty_sums_are_positive_zero() {
        assert_eq!(sum_f32(&[]).to_bits(), 0.0f32.to_bits());
        assert_eq!(sum_f64(&[]).to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn mean_divides_the_ordered_sum() {
        let xs = [1.0f64, 2.0, 4.0];
        assert_eq!(mean_f64(&xs), (1.0 + 2.0 + 4.0) / 3.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn dot_rejects_mismatched_lengths() {
        dot_f32(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn mean_rejects_empty_input() {
        mean_f64(&[]);
    }
}

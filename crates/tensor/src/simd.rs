//! The workspace's only `unsafe` module: SIMD-recompiled kernel clones.
//!
//! Every function here is an exact clone of a portable kernel body
//! (`matmul_rows_body`, `gather_pool_csr_body`, and the quantized bodies in
//! [`crate::quant`]) compiled with `#[target_feature(...)]` for AVX2 or
//! AVX-512 — the same Rust source on wider registers, no intrinsics, so the
//! FP op sequence (and therefore the bits) cannot diverge between backends.
//! Dispatch walks the ladder AVX-512 → AVX2 → scalar via explicit runtime
//! CPUID checks (`is_x86_feature_detected!`), so a 1-core AVX2-only dev
//! box and an AVX-512 server produce bit-identical results from different
//! code paths; `ER_SIMD` pins dispatch to one rung for A/B runs (see
//! [`SimdBackend::detect`]).
//!
//! [`SimdBackend`] names one rung of that ladder and the `*_with` entry
//! points force a kernel onto a specific rung — that is how the
//! dispatch-parity test pins scalar/AVX2/AVX-512 onto identical inputs and
//! asserts identical bits. Forcing an unavailable rung panics; callers
//! probe [`SimdBackend::is_available`] first (and log an explicit skip).
//!
//! The `unsafe` is confined to (a) declaring the `target_feature` functions
//! and (b) calling them after the runtime feature check; nothing else in
//! the workspace is allowed to use `unsafe` — every other crate root
//! carries `#![forbid(unsafe_code)]`, and `er-tensor` itself denies it
//! outside this module.
#![allow(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

use crate::Matrix;

/// One rung of the SIMD dispatch ladder.
///
/// `Avx512` means the f/bw/vl trio (every AVX-512 server CPU since
/// Skylake-SP ships all three); `Avx2` is the 256-bit baseline the
/// workspace has always dispatched to; `Scalar` is the portable body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdBackend {
    /// The portable kernel body, no `target_feature` recompilation.
    Scalar,
    /// The body recompiled for 256-bit vectors (`avx2`).
    Avx2,
    /// The body recompiled for 512-bit vectors (`avx512f,avx512bw,avx512vl`).
    Avx512,
}

impl SimdBackend {
    /// Every rung, narrowest first — the order parity tests sweep.
    pub const ALL: [SimdBackend; 3] = [SimdBackend::Scalar, SimdBackend::Avx2, SimdBackend::Avx512];

    /// The widest rung this CPU supports (what auto-dispatch uses).
    ///
    /// `ER_SIMD=scalar|avx2|avx512` pins dispatch to one rung instead —
    /// useful for A/B-ing rungs on one part (e.g. quantifying 512-bit
    /// frequency licensing) without rebuilding. An unavailable or
    /// unrecognized value falls back to detection; results are
    /// bit-identical on every rung either way. The choice is latched
    /// once per process.
    #[allow(clippy::disallowed_methods)] // ER_SIMD pin below, latched once
    pub fn detect() -> SimdBackend {
        use std::sync::OnceLock;
        static DETECTED: OnceLock<SimdBackend> = OnceLock::new();
        *DETECTED.get_or_init(|| {
            // Deliberate process-wide dispatch pin, read once; every rung
            // is bit-identical so determinism holds.
            // lint::allow(env_io): one-shot dispatch pin, latched per process
            if let Ok(v) = std::env::var("ER_SIMD") {
                for b in SimdBackend::ALL {
                    if v.eq_ignore_ascii_case(b.name()) && b.is_available() {
                        return b;
                    }
                }
            }
            if SimdBackend::Avx512.is_available() {
                SimdBackend::Avx512
            } else if SimdBackend::Avx2.is_available() {
                SimdBackend::Avx2
            } else {
                SimdBackend::Scalar
            }
        })
    }

    /// Whether this CPU can run the rung. `Scalar` is always available.
    pub fn is_available(self) -> bool {
        match self {
            SimdBackend::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            SimdBackend::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "x86_64")]
            SimdBackend::Avx512 => {
                std::arch::is_x86_feature_detected!("avx512f")
                    && std::arch::is_x86_feature_detected!("avx512bw")
                    && std::arch::is_x86_feature_detected!("avx512vl")
            }
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }

    /// Short name for logs and bench labels.
    pub const fn name(self) -> &'static str {
        match self {
            SimdBackend::Scalar => "scalar",
            SimdBackend::Avx2 => "avx2",
            SimdBackend::Avx512 => "avx512",
        }
    }
}

impl std::fmt::Display for SimdBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How many lookups ahead the gather bodies prefetch. Random-access
/// gathers otherwise serialize on one cache/TLB miss per pooled row; a
/// handful of rows of lead time is enough to keep several misses in
/// flight without exceeding the core's fill buffers.
pub(crate) const PREFETCH_DISTANCE: usize = 16;

/// Tables smaller than this skip prefetching entirely: they are
/// cache-resident, so the hint cannot hide any latency and is pure
/// per-lookup overhead (measured ~25-50% on the forward pass's sub-MiB
/// tables). 4 MiB clears every L2 this workspace targets.
pub(crate) const PREFETCH_MIN_BYTES: usize = 4 << 20;

/// Issues a best-effort read prefetch for the cache line holding `p`.
///
/// Purely a hint: it never faults, never writes, and has no architectural
/// effect, so kernels that call it stay bit-identical to kernels that
/// don't. On non-x86-64 targets it compiles to nothing.
#[inline(always)]
fn prefetch_read<T>(p: &T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: PREFETCHT0 is a pure cache hint with no architectural
    // effect; the reference guarantees the address is valid anyway.
    unsafe {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch(std::ptr::from_ref(p).cast::<i8>(), _MM_HINT_T0);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// Prefetches every cache line of `data[base .. base + len]`, skipping
/// (not faulting on) out-of-bounds positions — gather bodies call this for
/// a row *ahead* of the one being validated, so the ahead index may still
/// be bogus. Safe to call from the `#![forbid(unsafe_code)]` kernel
/// bodies; the intrinsic stays confined to this module.
#[inline(always)]
pub(crate) fn prefetch_row<T>(data: &[T], base: usize, len: usize) {
    let step = (64 / std::mem::size_of::<T>()).max(1);
    let mut off = 0;
    while off < len {
        if let Some(p) = data.get(base + off) {
            prefetch_read(p);
        }
        off += step;
    }
}

#[track_caller]
fn check_available(backend: SimdBackend) {
    assert!(
        backend.is_available(),
        "SIMD backend {backend} is not available on this CPU"
    );
}

/// `out = a * b` through the 6x16 register-blocked micro-kernel,
/// auto-dispatched down the ladder. See `matmul_rows_body` in `matrix.rs`
/// for the kernel and the bit-exactness argument.
pub(crate) fn matmul_rows(a: &[f32], b: &[f32], out: &mut [f32], k: usize, n: usize) {
    matmul_rows_with(SimdBackend::detect(), a, b, out, k, n);
}

/// `out = a * b` on a forced backend (parity testing; see module docs).
///
/// # Panics
///
/// Panics if `backend` is unavailable on this CPU, or on the shape
/// violations documented for [`crate::Matrix::matmul`].
pub fn matmul_rows_with(
    backend: SimdBackend,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    k: usize,
    n: usize,
) {
    check_available(backend);
    match backend {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: availability of the target features was just verified.
        SimdBackend::Avx512 => unsafe { matmul_rows_avx512(a, b, out, k, n) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: availability of the target features was just verified.
        SimdBackend::Avx2 => unsafe { matmul_rows_avx2(a, b, out, k, n) },
        _ => crate::matrix::matmul_rows_body(a, b, out, k, n),
    }
}

/// CSR gather + sum-pool, auto-dispatched. See
/// [`crate::gather::gather_pool_csr_body`].
pub(crate) fn gather_pool_csr(
    data: &[f32],
    rows: u32,
    indices: &[u32],
    offsets: &[u32],
    out: &mut Matrix,
) {
    gather_pool_csr_with(SimdBackend::detect(), data, rows, indices, offsets, out);
}

/// CSR gather + sum-pool on a forced backend (parity testing).
///
/// # Panics
///
/// Panics if `backend` is unavailable on this CPU, or on the input
/// violations documented for [`crate::gather_pool_csr`].
pub fn gather_pool_csr_with(
    backend: SimdBackend,
    data: &[f32],
    rows: u32,
    indices: &[u32],
    offsets: &[u32],
    out: &mut Matrix,
) {
    check_available(backend);
    match backend {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: availability of the target features was just verified.
        SimdBackend::Avx512 => unsafe { gather_pool_csr_avx512(data, rows, indices, offsets, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: availability of the target features was just verified.
        SimdBackend::Avx2 => unsafe { gather_pool_csr_avx2(data, rows, indices, offsets, out) },
        _ => crate::gather::gather_pool_csr_body(data, rows, indices, offsets, out),
    }
}

/// f16 CSR gather + sum-pool, auto-dispatched. See
/// [`crate::quant::gather_pool_csr_f16_body`].
pub(crate) fn gather_pool_csr_f16_auto(
    data: &[u16],
    rows: u32,
    indices: &[u32],
    offsets: &[u32],
    out: &mut Matrix,
) {
    gather_pool_csr_f16_with(SimdBackend::detect(), data, rows, indices, offsets, out);
}

/// f16 CSR gather + sum-pool on a forced backend (parity testing).
///
/// # Panics
///
/// Panics if `backend` is unavailable on this CPU, or on the input
/// violations documented for [`crate::quant::gather_pool_csr_f16`].
pub fn gather_pool_csr_f16_with(
    backend: SimdBackend,
    data: &[u16],
    rows: u32,
    indices: &[u32],
    offsets: &[u32],
    out: &mut Matrix,
) {
    check_available(backend);
    match backend {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: availability of the target features was just verified.
        SimdBackend::Avx512 => unsafe {
            gather_pool_csr_f16_avx512(data, rows, indices, offsets, out)
        },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: availability of the target features was just verified.
        SimdBackend::Avx2 => unsafe { gather_pool_csr_f16_avx2(data, rows, indices, offsets, out) },
        _ => crate::quant::gather_pool_csr_f16_body(data, rows, indices, offsets, out),
    }
}

/// i8 CSR gather + sum-pool, auto-dispatched. See
/// [`crate::quant::gather_pool_csr_i8_body`].
pub(crate) fn gather_pool_csr_i8_auto(
    data: &[i8],
    scales: &[f32],
    rows: u32,
    indices: &[u32],
    offsets: &[u32],
    out: &mut Matrix,
) {
    gather_pool_csr_i8_with(
        SimdBackend::detect(),
        data,
        scales,
        rows,
        indices,
        offsets,
        out,
    );
}

/// i8 CSR gather + sum-pool on a forced backend (parity testing).
///
/// # Panics
///
/// Panics if `backend` is unavailable on this CPU, or on the input
/// violations documented for [`crate::quant::gather_pool_csr_i8`].
pub fn gather_pool_csr_i8_with(
    backend: SimdBackend,
    data: &[i8],
    scales: &[f32],
    rows: u32,
    indices: &[u32],
    offsets: &[u32],
    out: &mut Matrix,
) {
    check_available(backend);
    match backend {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: availability of the target features was just verified.
        SimdBackend::Avx512 => unsafe {
            gather_pool_csr_i8_avx512(data, scales, rows, indices, offsets, out)
        },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: availability of the target features was just verified.
        SimdBackend::Avx2 => unsafe {
            gather_pool_csr_i8_avx2(data, scales, rows, indices, offsets, out)
        },
        _ => crate::quant::gather_pool_csr_i8_body(data, scales, rows, indices, offsets, out),
    }
}

/// The matmul micro-kernel body recompiled with 256-bit vectors.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn matmul_rows_avx2(a: &[f32], b: &[f32], out: &mut [f32], k: usize, n: usize) {
    crate::matrix::matmul_rows_body(a, b, out, k, n);
}

/// The matmul micro-kernel body recompiled with 512-bit vectors.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw,avx512vl")]
unsafe fn matmul_rows_avx512(a: &[f32], b: &[f32], out: &mut [f32], k: usize, n: usize) {
    crate::matrix::matmul_rows_body(a, b, out, k, n);
}

/// The f32 gather+pool body recompiled with 256-bit vectors.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gather_pool_csr_avx2(
    data: &[f32],
    rows: u32,
    indices: &[u32],
    offsets: &[u32],
    out: &mut Matrix,
) {
    crate::gather::gather_pool_csr_body(data, rows, indices, offsets, out);
}

/// The f32 gather+pool body recompiled with 512-bit vectors.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw,avx512vl")]
unsafe fn gather_pool_csr_avx512(
    data: &[f32],
    rows: u32,
    indices: &[u32],
    offsets: &[u32],
    out: &mut Matrix,
) {
    crate::gather::gather_pool_csr_body(data, rows, indices, offsets, out);
}

/// The f16 gather+pool body recompiled with 256-bit vectors.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gather_pool_csr_f16_avx2(
    data: &[u16],
    rows: u32,
    indices: &[u32],
    offsets: &[u32],
    out: &mut Matrix,
) {
    crate::quant::gather_pool_csr_f16_body(data, rows, indices, offsets, out);
}

/// The f16 gather+pool body recompiled with 512-bit vectors.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw,avx512vl")]
unsafe fn gather_pool_csr_f16_avx512(
    data: &[u16],
    rows: u32,
    indices: &[u32],
    offsets: &[u32],
    out: &mut Matrix,
) {
    crate::quant::gather_pool_csr_f16_body(data, rows, indices, offsets, out);
}

/// The i8 gather+pool body recompiled with 256-bit vectors.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gather_pool_csr_i8_avx2(
    data: &[i8],
    scales: &[f32],
    rows: u32,
    indices: &[u32],
    offsets: &[u32],
    out: &mut Matrix,
) {
    crate::quant::gather_pool_csr_i8_body(data, scales, rows, indices, offsets, out);
}

/// The i8 gather+pool body recompiled with 512-bit vectors.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw,avx512vl")]
unsafe fn gather_pool_csr_i8_avx512(
    data: &[i8],
    scales: &[f32],
    rows: u32,
    indices: &[u32],
    offsets: &[u32],
    out: &mut Matrix,
) {
    crate::quant::gather_pool_csr_i8_body(data, scales, rows, indices, offsets, out);
}

//! The workspace's only `unsafe` module: AVX2-recompiled kernel clones.
//!
//! Every function here is an exact clone of a portable kernel body
//! (`matmul_rows_body`, `gather_pool_csr_body`) compiled with
//! `#[target_feature(enable = "avx2")]` — the same Rust source on wider
//! registers, no intrinsics, so the FP op sequence (and therefore the
//! bits) cannot diverge from the portable build. The `unsafe` is confined
//! to (a) declaring the `target_feature` functions and (b) calling them
//! after an explicit runtime `is_x86_feature_detected!("avx2")` check;
//! nothing else in the workspace is allowed to use `unsafe` — every other
//! crate root carries `#![forbid(unsafe_code)]`, and `er-tensor` itself
//! denies it outside this module.
#![allow(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

use crate::Matrix;

/// `out = a * b` through the 6x16 register-blocked micro-kernel,
/// AVX2-dispatched. See `matmul_rows_body` in `matrix.rs` for the kernel
/// and the bit-exactness argument.
pub(crate) fn matmul_rows(a: &[f32], b: &[f32], out: &mut [f32], k: usize, n: usize) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 support was just verified at runtime.
        unsafe { matmul_rows_avx2(a, b, out, k, n) };
        return;
    }
    crate::matrix::matmul_rows_body(a, b, out, k, n);
}

/// CSR gather + sum-pool, AVX2-dispatched. See
/// [`crate::gather::gather_pool_csr_body`].
pub(crate) fn gather_pool_csr(
    data: &[f32],
    rows: u32,
    indices: &[u32],
    offsets: &[u32],
    out: &mut Matrix,
) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 support was just verified at runtime.
        unsafe { gather_pool_csr_avx2(data, rows, indices, offsets, out) };
        return;
    }
    crate::gather::gather_pool_csr_body(data, rows, indices, offsets, out);
}

/// The matmul micro-kernel body recompiled with 256-bit vectors.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn matmul_rows_avx2(a: &[f32], b: &[f32], out: &mut [f32], k: usize, n: usize) {
    crate::matrix::matmul_rows_body(a, b, out, k, n);
}

/// The gather+pool body recompiled with 256-bit vectors.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gather_pool_csr_avx2(
    data: &[f32],
    rows: u32,
    indices: &[u32],
    offsets: &[u32],
    out: &mut Matrix,
) {
    crate::gather::gather_pool_csr_body(data, rows, indices, offsets, out);
}

//! Minimal dense linear algebra for the ElasticRec reproduction.
//!
//! The paper builds its models with libtorch; this crate supplies the small
//! subset a DLRM needs — a row-major [`Matrix`], fully-connected
//! [`Linear`] layers, activations, and an [`Mlp`] stack — together with exact
//! FLOP accounting so the Figure 3 compute/memory breakdown can be computed
//! from first principles rather than estimated.
//!
//! # Examples
//!
//! ```
//! use er_tensor::{Activation, Matrix, Mlp};
//!
//! // The RM1 bottom MLP: 13 dense features -> 256 -> 128 -> 32.
//! let mlp = Mlp::with_seed(13, &[256, 128, 32], Activation::Relu, 42);
//! let input = Matrix::zeros(4, 13); // batch of 4
//! let out = mlp.forward(&input);
//! assert_eq!(out.shape(), (4, 32));
//! ```

#![deny(unsafe_code)] // allowed back on in exactly one module: simd.rs
#![deny(missing_debug_implementations, unreachable_pub)]

mod activation;
pub mod aligned;
mod error;
mod gather;
mod linear;
mod matrix;
mod mlp;
pub mod quant;
pub mod reduce;
pub mod simd;

pub use activation::Activation;
pub use aligned::Aligned;
pub use error::ShapeError;
pub use gather::gather_pool_csr;
pub use linear::Linear;
pub use matrix::Matrix;
pub use mlp::Mlp;
pub use quant::{gather_pool_csr_f16, gather_pool_csr_i8, quantize_f16, quantize_i8_rows};
pub use simd::SimdBackend;

//! Multi-layer perceptron stacks.

use serde::{Deserialize, Serialize};

use crate::{Activation, Linear, Matrix};

/// A stack of [`Linear`] layers: the building block of DLRM's bottom and top
/// MLPs (paper Figure 1).
///
/// Hidden layers use the supplied activation; by convention the caller sets
/// the final non-linearity (DLRM's top MLP ends in a sigmoid, its bottom MLP
/// ends in ReLU) via [`Mlp::with_output_activation`].
///
/// # Examples
///
/// ```
/// use er_tensor::{Activation, Matrix, Mlp};
///
/// // Table II RM1 top MLP operates on the interaction output.
/// let top = Mlp::with_seed(96, &[256, 64, 1], Activation::Relu, 7)
///     .with_output_activation(Activation::Sigmoid);
/// let logits = top.forward(&Matrix::zeros(32, 96));
/// assert_eq!(logits.shape(), (32, 1));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Linear>,
}

impl Mlp {
    /// Creates an MLP mapping `in_dim` through each width in `widths`.
    ///
    /// # Panics
    ///
    /// Panics if `widths` is empty or any dimension is zero.
    pub fn with_seed(in_dim: usize, widths: &[usize], activation: Activation, seed: u64) -> Self {
        assert!(!widths.is_empty(), "an MLP needs at least one layer");
        let mut layers = Vec::with_capacity(widths.len());
        let mut prev = in_dim;
        for (i, &w) in widths.iter().enumerate() {
            layers.push(Linear::with_seed(
                prev,
                w,
                activation,
                seed.wrapping_add(i as u64),
            ));
            prev = w;
        }
        Self { layers }
    }

    /// Replaces the final layer's activation (e.g. sigmoid for the CTR head).
    pub fn with_output_activation(mut self, activation: Activation) -> Self {
        // lint::allow(no_panic): constructors reject empty layer stacks
        let last = self.layers.pop().expect("MLP has at least one layer");
        let (w, b) = (last.in_dim(), last.out_dim());
        // Rebuild the final layer with identical weights but a new activation:
        // Linear exposes no setter, so route through from_parts via serde-free
        // clone of parameters. Simplest correct path: forward identity probes
        // would be wasteful; instead Linear keeps its parts accessible here.
        let rebuilt = last.replace_activation(activation);
        debug_assert_eq!((rebuilt.in_dim(), rebuilt.out_dim()), (w, b));
        self.layers.push(rebuilt);
        self
    }

    /// The layers in order.
    pub fn layers(&self) -> &[Linear] {
        &self.layers
    }

    /// Input width of the first layer.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output width of the final layer.
    pub fn out_dim(&self) -> usize {
        // lint::allow(no_panic): constructors reject empty layer stacks
        self.layers.last().expect("non-empty").out_dim()
    }

    /// Forward pass for a batch.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != in_dim()`.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut h = self.layers[0].forward(x);
        for layer in &self.layers[1..] {
            h = layer.forward(&h);
        }
        h
    }

    /// Forward pass ping-ponging between two caller-owned scratch matrices
    /// instead of allocating one activation matrix per layer. Returns a
    /// reference to whichever scratch holds the final layer's output. Each
    /// layer runs [`Linear::forward_into`], so the result is bit-identical
    /// to [`Mlp::forward`]; once both buffers' capacity covers the widest
    /// layer the call performs no allocation.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != in_dim()`.
    pub fn forward_into<'a>(&self, x: &Matrix, a: &'a mut Matrix, b: &'a mut Matrix) -> &'a Matrix {
        self.layers[0].forward_into(x, a);
        let mut in_a = true;
        for layer in &self.layers[1..] {
            if in_a {
                layer.forward_into(a, b);
            } else {
                layer.forward_into(b, a);
            }
            in_a = !in_a;
        }
        if in_a {
            a
        } else {
            b
        }
    }

    /// Total parameters across all layers.
    pub fn param_count(&self) -> u64 {
        self.layers.iter().map(Linear::param_count).sum()
    }

    /// Total parameter bytes at `f32` precision.
    pub fn param_bytes(&self) -> u64 {
        self.layers.iter().map(Linear::param_bytes).sum()
    }

    /// Total forward-pass FLOPs for the given batch size.
    pub fn flops(&self, batch: usize) -> u64 {
        self.layers.iter().map(|l| l.flops(batch)).sum()
    }
}

impl Linear {
    /// Returns a copy of this layer with a different activation but identical
    /// parameters. Used to give MLP heads their output non-linearity.
    pub fn replace_activation(&self, activation: Activation) -> Linear {
        let mut out = self.clone();
        out.set_activation(activation);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_shapes_chain() {
        let mlp = Mlp::with_seed(13, &[256, 128, 32], Activation::Relu, 0);
        assert_eq!(mlp.in_dim(), 13);
        assert_eq!(mlp.out_dim(), 32);
        assert_eq!(mlp.layers().len(), 3);
        let y = mlp.forward(&Matrix::zeros(8, 13));
        assert_eq!(y.shape(), (8, 32));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Mlp::with_seed(4, &[8, 2], Activation::Relu, 11);
        let b = Mlp::with_seed(4, &[8, 2], Activation::Relu, 11);
        let x = Matrix::filled(3, 4, 0.3);
        assert_eq!(a.forward(&x), b.forward(&x));
    }

    #[test]
    fn output_activation_changes_range() {
        let raw = Mlp::with_seed(4, &[8, 1], Activation::Relu, 5);
        let ctr = raw.clone().with_output_activation(Activation::Sigmoid);
        let x = Matrix::filled(16, 4, 1.0);
        for r in 0..16 {
            let p = ctr.forward(&x).get(r, 0);
            assert!((0.0..=1.0).contains(&p));
        }
        // Identical parameters: sigmoid(raw) == ctr output.
        let yr = raw.forward(&x);
        let yc = ctr.forward(&x);
        for r in 0..16 {
            let expect = Activation::Sigmoid.eval(yr.get(r, 0));
            assert!((yc.get(r, 0) - expect).abs() < 1e-6);
        }
    }

    #[test]
    fn param_count_matches_hand_computation() {
        // 13->256->128->32: (13*256+256) + (256*128+128) + (128*32+32)
        let mlp = Mlp::with_seed(13, &[256, 128, 32], Activation::Relu, 0);
        let expect = (13 * 256 + 256) + (256 * 128 + 128) + (128 * 32 + 32);
        assert_eq!(mlp.param_count(), expect as u64);
        assert_eq!(mlp.param_bytes(), expect as u64 * 4);
    }

    #[test]
    fn flops_scale_linearly_with_batch() {
        let mlp = Mlp::with_seed(16, &[64, 1], Activation::Relu, 0);
        assert_eq!(mlp.flops(2), 2 * mlp.flops(1));
        assert_eq!(mlp.flops(32), 32 * mlp.flops(1));
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_widths_panics() {
        Mlp::with_seed(4, &[], Activation::Relu, 0);
    }

    #[test]
    fn forward_into_is_bit_identical_for_odd_and_even_depths() {
        // Odd and even layer counts land the result in different ping-pong
        // buffers; both must reproduce the allocating pass exactly, and the
        // scratch pair must survive reuse across calls.
        let mut a = Matrix::zeros(1, 1);
        let mut b = Matrix::zeros(1, 1);
        for widths in [&[8][..], &[8, 4], &[16, 8, 2], &[8, 8, 8, 1]] {
            let mlp = Mlp::with_seed(6, widths, Activation::Relu, 31)
                .with_output_activation(Activation::Sigmoid);
            let x = Matrix::filled(5, 6, 0.4);
            let expect = mlp.forward(&x);
            assert_eq!(*mlp.forward_into(&x, &mut a, &mut b), expect, "{widths:?}");
        }
    }
}

//! Row-major dense matrix.

use serde::{Deserialize, Serialize};

use crate::ShapeError;

/// A row-major `rows x cols` matrix of `f32` values.
///
/// Sized for DLRM workloads: batches of a few dozen rows against layers of a
/// few hundred columns, where a straightforward cache-friendly triple loop is
/// perfectly adequate.
///
/// # Examples
///
/// ```
/// use er_tensor::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b).unwrap();
/// assert_eq!(c, a);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix of zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix with every element set to `value`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `data.len() != rows * cols` or either
    /// dimension is zero.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, ShapeError> {
        if rows == 0 || cols == 0 || data.len() != rows * cols {
            return Err(ShapeError::new(format!(
                "cannot shape buffer of length {} into {rows}x{cols}",
                data.len()
            )));
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `rows` is empty or rows have unequal widths.
    pub fn from_rows(rows: &[&[f32]]) -> Result<Self, ShapeError> {
        let first = rows
            .first()
            .ok_or_else(|| ShapeError::new("cannot build a matrix from zero rows"))?;
        let cols = first.len();
        if cols == 0 {
            return Err(ShapeError::new("rows must be non-empty"));
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != cols {
                return Err(ShapeError::new(format!(
                    "row {i} has width {} but row 0 has width {cols}",
                    row.len()
                )));
            }
            data.extend_from_slice(row);
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The flat row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The flat row-major buffer, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Reshapes this matrix to `rows x cols` with every element zeroed,
    /// reusing the existing buffer. Once the buffer's capacity covers the
    /// largest shape a caller cycles through, this never allocates — the
    /// basis of the zero-allocation forward workspace.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn reshape_zeroed(&mut self, rows: usize, cols: usize) {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Matrix product `self * other`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix, ShapeError> {
        if self.cols != other.rows {
            return Err(ShapeError::new(format!(
                "matmul shape mismatch: {}x{} * {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j loop order keeps both `other` and `out` accesses sequential.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[k * other.cols..(k + 1) * other.cols];
                let orow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Register-blocked matrix product `self * other`.
    ///
    /// A 6-row x 16-column micro-kernel accumulates each output block in
    /// registers across the whole `k` extent (the naive kernel re-reads and
    /// re-writes the output row once per `k`) and reuses every loaded
    /// `other` panel across all six rows; on x86-64 with AVX2 the same code
    /// is dispatched to a 256-bit-vector compilation at runtime. Per output
    /// element the additions happen in exactly the naive kernel's order
    /// (ascending `k`), so for finite inputs the result is
    /// **bit-identical** to [`Matrix::matmul`] — the naive kernel stays as
    /// the test oracle.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `self.cols() != other.rows()`.
    pub fn matmul_blocked(&self, other: &Matrix) -> Result<Matrix, ShapeError> {
        if self.cols != other.rows {
            return Err(ShapeError::new(format!(
                "matmul shape mismatch: {}x{} * {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        matmul_rows_blocked(
            &self.data,
            &other.data,
            &mut out.data,
            self.cols,
            other.cols,
        );
        Ok(out)
    }

    /// Like [`Matrix::matmul_blocked`], but writes the product into `out`
    /// (reshaped and zeroed in place) instead of allocating a fresh matrix.
    /// Bit-identical to every other matmul kernel; once `out`'s capacity is
    /// warm the call performs no allocation.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `self.cols() != other.rows()`.
    pub fn matmul_blocked_into(&self, other: &Matrix, out: &mut Matrix) -> Result<(), ShapeError> {
        if self.cols != other.rows {
            return Err(ShapeError::new(format!(
                "matmul shape mismatch: {}x{} * {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        out.reshape_zeroed(self.rows, other.cols);
        matmul_rows_blocked(
            &self.data,
            &other.data,
            &mut out.data,
            self.cols,
            other.cols,
        );
        Ok(())
    }

    /// Row-chunk parallel matrix product for large batches: splits the
    /// output rows across `threads` scoped worker threads, each running the
    /// blocked panel kernel of [`Matrix::matmul_blocked`] on its chunk.
    /// Rows are independent, so the result is bit-identical to both the
    /// blocked and the naive kernel at every thread count.
    ///
    /// `threads == 0` or `1` (or a matrix too small to split) falls back to
    /// the single-threaded blocked kernel.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `self.cols() != other.rows()`.
    pub fn matmul_parallel(&self, other: &Matrix, threads: usize) -> Result<Matrix, ShapeError> {
        if self.cols != other.rows {
            return Err(ShapeError::new(format!(
                "matmul shape mismatch: {}x{} * {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let threads = threads.max(1).min(self.rows);
        if threads == 1 {
            return self.matmul_blocked(other);
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        let k = self.cols;
        let n = other.cols;
        let chunk_rows = self.rows.div_ceil(threads);
        std::thread::scope(|scope| {
            for (c, out_chunk) in out.data.chunks_mut(chunk_rows * n).enumerate() {
                let a_chunk = &self.data[c * chunk_rows * k..];
                let a_chunk = &a_chunk[..out_chunk.len() / n * k];
                let b = &other.data;
                scope.spawn(move || matmul_rows_blocked(a_chunk, b, out_chunk, k, n));
            }
        });
        Ok(out)
    }

    /// Element-wise sum.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Result<Matrix, ShapeError> {
        if self.shape() != other.shape() {
            return Err(ShapeError::new(format!(
                "add shape mismatch: {:?} vs {:?}",
                self.shape(),
                other.shape()
            )));
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Ok(Self {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Element-wise `self += other`, allocation-free. Per element the
    /// addition is exactly [`Matrix::add`]'s, so accumulating partials with
    /// either entry point is bit-identical.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) -> Result<(), ShapeError> {
        if self.shape() != other.shape() {
            return Err(ShapeError::new(format!(
                "add shape mismatch: {:?} vs {:?}",
                self.shape(),
                other.shape()
            )));
        }
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
        Ok(())
    }

    /// Adds a row vector to every row (broadcast), as in a layer bias.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `bias.len() != self.cols()`.
    pub fn add_row_broadcast(&self, bias: &[f32]) -> Result<Matrix, ShapeError> {
        if bias.len() != self.cols {
            return Err(ShapeError::new(format!(
                "bias of length {} cannot broadcast over width {}",
                bias.len(),
                self.cols
            )));
        }
        let mut out = self.clone();
        for r in 0..out.rows {
            for (o, &b) in out.row_mut(r).iter_mut().zip(bias) {
                *o += b;
            }
        }
        Ok(out)
    }

    /// Adds a row vector to every row in place — the allocation-free form
    /// of [`Matrix::add_row_broadcast`], bit-identical to it.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `bias.len() != self.cols()`.
    pub fn add_row_broadcast_in_place(&mut self, bias: &[f32]) -> Result<(), ShapeError> {
        if bias.len() != self.cols {
            return Err(ShapeError::new(format!(
                "bias of length {} cannot broadcast over width {}",
                bias.len(),
                self.cols
            )));
        }
        for r in 0..self.rows {
            for (o, &b) in self.row_mut(r).iter_mut().zip(bias) {
                *o += b;
            }
        }
        Ok(())
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Applies `f` to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Horizontal concatenation `[self | other]`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if row counts differ.
    pub fn hconcat(&self, other: &Matrix) -> Result<Matrix, ShapeError> {
        if self.rows != other.rows {
            return Err(ShapeError::new(format!(
                "hconcat row mismatch: {} vs {}",
                self.rows, other.rows
            )));
        }
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(other.row(r));
        }
        Ok(Self {
            rows: self.rows,
            cols,
            data,
        })
    }

    /// Maximum absolute difference to another matrix of the same shape.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(self.shape(), other.shape(), "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

/// Output-panel width of the blocked kernel: 16 f32 accumulators per row
/// live in registers across the whole `k` extent (two 256-bit vectors, or
/// four 128-bit ones).
const PANEL: usize = 16;

/// Row-block height of the micro-kernel: 6 A rows share every loaded B
/// panel, the classic 6x16 f32 register block (12 accumulator vectors + 2
/// B vectors + 1 broadcast under AVX2's 16 ymm registers).
const MR: usize = 6;

/// Computes `out = a * b` for `a: m_rows x k` (`m_rows` implied by slice
/// lengths), `b: k x n`, through the 6x16 register-blocked micro-kernel,
/// dispatched to an AVX2-compiled clone when the CPU supports it.
///
/// Per output element the additions happen in exactly the naive kernel's
/// order (ascending `k`), so every caller — blocked, parallel row chunks —
/// is bit-identical to [`Matrix::matmul`] for finite inputs. (The naive
/// kernel skips zero `a` entries; the micro-kernel multiplies them, which
/// changes nothing for finite operands: the accumulator can never be
/// `-0.0` — additions from a `+0.0` start can't produce it — and
/// `x + ±0.0 == x` otherwise. Only non-finite `b` values could diverge,
/// since `0.0 * inf` is NaN.)
fn matmul_rows_blocked(a: &[f32], b: &[f32], out: &mut [f32], k: usize, n: usize) {
    debug_assert!(k == 0 || a.len().is_multiple_of(k));
    debug_assert!(n == 0 || out.len().is_multiple_of(n));
    debug_assert_eq!(b.len(), k * n);
    crate::simd::matmul_rows(a, b, out, k, n);
}

/// The portable micro-kernel body. [`crate::simd`] recompiles this exact
/// code with AVX2 enabled (no intrinsics — same FP op sequence, wider
/// registers), which is why it must stay architecture-unconditional.
#[inline(always)]
pub(crate) fn matmul_rows_body(a: &[f32], b: &[f32], out: &mut [f32], k: usize, n: usize) {
    if n == 0 || k == 0 {
        return; // out is already the all-zeros product
    }
    let m = out.len() / n;
    let jp = n - n % PANEL;
    let mut i = 0;
    while i + MR <= m {
        let a_block = &a[i * k..(i + MR) * k];
        let o_block = &mut out[i * n..(i + MR) * n];
        let arows: [&[f32]; MR] = core::array::from_fn(|r| &a_block[r * k..(r + 1) * k]);
        let mut jb = 0;
        while jb < jp {
            micro_panel(arows, b, o_block, k, n, jb);
            jb += PANEL;
        }
        if jb < n {
            for (r, arow) in arows.into_iter().enumerate() {
                ragged_tail(arow, b, &mut o_block[r * n..(r + 1) * n], k, n, jb);
            }
        }
        i += MR;
    }
    // Leftover rows (m % MR) run the same panel kernel one row at a time.
    while i < m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        let mut jb = 0;
        while jb < jp {
            micro_panel([arow], b, orow, k, n, jb);
            jb += PANEL;
        }
        if jb < n {
            ragged_tail(arow, b, orow, k, n, jb);
        }
        i += 1;
    }
}

/// Accumulates `R` output rows' `[jb, jb + PANEL)` columns in registers
/// across the whole `k` extent; each loaded B panel is reused by all `R`
/// rows. The naive kernel instead re-reads and re-writes the output row
/// once per `k`.
#[inline(always)]
fn micro_panel<const R: usize>(
    arows: [&[f32]; R],
    b: &[f32],
    out_rows: &mut [f32],
    k: usize,
    n: usize,
    jb: usize,
) {
    let mut acc = [[0.0f32; PANEL]; R];
    // `kk` strides two buffers at once (a columns, b rows); iterator form
    // would need a zip that breaks the const-R unroll.
    #[allow(clippy::needless_range_loop)]
    for kk in 0..k {
        let off = kk * n + jb;
        // lint::allow(no_panic): slice is exactly PANEL long; try_into cannot fail
        let bp: &[f32; PANEL] = b[off..off + PANEL].try_into().expect("PANEL-sized");
        for r in 0..R {
            let av = arows[r][kk];
            for p in 0..PANEL {
                acc[r][p] += av * bp[p];
            }
        }
    }
    for (r, row_acc) in acc.iter().enumerate() {
        out_rows[r * n + jb..r * n + jb + PANEL].copy_from_slice(row_acc);
    }
}

/// Scalar tail for the last `n % PANEL` columns, in the naive order.
#[inline(always)]
fn ragged_tail(arow: &[f32], b: &[f32], orow: &mut [f32], k: usize, n: usize, jb: usize) {
    for (kk, &av) in arow.iter().take(k).enumerate() {
        if av == 0.0 {
            continue;
        }
        let brow = &b[kk * n + jb..kk * n + n];
        for (o, &bv) in orow[jb..].iter_mut().zip(brow) {
            *o += av * bv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![0.0; 3]).is_err());
        assert!(Matrix::from_vec(0, 2, vec![]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert!(err.to_string().contains("width"));
        assert!(Matrix::from_rows(&[]).is_err());
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        let expect = Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap();
        assert_eq!(c, expect);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.5, -2.0, 0.25]]).unwrap();
        let c = a.matmul(&Matrix::identity(3)).unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn matmul_rejects_mismatched_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn add_and_broadcast() {
        let a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 2, 2.0);
        assert_eq!(a.add(&b).unwrap(), Matrix::filled(2, 2, 3.0));
        let c = a.add_row_broadcast(&[10.0, 20.0]).unwrap();
        assert_eq!(c.row(0), &[11.0, 21.0]);
        assert_eq!(c.row(1), &[11.0, 21.0]);
        assert!(a.add_row_broadcast(&[1.0]).is_err());
    }

    #[test]
    fn transpose_round_trips() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn map_applies_elementwise() {
        let a = Matrix::from_rows(&[&[-1.0, 2.0]]).unwrap();
        let r = a.map(|x| x.max(0.0));
        assert_eq!(r.row(0), &[0.0, 2.0]);
    }

    #[test]
    fn hconcat_joins_columns() {
        let a = Matrix::filled(2, 1, 1.0);
        let b = Matrix::filled(2, 2, 2.0);
        let c = a.hconcat(&b).unwrap();
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.row(0), &[1.0, 2.0, 2.0]);
        assert!(a.hconcat(&Matrix::zeros(3, 1)).is_err());
    }

    #[test]
    fn max_abs_diff_measures_distance() {
        let a = Matrix::filled(1, 3, 1.0);
        let b = Matrix::from_rows(&[&[1.0, 1.5, 0.0]]).unwrap();
        assert_eq!(a.max_abs_diff(&b), 1.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        Matrix::zeros(1, 1).get(1, 0);
    }

    /// Deterministic pseudo-random matrix with some exact zeros, to exercise
    /// the zero-skip path of every kernel.
    fn scrambled(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let data = (0..rows * cols)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                if state.is_multiple_of(11) {
                    0.0
                } else {
                    ((state >> 16) as i32 % 1000) as f32 / 257.0
                }
            })
            .collect();
        Matrix::from_vec(rows, cols, data).expect("sized by construction")
    }

    #[test]
    fn blocked_matmul_is_bit_identical_to_naive() {
        // Shapes chosen to hit full panels, ragged tails, k-unroll
        // remainders, and degenerate 1-wide cases.
        for (m, k, n) in [
            (1, 1, 1),
            (2, 3, 5),
            (7, 13, 16),
            (8, 17, 31),
            (33, 64, 33),
            (5, 2, 100),
            (16, 50, 48),
        ] {
            let a = scrambled(m, k, (m * 31 + k) as u64);
            let b = scrambled(k, n, (k * 17 + n) as u64);
            let naive = a.matmul(&b).unwrap();
            let blocked = a.matmul_blocked(&b).unwrap();
            assert_eq!(naive, blocked, "{m}x{k} * {k}x{n}");
        }
    }

    #[test]
    fn parallel_matmul_is_bit_identical_at_every_thread_count() {
        let a = scrambled(37, 29, 3);
        let b = scrambled(29, 41, 4);
        let naive = a.matmul(&b).unwrap();
        for threads in [0, 1, 2, 3, 8, 64] {
            let par = a.matmul_parallel(&b, threads).unwrap();
            assert_eq!(naive, par, "threads={threads}");
        }
    }

    #[test]
    fn fast_kernels_reject_mismatched_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul_blocked(&b).is_err());
        assert!(a.matmul_parallel(&b, 4).is_err());
    }

    #[test]
    fn matmul_into_matches_allocating_kernel_across_reuse() {
        // One `out` cycles through growing and shrinking shapes; every
        // product must match the allocating kernel bit-for-bit.
        let mut out = Matrix::zeros(1, 1);
        for (m, k, n) in [(3, 4, 5), (8, 17, 31), (2, 2, 2), (7, 13, 16)] {
            let a = scrambled(m, k, (m + k) as u64);
            let b = scrambled(k, n, (k + n) as u64);
            a.matmul_blocked_into(&b, &mut out).unwrap();
            assert_eq!(out, a.matmul_blocked(&b).unwrap(), "{m}x{k} * {k}x{n}");
        }
    }

    #[test]
    fn matmul_into_rejects_mismatched_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let mut out = Matrix::zeros(1, 1);
        assert!(a.matmul_blocked_into(&b, &mut out).is_err());
    }

    #[test]
    fn reshape_zeroed_reuses_capacity() {
        let mut m = Matrix::filled(10, 10, 7.0);
        m.reshape_zeroed(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
        // Growing back within the original capacity stays zeroed too.
        m.reshape_zeroed(10, 10);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn add_assign_matches_add() {
        let a = scrambled(5, 7, 1);
        let b = scrambled(5, 7, 2);
        let mut acc = a.clone();
        acc.add_assign(&b).unwrap();
        assert_eq!(acc, a.add(&b).unwrap());
        assert!(acc.add_assign(&Matrix::zeros(5, 8)).is_err());
    }

    #[test]
    fn broadcast_in_place_matches_allocating_form() {
        let a = scrambled(4, 6, 9);
        let bias: Vec<f32> = (0..6).map(|i| i as f32 - 2.5).collect();
        let mut inplace = a.clone();
        inplace.add_row_broadcast_in_place(&bias).unwrap();
        assert_eq!(inplace, a.add_row_broadcast(&bias).unwrap());
        assert!(inplace.add_row_broadcast_in_place(&[1.0]).is_err());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn reshape_zeroed_rejects_empty_shape() {
        Matrix::zeros(2, 2).reshape_zeroed(0, 3);
    }

    #[test]
    fn filled_constructs_directly() {
        let m = Matrix::filled(3, 4, 2.5);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&x| x == 2.5));
    }
}

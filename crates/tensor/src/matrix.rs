//! Row-major dense matrix.

use serde::{Deserialize, Serialize};

use crate::ShapeError;

/// A row-major `rows x cols` matrix of `f32` values.
///
/// Sized for DLRM workloads: batches of a few dozen rows against layers of a
/// few hundred columns, where a straightforward cache-friendly triple loop is
/// perfectly adequate.
///
/// # Examples
///
/// ```
/// use er_tensor::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b).unwrap();
/// assert_eq!(c, a);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix of zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix with every element set to `value`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        let mut m = Self::zeros(rows, cols);
        m.data.iter_mut().for_each(|x| *x = value);
        m
    }

    /// Creates the `n x n` identity matrix.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `data.len() != rows * cols` or either
    /// dimension is zero.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, ShapeError> {
        if rows == 0 || cols == 0 || data.len() != rows * cols {
            return Err(ShapeError::new(format!(
                "cannot shape buffer of length {} into {rows}x{cols}",
                data.len()
            )));
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `rows` is empty or rows have unequal widths.
    pub fn from_rows(rows: &[&[f32]]) -> Result<Self, ShapeError> {
        let first = rows
            .first()
            .ok_or_else(|| ShapeError::new("cannot build a matrix from zero rows"))?;
        let cols = first.len();
        if cols == 0 {
            return Err(ShapeError::new("rows must be non-empty"));
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != cols {
                return Err(ShapeError::new(format!(
                    "row {i} has width {} but row 0 has width {cols}",
                    row.len()
                )));
            }
            data.extend_from_slice(row);
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The flat row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Matrix product `self * other`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix, ShapeError> {
        if self.cols != other.rows {
            return Err(ShapeError::new(format!(
                "matmul shape mismatch: {}x{} * {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j loop order keeps both `other` and `out` accesses sequential.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[k * other.cols..(k + 1) * other.cols];
                let orow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Element-wise sum.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Result<Matrix, ShapeError> {
        if self.shape() != other.shape() {
            return Err(ShapeError::new(format!(
                "add shape mismatch: {:?} vs {:?}",
                self.shape(),
                other.shape()
            )));
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Ok(Self {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Adds a row vector to every row (broadcast), as in a layer bias.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `bias.len() != self.cols()`.
    pub fn add_row_broadcast(&self, bias: &[f32]) -> Result<Matrix, ShapeError> {
        if bias.len() != self.cols {
            return Err(ShapeError::new(format!(
                "bias of length {} cannot broadcast over width {}",
                bias.len(),
                self.cols
            )));
        }
        let mut out = self.clone();
        for r in 0..out.rows {
            for (o, &b) in out.row_mut(r).iter_mut().zip(bias) {
                *o += b;
            }
        }
        Ok(out)
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Applies `f` to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Horizontal concatenation `[self | other]`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if row counts differ.
    pub fn hconcat(&self, other: &Matrix) -> Result<Matrix, ShapeError> {
        if self.rows != other.rows {
            return Err(ShapeError::new(format!(
                "hconcat row mismatch: {} vs {}",
                self.rows, other.rows
            )));
        }
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(other.row(r));
        }
        Ok(Self {
            rows: self.rows,
            cols,
            data,
        })
    }

    /// Maximum absolute difference to another matrix of the same shape.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(self.shape(), other.shape(), "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![0.0; 3]).is_err());
        assert!(Matrix::from_vec(0, 2, vec![]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert!(err.to_string().contains("width"));
        assert!(Matrix::from_rows(&[]).is_err());
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        let expect = Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap();
        assert_eq!(c, expect);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.5, -2.0, 0.25]]).unwrap();
        let c = a.matmul(&Matrix::identity(3)).unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn matmul_rejects_mismatched_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn add_and_broadcast() {
        let a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 2, 2.0);
        assert_eq!(a.add(&b).unwrap(), Matrix::filled(2, 2, 3.0));
        let c = a.add_row_broadcast(&[10.0, 20.0]).unwrap();
        assert_eq!(c.row(0), &[11.0, 21.0]);
        assert_eq!(c.row(1), &[11.0, 21.0]);
        assert!(a.add_row_broadcast(&[1.0]).is_err());
    }

    #[test]
    fn transpose_round_trips() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn map_applies_elementwise() {
        let a = Matrix::from_rows(&[&[-1.0, 2.0]]).unwrap();
        let r = a.map(|x| x.max(0.0));
        assert_eq!(r.row(0), &[0.0, 2.0]);
    }

    #[test]
    fn hconcat_joins_columns() {
        let a = Matrix::filled(2, 1, 1.0);
        let b = Matrix::filled(2, 2, 2.0);
        let c = a.hconcat(&b).unwrap();
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.row(0), &[1.0, 2.0, 2.0]);
        assert!(a.hconcat(&Matrix::zeros(3, 1)).is_err());
    }

    #[test]
    fn max_abs_diff_measures_distance() {
        let a = Matrix::filled(1, 3, 1.0);
        let b = Matrix::from_rows(&[&[1.0, 1.5, 0.0]]).unwrap();
        assert_eq!(a.max_abs_diff(&b), 1.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        Matrix::zeros(1, 1).get(1, 0);
    }
}

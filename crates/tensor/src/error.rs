//! Error type for shape mismatches.

use std::error::Error;
use std::fmt;

/// Returned when an operation is applied to incompatibly shaped operands.
///
/// # Examples
///
/// ```
/// use er_tensor::Matrix;
///
/// let err = Matrix::zeros(2, 3).matmul(&Matrix::zeros(2, 3)).unwrap_err();
/// assert!(err.to_string().contains("mismatch"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    message: String,
}

impl ShapeError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl Error for ShapeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_message() {
        let e = ShapeError::new("bad shape");
        assert_eq!(e.to_string(), "bad shape");
    }

    #[test]
    fn is_send_sync_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<ShapeError>();
    }
}

//! Cache-line-aligned flat buffers for embedding-table storage.
//!
//! Random-access gathers touch one table row per lookup index, so the
//! number of cache lines a row spans is the unit of memory traffic. A
//! plain `Vec`'s large allocations typically start a few bytes past a
//! page boundary (the allocator header), which makes every 64-byte i8
//! row straddle **two** lines and every 256-byte f32 row span five —
//! paying 25–100% more line traffic than the row's byte size. [`Aligned`]
//! pads the front of an ordinary `Vec` so element 0 sits on a cache-line
//! boundary, without any `unsafe`: rows whose byte size divides the line
//! size then occupy exactly `row_bytes / 64` lines.
//!
//! The padding is recomputed on every construction (and on `clone`,
//! since the new allocation lands somewhere else), so the alignment
//! guarantee survives copies.

use std::ops::Deref;

/// Cache line size the front padding targets, in bytes.
pub const CACHE_LINE: usize = 64;

/// A flat `[T]` whose first element is 64-byte aligned. Dereferences to
/// the payload slice; the front padding is invisible to readers.
///
/// # Examples
///
/// ```
/// use er_tensor::Aligned;
///
/// let a = Aligned::from_vec(vec![1.0f32; 1000]);
/// assert_eq!(a.len(), 1000);
/// assert_eq!(a.as_ptr() as usize % 64, 0);
/// assert_eq!(&a[..3], &[1.0, 1.0, 1.0]);
/// ```
#[derive(Debug)]
pub struct Aligned<T> {
    buf: Vec<T>,
    off: usize,
    len: usize,
}

impl<T: Copy + Default> Aligned<T> {
    /// Wraps `v` in a 64-byte-aligned buffer (one copy).
    ///
    /// # Panics
    ///
    /// Panics if `T`'s size is zero or does not divide the cache line
    /// size (every storage element type — i8, u16, f32 — does).
    pub fn from_vec(v: Vec<T>) -> Self {
        Self::from_slice(&v)
    }

    /// Copies `s` into a fresh 64-byte-aligned buffer.
    ///
    /// # Panics
    ///
    /// Panics if `T`'s size is zero or does not divide the cache line
    /// size.
    pub fn from_slice(s: &[T]) -> Self {
        let elem = std::mem::size_of::<T>();
        assert!(
            elem > 0 && CACHE_LINE.is_multiple_of(elem),
            "element size must divide the cache line"
        );
        let pad = CACHE_LINE / elem;
        let mut buf = Vec::with_capacity(s.len() + pad);
        // A Vec never reallocates while len <= capacity, so the base
        // address observed here is the one the payload ends up at.
        let mis = buf.as_ptr() as usize % CACHE_LINE;
        // Allocations are elem-aligned, so the byte gap divides evenly.
        let off = if mis == 0 {
            0
        } else {
            (CACHE_LINE - mis) / elem
        };
        buf.resize(off, T::default());
        buf.extend_from_slice(s);
        Self {
            buf,
            off,
            len: s.len(),
        }
    }
}

impl<T> Deref for Aligned<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        &self.buf[self.off..self.off + self.len]
    }
}

impl<T: Copy + Default> Clone for Aligned<T> {
    fn clone(&self) -> Self {
        // The new allocation lands at a different address; re-pad.
        Self::from_slice(self)
    }
}

impl<T: PartialEq> PartialEq for Aligned<T> {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_is_cache_line_aligned() {
        for len in [0usize, 1, 63, 64, 1000, 100_000] {
            let a = Aligned::from_vec(vec![7i8; len]);
            assert_eq!(a.as_ptr() as usize % CACHE_LINE, 0, "i8 len {len}");
            assert_eq!(&*a, vec![7i8; len].as_slice());
            let b = Aligned::from_vec(vec![0.5f32; len]);
            assert_eq!(b.as_ptr() as usize % CACHE_LINE, 0, "f32 len {len}");
            let c = Aligned::from_vec(vec![9u16; len]);
            assert_eq!(c.as_ptr() as usize % CACHE_LINE, 0, "u16 len {len}");
        }
    }

    #[test]
    fn clone_realigns_and_compares_equal() {
        let a = Aligned::from_vec((0..997i32).collect::<Vec<_>>());
        let b = a.clone();
        assert_eq!(b.as_ptr() as usize % CACHE_LINE, 0);
        assert_eq!(a, b);
        assert_eq!(&*a, &*b);
    }

    #[test]
    fn equality_ignores_padding_length() {
        // Two buffers with identical payloads compare equal even though
        // their internal front padding may differ.
        let a = Aligned::from_slice(&[1u16, 2, 3]);
        let b = Aligned::from_slice(&[1u16, 2, 3]);
        let c = Aligned::from_slice(&[1u16, 2, 4]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}

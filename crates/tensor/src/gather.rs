//! Fused embedding gather + sum-pool over CSR lookups.
//!
//! The `EmbeddingBag` kernel shared by every embedding-table holder in the
//! workspace: `er-model`'s tables call in here so the only `unsafe` (the
//! AVX2-recompiled clone, see [`crate::simd`]) lives in this crate. The
//! lookup is CSR-style: `offsets[i]` is the start of input `i`'s index run
//! in `indices`, the last run extends to `indices.len()`.

use crate::Matrix;

/// Gathers rows of `data` (a `rows x out.cols()` row-major table) per the
/// CSR lookup and sum-pools them into `out` (one pooled row per input),
/// dispatched to an AVX2-compiled clone on x86-64 CPUs that support it —
/// the same Rust code recompiled for 256-bit vectors, no intrinsics, no FP
/// reordering, so results are bit-identical to the portable build. Per
/// output element the additions happen in lookup order, ascending dim.
///
/// # Panics
///
/// Panics if `out.rows() != offsets.len()`, if `data` is not
/// `rows * out.cols()` long, if any offset run is out of bounds or
/// descending, or if any index is `>= rows`.
pub fn gather_pool_csr(
    data: &[f32],
    rows: u32,
    indices: &[u32],
    offsets: &[u32],
    out: &mut Matrix,
) {
    assert_eq!(
        out.rows(),
        offsets.len(),
        "output must have one row per lookup input"
    );
    assert_eq!(
        data.len(),
        rows as usize * out.cols(),
        "table storage must be rows x dim"
    );
    crate::simd::gather_pool_csr(data, rows, indices, offsets, out);
}

/// The portable kernel body. [`crate::simd`] recompiles this exact code
/// with AVX2 enabled, which is why it must stay free of
/// architecture-conditional logic.
#[inline(always)]
pub(crate) fn gather_pool_csr_body(
    data: &[f32],
    rows: u32,
    indices: &[u32],
    offsets: &[u32],
    out: &mut Matrix,
) {
    let d = out.cols();
    let last = indices.len().saturating_sub(1);
    let prefetch = std::mem::size_of_val(data) > crate::simd::PREFETCH_MIN_BYTES;
    for input in 0..offsets.len() {
        let start = offsets[input] as usize;
        let end = offsets
            .get(input + 1)
            .map_or(indices.len(), |&o| o as usize);
        let row = out.row_mut(input);
        if prefetch {
            // Past-cache table: hide the random-access row miss behind
            // the current row's work; pure hint, bits unchanged (see
            // `crate::simd`).
            for (j, &id) in indices[start..end].iter().enumerate() {
                assert!(id < rows, "embedding id {id} out of range ({rows})");
                let ahead =
                    indices[(start + j + crate::simd::PREFETCH_DISTANCE).min(last)] as usize;
                crate::simd::prefetch_row(data, ahead * d, d);
                let base = id as usize * d;
                let vec = &data[base..base + d];
                for (o, &v) in row.iter_mut().zip(vec) {
                    *o += v;
                }
            }
        } else {
            // Cache-resident table: the historical tight loop, kept as
            // a separate arm so its codegen stays hint-free.
            for &id in &indices[start..end] {
                assert!(id < rows, "embedding id {id} out of range ({rows})");
                let base = id as usize * d;
                let vec = &data[base..base + d];
                for (o, &v) in row.iter_mut().zip(vec) {
                    *o += v;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> (Vec<f32>, u32) {
        // 4 rows x 2 dims: row i = [i, 10i].
        let data = vec![0.0, 0.0, 1.0, 10.0, 2.0, 20.0, 3.0, 30.0];
        (data, 4)
    }

    #[test]
    fn pools_each_csr_run_into_its_row() {
        let (data, rows) = table();
        let mut out = Matrix::zeros(2, 2);
        // Input 0 pools rows {1, 2}; input 1 pools row {3}.
        gather_pool_csr(&data, rows, &[1, 2, 3], &[0, 2], &mut out);
        assert_eq!(out.row(0), &[3.0, 30.0]);
        assert_eq!(out.row(1), &[3.0, 30.0]);
    }

    #[test]
    fn empty_runs_leave_zero_rows() {
        let (data, rows) = table();
        let mut out = Matrix::zeros(2, 2);
        gather_pool_csr(&data, rows, &[2], &[0, 0], &mut out);
        assert_eq!(out.row(0), &[0.0, 0.0]);
        assert_eq!(out.row(1), &[2.0, 20.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_ids() {
        let (data, rows) = table();
        let mut out = Matrix::zeros(1, 2);
        gather_pool_csr(&data, rows, &[4], &[0], &mut out);
    }

    #[test]
    #[should_panic(expected = "one row per lookup input")]
    fn rejects_mismatched_output_rows() {
        let (data, rows) = table();
        let mut out = Matrix::zeros(3, 2);
        gather_pool_csr(&data, rows, &[0], &[0], &mut out);
    }

    #[test]
    #[should_panic(expected = "rows x dim")]
    fn rejects_misshapen_storage() {
        let mut out = Matrix::zeros(1, 3);
        gather_pool_csr(&[0.0; 8], 4, &[0], &[0], &mut out);
    }
}

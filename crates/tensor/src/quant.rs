//! Quantized embedding storage kernels: f16 and i8 gather + sum-pool.
//!
//! Embedding gathers are memory-bandwidth-bound (paper Fig 9), so halving
//! or quartering the stored element width multiplies the rows a node can
//! serve per second. This module holds the storage-side conversions and the
//! dequantize-and-accumulate gather kernels:
//!
//! - **f16**: IEEE-754 half precision, round-to-nearest-even, converted at
//!   the bit level (no external crate). Per element the quantization error
//!   is ≤ `2^-11 · |v|` for normal halfs plus `2^-24` once subnormals are
//!   in range.
//! - **i8**: per-row symmetric quantization under an f32 scale
//!   (`scale = max_abs / 127`, `q = round(v / scale)`), dequantized as
//!   `scale * q`. Per element the error is ≤ `0.5001 · scale` (the `1e-4`
//!   relative slack absorbs the f32 rounding of `scale * q`).
//!
//! Accumulation is always f32, in exactly the reference order (lookup
//! order, ascending dim), so quantized kernels are bit-identical *across
//! SIMD backends* (see [`crate::simd`]) even though they are only
//! bounded-error-close to the f32 reference. The f32 kernels elsewhere in
//! this crate are untouched and stay bit-identical to their baseline.
//!
//! The kernel bodies here are blessed by er-lint's `float_reduction` rule
//! (see `er-lint.toml` `blessed_kernels`): dequantization loops anywhere
//! else in serving code are a lint error.

use crate::Matrix;

/// Converts an f32 to IEEE-754 half precision (round-to-nearest-even).
///
/// Overflow saturates to ±inf; NaN maps to a quiet NaN. This is the
/// storage-side (offline) conversion — clarity over speed.
pub fn f16_from_f32(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let man = bits & 0x007f_ffff;
    if exp == 0xff {
        // Inf or NaN: keep the class, quiet the payload.
        return sign | 0x7c00 | if man != 0 { 0x0200 } else { 0 };
    }
    let unbiased = exp - 127;
    if unbiased >= 16 {
        return sign | 0x7c00; // overflow -> inf
    }
    if unbiased >= -14 {
        // Normal half: drop 13 mantissa bits with round-to-nearest-even.
        let shift = 13u32;
        let halfway = 1u32 << (shift - 1);
        let mut h_man = man >> shift;
        let rem = man & ((1 << shift) - 1);
        if rem > halfway || (rem == halfway && (h_man & 1) == 1) {
            h_man += 1;
        }
        // Mantissa carry bumps the exponent via plain addition; a bump out
        // of the top normal bin is exactly rounding to infinity.
        let h = (((unbiased + 15) as u32) << 10) + h_man;
        return sign | (h.min(0x7c00) as u16);
    }
    if unbiased < -25 {
        return sign; // below half the smallest subnormal -> ±0
    }
    // Subnormal half: shift the hidden-bit mantissa down to 2^-24 units.
    let man_hidden = man | 0x0080_0000;
    let shift = (13 + (-14 - unbiased)) as u32;
    let halfway = 1u32 << (shift - 1);
    let mut h_man = man_hidden >> shift;
    let rem = man_hidden & ((1 << shift) - 1);
    if rem > halfway || (rem == halfway && (h_man & 1) == 1) {
        h_man += 1; // may round up into the normal range: still correct bits
    }
    sign | h_man as u16
}

/// Converts an IEEE-754 half back to f32. Exact for every finite half
/// (subnormals included): the exponent re-bias is a multiply by 2^112,
/// which is exact in f32.
#[inline(always)]
pub fn f16_to_f32(h: u16) -> f32 {
    if (h & 0x7c00) == 0x7c00 {
        // Inf/NaN (never stored by embedding quantization, but preserved).
        let sign = ((h & 0x8000) as u32) << 16;
        let man = ((h & 0x03ff) as u32) << 13;
        return f32::from_bits(sign | 0x7f80_0000 | man);
    }
    // Place the half's exponent+mantissa in the f32 fields, then fix the
    // bias gap (127 - 15 = 112) with one exact power-of-two multiply; f32
    // subnormal renormalization makes this exact for half subnormals too.
    let sign = ((h & 0x8000) as u32) << 16;
    let expman = ((h & 0x7fff) as u32) << 13;
    f32::from_bits(sign | expman) * f32::from_bits(0x7780_0000)
}

/// Quantizes a flat f32 buffer to f16 storage.
pub fn quantize_f16(data: &[f32]) -> Vec<u16> {
    data.iter().map(|&v| f16_from_f32(v)).collect()
}

/// Dequantizes f16 storage back to f32 (test/report helper).
pub fn dequantize_f16(data: &[u16]) -> Vec<f32> {
    data.iter().map(|&h| f16_to_f32(h)).collect()
}

/// Per-row symmetric i8 quantization of a `rows x dim` row-major buffer:
/// for each row, `scale = max_abs / 127` and `q = round(v / scale)` (in
/// f64, so the rounding analysis stays trivial). All-zero rows get scale 0
/// and all-zero codes.
///
/// Returns `(codes, scales)` with `scales.len() == rows`.
///
/// # Panics
///
/// Panics if `dim` is zero or `data.len()` is not a multiple of `dim`.
pub fn quantize_i8_rows(data: &[f32], dim: usize) -> (Vec<i8>, Vec<f32>) {
    assert!(dim > 0, "dim must be non-zero");
    assert_eq!(data.len() % dim, 0, "data must be rows x dim");
    let rows = data.len() / dim;
    let mut codes = Vec::with_capacity(data.len());
    let mut scales = Vec::with_capacity(rows);
    for row in data.chunks_exact(dim) {
        let max_abs = row.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let scale = max_abs / 127.0;
        scales.push(scale);
        if scale == 0.0 {
            codes.resize(codes.len() + dim, 0);
            continue;
        }
        for &v in row {
            let q = (v as f64 / scale as f64).round();
            codes.push(q.clamp(-127.0, 127.0) as i8);
        }
    }
    (codes, scales)
}

/// Dequantizes per-row i8 storage back to f32 (test/report helper):
/// `v = scale[row] * q`.
///
/// # Panics
///
/// Panics if `codes.len() != scales.len() * dim` or `dim` is zero.
pub fn dequantize_i8_rows(codes: &[i8], scales: &[f32], dim: usize) -> Vec<f32> {
    assert!(dim > 0, "dim must be non-zero");
    assert_eq!(codes.len(), scales.len() * dim, "codes must be rows x dim");
    codes
        .chunks_exact(dim)
        .zip(scales)
        .flat_map(|(row, &s)| row.iter().map(move |&q| s * q as f32))
        .collect()
}

/// CSR gather + sum-pool over f16 storage, dequantizing each element and
/// accumulating in f32 — the half-width sibling of
/// [`crate::gather_pool_csr`], SIMD-dispatched (see [`crate::simd`]).
/// Per output element the additions happen in lookup order, ascending dim,
/// so results are bit-identical across backends.
///
/// # Panics
///
/// Panics if `out.rows() != offsets.len()`, if `data` is not
/// `rows * out.cols()` long, or if any index is `>= rows`.
pub fn gather_pool_csr_f16(
    data: &[u16],
    rows: u32,
    indices: &[u32],
    offsets: &[u32],
    out: &mut Matrix,
) {
    assert_eq!(
        out.rows(),
        offsets.len(),
        "output must have one row per lookup input"
    );
    assert_eq!(
        data.len(),
        rows as usize * out.cols(),
        "table storage must be rows x dim"
    );
    crate::simd::gather_pool_csr_f16_auto(data, rows, indices, offsets, out);
}

/// CSR gather + sum-pool over per-row i8 storage, dequantizing as
/// `scale[row] * q` and accumulating in f32 — the quarter-width sibling of
/// [`crate::gather_pool_csr`], SIMD-dispatched (see [`crate::simd`]).
/// Per output element the additions happen in lookup order, ascending dim,
/// so results are bit-identical across backends.
///
/// # Panics
///
/// Panics if `out.rows() != offsets.len()`, if `data` is not
/// `rows * out.cols()` long, if `scales.len() != rows`, or if any index is
/// `>= rows`.
pub fn gather_pool_csr_i8(
    data: &[i8],
    scales: &[f32],
    rows: u32,
    indices: &[u32],
    offsets: &[u32],
    out: &mut Matrix,
) {
    assert_eq!(
        out.rows(),
        offsets.len(),
        "output must have one row per lookup input"
    );
    assert_eq!(
        data.len(),
        rows as usize * out.cols(),
        "table storage must be rows x dim"
    );
    assert_eq!(scales.len(), rows as usize, "one scale per table row");
    crate::simd::gather_pool_csr_i8_auto(data, scales, rows, indices, offsets, out);
}

/// The portable f16 kernel body. [`crate::simd`] recompiles this exact
/// code with AVX2/AVX-512 enabled, so it must stay free of
/// architecture-conditional logic.
#[inline(always)]
pub(crate) fn gather_pool_csr_f16_body(
    data: &[u16],
    rows: u32,
    indices: &[u32],
    offsets: &[u32],
    out: &mut Matrix,
) {
    let d = out.cols();
    let last = indices.len().saturating_sub(1);
    let prefetch = std::mem::size_of_val(data) > crate::simd::PREFETCH_MIN_BYTES;
    for input in 0..offsets.len() {
        let start = offsets[input] as usize;
        let end = offsets
            .get(input + 1)
            .map_or(indices.len(), |&o| o as usize);
        let row = out.row_mut(input);
        if prefetch {
            // Past-cache table: hide the random-access row miss behind
            // the current row's work; pure hint, bits unchanged (see
            // `crate::simd`).
            for (j, &id) in indices[start..end].iter().enumerate() {
                assert!(id < rows, "embedding id {id} out of range ({rows})");
                let ahead =
                    indices[(start + j + crate::simd::PREFETCH_DISTANCE).min(last)] as usize;
                crate::simd::prefetch_row(data, ahead * d, d);
                let base = id as usize * d;
                let vec = &data[base..base + d];
                for (o, &h) in row.iter_mut().zip(vec) {
                    *o += f16_to_f32(h);
                }
            }
        } else {
            // Cache-resident table: tight loop, kept hint-free.
            for &id in &indices[start..end] {
                assert!(id < rows, "embedding id {id} out of range ({rows})");
                let base = id as usize * d;
                let vec = &data[base..base + d];
                for (o, &h) in row.iter_mut().zip(vec) {
                    *o += f16_to_f32(h);
                }
            }
        }
    }
}

/// The portable i8 kernel body. [`crate::simd`] recompiles this exact
/// code with AVX2/AVX-512 enabled, so it must stay free of
/// architecture-conditional logic.
#[inline(always)]
pub(crate) fn gather_pool_csr_i8_body(
    data: &[i8],
    scales: &[f32],
    rows: u32,
    indices: &[u32],
    offsets: &[u32],
    out: &mut Matrix,
) {
    let d = out.cols();
    let last = indices.len().saturating_sub(1);
    let prefetch = std::mem::size_of_val(data) > crate::simd::PREFETCH_MIN_BYTES;
    for input in 0..offsets.len() {
        let start = offsets[input] as usize;
        let end = offsets
            .get(input + 1)
            .map_or(indices.len(), |&o| o as usize);
        let row = out.row_mut(input);
        if prefetch {
            // Past-cache table: hide the random-access row and scale
            // misses behind the current row's work; pure hint, bits
            // unchanged (see `crate::simd`).
            for (j, &id) in indices[start..end].iter().enumerate() {
                assert!(id < rows, "embedding id {id} out of range ({rows})");
                let ahead =
                    indices[(start + j + crate::simd::PREFETCH_DISTANCE).min(last)] as usize;
                crate::simd::prefetch_row(data, ahead * d, d);
                crate::simd::prefetch_row(scales, ahead, 1);
                let base = id as usize * d;
                let scale = scales[id as usize];
                let vec = &data[base..base + d];
                for (o, &q) in row.iter_mut().zip(vec) {
                    *o += scale * q as f32;
                }
            }
        } else {
            // Cache-resident table: tight loop, kept hint-free.
            for &id in &indices[start..end] {
                assert!(id < rows, "embedding id {id} out of range ({rows})");
                let base = id as usize * d;
                let scale = scales[id as usize];
                let vec = &data[base..base + d];
                for (o, &q) in row.iter_mut().zip(vec) {
                    *o += scale * q as f32;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_round_trips_exactly_representable_values() {
        for v in [
            0.0f32,
            -0.0,
            1.0,
            -1.0,
            0.5,
            2.0,
            65504.0,
            -65504.0,
            0.099975586,
        ] {
            let h = f16_from_f32(v);
            assert_eq!(f16_to_f32(h), v, "{v}");
        }
        // Smallest half subnormal: 2^-24.
        let tiny = 2.0f32.powi(-24);
        assert_eq!(f16_to_f32(f16_from_f32(tiny)), tiny);
        // Largest half subnormal: 1023 * 2^-24.
        let sub = 1023.0 * 2.0f32.powi(-24);
        assert_eq!(f16_to_f32(f16_from_f32(sub)), sub);
    }

    #[test]
    fn f16_rounds_to_nearest_even() {
        // 1 + 2^-11 sits exactly between 1.0 and 1 + 2^-10: ties to even 1.0.
        assert_eq!(f16_to_f32(f16_from_f32(1.0 + 2.0f32.powi(-11))), 1.0);
        // 1 + 3·2^-11 ties between 1+2^-10 and 1+2^-9: even is 1+2^-9.
        assert_eq!(
            f16_to_f32(f16_from_f32(1.0 + 3.0 * 2.0f32.powi(-11))),
            1.0 + 2.0f32.powi(-9)
        );
        // Just above halfway rounds up.
        assert_eq!(
            f16_to_f32(f16_from_f32(1.0 + 2.0f32.powi(-11) + 2.0f32.powi(-20))),
            1.0 + 2.0f32.powi(-10)
        );
    }

    #[test]
    fn f16_saturates_and_underflows() {
        assert_eq!(f16_from_f32(1.0e6), 0x7c00); // +inf
        assert_eq!(f16_from_f32(-1.0e6), 0xfc00); // -inf
        assert_eq!(f16_from_f32(f32::INFINITY), 0x7c00);
        assert!(f16_to_f32(f16_from_f32(f32::NAN)).is_nan());
        // Below half the smallest subnormal flushes to signed zero.
        assert_eq!(f16_from_f32(2.0f32.powi(-26)), 0x0000);
        assert_eq!(f16_from_f32(-2.0f32.powi(-26)), 0x8000);
    }

    #[test]
    fn f16_error_is_within_half_ulp() {
        // Deterministic sweep over the table value range (-0.1, 0.1).
        for i in 0..4096 {
            let v = (i as f32 / 4096.0 - 0.5) * 0.2;
            let err = (f16_to_f32(f16_from_f32(v)) - v).abs();
            let bound = 2.0f32.powi(-11) * v.abs() + 2.0f32.powi(-24);
            assert!(err <= bound, "v={v} err={err} bound={bound}");
        }
    }

    #[test]
    fn i8_quantization_bounds_and_round_trip() {
        let dim = 8;
        let data: Vec<f32> = (0..64)
            .map(|i| ((i * 37 % 64) as f32 - 32.0) / 320.0)
            .collect();
        let (codes, scales) = quantize_i8_rows(&data, dim);
        assert_eq!(scales.len(), 8);
        let deq = dequantize_i8_rows(&codes, &scales, dim);
        for (r, row) in data.chunks_exact(dim).enumerate() {
            for (j, &v) in row.iter().enumerate() {
                let err = (deq[r * dim + j] - v).abs();
                assert!(
                    err <= 0.5001 * scales[r],
                    "row {r} col {j}: err {err} vs scale {}",
                    scales[r]
                );
            }
        }
    }

    #[test]
    fn i8_zero_rows_get_zero_scale() {
        let (codes, scales) = quantize_i8_rows(&[0.0; 6], 3);
        assert_eq!(scales, vec![0.0, 0.0]);
        assert!(codes.iter().all(|&c| c == 0));
        assert_eq!(dequantize_i8_rows(&codes, &scales, 3), vec![0.0; 6]);
    }

    #[test]
    fn i8_max_magnitude_maps_to_127() {
        let (codes, scales) = quantize_i8_rows(&[0.1, -0.1, 0.05, 0.0], 4);
        assert_eq!(codes[0], 127);
        assert_eq!(codes[1], -127);
        assert!((scales[0] - 0.1 / 127.0).abs() < 1e-9);
    }

    fn quantized_fixture() -> (Vec<f32>, u32, usize) {
        // 6 rows x 4 dims of varied magnitudes.
        let data: Vec<f32> = (0..24)
            .map(|i| ((i * 29 % 24) as f32 - 12.0) / 120.0)
            .collect();
        (data, 6, 4)
    }

    #[test]
    fn f16_gather_matches_dequantized_reference() {
        let (data, rows, dim) = quantized_fixture();
        let stored = quantize_f16(&data);
        let deq = dequantize_f16(&stored);
        let indices = [0u32, 5, 2, 2, 4, 1];
        let offsets = [0u32, 2, 2, 5];
        let mut got = Matrix::zeros(4, dim);
        gather_pool_csr_f16(&stored, rows, &indices, &offsets, &mut got);
        let mut want = Matrix::zeros(4, dim);
        crate::gather_pool_csr(&deq, rows, &indices, &offsets, &mut want);
        assert_eq!(got, want);
    }

    #[test]
    fn i8_gather_matches_dequantized_reference() {
        let (data, rows, dim) = quantized_fixture();
        let (codes, scales) = quantize_i8_rows(&data, dim);
        let deq = dequantize_i8_rows(&codes, &scales, dim);
        let indices = [3u32, 3, 0, 5, 1];
        let offsets = [0u32, 1, 4];
        let mut got = Matrix::zeros(3, dim);
        gather_pool_csr_i8(&codes, &scales, rows, &indices, &offsets, &mut got);
        let mut want = Matrix::zeros(3, dim);
        crate::gather_pool_csr(&deq, rows, &indices, &offsets, &mut want);
        assert_eq!(got, want);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn f16_gather_rejects_bad_ids() {
        let mut out = Matrix::zeros(1, 2);
        gather_pool_csr_f16(&[0u16; 8], 4, &[4], &[0], &mut out);
    }

    #[test]
    #[should_panic(expected = "one scale per table row")]
    fn i8_gather_rejects_missing_scales() {
        let mut out = Matrix::zeros(1, 2);
        gather_pool_csr_i8(&[0i8; 8], &[0.0; 3], 4, &[0], &[0], &mut out);
    }
}

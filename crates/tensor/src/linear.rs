//! A fully-connected layer.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{Activation, Matrix};

/// A dense layer `y = act(x W + b)` with weights `W: in_dim x out_dim`.
///
/// # Examples
///
/// ```
/// use er_tensor::{Activation, Linear, Matrix};
///
/// let layer = Linear::with_seed(4, 8, Activation::Relu, 1);
/// let x = Matrix::zeros(2, 4);
/// assert_eq!(layer.forward(&x).shape(), (2, 8));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    weights: Matrix,
    bias: Vec<f32>,
    activation: Activation,
}

impl Linear {
    /// Creates a layer with Xavier-uniform initialized weights from a seed.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn with_seed(in_dim: usize, out_dim: usize, activation: Activation, seed: u64) -> Self {
        assert!(
            in_dim > 0 && out_dim > 0,
            "layer dimensions must be non-zero"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let bound = (6.0 / (in_dim + out_dim) as f32).sqrt();
        let data = (0..in_dim * out_dim)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        // lint::allow(no_panic): data vector is exactly in_dim * out_dim elements by construction
        let weights = Matrix::from_vec(in_dim, out_dim, data).expect("sized by construction");
        Self {
            weights,
            bias: vec![0.0; out_dim],
            activation,
        }
    }

    /// Creates a layer from explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != weights.cols()`.
    pub fn from_parts(weights: Matrix, bias: Vec<f32>, activation: Activation) -> Self {
        assert_eq!(
            bias.len(),
            weights.cols(),
            "bias length must equal the layer's output width"
        );
        Self {
            weights,
            bias,
            activation,
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.weights.rows()
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.weights.cols()
    }

    /// The layer's activation.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    pub(crate) fn set_activation(&mut self, activation: Activation) {
        self.activation = activation;
    }

    /// Forward pass for a batch: `x` is `batch x in_dim`.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != in_dim()`.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        // The blocked kernel is bit-identical to the naive one, just faster.
        let z = x
            .matmul_blocked(&self.weights)
            // lint::allow(no_panic): documented panic surface of forward(): input width must match
            .unwrap_or_else(|e| panic!("linear layer shape mismatch: {e}"));
        let z = z
            .add_row_broadcast(&self.bias)
            // lint::allow(no_panic): bias length equals out_dim since construction
            .expect("bias width checked at construction");
        self.activation.apply(&z)
    }

    /// Forward pass writing into `out` (reshaped in place) instead of
    /// allocating: matmul into the reused buffer, then bias and activation
    /// applied in place. Each step is bit-identical to its allocating
    /// counterpart, so `forward_into` reproduces [`Linear::forward`]
    /// exactly; once `out`'s capacity is warm the call performs no
    /// allocation.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != in_dim()`.
    pub fn forward_into(&self, x: &Matrix, out: &mut Matrix) {
        x.matmul_blocked_into(&self.weights, out)
            // lint::allow(no_panic): documented panic surface of forward_into(): input width must match
            .unwrap_or_else(|e| panic!("linear layer shape mismatch: {e}"));
        out.add_row_broadcast_in_place(&self.bias)
            // lint::allow(no_panic): bias length equals out_dim since construction
            .expect("bias width checked at construction");
        self.activation.apply_in_place(out);
    }

    /// Number of parameters (weights + biases).
    pub fn param_count(&self) -> u64 {
        (self.weights.rows() * self.weights.cols() + self.bias.len()) as u64
    }

    /// Parameter bytes at `f32` precision.
    pub fn param_bytes(&self) -> u64 {
        self.param_count() * 4
    }

    /// FLOPs for a forward pass with the given batch size
    /// (multiply-accumulate counted as 2 FLOPs, plus bias and activation).
    pub fn flops(&self, batch: usize) -> u64 {
        let b = batch as u64;
        let (i, o) = (self.in_dim() as u64, self.out_dim() as u64);
        b * (2 * i * o + o + o * self.activation.flops_per_element())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape_and_determinism() {
        let l1 = Linear::with_seed(3, 5, Activation::Relu, 9);
        let l2 = Linear::with_seed(3, 5, Activation::Relu, 9);
        let x = Matrix::filled(2, 3, 0.5);
        let y1 = l1.forward(&x);
        let y2 = l2.forward(&x);
        assert_eq!(y1.shape(), (2, 5));
        assert_eq!(y1, y2);
    }

    #[test]
    fn known_small_case() {
        // y = x W + b with W = [[1,0],[0,2]], b = [10, 20].
        let w = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0]]).unwrap();
        let layer = Linear::from_parts(w, vec![10.0, 20.0], Activation::Identity);
        let x = Matrix::from_rows(&[&[3.0, 4.0]]).unwrap();
        let y = layer.forward(&x);
        assert_eq!(y.row(0), &[13.0, 28.0]);
    }

    #[test]
    fn relu_masks_negative_outputs() {
        let w = Matrix::from_rows(&[&[-1.0]]).unwrap();
        let layer = Linear::from_parts(w, vec![0.0], Activation::Relu);
        let x = Matrix::from_rows(&[&[5.0]]).unwrap();
        assert_eq!(layer.forward(&x).get(0, 0), 0.0);
    }

    #[test]
    fn param_and_flop_accounting() {
        let layer = Linear::with_seed(256, 128, Activation::Relu, 0);
        assert_eq!(layer.param_count(), 256 * 128 + 128);
        assert_eq!(layer.param_bytes(), (256 * 128 + 128) * 4);
        // batch 32: 32 * (2*256*128 + 128)
        assert_eq!(layer.flops(32), 32 * (2 * 256 * 128 + 128));
    }

    #[test]
    fn xavier_bound_is_respected() {
        let layer = Linear::with_seed(10, 10, Activation::Relu, 3);
        let bound = (6.0f32 / 20.0).sqrt();
        // Probe the weights through a forward pass of unit basis vectors.
        for i in 0..10 {
            let mut x = Matrix::zeros(1, 10);
            x.set(0, i, 1.0);
            let w = Linear::from_parts(layer.clone().weights, vec![0.0; 10], Activation::Identity);
            for &v in w.forward(&x).row(0) {
                assert!(v.abs() <= bound);
            }
        }
    }

    #[test]
    fn forward_into_is_bit_identical_to_forward() {
        let mut out = Matrix::zeros(1, 1);
        for act in [Activation::Relu, Activation::Sigmoid, Activation::Identity] {
            let layer = Linear::with_seed(7, 11, act, 17);
            let x = Matrix::filled(3, 7, -0.6);
            layer.forward_into(&x, &mut out);
            assert_eq!(out, layer.forward(&x), "{act:?}");
        }
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn forward_into_rejects_wrong_input_width() {
        let layer = Linear::with_seed(4, 2, Activation::Relu, 0);
        layer.forward_into(&Matrix::zeros(1, 3), &mut Matrix::zeros(1, 1));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn wrong_input_width_panics() {
        let layer = Linear::with_seed(4, 2, Activation::Relu, 0);
        layer.forward(&Matrix::zeros(1, 3));
    }

    #[test]
    #[should_panic(expected = "bias length")]
    fn mismatched_bias_panics() {
        Linear::from_parts(Matrix::zeros(2, 3), vec![0.0; 2], Activation::Relu);
    }
}

//! Activation functions used by DLRM MLP stacks.

use serde::{Deserialize, Serialize};

use crate::Matrix;

/// A pointwise non-linearity.
///
/// DLRM uses ReLU between hidden layers and a sigmoid on the final output
/// (the click-through probability).
///
/// # Examples
///
/// ```
/// use er_tensor::{Activation, Matrix};
///
/// let x = Matrix::from_rows(&[&[-1.0, 0.0, 2.0]]).unwrap();
/// let y = Activation::Relu.apply(&x);
/// assert_eq!(y.row(0), &[0.0, 0.0, 2.0]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Activation {
    /// `max(0, x)` — used between hidden layers.
    #[default]
    Relu,
    /// `1 / (1 + e^-x)` — used on the event-probability output.
    Sigmoid,
    /// Pass-through, for layers that apply no non-linearity.
    Identity,
}

impl Activation {
    /// Applies the activation to a scalar.
    pub fn eval(self, x: f32) -> f32 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Identity => x,
        }
    }

    /// Applies the activation element-wise to a matrix.
    pub fn apply(self, m: &Matrix) -> Matrix {
        match self {
            Activation::Identity => m.clone(),
            _ => m.map(|x| self.eval(x)),
        }
    }

    /// Applies the activation element-wise in place — the allocation-free
    /// form of [`Activation::apply`], bit-identical to it.
    pub fn apply_in_place(self, m: &mut Matrix) {
        if self == Activation::Identity {
            return;
        }
        for x in m.as_mut_slice() {
            *x = self.eval(*x);
        }
    }

    /// FLOPs charged per element: ReLU and Identity are free at the accounting
    /// granularity the paper uses; sigmoid costs a handful of operations.
    pub fn flops_per_element(self) -> u64 {
        match self {
            Activation::Relu | Activation::Identity => 0,
            Activation::Sigmoid => 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(Activation::Relu.eval(-5.0), 0.0);
        assert_eq!(Activation::Relu.eval(3.0), 3.0);
        assert_eq!(Activation::Relu.eval(0.0), 0.0);
    }

    #[test]
    fn sigmoid_is_bounded_and_centered() {
        let s = Activation::Sigmoid;
        assert!((s.eval(0.0) - 0.5).abs() < 1e-6);
        assert!(s.eval(10.0) > 0.999);
        assert!(s.eval(-10.0) < 0.001);
    }

    #[test]
    fn identity_is_noop() {
        let x = Matrix::from_rows(&[&[-2.0, 7.0]]).unwrap();
        assert_eq!(Activation::Identity.apply(&x), x);
    }

    #[test]
    fn apply_matches_eval() {
        let x = Matrix::from_rows(&[&[-1.0, 1.0]]).unwrap();
        let y = Activation::Sigmoid.apply(&x);
        assert_eq!(y.get(0, 0), Activation::Sigmoid.eval(-1.0));
        assert_eq!(y.get(0, 1), Activation::Sigmoid.eval(1.0));
    }

    #[test]
    fn apply_in_place_matches_apply() {
        let x = Matrix::from_rows(&[&[-2.0, 0.0, 3.5]]).unwrap();
        for act in [Activation::Relu, Activation::Sigmoid, Activation::Identity] {
            let mut m = x.clone();
            act.apply_in_place(&mut m);
            assert_eq!(m, act.apply(&x), "{act:?}");
        }
    }

    #[test]
    fn flop_accounting() {
        assert_eq!(Activation::Relu.flops_per_element(), 0);
        assert_eq!(Activation::Sigmoid.flops_per_element(), 4);
    }

    #[test]
    fn default_is_relu() {
        assert_eq!(Activation::default(), Activation::Relu);
    }
}

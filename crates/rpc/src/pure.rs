//! Pure balancer transition cores.
//!
//! Each function here is the single source of truth for one balancer
//! decision: the stateful [`crate::Balancer`] implementations delegate to
//! these, and the `er-mc` control-plane model replays the same functions
//! over enumerated states — so the model cannot drift from the
//! implementation. All functions are deterministic over their inputs (no
//! clocks, no RNG, no ambient state); [`crate::PowerOfTwoChoices`] passes
//! its two samples *in*, which is exactly what lets the model checker
//! branch over them nondeterministically.

/// One round-robin step over `n` replicas: returns `(next_cursor, choice)`.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn round_robin_step(next: usize, n: usize) -> (usize, usize) {
    assert!(n > 0, "cannot balance over zero replicas");
    let choice = next % n;
    ((next + 1) % n, choice)
}

/// Reconciles outstanding counters with a replica set of size `n`: dead
/// replicas' counters are discarded (their in-flight requests died with the
/// pods and will never complete), and fresh replicas start at zero charge.
pub fn sync_outstanding(outstanding: &mut Vec<u32>, n: usize) {
    outstanding.truncate(n);
    if outstanding.len() < n {
        outstanding.resize(n, 0);
    }
}

/// Least-outstanding choice over counters already synced to the replica
/// count: the lowest-charged replica, ties breaking toward lower IDs.
/// Charges the winner.
///
/// # Panics
///
/// Panics if `outstanding` is empty.
#[must_use]
pub fn pick_least(outstanding: &mut [u32]) -> usize {
    assert!(!outstanding.is_empty(), "cannot balance over zero replicas");
    // Scan for the minimum directly — ties break toward lower IDs, and
    // unlike `min_by_key` there is no empty-range Option to unwrap.
    let mut choice = 0;
    for i in 1..outstanding.len() {
        if outstanding[i] < outstanding[choice] {
            choice = i;
        }
    }
    outstanding[choice] += 1;
    choice
}

/// Power-of-two choice between sampled replicas `a` and `b`: the
/// less-charged of the two, ties keeping `a`. Charges the winner.
///
/// # Panics
///
/// Panics if `a` or `b` is out of range.
#[must_use]
pub fn pick_between(outstanding: &mut [u32], a: usize, b: usize) -> usize {
    let choice = if outstanding[a] <= outstanding[b] {
        a
    } else {
        b
    };
    outstanding[choice] += 1;
    choice
}

/// A completion for `replica`: uncharges it. Completions from dead or
/// unknown replicas are ignored — their counters were discarded at
/// scale-in and must not go negative or resurrect.
pub fn complete(outstanding: &mut [u32], replica: usize) {
    if let Some(c) = outstanding.get_mut(replica) {
        *c = c.saturating_sub(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_step_cycles() {
        let mut next = 0;
        let mut picks = Vec::new();
        for _ in 0..5 {
            let (n2, c) = round_robin_step(next, 3);
            next = n2;
            picks.push(c);
        }
        assert_eq!(picks, vec![0, 1, 2, 0, 1]);
    }

    #[test]
    fn sync_truncates_then_zero_fills() {
        let mut c = vec![3, 1, 4, 1, 5];
        sync_outstanding(&mut c, 2);
        assert_eq!(c, vec![3, 1]);
        sync_outstanding(&mut c, 4);
        assert_eq!(c, vec![3, 1, 0, 0]);
    }

    #[test]
    fn pick_least_breaks_ties_low_and_charges() {
        let mut c = vec![1, 0, 0];
        assert_eq!(pick_least(&mut c), 1);
        assert_eq!(c, vec![1, 1, 0]);
    }

    #[test]
    fn pick_between_prefers_a_on_ties() {
        let mut c = vec![2, 2];
        assert_eq!(pick_between(&mut c, 1, 0), 1);
        assert_eq!(c, vec![2, 3]);
    }

    #[test]
    fn complete_saturates_and_ignores_unknown() {
        let mut c = vec![0, 1];
        complete(&mut c, 0); // already zero: stays zero
        complete(&mut c, 1);
        complete(&mut c, 9); // unknown: ignored
        assert_eq!(c, vec![0, 0]);
    }
}

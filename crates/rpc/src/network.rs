//! Network latency/bandwidth model.

use serde::{Deserialize, Serialize};

/// First-order model of one network hop: a fixed per-message cost (protocol
/// processing, serialization, kernel traversal) plus a size-proportional
/// transfer term.
///
/// # Examples
///
/// ```
/// use er_rpc::NetworkProfile;
///
/// let net = NetworkProfile::ten_gbps();
/// // A 1.25 MB message at 10 Gbps takes ~1 ms of wire time plus base cost.
/// let secs = net.transfer_secs(1_250_000);
/// assert!((secs - (net.base_latency_secs() + 0.001)).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkProfile {
    base_latency_secs: f64,
    bytes_per_sec: f64,
}

impl NetworkProfile {
    /// Creates a profile from a per-message base latency and link bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is non-positive or not finite.
    pub fn new(base_latency_secs: f64, gigabits_per_sec: f64) -> Self {
        assert!(
            base_latency_secs.is_finite() && base_latency_secs > 0.0,
            "base latency must be positive, got {base_latency_secs}"
        );
        assert!(
            gigabits_per_sec.is_finite() && gigabits_per_sec > 0.0,
            "bandwidth must be positive, got {gigabits_per_sec}"
        );
        Self {
            base_latency_secs,
            bytes_per_sec: gigabits_per_sec * 1e9 / 8.0,
        }
    }

    /// The paper's CPU-only cluster fabric: 10 Gbps (Section V-A). The base
    /// latency folds in gRPC serialization/deserialization and Linkerd
    /// proxying, sized so a dense-shard query with full embedding fan-out
    /// adds tens of milliseconds, matching the reported ~31 ms overhead.
    pub fn ten_gbps() -> Self {
        Self::new(2.0e-3, 10.0)
    }

    /// The paper's GKE fabric: 32 Gbps. The reported overhead there is
    /// higher (~60 ms) because more, faster shard replicas mean wider
    /// fan-outs per query; the per-hop base cost in a managed cloud network
    /// is also higher.
    pub fn thirty_two_gbps() -> Self {
        Self::new(3.5e-3, 32.0)
    }

    /// Per-message fixed cost in seconds.
    pub fn base_latency_secs(&self) -> f64 {
        self.base_latency_secs
    }

    /// Link bandwidth in bytes per second.
    pub fn bytes_per_sec(&self) -> f64 {
        self.bytes_per_sec
    }

    /// Time to deliver a message of `bytes` over one hop.
    pub fn transfer_secs(&self, bytes: u64) -> f64 {
        self.base_latency_secs + bytes as f64 / self.bytes_per_sec
    }

    /// Round-trip time for a request/response pair.
    pub fn round_trip_secs(&self, request_bytes: u64, response_bytes: u64) -> f64 {
        self.transfer_secs(request_bytes) + self.transfer_secs(response_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_combines_base_and_wire_time() {
        let net = NetworkProfile::new(0.001, 8.0); // 1 GB/s
        let secs = net.transfer_secs(1_000_000); // 1 MB -> 1 ms wire
        assert!((secs - 0.002).abs() < 1e-9);
    }

    #[test]
    fn zero_bytes_still_pays_base_latency() {
        let net = NetworkProfile::ten_gbps();
        assert_eq!(net.transfer_secs(0), net.base_latency_secs());
    }

    #[test]
    fn round_trip_is_sum_of_hops() {
        let net = NetworkProfile::ten_gbps();
        let rt = net.round_trip_secs(1000, 2000);
        assert!((rt - (net.transfer_secs(1000) + net.transfer_secs(2000))).abs() < 1e-12);
    }

    #[test]
    fn faster_link_moves_bytes_faster() {
        let slow = NetworkProfile::new(0.001, 10.0);
        let fast = NetworkProfile::new(0.001, 32.0);
        let bytes = 10_000_000;
        assert!(fast.transfer_secs(bytes) < slow.transfer_secs(bytes));
    }

    #[test]
    fn presets_have_expected_bandwidth() {
        assert!((NetworkProfile::ten_gbps().bytes_per_sec() - 1.25e9).abs() < 1.0);
        assert!((NetworkProfile::thirty_two_gbps().bytes_per_sec() - 4e9).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_panics() {
        NetworkProfile::new(0.001, 0.0);
    }

    #[test]
    #[should_panic(expected = "base latency")]
    fn zero_base_latency_panics() {
        NetworkProfile::new(0.0, 1.0);
    }
}

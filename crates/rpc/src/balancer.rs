//! Replica selection — the Linkerd stand-in.

/// Error from [`Balancer::try_pick`]: there are no replicas to pick from.
///
/// A service scaled to zero cannot route; callers that can observe an empty
/// replica set mid-scale-down should use [`Balancer::try_pick`] and queue or
/// shed the request instead of crashing the routing thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BalanceError;

impl std::fmt::Display for BalanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("cannot balance over zero replicas")
    }
}

impl std::error::Error for BalanceError {}

/// Chooses which replica of a microservice receives the next request.
///
/// Implementations are deliberately minimal: the simulator calls
/// [`Balancer::pick`] with the current replica count (replicas are numbered
/// `0..n`, and the set can grow or shrink between calls as the autoscaler
/// acts) and reports completions so queue-aware policies can track load.
pub trait Balancer {
    /// Picks a replica in `0..n`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `n == 0`; use [`Balancer::try_pick`] where
    /// an empty replica set is a reachable state rather than a bug.
    fn pick(&mut self, n: usize) -> usize;

    /// Fallible [`Balancer::pick`]: returns [`BalanceError`] instead of
    /// panicking when `n == 0`.
    ///
    /// # Errors
    ///
    /// Returns [`BalanceError`] if `n == 0`.
    fn try_pick(&mut self, n: usize) -> Result<usize, BalanceError> {
        if n == 0 {
            return Err(BalanceError);
        }
        Ok(self.pick(n))
    }

    /// Reports that a request previously routed to `replica` completed.
    /// The default implementation ignores it.
    fn on_complete(&mut self, replica: usize) {
        let _ = replica;
    }

    /// Reports that the replica set was resized to `n` (scale-in or
    /// scale-out). Load-aware balancers reconcile their counters here so a
    /// scale-in followed by a scale-out *without an intervening pick* does
    /// not leave fresh replicas charged for dead pods' in-flight requests —
    /// the churn bug er-mc's counter-accuracy property caught. The default
    /// implementation ignores it (stateless policies need no sync).
    fn on_scale(&mut self, n: usize) {
        let _ = n;
    }
}

/// Round-robin selection, Linkerd's default behaviour for basic services.
///
/// # Examples
///
/// ```
/// use er_rpc::{Balancer, RoundRobin};
///
/// let mut rr = RoundRobin::new();
/// assert_eq!(rr.pick(3), 0);
/// assert_eq!(rr.pick(3), 1);
/// assert_eq!(rr.pick(3), 2);
/// assert_eq!(rr.pick(3), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// Creates a balancer starting at replica 0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Balancer for RoundRobin {
    fn pick(&mut self, n: usize) -> usize {
        let (next, choice) = crate::pure::round_robin_step(self.next, n);
        self.next = next;
        choice
    }
}

/// Picks the replica with the fewest outstanding (picked but not completed)
/// requests, breaking ties toward lower IDs. Approximates Linkerd's EWMA
/// load-aware balancing without the time constant.
///
/// # Examples
///
/// ```
/// use er_rpc::{Balancer, LeastOutstanding};
///
/// let mut lb = LeastOutstanding::new();
/// assert_eq!(lb.pick(2), 0);
/// assert_eq!(lb.pick(2), 1); // 0 is busy
/// lb.on_complete(0);
/// assert_eq!(lb.pick(2), 0); // 0 is free again
/// ```
#[derive(Debug, Clone, Default)]
pub struct LeastOutstanding {
    outstanding: Vec<u32>,
}

impl LeastOutstanding {
    /// Creates a balancer with no outstanding requests.
    pub fn new() -> Self {
        Self::default()
    }

    /// Outstanding requests currently charged to `replica`.
    pub fn outstanding(&self, replica: usize) -> u32 {
        self.outstanding.get(replica).copied().unwrap_or(0)
    }
}

impl Balancer for LeastOutstanding {
    fn pick(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot balance over zero replicas");
        // Re-sync on pick as well as on_scale: hardening for callers that
        // resize the replica set without reporting it.
        crate::pure::sync_outstanding(&mut self.outstanding, n);
        crate::pure::pick_least(&mut self.outstanding)
    }

    fn on_complete(&mut self, replica: usize) {
        crate::pure::complete(&mut self.outstanding, replica);
    }

    fn on_scale(&mut self, n: usize) {
        crate::pure::sync_outstanding(&mut self.outstanding, n);
    }
}

/// Power-of-two-choices: sample two random replicas and pick the less
/// loaded one. The classic result (Mitzenmacher) is that two choices get
/// exponentially close to least-loaded at a fraction of the bookkeeping —
/// this is the strategy production proxies like Linkerd actually deploy
/// at scale.
///
/// # Examples
///
/// ```
/// use er_rpc::{Balancer, PowerOfTwoChoices};
/// use er_sim::SimRng;
///
/// let mut p2c = PowerOfTwoChoices::new(SimRng::seed_from(7));
/// let pick = p2c.pick(8);
/// assert!(pick < 8);
/// ```
#[derive(Debug, Clone)]
pub struct PowerOfTwoChoices {
    rng: er_sim::SimRng,
    outstanding: Vec<u32>,
}

impl PowerOfTwoChoices {
    /// Creates a balancer driven by a deterministic RNG.
    pub fn new(rng: er_sim::SimRng) -> Self {
        Self {
            rng,
            outstanding: Vec::new(),
        }
    }

    /// Outstanding requests currently charged to `replica`.
    pub fn outstanding(&self, replica: usize) -> u32 {
        self.outstanding.get(replica).copied().unwrap_or(0)
    }
}

impl Balancer for PowerOfTwoChoices {
    fn pick(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot balance over zero replicas");
        // Same pick-time hardening as LeastOutstanding. The RNG samples are
        // the only impure input; the choice itself is the pure core, which
        // er-mc drives with *enumerated* samples instead of drawn ones.
        crate::pure::sync_outstanding(&mut self.outstanding, n);
        let a = self.rng.index(n);
        let b = self.rng.index(n);
        crate::pure::pick_between(&mut self.outstanding, a, b)
    }

    fn on_complete(&mut self, replica: usize) {
        crate::pure::complete(&mut self.outstanding, replica);
    }

    fn on_scale(&mut self, n: usize) {
        crate::pure::sync_outstanding(&mut self.outstanding, n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles_evenly() {
        let mut rr = RoundRobin::new();
        let mut counts = [0u32; 4];
        for _ in 0..400 {
            counts[rr.pick(4)] += 1;
        }
        assert_eq!(counts, [100; 4]);
    }

    #[test]
    fn round_robin_adapts_to_scale_out() {
        let mut rr = RoundRobin::new();
        rr.pick(1);
        rr.pick(1);
        // New replica appears: rotation now covers it.
        let mut seen = [false; 2];
        for _ in 0..4 {
            seen[rr.pick(2)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn round_robin_handles_scale_in() {
        let mut rr = RoundRobin::new();
        for _ in 0..5 {
            rr.pick(8);
        }
        // Shrink to 2 replicas: picks stay in range.
        for _ in 0..10 {
            assert!(rr.pick(2) < 2);
        }
    }

    #[test]
    fn least_outstanding_prefers_idle_replicas() {
        let mut lb = LeastOutstanding::new();
        assert_eq!(lb.pick(3), 0);
        assert_eq!(lb.pick(3), 1);
        assert_eq!(lb.pick(3), 2);
        lb.on_complete(1);
        assert_eq!(lb.pick(3), 1);
        assert_eq!(lb.outstanding(1), 1);
        assert_eq!(lb.outstanding(0), 1);
    }

    #[test]
    fn least_outstanding_balances_unequal_service_times() {
        let mut lb = LeastOutstanding::new();
        // Replica 0 never completes; everything else should flow to 1.
        let first = lb.pick(2);
        assert_eq!(first, 0);
        for _ in 0..10 {
            let r = lb.pick(2);
            assert_eq!(r, 1);
            lb.on_complete(1);
        }
    }

    #[test]
    fn scale_in_discards_stale_outstanding_charge() {
        let mut lb = LeastOutstanding::new();
        for _ in 0..8 {
            lb.pick(8); // every replica carries one in-flight request
        }
        // The autoscaler kills replicas 2..8 with requests in flight —
        // those completions will never arrive. The next pick truncates
        // their counters.
        assert!(lb.pick(2) < 2);
        assert_eq!(lb.outstanding(5), 0);
        lb.on_complete(5); // late completion from a dead pod: ignored
        assert_eq!(lb.outstanding(5), 0);
        // Scale back out: the revived replica 2 starts at zero charge and
        // wins over the still-busy survivors instead of being starved by
        // phantom load.
        assert_eq!(lb.pick(8), 2);
    }

    #[test]
    fn p2c_scale_in_discards_stale_outstanding_charge() {
        use er_sim::SimRng;
        let mut p2c = PowerOfTwoChoices::new(SimRng::seed_from(17));
        for _ in 0..16 {
            p2c.pick(8);
        }
        assert!(p2c.pick(2) < 2);
        for dead in 2..8 {
            assert_eq!(p2c.outstanding(dead), 0, "replica {dead}");
        }
        p2c.on_complete(7); // late completion from a dead pod: ignored
        assert_eq!(p2c.outstanding(7), 0);
    }

    #[test]
    fn completion_for_unknown_replica_is_ignored() {
        let mut lb = LeastOutstanding::new();
        lb.on_complete(99); // no panic
        assert_eq!(lb.pick(1), 0);
    }

    #[test]
    fn p2c_spreads_load_roughly_evenly() {
        use er_sim::SimRng;
        let mut p2c = PowerOfTwoChoices::new(SimRng::seed_from(11));
        let n = 8;
        let mut counts = vec![0u32; n];
        for _ in 0..8000 {
            let r = p2c.pick(n);
            counts[r] += 1;
            p2c.on_complete(r);
        }
        let min = *counts.iter().min().unwrap() as f64;
        let max = *counts.iter().max().unwrap() as f64;
        assert!(max / min < 1.5, "counts too skewed: {counts:?}");
    }

    #[test]
    fn p2c_avoids_the_hotspot() {
        use er_sim::SimRng;
        let mut p2c = PowerOfTwoChoices::new(SimRng::seed_from(13));
        // Replica 0 never completes its work; p2c should route around it
        // whenever its sample offers an alternative.
        let mut to_zero = 0;
        for _ in 0..2000 {
            let r = p2c.pick(4);
            if r == 0 {
                to_zero += 1;
            } else {
                p2c.on_complete(r);
            }
        }
        // Only the (1/16) double-sample-of-zero cases can route there once
        // it is clearly the most loaded.
        assert!(to_zero < 400, "hotspot received {to_zero} requests");
        assert!(p2c.outstanding(0) as usize == to_zero);
    }

    #[test]
    fn p2c_is_deterministic_per_seed() {
        use er_sim::SimRng;
        let picks = |seed| {
            let mut p = PowerOfTwoChoices::new(SimRng::seed_from(seed));
            (0..50).map(|_| p.pick(6)).collect::<Vec<_>>()
        };
        assert_eq!(picks(3), picks(3));
    }

    #[test]
    #[should_panic(expected = "zero replicas")]
    fn p2c_zero_replicas_panics() {
        use er_sim::SimRng;
        PowerOfTwoChoices::new(SimRng::seed_from(0)).pick(0);
    }

    #[test]
    #[should_panic(expected = "zero replicas")]
    fn round_robin_zero_replicas_panics() {
        RoundRobin::new().pick(0);
    }

    #[test]
    #[should_panic(expected = "zero replicas")]
    fn least_outstanding_zero_replicas_panics() {
        LeastOutstanding::new().pick(0);
    }

    #[test]
    fn try_pick_errors_instead_of_panicking() {
        assert_eq!(RoundRobin::new().try_pick(0), Err(BalanceError));
        assert_eq!(LeastOutstanding::new().try_pick(0), Err(BalanceError));
        use er_sim::SimRng;
        let mut p2c = PowerOfTwoChoices::new(SimRng::seed_from(5));
        assert_eq!(p2c.try_pick(0), Err(BalanceError));
    }

    #[test]
    fn try_pick_matches_pick_when_replicas_exist() {
        let mut a = RoundRobin::new();
        let mut b = RoundRobin::new();
        for _ in 0..7 {
            assert_eq!(a.try_pick(3).ok(), Some(b.pick(3)));
        }
        assert_eq!(
            BalanceError.to_string(),
            "cannot balance over zero replicas"
        );
    }

    #[test]
    fn try_pick_error_leaves_balancer_state_intact() {
        // A replica set draining to zero mid-scale-down must not corrupt
        // the rotation: the failed pick consumes nothing.
        let mut rr = RoundRobin::new();
        assert_eq!(rr.try_pick(3), Ok(0));
        assert_eq!(rr.try_pick(0), Err(BalanceError));
        assert_eq!(rr.try_pick(3), Ok(1));

        let mut lb = LeastOutstanding::new();
        assert_eq!(lb.try_pick(2), Ok(0));
        assert_eq!(lb.try_pick(0), Err(BalanceError));
        // Replica 0 is still marked busy from the successful pick.
        assert_eq!(lb.try_pick(2), Ok(1));
    }
}

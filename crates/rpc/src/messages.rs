//! Payload sizing for the DLRM serving protocol.
//!
//! The wire format mirrors what the paper's gRPC services exchange: the
//! dense shard sends each embedding shard a bucketized `(index array,
//! offset array)` pair and receives pooled `f32` vectors back
//! (Section IV-A, "Life of an inference query").

/// Fixed per-message protocol overhead (gRPC/HTTP2 framing, metadata).
pub const HEADER_BYTES: u64 = 128;

/// Size of an embedding gather request carrying `num_indices` index IDs and
/// `num_offsets` offsets (both `u32`).
pub fn embedding_request_bytes(num_indices: u64, num_offsets: u64) -> u64 {
    HEADER_BYTES + 4 * num_indices + 4 * num_offsets
}

/// Size of an embedding gather response carrying one pooled `dim`-wide
/// `f32` vector per batch input.
pub fn embedding_response_bytes(batch: u64, dim: u64) -> u64 {
    HEADER_BYTES + 4 * batch * dim
}

/// Size of the user-facing query request: dense features plus all sparse
/// index/offset arrays.
pub fn query_request_bytes(batch: u64, num_dense: u64, total_indices: u64, num_tables: u64) -> u64 {
    HEADER_BYTES + 4 * batch * num_dense + 4 * total_indices + 4 * batch * num_tables
}

/// Size of the user-facing response: one probability per input.
pub fn query_response_bytes(batch: u64) -> u64 {
    HEADER_BYTES + 4 * batch
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_counts_both_arrays() {
        assert_eq!(embedding_request_bytes(100, 32), HEADER_BYTES + 400 + 128);
    }

    #[test]
    fn response_scales_with_batch_and_dim() {
        assert_eq!(embedding_response_bytes(32, 32), HEADER_BYTES + 4 * 32 * 32);
        assert_eq!(
            embedding_response_bytes(64, 32) - HEADER_BYTES,
            2 * (embedding_response_bytes(32, 32) - HEADER_BYTES)
        );
    }

    #[test]
    fn empty_messages_still_have_headers() {
        assert_eq!(embedding_request_bytes(0, 0), HEADER_BYTES);
        assert_eq!(query_response_bytes(0), HEADER_BYTES);
    }

    #[test]
    fn query_request_matches_hand_computation() {
        // batch 32, 13 dense, 10 tables x 128 gathers.
        let b = query_request_bytes(32, 13, 32 * 128 * 10, 10);
        assert_eq!(b, HEADER_BYTES + 4 * 32 * 13 + 4 * 40960 + 4 * 320);
    }
}

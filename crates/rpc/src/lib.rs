//! Simulated RPC fabric for the ElasticRec reproduction.
//!
//! In the paper, model shards communicate over C++ gRPC and queries are load
//! balanced by Linkerd (Section V-B). The experiments depend on two
//! properties of that stack: the *latency* an RPC hop adds (the paper
//! measures ~31 ms extra end-to-end latency on the CPU cluster and ~60 ms on
//! GKE) and the *spreading* of requests over shard replicas. This crate
//! models both: a [`NetworkProfile`] turns message sizes into transfer
//! latencies, [`messages`] sizes the DLRM request/response payloads, and
//! [`RoundRobin`] / [`LeastOutstanding`] balancers pick replicas.
//!
//! # Examples
//!
//! ```
//! use er_rpc::{messages, NetworkProfile};
//!
//! let net = NetworkProfile::ten_gbps();
//! let req = messages::embedding_request_bytes(32 * 128, 32);
//! let secs = net.transfer_secs(req);
//! assert!(secs > 0.0 && secs < 0.01);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations, unreachable_pub)]

mod balancer;
pub mod messages;
mod network;
pub mod pure;

pub use balancer::{BalanceError, Balancer, LeastOutstanding, PowerOfTwoChoices, RoundRobin};
pub use network::NetworkProfile;

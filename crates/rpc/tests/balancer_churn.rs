//! Regression tests for the replica-churn stale-counter bug, committed as
//! the minimized counterexample `er-mc` found for its counter-accuracy
//! property (P3: balancer outstanding counters must equal the true
//! in-flight count of every live replica).
//!
//! The bug: `LeastOutstanding`/`PowerOfTwoChoices` reconciled their
//! counters with the replica set only *inside* `pick`. A scale-in followed
//! by a scale-out with no pick in between therefore left the revived
//! replica IDs charged for dead pods' in-flight requests — fresh pods were
//! starved while phantom load "drained". The fix is the
//! `Balancer::on_scale` hook: the control plane reports every resize and
//! the balancer reconciles immediately.

use er_rpc::{Balancer, LeastOutstanding, PowerOfTwoChoices};
use er_sim::SimRng;

/// The minimized er-mc trace, replayed verbatim:
///
/// 1. `Route×6` over 3 replicas — every replica carries 2 in-flight.
/// 2. `Complete(0)`, `Complete(1)` — counters `[1, 1, 2]`.
/// 3. `Scale(2)` — replica 2 dies with 2 requests in flight.
/// 4. `Scale(3)` — a *fresh* replica 2 starts, before any pick happens.
/// 5. `Route` — must go to the idle fresh replica, not a loaded survivor.
///
/// Before the fix, step 5 picked replica 0: the fresh pod inherited the
/// dead pod's charge of 2 and was avoided until enough phantom load was
/// "completed" at it.
#[test]
fn scale_in_then_out_without_pick_starts_fresh_replicas_at_zero() {
    let mut lb = LeastOutstanding::new();
    for _ in 0..6 {
        lb.pick(3);
    }
    lb.on_complete(0);
    lb.on_complete(1);
    assert_eq!(
        (lb.outstanding(0), lb.outstanding(1), lb.outstanding(2)),
        (1, 1, 2)
    );

    lb.on_scale(2); // autoscaler kills replica 2 mid-flight
    lb.on_scale(3); // ...and immediately revives a fresh replica 2

    assert_eq!(
        lb.outstanding(2),
        0,
        "fresh replica must not inherit a dead pod's in-flight charge"
    );
    assert_eq!(
        lb.pick(3),
        2,
        "the idle fresh replica must win over loaded survivors"
    );
}

/// Same trace through PowerOfTwoChoices: whatever pair the RNG samples,
/// the fresh replica's counter must be zero after the churn.
#[test]
fn p2c_scale_in_then_out_without_pick_clears_dead_counters() {
    let mut p2c = PowerOfTwoChoices::new(SimRng::seed_from(42));
    for _ in 0..6 {
        p2c.pick(3);
    }
    p2c.on_scale(2);
    p2c.on_scale(3);
    assert_eq!(p2c.outstanding(2), 0);
}

/// Completions arriving after a scale-in for requests that died with
/// their pods must never drive a counter negative — the "no negative /
/// stale counters" half of P3. With the counters already reconciled by
/// `on_scale`, every late completion lands on a zero counter and
/// saturates there.
#[test]
fn late_completions_after_churn_cannot_underflow_counters() {
    let mut lb = LeastOutstanding::new();
    for _ in 0..3 {
        lb.pick(3);
    }
    lb.on_scale(1);
    // Two late completions for pods killed above: both absorbed at zero.
    lb.on_complete(1);
    lb.on_complete(2);
    lb.on_scale(3);
    assert_eq!(
        (lb.outstanding(0), lb.outstanding(1), lb.outstanding(2)),
        (1, 0, 0),
        "survivor keeps its charge; revived IDs start clean"
    );
}

/// RoundRobin carries no per-replica state; on_scale is a no-op and the
/// rotation stays in range across churn.
#[test]
fn round_robin_on_scale_is_harmless() {
    let mut rr = er_rpc::RoundRobin::new();
    for _ in 0..5 {
        rr.pick(4);
    }
    rr.on_scale(2);
    for _ in 0..4 {
        assert!(rr.pick(2) < 2);
    }
}

//! Bounded-error property tests for the quantized gather paths.
//!
//! Random tables (dims 8–256, per-row magnitudes spanning four orders of
//! magnitude) and random CSR lookups: for each quantized kind the fused
//! `gather_pool_into` output must (a) stay within the analytic per-element
//! error bound of the f32 reference ([`EmbeddingTable::quant_error_bound`])
//! and (b) match the kind's own scalar reference (`gather_pool`)
//! bit-for-bit — the quantized analogue of the f32 paths' bit-exactness
//! contract.

use er_model::{EmbeddingTable, TableLookup};
use er_tensor::Matrix;
use er_units::ElemKind;
use proptest::prelude::*;

/// SplitMix64 — deterministic value soup without pulling in a rand dep.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A `rows x dim` table whose row magnitudes sweep 1e-3..=1e1, so i8
/// scales and f16 exponents vary widely across rows.
fn build_table(rows: u32, dim: u32, seed: u64) -> EmbeddingTable {
    let row_vecs: Vec<Vec<f32>> = (0..rows)
        .map(|r| {
            let mag = 10.0f32.powi((mix(seed ^ (r as u64) << 17) % 5) as i32 - 3);
            (0..dim)
                .map(|c| {
                    let h = mix(seed ^ ((r as u64) << 32) ^ c as u64);
                    ((h % 2001) as f32 - 1000.0) / 1000.0 * mag
                })
                .collect()
        })
        .collect();
    EmbeddingTable::from_rows(&row_vecs)
}

/// CSR arrays from run-length seeds (empty bags included).
fn build_lookup(runs: &[(u8, u32)], rows: u32) -> (Vec<u32>, Vec<u32>) {
    let mut indices = Vec::new();
    let mut offsets = Vec::new();
    for &(len, ix_seed) in runs {
        offsets.push(indices.len() as u32);
        for k in 0..len {
            indices.push((mix(ix_seed as u64 ^ (k as u64) << 40) % rows as u64) as u32);
        }
    }
    (indices, offsets)
}

proptest! {
    /// Per-element quantization error of the fused i8/f16 gathers stays
    /// under the analytic bound, across dims 8–256 and wildly mixed row
    /// magnitudes.
    #[test]
    fn quantized_gather_error_within_analytic_bound(
        dim in 8u32..257,
        rows in 1u32..48,
        seed in 0u64..u64::MAX,
        runs in proptest::collection::vec((0u8..6, 0u32..u32::MAX), 1..8),
    ) {
        let table = build_table(rows, dim, seed);
        let (indices, offsets) = build_lookup(&runs, rows);
        let mut reference = Matrix::zeros(1, 1);
        table.gather_pool_into(&indices, &offsets, &mut reference);
        for kind in [ElemKind::F16, ElemKind::I8] {
            let q = table.quantized(kind);
            let mut got = Matrix::zeros(1, 1);
            q.gather_pool_into(&indices, &offsets, &mut got);
            let bound = table.quant_error_bound(kind, &indices, &offsets);
            for input in 0..offsets.len() {
                for j in 0..dim as usize {
                    let err = (got.row(input)[j] - reference.row(input)[j]).abs();
                    prop_assert!(
                        err <= bound.row(input)[j],
                        "{kind} dim {dim} input {input} col {j}: err {err} > bound {}",
                        bound.row(input)[j]
                    );
                }
            }
        }
    }

    /// The fused quantized kernels match their scalar reference
    /// (`gather_pool`) bit-for-bit — dequantization order is part of the
    /// kernel contract, just like f32 accumulation order.
    #[test]
    fn quantized_fused_gather_is_bit_identical_to_reference(
        dim in 8u32..257,
        rows in 1u32..48,
        seed in 0u64..u64::MAX,
        runs in proptest::collection::vec((0u8..6, 0u32..u32::MAX), 1..6),
    ) {
        let table = build_table(rows, dim, seed);
        let (indices, offsets) = build_lookup(&runs, rows);
        let lookup = TableLookup::new(indices, offsets).unwrap();
        for kind in [ElemKind::F32, ElemKind::F16, ElemKind::I8] {
            let q = table.quantized(kind);
            prop_assert_eq!(q.gather_pool(&lookup), q.gather_pool_fused(&lookup));
        }
    }
}

//! The end-to-end DLRM model.

use er_tensor::{Activation, Matrix, Mlp};

use crate::{dot_interaction, CostBreakdown, EmbeddingTable, ModelConfig, QueryBatch};

/// A fully materialized DLRM: bottom MLP, embedding tables, dot interaction,
/// and top MLP ending in a sigmoid CTR head (paper Figure 1).
///
/// Used for functional correctness — in particular to verify that
/// ElasticRec's sharded serving path (partition + bucketize + distributed
/// gather + merge) produces bit-identical results to this monolithic
/// reference.
///
/// # Examples
///
/// ```
/// use er_model::{configs, Dlrm, QueryGenerator};
/// use er_sim::SimRng;
///
/// let cfg = configs::rm1().scaled_tables(1000);
/// let model = Dlrm::with_seed(&cfg, 7);
/// let query = QueryGenerator::new(&cfg).generate(&mut SimRng::seed_from(1));
/// let probs = model.forward(&query);
/// assert_eq!(probs.shape(), (32, 1));
/// ```
#[derive(Debug, Clone)]
pub struct Dlrm {
    config: ModelConfig,
    bottom: Mlp,
    top: Mlp,
    tables: Vec<EmbeddingTable>,
}

impl Dlrm {
    /// Builds the model with seeded random parameters.
    ///
    /// Tables are materialized, so shrink `config` with
    /// [`ModelConfig::scaled_tables`] before building at test scale.
    ///
    /// # Panics
    ///
    /// Panics if a table is too large to materialize (`rows > u32::MAX`).
    pub fn with_seed(config: &ModelConfig, seed: u64) -> Self {
        let bottom = Mlp::with_seed(
            config.num_dense_features,
            &config.bottom_mlp,
            Activation::Relu,
            seed,
        );
        let top = Mlp::with_seed(
            config.interaction_dim(),
            &config.top_mlp,
            Activation::Relu,
            seed.wrapping_add(1000),
        )
        .with_output_activation(Activation::Sigmoid);
        let tables = config
            .tables
            .iter()
            .enumerate()
            .map(|(i, t)| {
                assert!(
                    t.rows <= u32::MAX as u64,
                    "table {i} too large to materialize ({} rows)",
                    t.rows
                );
                EmbeddingTable::with_seed(t.rows as u32, t.dim, seed.wrapping_add(2000 + i as u64))
            })
            .collect();
        Self {
            config: config.clone(),
            bottom,
            top,
            tables,
        }
    }

    /// The model's configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// The materialized embedding tables, in table order.
    pub fn tables(&self) -> &[EmbeddingTable] {
        &self.tables
    }

    /// The bottom MLP.
    pub fn bottom_mlp(&self) -> &Mlp {
        &self.bottom
    }

    /// The top MLP (sigmoid head).
    pub fn top_mlp(&self) -> &Mlp {
        &self.top
    }

    /// Runs the dense *bottom* stage only: what the paper's dense DNN shard
    /// computes while embedding RPCs are in flight.
    pub fn forward_bottom(&self, dense: &Matrix) -> Matrix {
        self.bottom.forward(dense)
    }

    /// Runs the sparse stage only: gather + pool for each table.
    pub fn forward_sparse(&self, query: &QueryBatch) -> Vec<Matrix> {
        assert_eq!(
            query.lookups.len(),
            self.tables.len(),
            "query addresses {} tables but the model has {}",
            query.lookups.len(),
            self.tables.len()
        );
        self.tables
            .iter()
            .zip(&query.lookups)
            .map(|(t, l)| t.gather_pool_fused(l))
            .collect()
    }

    /// Runs the sparse stage table-parallel across up to `threads` worker
    /// threads. Bit-identical to [`Dlrm::forward_sparse`] at every thread
    /// count (tables are independent).
    ///
    /// # Panics
    ///
    /// Panics if the query addresses a different number of tables than the
    /// model has.
    pub fn forward_sparse_parallel(&self, query: &QueryBatch, threads: usize) -> Vec<Matrix> {
        assert_eq!(
            query.lookups.len(),
            self.tables.len(),
            "query addresses {} tables but the model has {}",
            query.lookups.len(),
            self.tables.len()
        );
        crate::gather_pool_all(&self.tables, &query.lookups, threads)
    }

    /// Runs the dense *top* stage: interaction + top MLP, producing the
    /// event probability per input.
    pub fn forward_top(&self, bottom_out: &Matrix, pooled: &[Matrix]) -> Matrix {
        let interacted = dot_interaction(bottom_out, pooled);
        self.top.forward(&interacted)
    }

    /// Full monolithic forward pass.
    pub fn forward(&self, query: &QueryBatch) -> Matrix {
        let bottom_out = self.forward_bottom(&query.dense);
        let pooled = self.forward_sparse(query);
        self.forward_top(&bottom_out, &pooled)
    }

    /// The cost breakdown for this model's configuration.
    pub fn cost_breakdown(&self) -> CostBreakdown {
        CostBreakdown::for_config(&self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{configs, QueryGenerator};
    use er_sim::SimRng;

    fn small_cfg() -> crate::ModelConfig {
        configs::rm1().scaled_tables(500).with_num_tables(3)
    }

    #[test]
    fn forward_produces_probabilities() {
        let cfg = small_cfg();
        let model = Dlrm::with_seed(&cfg, 3);
        let q = QueryGenerator::new(&cfg).generate(&mut SimRng::seed_from(2));
        let out = model.forward(&q);
        assert_eq!(out.shape(), (32, 1));
        for r in 0..32 {
            let p = out.get(r, 0);
            assert!((0.0..=1.0).contains(&p), "row {r}: {p}");
        }
    }

    #[test]
    fn staged_forward_equals_monolithic() {
        let cfg = small_cfg();
        let model = Dlrm::with_seed(&cfg, 9);
        let q = QueryGenerator::new(&cfg).generate(&mut SimRng::seed_from(4));
        let staged = {
            let b = model.forward_bottom(&q.dense);
            let s = model.forward_sparse(&q);
            model.forward_top(&b, &s)
        };
        assert_eq!(staged, model.forward(&q));
    }

    #[test]
    fn same_seed_same_model() {
        let cfg = small_cfg();
        let a = Dlrm::with_seed(&cfg, 11);
        let b = Dlrm::with_seed(&cfg, 11);
        let q = QueryGenerator::new(&cfg).generate(&mut SimRng::seed_from(5));
        assert_eq!(a.forward(&q), b.forward(&q));
    }

    #[test]
    fn different_queries_give_different_outputs() {
        let cfg = small_cfg();
        let model = Dlrm::with_seed(&cfg, 13);
        let gen = QueryGenerator::new(&cfg);
        let mut rng = SimRng::seed_from(6);
        let q1 = gen.generate(&mut rng);
        let q2 = gen.generate(&mut rng);
        assert_ne!(model.forward(&q1), model.forward(&q2));
    }

    #[test]
    fn parallel_sparse_stage_matches_sequential() {
        let cfg = small_cfg();
        let model = Dlrm::with_seed(&cfg, 21);
        let q = QueryGenerator::new(&cfg).generate(&mut SimRng::seed_from(7));
        let seq = model.forward_sparse(&q);
        for threads in [1, 2, 8] {
            assert_eq!(seq, model.forward_sparse_parallel(&q, threads));
        }
    }

    #[test]
    fn accessors_expose_structure() {
        let cfg = small_cfg();
        let model = Dlrm::with_seed(&cfg, 1);
        assert_eq!(model.tables().len(), 3);
        assert_eq!(model.bottom_mlp().out_dim(), 32);
        assert_eq!(model.top_mlp().out_dim(), 1);
        assert_eq!(model.config().name, "RM1");
        assert!(model.cost_breakdown().dense_flops_fraction() > 0.5);
    }

    #[test]
    #[should_panic(expected = "tables")]
    fn wrong_table_count_panics() {
        let cfg = small_cfg();
        let model = Dlrm::with_seed(&cfg, 1);
        let other = configs::rm1().scaled_tables(500).with_num_tables(2);
        let q = QueryGenerator::new(&other).generate(&mut SimRng::seed_from(1));
        model.forward_sparse(&q);
    }
}

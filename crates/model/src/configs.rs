//! Model and workload configurations from the paper (Tables I and II).

use er_units::ElemKind;
use serde::{Deserialize, Serialize};

/// Configuration of one embedding table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EmbeddingTableConfig {
    /// Number of embedding vectors (rows).
    pub rows: u64,
    /// Embedding vector dimension (columns).
    pub dim: u32,
    /// Average number of vectors gathered per input (the pooling factor,
    /// "number of embedding gathers" in Table II).
    pub pooling: u32,
    /// Storage precision of the table's elements (f32 in the paper's
    /// workloads; quantized kinds shrink `bytes`/`vector_bytes` and flow
    /// into the partitioner's cost model, making quantization a placement
    /// decision).
    pub elem: ElemKind,
}

impl EmbeddingTableConfig {
    /// Bytes needed to store this table at its element precision,
    /// including per-row i8 scales — `rows x` [`ElemKind::row_bytes`].
    pub fn bytes(&self) -> u64 {
        self.rows * self.elem.row_bytes(self.dim).whole()
    }

    /// Stored bytes of one embedding vector (with its i8 scale, if any).
    pub fn vector_bytes(&self) -> u64 {
        self.elem.row_bytes(self.dim).whole()
    }

    /// This table stored at a different element precision.
    pub fn with_elem(mut self, elem: ElemKind) -> Self {
        self.elem = elem;
        self
    }
}

/// A complete DLRM workload configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Workload name (e.g. `"RM1"`).
    pub name: String,
    /// Number of continuous (dense) input features.
    pub num_dense_features: usize,
    /// Bottom MLP hidden widths, e.g. `[256, 128, 32]`.
    pub bottom_mlp: Vec<usize>,
    /// Top MLP hidden widths ending in 1, e.g. `[256, 64, 1]`.
    pub top_mlp: Vec<usize>,
    /// Embedding tables (all identical in the paper's workloads).
    pub tables: Vec<EmbeddingTableConfig>,
    /// Locality metric `P`: fraction of accesses covered by the hottest 10%
    /// of each table.
    pub locality_p: f64,
    /// Query batch size (number of items ranked per query; 32 in Section
    /// V-C).
    pub batch_size: usize,
}

impl ModelConfig {
    /// Embedding dimension shared by all tables.
    ///
    /// # Panics
    ///
    /// Panics if the model has no tables.
    pub fn embedding_dim(&self) -> u32 {
        // lint::allow(no_panic): documented panic: configs are built with at least one table
        self.tables.first().expect("model has tables").dim
    }

    /// Total embedding storage across tables, in bytes.
    pub fn embedding_bytes(&self) -> u64 {
        self.tables.iter().map(EmbeddingTableConfig::bytes).sum()
    }

    /// Width of the feature-interaction output feeding the top MLP: the
    /// bottom-MLP output concatenated with all pairwise dots among the
    /// `(1 + num_tables)` latent vectors.
    pub fn interaction_dim(&self) -> usize {
        // lint::allow(no_panic): documented panic: configs are built with a non-empty bottom MLP
        let d = *self.bottom_mlp.last().expect("bottom MLP is non-empty");
        let n = self.tables.len() + 1;
        d + n * (n - 1) / 2
    }

    /// Returns a copy with every table shrunk to `rows` rows — used to run
    /// the functional model at test scale while keeping the architecture.
    pub fn scaled_tables(mut self, rows: u64) -> Self {
        for t in &mut self.tables {
            t.rows = rows;
        }
        self
    }

    /// Returns a copy with a different table count (microbenchmark knob,
    /// Table I row "Table (N)").
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or the model has no tables to clone.
    pub fn with_num_tables(mut self, n: usize) -> Self {
        assert!(n > 0, "a DLRM needs at least one embedding table");
        // lint::allow(no_panic): documented panic: configs are built with at least one table
        let proto = *self.tables.first().expect("model has tables");
        self.tables = vec![proto; n];
        self
    }

    /// Returns a copy with a different locality `P` (Table I row
    /// "Locality").
    pub fn with_locality(mut self, p: f64) -> Self {
        self.locality_p = p;
        self
    }

    /// Returns a copy with every embedding table stored at `elem`
    /// precision — the model-level quantization knob the planner prices.
    pub fn with_elem_kind(mut self, elem: ElemKind) -> Self {
        for t in &mut self.tables {
            t.elem = elem;
        }
        self
    }
}

/// MLP sizing for the Table I microbenchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MlpSize {
    /// Bottom 64-32-32, top 64-32-1.
    Light,
    /// Bottom 256-128-32, top 256-64-1 (the RM1 default).
    Medium,
    /// Bottom 512-256-32, top 512-64-1.
    Heavy,
}

impl MlpSize {
    /// The bottom-MLP widths for this size.
    pub fn bottom(&self) -> Vec<usize> {
        match self {
            MlpSize::Light => vec![64, 32, 32],
            MlpSize::Medium => vec![256, 128, 32],
            MlpSize::Heavy => vec![512, 256, 32],
        }
    }

    /// The top-MLP widths for this size.
    pub fn top(&self) -> Vec<usize> {
        match self {
            MlpSize::Light => vec![64, 32, 1],
            MlpSize::Medium => vec![256, 64, 1],
            MlpSize::Heavy => vec![512, 64, 1],
        }
    }

    /// All sizes in Table I order.
    pub const ALL: [MlpSize; 3] = [MlpSize::Light, MlpSize::Medium, MlpSize::Heavy];
}

impl std::fmt::Display for MlpSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            MlpSize::Light => "Light",
            MlpSize::Medium => "Medium",
            MlpSize::Heavy => "Heavy",
        };
        f.write_str(s)
    }
}

/// The Table I microbenchmark parameter grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MicrobenchGrid {
    /// MLP layer sizes swept in Figure 12(a).
    pub mlp_sizes: Vec<MlpSize>,
    /// Locality values swept in Figure 12(b).
    pub localities: Vec<f64>,
    /// Table counts swept in Figure 12(c).
    pub table_counts: Vec<usize>,
    /// Manual shard counts swept in Figure 12(d).
    pub shard_counts: Vec<usize>,
}

impl Default for MicrobenchGrid {
    /// Exactly the values in Table I.
    fn default() -> Self {
        Self {
            mlp_sizes: MlpSize::ALL.to_vec(),
            localities: vec![0.10, 0.50, 0.90],
            table_counts: vec![1, 4, 10, 16],
            shard_counts: vec![1, 2, 4, 8, 16],
        }
    }
}

/// Number of dense features; the paper inherits DLRM's Criteo default.
pub const NUM_DENSE_FEATURES: usize = 13;
/// Paper query batch size (Section V-C).
pub const BATCH_SIZE: usize = 32;
/// Paper table size for the RM workloads (Table II).
pub const RM_TABLE_ROWS: u64 = 20_000_000;

fn rm(name: &str, bottom: &[usize], top: &[usize], num_tables: usize, pooling: u32) -> ModelConfig {
    ModelConfig {
        name: name.to_owned(),
        num_dense_features: NUM_DENSE_FEATURES,
        bottom_mlp: bottom.to_vec(),
        top_mlp: top.to_vec(),
        tables: vec![
            EmbeddingTableConfig {
                rows: RM_TABLE_ROWS,
                dim: 32,
                pooling,
                elem: ElemKind::F32,
            };
            num_tables
        ],
        locality_p: 0.90,
        batch_size: BATCH_SIZE,
    }
}

/// Table II RM1: bottom 256-128-32, top 256-64-1, 10 tables, 128 gathers.
pub fn rm1() -> ModelConfig {
    rm("RM1", &[256, 128, 32], &[256, 64, 1], 10, 128)
}

/// Table II RM2: bottom 256-128-32, top 512-128-1, 32 tables, 128 gathers.
pub fn rm2() -> ModelConfig {
    rm("RM2", &[256, 128, 32], &[512, 128, 1], 32, 128)
}

/// Table II RM3: bottom 2560-512-32, top 512-128-1, 10 tables, 32 gathers.
pub fn rm3() -> ModelConfig {
    rm("RM3", &[2560, 512, 32], &[512, 128, 1], 10, 32)
}

/// All three state-of-the-art workloads in Table II order.
pub fn all_rms() -> Vec<ModelConfig> {
    vec![rm1(), rm2(), rm3()]
}

/// The Table I microbenchmark base model: RM1 with a configurable MLP size.
pub fn microbench(mlp: MlpSize) -> ModelConfig {
    let mut cfg = rm1();
    cfg.name = format!("micro-{mlp}");
    cfg.bottom_mlp = mlp.bottom();
    cfg.top_mlp = mlp.top();
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_two_values_are_faithful() {
        let m1 = rm1();
        assert_eq!(m1.bottom_mlp, vec![256, 128, 32]);
        assert_eq!(m1.top_mlp, vec![256, 64, 1]);
        assert_eq!(m1.tables.len(), 10);
        assert_eq!(m1.tables[0].pooling, 128);
        assert_eq!(m1.tables[0].rows, 20_000_000);
        assert_eq!(m1.tables[0].dim, 32);
        assert_eq!(m1.locality_p, 0.90);

        let m2 = rm2();
        assert_eq!(m2.top_mlp, vec![512, 128, 1]);
        assert_eq!(m2.tables.len(), 32);

        let m3 = rm3();
        assert_eq!(m3.bottom_mlp, vec![2560, 512, 32]);
        assert_eq!(m3.tables[0].pooling, 32);
    }

    #[test]
    fn embedding_bytes_match_hand_computation() {
        // RM1: 10 tables x 20M x 32 dims x 4 bytes = 25.6 GB.
        assert_eq!(rm1().embedding_bytes(), 10 * 20_000_000 * 32 * 4);
        assert_eq!(rm1().tables[0].vector_bytes(), 128);
    }

    #[test]
    fn elem_kind_shrinks_config_bytes() {
        let t = rm1().tables[0];
        assert_eq!(t.elem, ElemKind::F32);
        assert_eq!(t.with_elem(ElemKind::F16).vector_bytes(), 64);
        // i8: 32 code bytes + one 4-byte scale per row.
        assert_eq!(t.with_elem(ElemKind::I8).vector_bytes(), 36);
        assert_eq!(t.with_elem(ElemKind::I8).bytes(), RM_TABLE_ROWS * (32 + 4));
        let m = rm1().with_elem_kind(ElemKind::I8);
        assert!(m.tables.iter().all(|t| t.elem == ElemKind::I8));
        // 0.1 + 0.9 dense/sparse ratio unchanged: quantization only moves
        // the sparse byte count, never the architecture.
        assert_eq!(m.tables.len(), 10);
    }

    #[test]
    fn interaction_dim_counts_pairwise_dots() {
        // RM1: bottom out 32, 10 tables -> 11 vectors -> 55 dots -> 87.
        assert_eq!(rm1().interaction_dim(), 32 + 55);
        // RM2: 33 vectors -> 528 dots.
        assert_eq!(rm2().interaction_dim(), 32 + 33 * 32 / 2);
    }

    #[test]
    fn scaled_tables_only_changes_rows() {
        let s = rm1().scaled_tables(1000);
        assert_eq!(s.tables[0].rows, 1000);
        assert_eq!(s.tables.len(), 10);
        assert_eq!(s.tables[0].pooling, 128);
    }

    #[test]
    fn with_num_tables_replicates_prototype() {
        let m = rm1().with_num_tables(4);
        assert_eq!(m.tables.len(), 4);
        assert!(m.tables.iter().all(|t| t.rows == RM_TABLE_ROWS));
    }

    #[test]
    fn with_locality_overrides_p() {
        assert_eq!(rm1().with_locality(0.5).locality_p, 0.5);
    }

    #[test]
    fn microbench_sizes_match_table_one() {
        assert_eq!(MlpSize::Light.bottom(), vec![64, 32, 32]);
        assert_eq!(MlpSize::Heavy.top(), vec![512, 64, 1]);
        let grid = MicrobenchGrid::default();
        assert_eq!(grid.localities, vec![0.10, 0.50, 0.90]);
        assert_eq!(grid.table_counts, vec![1, 4, 10, 16]);
        assert_eq!(grid.shard_counts, vec![1, 2, 4, 8, 16]);
        let m = microbench(MlpSize::Heavy);
        assert_eq!(m.bottom_mlp, vec![512, 256, 32]);
    }

    #[test]
    #[should_panic(expected = "at least one embedding table")]
    fn zero_tables_panics() {
        rm1().with_num_tables(0);
    }
}

//! DLRM feature interaction: pairwise dot products of latent vectors.

use er_tensor::Matrix;

/// Combines the bottom-MLP output with the pooled embedding vectors via
/// pairwise dot products (DLRM's `dot` interaction), concatenating the
/// dense vector with the upper-triangular dot values.
///
/// Inputs: `dense` is `batch x d`; each element of `pooled` is `batch x d`
/// (one pooled vector per embedding table). Output width is
/// `d + (n+1)n/2` for `n = pooled.len()`.
///
/// # Panics
///
/// Panics if any pooled matrix disagrees with `dense` in shape.
///
/// # Examples
///
/// ```
/// use er_model::dot_interaction;
/// use er_tensor::Matrix;
///
/// let dense = Matrix::filled(2, 4, 1.0);
/// let emb = vec![Matrix::filled(2, 4, 2.0)];
/// let out = dot_interaction(&dense, &emb);
/// assert_eq!(out.shape(), (2, 4 + 1)); // d=4 plus one pairwise dot
/// ```
pub fn dot_interaction(dense: &Matrix, pooled: &[Matrix]) -> Matrix {
    let mut out = Matrix::zeros(1, 1);
    dot_interaction_into(dense, pooled, &mut out);
    out
}

/// [`dot_interaction`] into a caller-owned matrix (reshaped in place), with
/// no per-row scratch: each pair's operands are addressed directly instead
/// of staging the latent vectors in a temporary list. Every dot product
/// runs in the same order on the same slices, so the result is
/// bit-identical to [`dot_interaction`]; once `out`'s capacity is warm the
/// call performs no allocation.
///
/// # Panics
///
/// Panics if any pooled matrix disagrees with `dense` in shape.
pub fn dot_interaction_into(dense: &Matrix, pooled: &[Matrix], out: &mut Matrix) {
    let (batch, d) = dense.shape();
    for (t, p) in pooled.iter().enumerate() {
        assert_eq!(
            p.shape(),
            (batch, d),
            "pooled matrix {t} has shape {:?}, expected {:?}",
            p.shape(),
            (batch, d)
        );
    }
    let n = pooled.len() + 1;
    let pairs = n * (n - 1) / 2;
    out.reshape_zeroed(batch, d + pairs);
    for b in 0..batch {
        let row = out.row_mut(b);
        row[..d].copy_from_slice(dense.row(b));
        let mut k = d;
        for i in 0..n {
            // Latent vector 0 is the dense row; vector i > 0 is table i-1's
            // pooled row. j > i >= 0 means the right operand is always a
            // pooled row.
            let vi = if i == 0 {
                dense.row(b)
            } else {
                pooled[i - 1].row(b)
            };
            for j in (i + 1)..n {
                row[k] = er_tensor::reduce::dot_f32(vi, pooled[j - 1].row(b));
                k += 1;
            }
        }
    }
}

/// FLOPs of the dot interaction for a batch: each of the `(n+1)n/2` pairs
/// costs `2d` operations per row.
pub(crate) fn interaction_flops(batch: usize, d: usize, num_tables: usize) -> u64 {
    let n = num_tables as u64 + 1;
    let pairs = n * (n - 1) / 2;
    batch as u64 * pairs * 2 * d as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_width_is_dense_plus_pairs() {
        let dense = Matrix::zeros(3, 8);
        let pooled = vec![Matrix::zeros(3, 8); 4];
        let out = dot_interaction(&dense, &pooled);
        // n = 5 vectors -> 10 pairs.
        assert_eq!(out.shape(), (3, 8 + 10));
    }

    #[test]
    fn dots_match_hand_computation() {
        let dense = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        let e1 = Matrix::from_rows(&[&[3.0, 4.0]]).unwrap();
        let e2 = Matrix::from_rows(&[&[-1.0, 1.0]]).unwrap();
        let out = dot_interaction(&dense, &[e1, e2]);
        // Layout: [dense | d·e1, d·e2, e1·e2]
        assert_eq!(out.row(0)[..2], [1.0, 2.0]);
        assert_eq!(out.row(0)[2], 11.0); // 1*3 + 2*4
        assert_eq!(out.row(0)[3], 1.0); // -1 + 2
        assert_eq!(out.row(0)[4], 1.0); // -3 + 4
    }

    #[test]
    fn no_tables_passes_dense_through() {
        let dense = Matrix::from_rows(&[&[5.0, 6.0]]).unwrap();
        let out = dot_interaction(&dense, &[]);
        assert_eq!(out, dense);
    }

    #[test]
    fn rows_are_independent() {
        let dense = Matrix::from_rows(&[&[1.0], &[2.0]]).unwrap();
        let e = Matrix::from_rows(&[&[10.0], &[20.0]]).unwrap();
        let out = dot_interaction(&dense, &[e]);
        assert_eq!(out.row(0), &[1.0, 10.0]);
        assert_eq!(out.row(1), &[2.0, 40.0]);
    }

    #[test]
    fn into_variant_matches_with_dirty_reused_output() {
        let mut out = Matrix::filled(9, 9, -3.0);
        for tables in [0usize, 1, 3] {
            let dense = Matrix::from_rows(&[&[1.0, 2.0, -0.5], &[0.25, -4.0, 3.0]]).unwrap();
            let pooled: Vec<Matrix> = (0..tables)
                .map(|t| Matrix::filled(2, 3, t as f32 - 0.5))
                .collect();
            dot_interaction_into(&dense, &pooled, &mut out);
            assert_eq!(out, dot_interaction(&dense, &pooled), "tables={tables}");
        }
    }

    #[test]
    fn flop_accounting_counts_pairs() {
        // batch 2, d 8, 3 tables -> n=4 -> 6 pairs -> 2*6*2*8 = 192.
        assert_eq!(interaction_flops(2, 8, 3), 192);
        assert_eq!(interaction_flops(1, 4, 0), 0);
    }

    #[test]
    #[should_panic(expected = "expected")]
    fn mismatched_pooled_shape_panics() {
        let dense = Matrix::zeros(2, 4);
        dot_interaction(&dense, &[Matrix::zeros(2, 5)]);
    }
}

//! DLRM — the deep learning recommendation model served by ElasticRec.
//!
//! The paper deploys Meta's DLRM (Figure 1): dense continuous features pass
//! through a *bottom MLP*; sparse categorical features index *embedding
//! tables* whose gathered vectors are *pooled*; a pairwise-dot *feature
//! interaction* combines both; and a *top MLP* produces the click
//! probability. This crate implements the full functional model on
//! [`er_tensor`] kernels plus exact FLOP/byte accounting, and carries the
//! paper's workload configurations (Tables I and II).
//!
//! # Examples
//!
//! ```
//! use er_model::{configs, Dlrm};
//!
//! let cfg = configs::rm1().scaled_tables(1_000); // shrink tables for a demo
//! let model = Dlrm::with_seed(&cfg, 42);
//! assert_eq!(model.config().name, "RM1");
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations, unreachable_pub)]

pub mod configs;
mod dlrm;
mod embedding;
mod flops;
mod interaction;
mod query;

pub use configs::{EmbeddingTableConfig, MicrobenchGrid, MlpSize, ModelConfig};
pub use dlrm::Dlrm;
pub use embedding::{gather_pool_all, EmbeddingTable};
pub use flops::{dense_phase_flops, CostBreakdown, LayerCosts};
pub use interaction::{dot_interaction, dot_interaction_into};
pub use query::{AccessCounter, LookupError, QueryBatch, QueryGenerator, TableLookup};

//! Inference queries and their sparse lookup structure.

use er_sim::SimRng;
use er_tensor::Matrix;
use serde::{Deserialize, Serialize};

use crate::ModelConfig;
use er_distribution::{LocalityTarget, ZipfDistribution};

/// The `(index array, offset array)` pair addressing one embedding table —
/// exactly the layout in the paper's Figure 11.
///
/// `offsets[i]` is the position in `indices` where input `i`'s IDs begin;
/// input `i` uses `indices[offsets[i]..offsets[i+1]]` (the last input runs
/// to the end).
///
/// # Examples
///
/// ```
/// use er_model::TableLookup;
///
/// // Figure 11(a): input 0 gathers IDs {0, 5}, input 1 gathers {2, 6, 9}.
/// let l = TableLookup::new(vec![0, 5, 2, 6, 9], vec![0, 2]).unwrap();
/// assert_eq!(l.indices_for(0), &[0, 5]);
/// assert_eq!(l.indices_for(1), &[2, 6, 9]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableLookup {
    indices: Vec<u32>,
    offsets: Vec<u32>,
}

/// Error building a [`TableLookup`] from inconsistent arrays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LookupError(String);

impl std::fmt::Display for LookupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for LookupError {}

impl TableLookup {
    /// Builds a lookup from raw arrays.
    ///
    /// # Errors
    ///
    /// Returns [`LookupError`] if `offsets` is empty, does not start at 0,
    /// is not non-decreasing, or points past the index array.
    pub fn new(indices: Vec<u32>, offsets: Vec<u32>) -> Result<Self, LookupError> {
        if offsets.is_empty() {
            return Err(LookupError("offset array must be non-empty".into()));
        }
        if offsets[0] != 0 {
            return Err(LookupError(format!(
                "offset array must start at 0, got {}",
                offsets[0]
            )));
        }
        for w in offsets.windows(2) {
            if w[1] < w[0] {
                return Err(LookupError(format!(
                    "offset array must be non-decreasing ({} after {})",
                    w[1], w[0]
                )));
            }
        }
        let last = offsets[offsets.len() - 1];
        if last as usize > indices.len() {
            return Err(LookupError(format!(
                "last offset {last} exceeds index array length {}",
                indices.len()
            )));
        }
        Ok(Self { indices, offsets })
    }

    /// The flat index array.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// The offset array.
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// Number of inputs (batch rows) addressed by this lookup.
    pub fn num_inputs(&self) -> usize {
        self.offsets.len()
    }

    /// Total number of gathers across all inputs.
    pub fn num_gathers(&self) -> usize {
        self.indices.len()
    }

    /// The IDs gathered by input `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_inputs()`.
    pub fn indices_for(&self, i: usize) -> &[u32] {
        let start = self.offsets[i] as usize;
        let end = self
            .offsets
            .get(i + 1)
            .map_or(self.indices.len(), |&o| o as usize);
        &self.indices[start..end]
    }

    /// Applies `f` to every index, preserving structure — used for the
    /// hotness-sort remap.
    pub fn map_indices(&self, f: impl Fn(u32) -> u32) -> TableLookup {
        TableLookup {
            indices: self.indices.iter().map(|&i| f(i)).collect(),
            offsets: self.offsets.clone(),
        }
    }
}

/// One batched inference query: a dense input matrix plus one
/// [`TableLookup`] per embedding table.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryBatch {
    /// Dense features: `batch x num_dense_features`.
    pub dense: Matrix,
    /// One lookup per embedding table, in table order.
    pub lookups: Vec<TableLookup>,
}

impl QueryBatch {
    /// Batch size (number of items ranked).
    pub fn batch_size(&self) -> usize {
        self.dense.rows()
    }

    /// Total embedding gathers across all tables.
    pub fn total_gathers(&self) -> usize {
        self.lookups.iter().map(TableLookup::num_gathers).sum()
    }
}

/// Generates random queries that follow a model's configured access
/// distribution, reproducing the paper's query model (Section V-C): batch
/// size 32 and per-table Zipf-distributed index IDs with locality `P`.
#[derive(Debug, Clone)]
pub struct QueryGenerator {
    num_dense: usize,
    batch: usize,
    tables: Vec<TableSampler>,
}

#[derive(Debug, Clone)]
struct TableSampler {
    rows: u64,
    pooling: u32,
    dist: ZipfDistribution,
}

impl QueryGenerator {
    /// Builds a generator for `config`. IDs are drawn *in hotness order*
    /// (rank 1 = hottest); combined with a hotness-sorted table this means
    /// low IDs are hot, matching the paper's sorted-table serving path.
    pub fn new(config: &ModelConfig) -> Self {
        let tables = config
            .tables
            .iter()
            .map(|t| TableSampler {
                rows: t.rows,
                pooling: t.pooling,
                dist: LocalityTarget::new(config.locality_p).solve(t.rows),
            })
            .collect();
        Self {
            num_dense: config.num_dense_features,
            batch: config.batch_size,
            tables,
        }
    }

    /// Draws one batched query.
    pub fn generate(&self, rng: &mut SimRng) -> QueryBatch {
        let mut dense = Matrix::zeros(self.batch, self.num_dense);
        for r in 0..self.batch {
            for c in 0..self.num_dense {
                dense.set(r, c, rng.uniform() as f32);
            }
        }
        let lookups = self
            .tables
            .iter()
            .map(|t| {
                let mut indices = Vec::with_capacity(self.batch * t.pooling as usize);
                let mut offsets = Vec::with_capacity(self.batch);
                for _ in 0..self.batch {
                    offsets.push(indices.len() as u32);
                    for _ in 0..t.pooling {
                        // quantile returns a 1-based rank; IDs are 0-based.
                        let rank = t.dist.quantile(rng.uniform());
                        indices.push((rank - 1).min(t.rows - 1) as u32);
                    }
                }
                // lint::allow(no_panic): generator pushes offsets in ascending order ending within indices
                TableLookup::new(indices, offsets).expect("generator builds valid offsets")
            })
            .collect();
        QueryBatch { dense, lookups }
    }

    /// The access distribution used for table `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn distribution(&self, t: usize) -> &ZipfDistribution {
        &self.tables[t].dist
    }
}

/// Per-table access-count history — the production mechanism the paper
/// relies on for hotness information ("keeping a history of each
/// embedding's access count within a given time period", Section IV-B).
///
/// Feed it served queries; its counts drive the hotness sort and the
/// empirical CDF behind the partitioner.
///
/// # Examples
///
/// ```
/// use er_model::{configs, AccessCounter, QueryGenerator};
/// use er_sim::SimRng;
///
/// let cfg = configs::rm1().scaled_tables(1000).with_num_tables(2);
/// let mut counter = AccessCounter::new(&cfg);
/// let q = QueryGenerator::new(&cfg).generate(&mut SimRng::seed_from(1));
/// counter.observe(&q);
/// assert_eq!(counter.total_accesses(0), q.lookups[0].num_gathers() as u64);
/// ```
#[derive(Debug, Clone)]
pub struct AccessCounter {
    counts: Vec<Vec<u64>>,
}

impl AccessCounter {
    /// Creates zeroed counters matching a model's tables.
    ///
    /// # Panics
    ///
    /// Panics if any table is too large to materialize counters for.
    pub fn new(config: &ModelConfig) -> Self {
        Self {
            counts: config
                .tables
                .iter()
                .map(|t| {
                    assert!(
                        t.rows <= (1 << 32),
                        "table too large for in-memory counters"
                    );
                    vec![0u64; t.rows as usize]
                })
                .collect(),
        }
    }

    /// Records every gather in a query.
    ///
    /// # Panics
    ///
    /// Panics if the query addresses a different number of tables or an
    /// index is out of range.
    pub fn observe(&mut self, query: &QueryBatch) {
        assert_eq!(
            query.lookups.len(),
            self.counts.len(),
            "query addresses {} tables, counter has {}",
            query.lookups.len(),
            self.counts.len()
        );
        for (table, lookup) in self.counts.iter_mut().zip(&query.lookups) {
            for &id in lookup.indices() {
                table[id as usize] += 1;
            }
        }
    }

    /// The per-entry counts of one table.
    ///
    /// # Panics
    ///
    /// Panics if `table` is out of range.
    pub fn counts(&self, table: usize) -> &[u64] {
        &self.counts[table]
    }

    /// Total recorded accesses to one table.
    ///
    /// # Panics
    ///
    /// Panics if `table` is out of range.
    pub fn total_accesses(&self, table: usize) -> u64 {
        self.counts[table].iter().sum()
    }

    /// Consumes the counter, returning all tables' counts.
    pub fn into_counts(self) -> Vec<Vec<u64>> {
        self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs;

    #[test]
    fn figure_eleven_layout() {
        let l = TableLookup::new(vec![0, 5, 2, 6, 9], vec![0, 2]).unwrap();
        assert_eq!(l.num_inputs(), 2);
        assert_eq!(l.num_gathers(), 5);
        assert_eq!(l.indices_for(0), &[0, 5]);
        assert_eq!(l.indices_for(1), &[2, 6, 9]);
    }

    #[test]
    fn lookup_validation() {
        assert!(TableLookup::new(vec![1], vec![]).is_err());
        assert!(TableLookup::new(vec![1], vec![1]).is_err()); // must start at 0
        assert!(TableLookup::new(vec![1, 2], vec![0, 2, 1]).is_err()); // decreasing
        assert!(TableLookup::new(vec![1], vec![0, 5]).is_err()); // past the end
        assert!(TableLookup::new(vec![], vec![0]).is_ok()); // empty bag
    }

    #[test]
    fn map_indices_preserves_structure() {
        let l = TableLookup::new(vec![3, 1, 4], vec![0, 1]).unwrap();
        let m = l.map_indices(|i| i * 10);
        assert_eq!(m.indices(), &[30, 10, 40]);
        assert_eq!(m.offsets(), l.offsets());
    }

    #[test]
    fn generator_respects_config_shape() {
        let cfg = configs::rm1().scaled_tables(10_000);
        let gen = QueryGenerator::new(&cfg);
        let mut rng = SimRng::seed_from(1);
        let q = gen.generate(&mut rng);
        assert_eq!(q.batch_size(), 32);
        assert_eq!(q.lookups.len(), 10);
        for l in &q.lookups {
            assert_eq!(l.num_inputs(), 32);
            assert_eq!(l.num_gathers(), 32 * 128);
            assert!(l.indices().iter().all(|&i| (i as u64) < 10_000));
        }
        assert_eq!(q.total_gathers(), 10 * 32 * 128);
    }

    #[test]
    fn generated_ids_are_skewed_toward_low_ranks() {
        let cfg = configs::rm1().scaled_tables(100_000).with_num_tables(1);
        let gen = QueryGenerator::new(&cfg);
        let mut rng = SimRng::seed_from(7);
        let mut hot = 0usize;
        let mut total = 0usize;
        for _ in 0..20 {
            let q = gen.generate(&mut rng);
            for &id in q.lookups[0].indices() {
                total += 1;
                if (id as u64) < 10_000 {
                    hot += 1;
                }
            }
        }
        // P=0.90: the hottest 10% of IDs should draw ~90% of accesses.
        let frac = hot as f64 / total as f64;
        assert!((frac - 0.90).abs() < 0.03, "frac={frac}");
    }

    #[test]
    fn access_counter_tracks_gathers() {
        let cfg = configs::rm1().scaled_tables(500).with_num_tables(2);
        let gen = QueryGenerator::new(&cfg);
        let mut counter = AccessCounter::new(&cfg);
        let mut rng = SimRng::seed_from(3);
        let mut expect = 0u64;
        for _ in 0..5 {
            let q = gen.generate(&mut rng);
            expect += q.lookups[0].num_gathers() as u64;
            counter.observe(&q);
        }
        assert_eq!(counter.total_accesses(0), expect);
        assert_eq!(counter.counts(0).len(), 500);
        // Skewed generation -> hot entries accumulate more counts.
        let head: u64 = counter.counts(0)[..50].iter().sum();
        assert!(head as f64 > 0.5 * expect as f64);
        let all = counter.into_counts();
        assert_eq!(all.len(), 2);
    }

    #[test]
    #[should_panic(expected = "tables")]
    fn access_counter_rejects_wrong_shape() {
        let cfg = configs::rm1().scaled_tables(100).with_num_tables(2);
        let other = configs::rm1().scaled_tables(100).with_num_tables(3);
        let q = QueryGenerator::new(&other).generate(&mut SimRng::seed_from(1));
        AccessCounter::new(&cfg).observe(&q);
    }

    #[test]
    fn generator_is_deterministic_per_seed() {
        let cfg = configs::rm1().scaled_tables(1000);
        let gen = QueryGenerator::new(&cfg);
        let q1 = gen.generate(&mut SimRng::seed_from(5));
        let q2 = gen.generate(&mut SimRng::seed_from(5));
        assert_eq!(q1, q2);
    }
}

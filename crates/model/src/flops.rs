//! FLOP and memory accounting — the numbers behind the paper's Figure 3.

use er_units::{Bytes, Flops};
use serde::{Deserialize, Serialize};

use crate::interaction::interaction_flops;
use crate::ModelConfig;

/// Compute and memory cost of one layer class for a single batched query.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LayerCosts {
    /// Forward-pass floating point operations.
    pub flops: Flops,
    /// Parameter storage.
    pub param_bytes: Bytes,
    /// Data moved from memory to compute during the pass.
    pub bytes_read: Bytes,
}

/// The dense-vs-sparse breakdown for one model configuration.
///
/// Reproduces the paper's Figure 3 claims from first principles: dense DNN
/// layers dominate FLOPs (98–99.9%) while sparse embedding layers dominate
/// memory (>99.5%).
///
/// # Examples
///
/// ```
/// use er_model::{configs, CostBreakdown};
///
/// let b = CostBreakdown::for_config(&configs::rm1());
/// assert!(b.dense_flops_fraction() > 0.75);
/// assert!(b.sparse_memory_fraction() > 0.99);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Bottom MLP + interaction + top MLP.
    pub dense: LayerCosts,
    /// Embedding gather + pooling across all tables.
    pub sparse: LayerCosts,
}

fn mlp_costs(in_dim: usize, widths: &[usize], batch: usize) -> LayerCosts {
    // Accumulate in exact integer arithmetic, wrap into units at the end
    // (every realistic count is far below 2^53, so the f64 is exact too).
    let mut mac = 0u64;
    let mut params = 0u64;
    let mut prev = in_dim as u64;
    for &w in widths {
        let w = w as u64;
        mac += batch as u64 * (2 * prev * w + w);
        params += prev * w + w;
        prev = w;
    }
    LayerCosts {
        flops: Flops::of(mac as f64),
        param_bytes: Bytes::of_u64(params * 4),
        // Every parameter is read once per batched pass (100% utility, as
        // the paper notes in Section III-A).
        bytes_read: Bytes::of_u64(params * 4),
    }
}

/// FLOPs of the two dense phases for one batched query: `(bottom MLP,
/// interaction + top MLP)`.
///
/// The dense shard runs the bottom phase while embedding RPCs are in
/// flight and the top phase after the pooled vectors return, so the two
/// must be priced separately by the serving performance model.
pub fn dense_phase_flops(config: &ModelConfig) -> (Flops, Flops) {
    let batch = config.batch_size;
    let bottom = mlp_costs(config.num_dense_features, &config.bottom_mlp, batch).flops;
    let top = mlp_costs(config.interaction_dim(), &config.top_mlp, batch).flops;
    // lint::allow(no_panic): ModelConfig guarantees a non-empty bottom MLP
    let d = *config.bottom_mlp.last().expect("bottom MLP non-empty");
    let inter = interaction_flops(batch, d, config.tables.len());
    (bottom, top + Flops::of(inter as f64))
}

impl CostBreakdown {
    /// Computes the breakdown for one query of `config.batch_size` inputs.
    pub fn for_config(config: &ModelConfig) -> Self {
        let batch = config.batch_size;
        let bottom = mlp_costs(config.num_dense_features, &config.bottom_mlp, batch);
        let top = mlp_costs(config.interaction_dim(), &config.top_mlp, batch);
        // lint::allow(no_panic): ModelConfig guarantees a non-empty bottom MLP
        let d = *config.bottom_mlp.last().expect("bottom MLP non-empty");
        let inter = interaction_flops(batch, d, config.tables.len());

        let dense = LayerCosts {
            flops: bottom.flops + top.flops + Flops::of(inter as f64),
            param_bytes: bottom.param_bytes + top.param_bytes,
            bytes_read: bottom.bytes_read + top.bytes_read,
        };

        let mut sparse = LayerCosts::default();
        for t in &config.tables {
            let gathers = batch as u64 * t.pooling as u64;
            // Sum-pooling: (pooling - 1) vector adds per input.
            let adds = batch as u64 * (t.pooling as u64 - 1) * t.dim as u64;
            sparse.flops += Flops::of(adds as f64);
            sparse.param_bytes += Bytes::of_u64(t.bytes());
            sparse.bytes_read += Bytes::of_u64(gathers * t.vector_bytes());
        }
        Self { dense, sparse }
    }

    /// Fraction of total FLOPs spent in dense layers.
    pub fn dense_flops_fraction(&self) -> f64 {
        self.dense.flops / (self.dense.flops + self.sparse.flops)
    }

    /// Fraction of total parameter memory held by sparse layers.
    pub fn sparse_memory_fraction(&self) -> f64 {
        self.sparse.param_bytes / (self.dense.param_bytes + self.sparse.param_bytes)
    }

    /// Fraction of the embedding parameters touched by one query — the
    /// paper's "0.001% per inference" memory-utility observation.
    pub fn sparse_touch_fraction(&self) -> f64 {
        self.sparse.bytes_read / self.sparse.param_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs;

    #[test]
    fn dense_dominates_flops_for_all_rms() {
        for cfg in configs::all_rms() {
            let b = CostBreakdown::for_config(&cfg);
            // The paper reports 98-99.9% (Figure 3); our accounting charges
            // sum-pooling adds to the sparse side, which lowers the dense
            // share somewhat, but dense still dominates for every RM.
            assert!(
                b.dense_flops_fraction() > 0.75,
                "{}: {}",
                cfg.name,
                b.dense_flops_fraction()
            );
        }
    }

    #[test]
    fn sparse_dominates_memory_for_all_rms() {
        for cfg in configs::all_rms() {
            let b = CostBreakdown::for_config(&cfg);
            assert!(
                b.sparse_memory_fraction() > 0.995,
                "{}: {}",
                cfg.name,
                b.sparse_memory_fraction()
            );
        }
    }

    #[test]
    fn rm1_fractions_match_figure_three_shape() {
        // Paper: RM1 sparse FLOPs ~2%, dense memory ~0.02%.
        let b = CostBreakdown::for_config(&configs::rm1());
        let sparse_flops = 1.0 - b.dense_flops_fraction();
        assert!(sparse_flops < 0.25, "sparse flops {sparse_flops}");
        let dense_mem = 1.0 - b.sparse_memory_fraction();
        assert!(dense_mem < 0.005, "dense memory {dense_mem}");
    }

    #[test]
    fn rm3_is_most_compute_heavy() {
        let f1 = CostBreakdown::for_config(&configs::rm1()).dense.flops;
        let f3 = CostBreakdown::for_config(&configs::rm3()).dense.flops;
        assert!(f3 / f1 > 2.0, "rm1={f1} rm3={f3}");
    }

    #[test]
    fn touch_fraction_is_tiny_at_paper_scale() {
        // Paper: ~0.001% of embedding parameters touched per query at
        // pooling 100; RM1 uses pooling 128 on 20M-row tables.
        let b = CostBreakdown::for_config(&configs::rm1());
        let f = b.sparse_touch_fraction();
        assert!(f < 1e-3, "touch fraction {f}");
    }

    #[test]
    fn mlp_cost_hand_check() {
        // 4 -> [8]: batch 2: flops = 2*(2*4*8 + 8) = 144; params = 40.
        let c = mlp_costs(4, &[8], 2);
        assert_eq!(c.flops, Flops::of(144.0));
        assert_eq!(c.param_bytes, Bytes::of_u64(40 * 4));
        assert_eq!(c.bytes_read, Bytes::of_u64(40 * 4));
    }

    #[test]
    fn breakdown_scales_with_batch() {
        let cfg1 = {
            let mut c = configs::rm1();
            c.batch_size = 1;
            c
        };
        let cfg32 = configs::rm1();
        let b1 = CostBreakdown::for_config(&cfg1);
        let b32 = CostBreakdown::for_config(&cfg32);
        // Integer-exact below 2^53, so equality (not approximation) holds.
        assert_eq!(b32.dense.flops, b1.dense.flops * 32.0);
        assert_eq!(b32.sparse.bytes_read, b1.sparse.bytes_read * 32.0);
        // Parameter memory does not scale with batch.
        assert_eq!(b32.sparse.param_bytes, b1.sparse.param_bytes);
    }
}

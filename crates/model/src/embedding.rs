//! Embedding tables with gather and pooling — DLRM's sparse layer.

use er_tensor::quant::{dequantize_f16, dequantize_i8_rows, f16_to_f32};
use er_tensor::{quantize_f16, quantize_i8_rows, Aligned, Matrix};
use er_units::{Bytes, ElemKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::TableLookup;

/// The element storage behind one table: f32 reference, f16 halfs, or
/// per-row-scaled i8 codes. Private — every access goes through the
/// kind-dispatched methods so the f32 path stays byte-for-byte the code it
/// always was. Element buffers are cache-line-[`Aligned`] so a dim-64 i8
/// row is exactly one line and a dim-64 f32 row exactly four — random
/// gathers pay the row's byte size in line traffic, never a straddling
/// surcharge (the values, and hence all digests, are unchanged).
#[derive(Debug, Clone, PartialEq)]
enum TableStorage {
    F32(Aligned<f32>),
    F16(Aligned<u16>),
    I8 {
        codes: Aligned<i8>,
        scales: Vec<f32>,
    },
}

/// A materialized embedding table: `rows` vectors of `dim` elements stored
/// at an [`ElemKind`] precision (f32 unless [`EmbeddingTable::quantized`]
/// was used; accumulation is always f32).
///
/// This is the functional implementation used for correctness (the
/// monolithic-vs-sharded equivalence tests) and small-scale serving; at the
/// paper's 20M-row scale only the *configuration* is carried around and
/// memory/latency are modeled analytically.
///
/// # Examples
///
/// ```
/// use er_model::{EmbeddingTable, TableLookup};
///
/// let table = EmbeddingTable::with_seed(100, 8, 7);
/// let lookup = TableLookup::new(vec![0, 5, 99], vec![0, 2]).unwrap();
/// let pooled = table.gather_pool(&lookup);
/// assert_eq!(pooled.shape(), (2, 8)); // two inputs, dim 8
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EmbeddingTable {
    rows: u32,
    dim: u32,
    storage: TableStorage,
}

impl EmbeddingTable {
    /// Creates an f32 table with small random values from a seed.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `dim` is zero.
    pub fn with_seed(rows: u32, dim: u32, seed: u64) -> Self {
        assert!(rows > 0 && dim > 0, "table dimensions must be non-zero");
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..rows as usize * dim as usize)
            .map(|_| rng.gen_range(-0.1..0.1))
            .collect();
        Self {
            rows,
            dim,
            storage: TableStorage::F32(Aligned::from_vec(data)),
        }
    }

    /// Creates an f32 table from explicit per-row vectors.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or widths are ragged.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "table must have at least one row");
        let dim = rows[0].len();
        assert!(dim > 0, "rows must be non-empty");
        let mut data = Vec::with_capacity(rows.len() * dim);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), dim, "row {i} has inconsistent width");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len() as u32,
            dim: dim as u32,
            storage: TableStorage::F32(Aligned::from_vec(data)),
        }
    }

    /// Number of embedding vectors.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Embedding dimension.
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// The storage precision of this table.
    pub fn elem_kind(&self) -> ElemKind {
        match &self.storage {
            TableStorage::F32(_) => ElemKind::F32,
            TableStorage::F16(_) => ElemKind::F16,
            TableStorage::I8 { .. } => ElemKind::I8,
        }
    }

    /// Storage footprint, including the per-row f32 scales an i8 table
    /// carries — `rows x` [`ElemKind::row_bytes`], never a hardcoded
    /// element width.
    pub fn bytes(&self) -> Bytes {
        self.elem_kind().row_bytes(self.dim) * self.rows as f64
    }

    /// Returns this table re-stored at `kind` precision. Quantization is
    /// per-element for f16 and per-row symmetric (`scale = max_abs / 127`)
    /// for i8; `ElemKind::F32` returns a clone. See
    /// [`er_tensor::quant`] for the exact error bounds.
    ///
    /// # Panics
    ///
    /// Panics if this table is not f32 — requantizing already-lossy storage
    /// would silently compound error.
    pub fn quantized(&self, kind: ElemKind) -> EmbeddingTable {
        let TableStorage::F32(data) = &self.storage else {
            // lint::allow(no_panic): documented panic surface of quantized(): requantizing lossy storage would compound error
            panic!(
                "quantized() requires f32 source storage, this table is {}",
                self.elem_kind()
            );
        };
        let storage = match kind {
            ElemKind::F32 => TableStorage::F32(data.clone()),
            ElemKind::F16 => TableStorage::F16(Aligned::from_vec(quantize_f16(data))),
            ElemKind::I8 => {
                let (codes, scales) = quantize_i8_rows(data, self.dim as usize);
                TableStorage::I8 {
                    codes: Aligned::from_vec(codes),
                    scales,
                }
            }
        };
        EmbeddingTable {
            rows: self.rows,
            dim: self.dim,
            storage,
        }
    }

    /// Returns an f32 table holding this table's dequantized values — what
    /// the quantized gather kernels accumulate, materialized (test oracle
    /// and accuracy-report helper).
    pub fn dequantized(&self) -> EmbeddingTable {
        let data = match &self.storage {
            TableStorage::F32(_) => return self.clone(),
            TableStorage::F16(data) => dequantize_f16(data),
            TableStorage::I8 { codes, scales } => {
                dequantize_i8_rows(codes, scales, self.dim as usize)
            }
        };
        EmbeddingTable {
            rows: self.rows,
            dim: self.dim,
            storage: TableStorage::F32(Aligned::from_vec(data)),
        }
    }

    /// The vector at row `id` (f32 storage only; quantized tables have no
    /// f32 slice to borrow — use [`EmbeddingTable::dequantized`]).
    ///
    /// # Panics
    ///
    /// Panics if `id >= rows()` or the table is quantized.
    pub fn vector(&self, id: u32) -> &[f32] {
        assert!(
            id < self.rows,
            "embedding id {id} out of range ({})",
            self.rows
        );
        let TableStorage::F32(data) = &self.storage else {
            // lint::allow(no_panic): documented panic surface of vector(): quantized rows have no exact f32 vector
            panic!(
                "vector() requires f32 storage, this table is {}",
                self.elem_kind()
            );
        };
        let d = self.dim as usize;
        &data[id as usize * d..(id as usize + 1) * d]
    }

    /// Gathers and sum-pools the vectors requested by `lookup`, producing one
    /// pooled vector per input (the `EmbeddingBag` operation). For quantized
    /// tables each element is dequantized and accumulated in f32, in exactly
    /// the same order as the fused kernels — this stays the test oracle for
    /// every [`ElemKind`].
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn gather_pool(&self, lookup: &TableLookup) -> Matrix {
        let n_inputs = lookup.num_inputs();
        let d = self.dim as usize;
        let mut out = Matrix::zeros(n_inputs, d);
        for input in 0..n_inputs {
            let row = out.row_mut(input);
            for &id in lookup.indices_for(input) {
                assert!(
                    id < self.rows,
                    "embedding id {id} out of range ({})",
                    self.rows
                );
                let base = id as usize * d;
                match &self.storage {
                    TableStorage::F32(data) => {
                        for (o, &v) in row.iter_mut().zip(&data[base..base + d]) {
                            *o += v;
                        }
                    }
                    TableStorage::F16(data) => {
                        for (o, &h) in row.iter_mut().zip(&data[base..base + d]) {
                            *o += f16_to_f32(h);
                        }
                    }
                    TableStorage::I8 { codes, scales } => {
                        let scale = scales[id as usize];
                        for (o, &q) in row.iter_mut().zip(&codes[base..base + d]) {
                            *o += scale * q as f32;
                        }
                    }
                }
            }
        }
        out
    }

    /// Fused gather+pool: the same `EmbeddingBag` operation as
    /// [`EmbeddingTable::gather_pool`], pooled directly out of the table's
    /// flat storage by the `er_tensor` CSR kernels (which dispatch down the
    /// AVX-512 → AVX2 → scalar ladder, recompiling the same Rust code — no
    /// intrinsics, no FP reordering). Per output element the additions
    /// happen in exactly the reference order (lookup order, ascending dim),
    /// so results are **bit-identical** to `gather_pool` at every
    /// [`ElemKind`] — f32 tables additionally stay bit-identical to the
    /// historical f32-only implementation.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn gather_pool_fused(&self, lookup: &TableLookup) -> Matrix {
        let mut out = Matrix::zeros(lookup.num_inputs(), self.dim as usize);
        self.gather_dispatch(lookup.indices(), lookup.offsets(), &mut out);
        out
    }

    /// Fused gather+pool into a caller-owned matrix (reshaped in place)
    /// over raw CSR `(indices, offsets)` arrays — the allocation-free form
    /// of [`EmbeddingTable::gather_pool_fused`], bit-identical to it. Takes
    /// raw slices instead of a [`TableLookup`] so callers holding bucketized
    /// per-shard arrays (see `er_partition::bucketize_into`) can gather
    /// without materializing a lookup; once `out`'s capacity is warm the
    /// call performs no allocation.
    ///
    /// # Panics
    ///
    /// Panics if `offsets` is empty, any offset run is out of bounds or
    /// descending, or any index is out of range.
    pub fn gather_pool_into(&self, indices: &[u32], offsets: &[u32], out: &mut Matrix) {
        out.reshape_zeroed(offsets.len(), self.dim as usize);
        self.gather_dispatch(indices, offsets, out);
    }

    /// One kind-dispatch point for every fused gather path.
    fn gather_dispatch(&self, indices: &[u32], offsets: &[u32], out: &mut Matrix) {
        match &self.storage {
            TableStorage::F32(data) => {
                er_tensor::gather_pool_csr(data, self.rows, indices, offsets, out);
            }
            TableStorage::F16(data) => {
                er_tensor::gather_pool_csr_f16(data, self.rows, indices, offsets, out);
            }
            TableStorage::I8 { codes, scales } => {
                er_tensor::gather_pool_csr_i8(codes, scales, self.rows, indices, offsets, out);
            }
        }
    }

    /// Per-element absolute error bound of gathering at `kind` precision
    /// instead of f32, for the CSR lookup: the sum over each input's
    /// gathered rows of the analytic per-element quantization bound
    /// (`0.5001·scale` for i8, `2⁻¹¹·|v| + 2⁻²⁴` for f16; see
    /// [`er_tensor::quant`]), plus a small accumulation-rounding slack.
    /// Zero everywhere for `ElemKind::F32`. The proptests and the
    /// `--quant-parity` CI stage assert observed error ≤ this bound.
    ///
    /// # Panics
    ///
    /// Panics if this table is not f32 (bounds are derived from the exact
    /// values), or if any index is out of range.
    pub fn quant_error_bound(&self, kind: ElemKind, indices: &[u32], offsets: &[u32]) -> Matrix {
        let TableStorage::F32(data) = &self.storage else {
            // lint::allow(no_panic): documented panic surface of quant_error_bound(): bounds derive from exact f32 values
            panic!("quant_error_bound() requires the f32 source table");
        };
        let d = self.dim as usize;
        let mut bound = Matrix::zeros(offsets.len(), d);
        let mut abs_sum = vec![0.0f32; d];
        for input in 0..offsets.len() {
            let start = offsets[input] as usize;
            let end = offsets
                .get(input + 1)
                .map_or(indices.len(), |&o| o as usize);
            let row = bound.row_mut(input);
            abs_sum.iter_mut().for_each(|a| *a = 0.0);
            let pooled = (end - start) as f32;
            for &id in &indices[start..end] {
                assert!(
                    id < self.rows,
                    "embedding id {id} out of range ({})",
                    self.rows
                );
                let vec = &data[id as usize * d..(id as usize + 1) * d];
                match kind {
                    ElemKind::F32 => {}
                    ElemKind::F16 => {
                        for ((b, a), &v) in row.iter_mut().zip(&mut abs_sum).zip(vec) {
                            *b += 2.0f32.powi(-11) * v.abs() + 2.0f32.powi(-24);
                            *a += v.abs();
                        }
                    }
                    ElemKind::I8 => {
                        let max_abs = vec.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
                        let scale = max_abs / 127.0;
                        for ((b, a), &v) in row.iter_mut().zip(&mut abs_sum).zip(vec) {
                            *b += 0.5001 * scale;
                            *a += v.abs();
                        }
                    }
                }
            }
            if kind != ElemKind::F32 {
                // Accumulation slack: both sides sum `pooled` slightly
                // different f32 terms; each partial-sum rounding is within
                // eps of the running magnitude.
                for (b, a) in row.iter_mut().zip(&abs_sum) {
                    *b += 2.0 * pooled * f32::EPSILON * *a + 1e-7;
                }
            }
        }
        bound
    }

    /// Extracts the sub-table covering rows `[start, end)` — how a
    /// partitioned embedding shard's storage is built. Works at every
    /// [`ElemKind`] (an i8 shard keeps its rows' scales).
    ///
    /// # Panics
    ///
    /// Panics if `start >= end` or `end > rows()`.
    pub fn slice(&self, start: u32, end: u32) -> EmbeddingTable {
        assert!(
            start < end && end <= self.rows,
            "invalid slice [{start}, {end})"
        );
        let d = self.dim as usize;
        let (s, e) = (start as usize * d, end as usize * d);
        let storage = match &self.storage {
            TableStorage::F32(data) => TableStorage::F32(Aligned::from_slice(&data[s..e])),
            TableStorage::F16(data) => TableStorage::F16(Aligned::from_slice(&data[s..e])),
            TableStorage::I8 { codes, scales } => TableStorage::I8 {
                codes: Aligned::from_slice(&codes[s..e]),
                scales: scales[start as usize..end as usize].to_vec(),
            },
        };
        EmbeddingTable {
            rows: end - start,
            dim: self.dim,
            storage,
        }
    }

    /// Reorders rows by a permutation (`out[pos] = self[perm_to_original(pos)]`)
    /// — the physical layout change of the Figure 8 hotness sort. Works at
    /// every [`ElemKind`] (an i8 row's scale travels with it).
    ///
    /// # Panics
    ///
    /// Panics if the permutation length differs from the table's row count.
    pub fn permuted(&self, to_original: impl Fn(u32) -> u32, len: u32) -> EmbeddingTable {
        assert_eq!(len, self.rows, "permutation length must match table rows");
        let d = self.dim as usize;
        let storage = match &self.storage {
            TableStorage::F32(data) => {
                let mut out = Vec::with_capacity(data.len());
                for pos in 0..self.rows {
                    let base = to_original(pos) as usize * d;
                    out.extend_from_slice(&data[base..base + d]);
                }
                TableStorage::F32(Aligned::from_vec(out))
            }
            TableStorage::F16(data) => {
                let mut out = Vec::with_capacity(data.len());
                for pos in 0..self.rows {
                    let base = to_original(pos) as usize * d;
                    out.extend_from_slice(&data[base..base + d]);
                }
                TableStorage::F16(Aligned::from_vec(out))
            }
            TableStorage::I8 { codes, scales } => {
                let mut out = Vec::with_capacity(codes.len());
                let mut out_scales = Vec::with_capacity(scales.len());
                for pos in 0..self.rows {
                    let orig = to_original(pos) as usize;
                    out.extend_from_slice(&codes[orig * d..(orig + 1) * d]);
                    out_scales.push(scales[orig]);
                }
                TableStorage::I8 {
                    codes: Aligned::from_vec(out),
                    scales: out_scales,
                }
            }
        };
        EmbeddingTable {
            rows: self.rows,
            dim: self.dim,
            storage,
        }
    }
}

/// Runs the fused gather+pool over many tables at once, table-parallel
/// across up to `threads` scoped worker threads — the multi-table sparse
/// stage of a DLRM forward pass. Tables are independent, so results are
/// bit-identical to the sequential per-table kernels at every thread count,
/// and output order always matches table order.
///
/// `threads <= 1` (or a single table) runs inline without spawning.
///
/// # Panics
///
/// Panics if `tables` and `lookups` lengths differ, or any index is out of
/// range for its table.
pub fn gather_pool_all(
    tables: &[EmbeddingTable],
    lookups: &[TableLookup],
    threads: usize,
) -> Vec<Matrix> {
    assert_eq!(
        tables.len(),
        lookups.len(),
        "got {} tables but {} lookups",
        tables.len(),
        lookups.len()
    );
    let threads = threads.max(1).min(tables.len().max(1));
    if threads == 1 {
        return tables
            .iter()
            .zip(lookups)
            .map(|(t, l)| t.gather_pool_fused(l))
            .collect();
    }
    let mut out: Vec<Option<Matrix>> = vec![None; tables.len()];
    let chunk = tables.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for ((out_chunk, table_chunk), lookup_chunk) in out
            .chunks_mut(chunk)
            .zip(tables.chunks(chunk))
            .zip(lookups.chunks(chunk))
        {
            scope.spawn(move || {
                for ((slot, table), lookup) in
                    out_chunk.iter_mut().zip(table_chunk).zip(lookup_chunk)
                {
                    *slot = Some(table.gather_pool_fused(lookup));
                }
            });
        }
    });
    out.into_iter()
        // lint::allow(no_panic): scoped threads joined; every chunk worker filled its slots
        .map(|m| m.expect("every chunk filled by its worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> EmbeddingTable {
        EmbeddingTable::from_rows(&[
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![2.0, 2.0],
            vec![-1.0, 3.0],
        ])
    }

    #[test]
    fn construction_accessors() {
        let t = tiny();
        assert_eq!(t.rows(), 4);
        assert_eq!(t.dim(), 2);
        assert_eq!(t.elem_kind(), ElemKind::F32);
        assert_eq!(t.bytes(), Bytes::of_u64(4 * 2 * 4));
        assert_eq!(t.vector(2), &[2.0, 2.0]);
    }

    #[test]
    fn bytes_track_elem_kind() {
        let t = EmbeddingTable::with_seed(10, 8, 3);
        assert_eq!(t.bytes(), Bytes::of_u64(10 * 8 * 4));
        assert_eq!(
            t.quantized(ElemKind::F16).bytes(),
            Bytes::of_u64(10 * 8 * 2)
        );
        // i8 rows carry one f32 scale each.
        assert_eq!(
            t.quantized(ElemKind::I8).bytes(),
            Bytes::of_u64(10 * (8 + 4))
        );
    }

    #[test]
    fn gather_pool_sums_requested_vectors() {
        let t = tiny();
        // Input 0 pools rows {0, 2}; input 1 pools row {3}.
        let lookup = TableLookup::new(vec![0, 2, 3], vec![0, 2]).unwrap();
        let out = t.gather_pool(&lookup);
        assert_eq!(out.row(0), &[3.0, 2.0]);
        assert_eq!(out.row(1), &[-1.0, 3.0]);
    }

    #[test]
    fn empty_pooling_bag_yields_zero_vector() {
        let t = tiny();
        // Input 0 gathers nothing, input 1 gathers row 1.
        let lookup = TableLookup::new(vec![1], vec![0, 0]).unwrap();
        let out = t.gather_pool(&lookup);
        assert_eq!(out.row(0), &[0.0, 0.0]);
        assert_eq!(out.row(1), &[0.0, 1.0]);
    }

    #[test]
    fn slice_extracts_contiguous_rows() {
        let t = tiny();
        let s = t.slice(1, 3);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.vector(0), &[0.0, 1.0]);
        assert_eq!(s.vector(1), &[2.0, 2.0]);
    }

    #[test]
    fn slices_cover_whole_table() {
        let t = EmbeddingTable::with_seed(10, 4, 1);
        let a = t.slice(0, 6);
        let b = t.slice(6, 10);
        for id in 0..6 {
            assert_eq!(a.vector(id), t.vector(id));
        }
        for id in 6..10 {
            assert_eq!(b.vector(id - 6), t.vector(id));
        }
    }

    #[test]
    fn permuted_moves_rows() {
        let t = tiny();
        // Reverse the table.
        let p = t.permuted(|pos| 3 - pos, 4);
        assert_eq!(p.vector(0), t.vector(3));
        assert_eq!(p.vector(3), t.vector(0));
    }

    #[test]
    fn seeded_tables_are_deterministic() {
        let a = EmbeddingTable::with_seed(50, 8, 99);
        let b = EmbeddingTable::with_seed(50, 8, 99);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_gather_panics() {
        let t = tiny();
        let lookup = TableLookup::new(vec![4], vec![0]).unwrap();
        t.gather_pool(&lookup);
    }

    #[test]
    fn fused_gather_is_bit_identical_to_reference() {
        // Dims exercising the 4-wide unroll: below, at, and past multiples.
        for dim in [1u32, 3, 4, 5, 8, 11] {
            let t = EmbeddingTable::with_seed(50, dim, 21);
            let lookup =
                TableLookup::new(vec![0, 49, 7, 7, 23, 12, 3, 44, 44, 44], vec![0, 2, 2, 6])
                    .unwrap();
            assert_eq!(
                t.gather_pool(&lookup),
                t.gather_pool_fused(&lookup),
                "dim {dim}"
            );
        }
    }

    #[test]
    fn fused_gather_is_bit_identical_to_reference_when_quantized() {
        for kind in [ElemKind::F16, ElemKind::I8] {
            for dim in [1u32, 3, 8, 11] {
                let t = EmbeddingTable::with_seed(50, dim, 21).quantized(kind);
                let lookup =
                    TableLookup::new(vec![0, 49, 7, 7, 23, 12, 3, 44, 44, 44], vec![0, 2, 2, 6])
                        .unwrap();
                assert_eq!(
                    t.gather_pool(&lookup),
                    t.gather_pool_fused(&lookup),
                    "{kind} dim {dim}"
                );
            }
        }
    }

    #[test]
    fn quantized_gather_stays_within_analytic_bound() {
        let lookup =
            TableLookup::new(vec![0, 49, 7, 7, 23, 12, 3, 44, 44, 44], vec![0, 2, 2, 6]).unwrap();
        for kind in [ElemKind::F16, ElemKind::I8] {
            let t = EmbeddingTable::with_seed(50, 16, 77);
            let reference = t.gather_pool(&lookup);
            let got = t.quantized(kind).gather_pool_fused(&lookup);
            let bound = t.quant_error_bound(kind, lookup.indices(), lookup.offsets());
            for input in 0..reference.rows() {
                for j in 0..reference.cols() {
                    let err = (got.row(input)[j] - reference.row(input)[j]).abs();
                    assert!(
                        err <= bound.row(input)[j],
                        "{kind}: input {input} col {j}: err {err} > bound {}",
                        bound.row(input)[j]
                    );
                }
            }
        }
    }

    #[test]
    fn dequantized_matches_what_kernels_accumulate() {
        let t = EmbeddingTable::with_seed(20, 6, 5);
        for kind in [ElemKind::F32, ElemKind::F16, ElemKind::I8] {
            let q = t.quantized(kind);
            let deq = q.dequantized();
            assert_eq!(deq.elem_kind(), ElemKind::F32);
            let lookup = TableLookup::new(vec![0, 19, 4, 4], vec![0, 2]).unwrap();
            assert_eq!(q.gather_pool(&lookup), deq.gather_pool(&lookup), "{kind}");
        }
    }

    #[test]
    fn quantized_slice_and_permute_carry_scales() {
        let t = EmbeddingTable::with_seed(12, 4, 9).quantized(ElemKind::I8);
        let lookup = TableLookup::new(vec![0, 3], vec![0, 1]).unwrap();
        // Slicing rows [2, 8) then gathering {0, 3} == gathering {2, 5}.
        let s = t.slice(2, 8);
        let whole = TableLookup::new(vec![2, 5], vec![0, 1]).unwrap();
        assert_eq!(s.gather_pool_fused(&lookup), t.gather_pool_fused(&whole));
        // Reversing twice is the identity, scales included.
        let back = t.permuted(|p| 11 - p, 12).permuted(|p| 11 - p, 12);
        assert_eq!(back, t);
    }

    #[test]
    #[should_panic(expected = "requires f32 storage")]
    fn vector_on_quantized_table_panics() {
        tiny().quantized(ElemKind::I8).vector(0);
    }

    #[test]
    #[should_panic(expected = "requires f32 source storage")]
    fn requantizing_panics() {
        let _ = tiny().quantized(ElemKind::F16).quantized(ElemKind::I8);
    }

    #[test]
    fn fused_gather_handles_empty_bags() {
        let t = tiny();
        let lookup = TableLookup::new(vec![1], vec![0, 0]).unwrap();
        assert_eq!(t.gather_pool(&lookup), t.gather_pool_fused(&lookup));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fused_gather_rejects_bad_ids() {
        let t = tiny();
        let lookup = TableLookup::new(vec![4], vec![0]).unwrap();
        t.gather_pool_fused(&lookup);
    }

    #[test]
    fn gather_into_matches_fused_with_dirty_reused_output() {
        let mut out = Matrix::filled(1, 1, 42.0);
        for dim in [1u32, 4, 11] {
            let t = EmbeddingTable::with_seed(50, dim, 21);
            let lookup =
                TableLookup::new(vec![0, 49, 7, 7, 23, 12, 3, 44, 44, 44], vec![0, 2, 2, 6])
                    .unwrap();
            t.gather_pool_into(lookup.indices(), lookup.offsets(), &mut out);
            assert_eq!(out, t.gather_pool_fused(&lookup), "dim {dim}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn gather_into_rejects_bad_ids() {
        tiny().gather_pool_into(&[4], &[0], &mut Matrix::zeros(1, 1));
    }

    #[test]
    fn gather_pool_all_matches_per_table_kernels() {
        let tables: Vec<EmbeddingTable> = (0..5)
            .map(|i| EmbeddingTable::with_seed(40 + i, 8, i as u64))
            .collect();
        let lookups: Vec<TableLookup> = (0..5)
            .map(|i| TableLookup::new(vec![i, 39 + i, 2 * i, 7], vec![0, 1, 3]).unwrap())
            .collect();
        let expect: Vec<Matrix> = tables
            .iter()
            .zip(&lookups)
            .map(|(t, l)| t.gather_pool(l))
            .collect();
        for threads in [0, 1, 2, 5, 16] {
            assert_eq!(
                gather_pool_all(&tables, &lookups, threads),
                expect,
                "threads={threads}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "tables but")]
    fn gather_pool_all_rejects_mismatched_lengths() {
        let tables = vec![tiny()];
        gather_pool_all(&tables, &[], 2);
    }

    #[test]
    #[should_panic(expected = "invalid slice")]
    fn bad_slice_panics() {
        tiny().slice(2, 2);
    }
}

//! Embedding tables with gather and pooling — DLRM's sparse layer.

use er_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::TableLookup;

/// A materialized embedding table: `rows` vectors of `dim` `f32` elements.
///
/// This is the functional implementation used for correctness (the
/// monolithic-vs-sharded equivalence tests) and small-scale serving; at the
/// paper's 20M-row scale only the *configuration* is carried around and
/// memory/latency are modeled analytically.
///
/// # Examples
///
/// ```
/// use er_model::{EmbeddingTable, TableLookup};
///
/// let table = EmbeddingTable::with_seed(100, 8, 7);
/// let lookup = TableLookup::new(vec![0, 5, 99], vec![0, 2]).unwrap();
/// let pooled = table.gather_pool(&lookup);
/// assert_eq!(pooled.shape(), (2, 8)); // two inputs, dim 8
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EmbeddingTable {
    rows: u32,
    dim: u32,
    data: Vec<f32>,
}

impl EmbeddingTable {
    /// Creates a table with small random values from a seed.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `dim` is zero.
    pub fn with_seed(rows: u32, dim: u32, seed: u64) -> Self {
        assert!(rows > 0 && dim > 0, "table dimensions must be non-zero");
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..rows as usize * dim as usize)
            .map(|_| rng.gen_range(-0.1..0.1))
            .collect();
        Self { rows, dim, data }
    }

    /// Creates a table from explicit per-row vectors.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or widths are ragged.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "table must have at least one row");
        let dim = rows[0].len();
        assert!(dim > 0, "rows must be non-empty");
        let mut data = Vec::with_capacity(rows.len() * dim);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), dim, "row {i} has inconsistent width");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len() as u32,
            dim: dim as u32,
            data,
        }
    }

    /// Number of embedding vectors.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Embedding dimension.
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// Storage footprint in bytes.
    pub fn bytes(&self) -> u64 {
        self.data.len() as u64 * 4
    }

    /// The vector at row `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id >= rows()`.
    pub fn vector(&self, id: u32) -> &[f32] {
        assert!(
            id < self.rows,
            "embedding id {id} out of range ({})",
            self.rows
        );
        let d = self.dim as usize;
        &self.data[id as usize * d..(id as usize + 1) * d]
    }

    /// Gathers and sum-pools the vectors requested by `lookup`, producing one
    /// pooled vector per input (the `EmbeddingBag` operation).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn gather_pool(&self, lookup: &TableLookup) -> Matrix {
        let n_inputs = lookup.num_inputs();
        let mut out = Matrix::zeros(n_inputs, self.dim as usize);
        for input in 0..n_inputs {
            let row = out.row_mut(input);
            for &id in lookup.indices_for(input) {
                for (o, &v) in row.iter_mut().zip(self.vector(id)) {
                    *o += v;
                }
            }
        }
        out
    }

    /// Fused gather+pool: the same `EmbeddingBag` operation as
    /// [`EmbeddingTable::gather_pool`], pooled directly out of the table's
    /// flat storage by [`er_tensor::gather_pool_csr`] (which dispatches to
    /// an AVX2-compiled clone of the same Rust code on x86-64 CPUs that
    /// support it — no intrinsics, no FP reordering). Per output element
    /// the additions happen in exactly the reference order (lookup order,
    /// ascending dim), so results are **bit-identical** — `gather_pool`
    /// stays as the test oracle.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn gather_pool_fused(&self, lookup: &TableLookup) -> Matrix {
        let mut out = Matrix::zeros(lookup.num_inputs(), self.dim as usize);
        er_tensor::gather_pool_csr(
            &self.data,
            self.rows,
            lookup.indices(),
            lookup.offsets(),
            &mut out,
        );
        out
    }

    /// Fused gather+pool into a caller-owned matrix (reshaped in place)
    /// over raw CSR `(indices, offsets)` arrays — the allocation-free form
    /// of [`EmbeddingTable::gather_pool_fused`], bit-identical to it. Takes
    /// raw slices instead of a [`TableLookup`] so callers holding bucketized
    /// per-shard arrays (see `er_partition::bucketize_into`) can gather
    /// without materializing a lookup; once `out`'s capacity is warm the
    /// call performs no allocation.
    ///
    /// # Panics
    ///
    /// Panics if `offsets` is empty, any offset run is out of bounds or
    /// descending, or any index is out of range.
    pub fn gather_pool_into(&self, indices: &[u32], offsets: &[u32], out: &mut Matrix) {
        out.reshape_zeroed(offsets.len(), self.dim as usize);
        er_tensor::gather_pool_csr(&self.data, self.rows, indices, offsets, out);
    }

    /// Extracts the sub-table covering rows `[start, end)` — how a
    /// partitioned embedding shard's storage is built.
    ///
    /// # Panics
    ///
    /// Panics if `start >= end` or `end > rows()`.
    pub fn slice(&self, start: u32, end: u32) -> EmbeddingTable {
        assert!(
            start < end && end <= self.rows,
            "invalid slice [{start}, {end})"
        );
        let d = self.dim as usize;
        EmbeddingTable {
            rows: end - start,
            dim: self.dim,
            data: self.data[start as usize * d..end as usize * d].to_vec(),
        }
    }

    /// Reorders rows by a permutation (`out[pos] = self[perm_to_original(pos)]`)
    /// — the physical layout change of the Figure 8 hotness sort.
    ///
    /// # Panics
    ///
    /// Panics if the permutation length differs from the table's row count.
    pub fn permuted(&self, to_original: impl Fn(u32) -> u32, len: u32) -> EmbeddingTable {
        assert_eq!(len, self.rows, "permutation length must match table rows");
        let mut data = Vec::with_capacity(self.data.len());
        for pos in 0..self.rows {
            let orig = to_original(pos);
            data.extend_from_slice(self.vector(orig));
        }
        EmbeddingTable {
            rows: self.rows,
            dim: self.dim,
            data,
        }
    }
}

/// Runs the fused gather+pool over many tables at once, table-parallel
/// across up to `threads` scoped worker threads — the multi-table sparse
/// stage of a DLRM forward pass. Tables are independent, so results are
/// bit-identical to the sequential per-table kernels at every thread count,
/// and output order always matches table order.
///
/// `threads <= 1` (or a single table) runs inline without spawning.
///
/// # Panics
///
/// Panics if `tables` and `lookups` lengths differ, or any index is out of
/// range for its table.
pub fn gather_pool_all(
    tables: &[EmbeddingTable],
    lookups: &[TableLookup],
    threads: usize,
) -> Vec<Matrix> {
    assert_eq!(
        tables.len(),
        lookups.len(),
        "got {} tables but {} lookups",
        tables.len(),
        lookups.len()
    );
    let threads = threads.max(1).min(tables.len().max(1));
    if threads == 1 {
        return tables
            .iter()
            .zip(lookups)
            .map(|(t, l)| t.gather_pool_fused(l))
            .collect();
    }
    let mut out: Vec<Option<Matrix>> = vec![None; tables.len()];
    let chunk = tables.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for ((out_chunk, table_chunk), lookup_chunk) in out
            .chunks_mut(chunk)
            .zip(tables.chunks(chunk))
            .zip(lookups.chunks(chunk))
        {
            scope.spawn(move || {
                for ((slot, table), lookup) in
                    out_chunk.iter_mut().zip(table_chunk).zip(lookup_chunk)
                {
                    *slot = Some(table.gather_pool_fused(lookup));
                }
            });
        }
    });
    out.into_iter()
        // lint::allow(no_panic): scoped threads joined; every chunk worker filled its slots
        .map(|m| m.expect("every chunk filled by its worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> EmbeddingTable {
        EmbeddingTable::from_rows(&[
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![2.0, 2.0],
            vec![-1.0, 3.0],
        ])
    }

    #[test]
    fn construction_accessors() {
        let t = tiny();
        assert_eq!(t.rows(), 4);
        assert_eq!(t.dim(), 2);
        assert_eq!(t.bytes(), 4 * 2 * 4);
        assert_eq!(t.vector(2), &[2.0, 2.0]);
    }

    #[test]
    fn gather_pool_sums_requested_vectors() {
        let t = tiny();
        // Input 0 pools rows {0, 2}; input 1 pools row {3}.
        let lookup = TableLookup::new(vec![0, 2, 3], vec![0, 2]).unwrap();
        let out = t.gather_pool(&lookup);
        assert_eq!(out.row(0), &[3.0, 2.0]);
        assert_eq!(out.row(1), &[-1.0, 3.0]);
    }

    #[test]
    fn empty_pooling_bag_yields_zero_vector() {
        let t = tiny();
        // Input 0 gathers nothing, input 1 gathers row 1.
        let lookup = TableLookup::new(vec![1], vec![0, 0]).unwrap();
        let out = t.gather_pool(&lookup);
        assert_eq!(out.row(0), &[0.0, 0.0]);
        assert_eq!(out.row(1), &[0.0, 1.0]);
    }

    #[test]
    fn slice_extracts_contiguous_rows() {
        let t = tiny();
        let s = t.slice(1, 3);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.vector(0), &[0.0, 1.0]);
        assert_eq!(s.vector(1), &[2.0, 2.0]);
    }

    #[test]
    fn slices_cover_whole_table() {
        let t = EmbeddingTable::with_seed(10, 4, 1);
        let a = t.slice(0, 6);
        let b = t.slice(6, 10);
        for id in 0..6 {
            assert_eq!(a.vector(id), t.vector(id));
        }
        for id in 6..10 {
            assert_eq!(b.vector(id - 6), t.vector(id));
        }
    }

    #[test]
    fn permuted_moves_rows() {
        let t = tiny();
        // Reverse the table.
        let p = t.permuted(|pos| 3 - pos, 4);
        assert_eq!(p.vector(0), t.vector(3));
        assert_eq!(p.vector(3), t.vector(0));
    }

    #[test]
    fn seeded_tables_are_deterministic() {
        let a = EmbeddingTable::with_seed(50, 8, 99);
        let b = EmbeddingTable::with_seed(50, 8, 99);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_gather_panics() {
        let t = tiny();
        let lookup = TableLookup::new(vec![4], vec![0]).unwrap();
        t.gather_pool(&lookup);
    }

    #[test]
    fn fused_gather_is_bit_identical_to_reference() {
        // Dims exercising the 4-wide unroll: below, at, and past multiples.
        for dim in [1u32, 3, 4, 5, 8, 11] {
            let t = EmbeddingTable::with_seed(50, dim, 21);
            let lookup =
                TableLookup::new(vec![0, 49, 7, 7, 23, 12, 3, 44, 44, 44], vec![0, 2, 2, 6])
                    .unwrap();
            assert_eq!(
                t.gather_pool(&lookup),
                t.gather_pool_fused(&lookup),
                "dim {dim}"
            );
        }
    }

    #[test]
    fn fused_gather_handles_empty_bags() {
        let t = tiny();
        let lookup = TableLookup::new(vec![1], vec![0, 0]).unwrap();
        assert_eq!(t.gather_pool(&lookup), t.gather_pool_fused(&lookup));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fused_gather_rejects_bad_ids() {
        let t = tiny();
        let lookup = TableLookup::new(vec![4], vec![0]).unwrap();
        t.gather_pool_fused(&lookup);
    }

    #[test]
    fn gather_into_matches_fused_with_dirty_reused_output() {
        let mut out = Matrix::filled(1, 1, 42.0);
        for dim in [1u32, 4, 11] {
            let t = EmbeddingTable::with_seed(50, dim, 21);
            let lookup =
                TableLookup::new(vec![0, 49, 7, 7, 23, 12, 3, 44, 44, 44], vec![0, 2, 2, 6])
                    .unwrap();
            t.gather_pool_into(lookup.indices(), lookup.offsets(), &mut out);
            assert_eq!(out, t.gather_pool_fused(&lookup), "dim {dim}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn gather_into_rejects_bad_ids() {
        tiny().gather_pool_into(&[4], &[0], &mut Matrix::zeros(1, 1));
    }

    #[test]
    fn gather_pool_all_matches_per_table_kernels() {
        let tables: Vec<EmbeddingTable> = (0..5)
            .map(|i| EmbeddingTable::with_seed(40 + i, 8, i as u64))
            .collect();
        let lookups: Vec<TableLookup> = (0..5)
            .map(|i| TableLookup::new(vec![i, 39 + i, 2 * i, 7], vec![0, 1, 3]).unwrap())
            .collect();
        let expect: Vec<Matrix> = tables
            .iter()
            .zip(&lookups)
            .map(|(t, l)| t.gather_pool(l))
            .collect();
        for threads in [0, 1, 2, 5, 16] {
            assert_eq!(
                gather_pool_all(&tables, &lookups, threads),
                expect,
                "threads={threads}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "tables but")]
    fn gather_pool_all_rejects_mismatched_lengths() {
        let tables = vec![tiny()];
        gather_pool_all(&tables, &[], 2);
    }

    #[test]
    #[should_panic(expected = "invalid slice")]
    fn bad_slice_panics() {
        tiny().slice(2, 2);
    }
}

//! Determinism contract of the parallel serving engine: one seed, one
//! result, regardless of how the logical processes are sharded onto
//! threads — plus statistical agreement with the sequential engine.

use elasticrec::{
    plan, Calibration, ParSimConfig, ParSimulation, Platform, Simulation, SimulationConfig,
    SimulationOutcome, Strategy,
};
use er_model::configs;
use er_workload::TrafficSchedule;

fn small_model() -> er_model::ModelConfig {
    configs::rm1().with_num_tables(2)
}

/// FNV-1a fold over every observable in the outcome, bit-exact: any
/// reordering of any event anywhere in the run changes this value.
fn digest(out: &SimulationOutcome) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut fold = |x: u64| h = (h ^ x).wrapping_mul(0x100_0000_01b3);
    fold(out.total_queries);
    fold(out.completed_queries);
    fold(out.sla_violation_intervals as u64);
    fold(out.metric_intervals as u64);
    fold(out.final_nodes_used as u64);
    fold(out.peak_memory_gib.to_bits());
    fold(out.latency.count());
    fold(out.latency.mean().to_bits());
    for p in [0.5, 0.95, 0.99] {
        fold(out.latency.percentile(p).to_bits());
    }
    for series in [
        &out.achieved_qps,
        &out.target_qps,
        &out.memory_gib,
        &out.p95_ms,
        &out.total_replicas,
    ] {
        for pt in series.points() {
            fold(pt.time.to_bits());
            fold(pt.value.to_bits());
        }
    }
    for hist in [
        &out.stages.frontend_wait,
        &out.stages.frontend_service,
        &out.stages.sparse_phase,
        &out.stages.top_wait,
        &out.stages.top_service,
        &out.stages.client_rtt,
    ] {
        fold(hist.count());
        if hist.count() > 0 {
            fold(hist.mean().to_bits());
        }
    }
    h
}

fn par_run(cfg: &SimulationConfig, shards: usize, threads: usize) -> SimulationOutcome {
    let calib = Calibration::cpu_only();
    let p = plan(&small_model(), Platform::CpuOnly, Strategy::Elastic, &calib);
    ParSimulation::run(&p, &calib, cfg, &ParSimConfig::new(shards, threads))
}

/// The headline guarantee: bit-identical digests at 1, 2, 4, and 8
/// shards under assorted thread counts.
#[test]
fn par_digest_invariant_across_shards_and_threads() {
    let cfg = SimulationConfig::new(TrafficSchedule::constant(40.0), 20.0, 42);
    let reference = digest(&par_run(&cfg, 1, 1));
    for (shards, threads) in [(2, 1), (2, 2), (4, 2), (4, 4), (8, 3), (8, 8)] {
        let got = digest(&par_run(&cfg, shards, threads));
        assert_eq!(
            got, reference,
            "digest diverged at shards={shards} threads={threads}"
        );
    }
}

/// Control windows in anger: HPA reconfigurations every tick plus a
/// scripted node failure, all landing as zero-lookahead pod-set
/// broadcasts — still invariant under the execution shape.
#[test]
fn par_digest_invariant_with_failure_and_scaling() {
    let schedule = TrafficSchedule::steps(&[(0.0, 20.0), (10.0, 90.0)]).unwrap();
    let mut cfg = SimulationConfig::new(schedule, 30.0, 7);
    cfg.fail_node_at = Some(13.0);
    let reference = digest(&par_run(&cfg, 1, 1));
    for (shards, threads) in [(2, 2), (4, 4), (8, 8)] {
        let got = digest(&par_run(&cfg, shards, threads));
        assert_eq!(
            got, reference,
            "digest diverged at shards={shards} threads={threads}"
        );
    }
}

/// Against the sequential engine: the arrival stream is identical, so
/// query totals must match exactly; latency statistics agree closely
/// (tie ordering differs, so bitwise equality is not expected).
#[test]
fn par_agrees_with_sequential_engine() {
    let calib = Calibration::cpu_only();
    let p = plan(&small_model(), Platform::CpuOnly, Strategy::Elastic, &calib);
    let cfg = SimulationConfig::new(TrafficSchedule::constant(40.0), 20.0, 42);
    let seq = Simulation::run(&p, &calib, &cfg);
    let par = ParSimulation::run(&p, &calib, &cfg, &ParSimConfig::new(4, 4));
    assert_eq!(par.total_queries, seq.total_queries);
    assert_eq!(par.completed_queries, seq.completed_queries);
    let (a, b) = (par.mean_latency_secs(), seq.mean_latency_secs());
    assert!(
        (a - b).abs() / b < 0.05,
        "mean latency diverged: par={a} seq={b}"
    );
    assert_eq!(par.metric_intervals, seq.metric_intervals);
}

/// A monolithic (model-wise) plan is a single LP with no cross-LP
/// messages at all, so the parallel engine must reproduce the sequential
/// engine bit-for-bit — not just statistically.
#[test]
fn monolithic_plan_matches_sequential_bitwise() {
    let calib = Calibration::cpu_only();
    let p = plan(
        &small_model(),
        Platform::CpuOnly,
        Strategy::ModelWise,
        &calib,
    );
    let cfg = SimulationConfig::new(TrafficSchedule::constant(30.0), 15.0, 11);
    let seq = Simulation::run(&p, &calib, &cfg);
    for (shards, threads) in [(1, 1), (4, 4)] {
        let par = ParSimulation::run(&p, &calib, &cfg, &ParSimConfig::new(shards, threads));
        assert_eq!(digest(&par), digest(&seq), "shards={shards}");
    }
}

/// The detailed entry point reports the runner's window accounting, and
/// that accounting is itself invariant under the execution shape.
#[test]
fn window_stats_are_execution_shape_invariant() {
    let calib = Calibration::cpu_only();
    let p = plan(&small_model(), Platform::CpuOnly, Strategy::Elastic, &calib);
    let cfg = SimulationConfig::new(TrafficSchedule::constant(25.0), 12.0, 3);
    let (_, ref_stats) =
        ParSimulation::run_detailed(&p, &calib, &cfg, &ParSimConfig::new(1, 1), None);
    assert!(ref_stats.windows > 0);
    assert!(ref_stats.control_windows > 0); // every HPA tick is one
    assert!(ref_stats.events > 0);
    assert!(ref_stats.cross_messages > 0);
    for (shards, threads) in [(2, 2), (8, 4)] {
        let (_, stats) = ParSimulation::run_detailed(
            &p,
            &calib,
            &cfg,
            &ParSimConfig::new(shards, threads),
            None,
        );
        assert_eq!(stats, ref_stats, "shards={shards} threads={threads}");
    }
}

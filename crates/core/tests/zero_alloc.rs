//! Proof that the serving fast path is allocation-free at steady state.
//!
//! Behind the `alloc-count` feature this binary installs a counting global
//! allocator and asserts that, once a [`elasticrec::ForwardWorkspace`] is
//! warm, a full sharded forward pass performs **zero** heap allocations —
//! the end-to-end guarantee the pooled buffers, `bucketize_into`, the
//! `gather_pool_into` kernel, and the MLP ping-pong scratch combine to
//! deliver. Run with:
//!
//! ```text
//! cargo test -p elasticrec --features alloc-count --test zero_alloc
//! ```
//!
//! The feature gate exists because a `#[global_allocator]` is
//! process-global: inside the shared test binary it would also count every
//! other test's churn. This file is its own integration-test crate, so the
//! allocator's scope is exactly these tests.

#![cfg(feature = "alloc-count")]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use elasticrec::ShardedDlrm;
use er_model::{configs, Dlrm, QueryGenerator};
use er_partition::PartitionPlan;
use er_sim::SimRng;

/// [`System`] with allocation/deallocation counters. `realloc` routes
/// through the default impl (alloc + copy + dealloc), so buffer growth is
/// always visible in `ALLOCS`.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static DEALLOCS: AtomicU64 = AtomicU64::new(0);

// lint::allow(unsafe): GlobalAlloc is an unsafe trait; this impl only
// forwards to System and bumps counters.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocations observed while running `f`.
fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

fn build_sharded(rows: u64, tables: usize) -> (er_model::ModelConfig, ShardedDlrm) {
    let cfg = configs::rm1().scaled_tables(rows).with_num_tables(tables);
    let model = Dlrm::with_seed(&cfg, 11);
    let counts: Vec<Vec<u64>> = (0..tables)
        .map(|t| {
            (0..rows)
                .map(|i| ((i * 7919 + t as u64 * 31) % rows) + 1)
                .collect()
        })
        .collect();
    let plans = vec![PartitionPlan::new(vec![rows / 10, rows / 2, rows], rows).unwrap(); tables];
    let sharded = ShardedDlrm::new(model, &counts, plans).unwrap();
    (cfg, sharded)
}

#[test]
fn warm_workspace_forward_performs_zero_allocations() {
    let (cfg, sharded) = build_sharded(400, 3);
    let gen = QueryGenerator::new(&cfg);
    let mut rng = SimRng::seed_from(5);
    let queries: Vec<_> = (0..4).map(|_| gen.generate(&mut rng)).collect();

    let mut ws = sharded.workspace();
    // Warmup: buffers grow to the workload's peak shapes here.
    for q in &queries {
        let _ = sharded.forward_ws(q, &mut ws);
    }

    for (i, q) in queries.iter().enumerate() {
        let n = allocs_during(|| {
            let out = sharded.forward_ws(q, &mut ws);
            assert_eq!(out.rows(), q.batch_size());
        });
        assert_eq!(n, 0, "steady-state forward pass {i} allocated {n} times");
    }
}

#[test]
fn allocating_oracle_path_is_visible_to_the_counter() {
    // Sanity-check the instrument itself: the allocating forward_seq path
    // must register plenty of traffic, or a zero above would be vacuous.
    let (cfg, sharded) = build_sharded(400, 3);
    let q = QueryGenerator::new(&cfg).generate(&mut SimRng::seed_from(9));
    let n = allocs_during(|| {
        let _ = sharded.forward_seq(&q);
    });
    assert!(n > 10, "expected the allocating path to allocate, saw {n}");
    assert!(DEALLOCS.load(Ordering::Relaxed) > 0);
}

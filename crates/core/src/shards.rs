//! Shard specifications: the microservices a serving plan deploys.

use er_cluster::PodSpec;
use serde::{Deserialize, Serialize};

/// What a shard microservice is responsible for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ShardRole {
    /// Bottom MLP, feature interaction, top MLP — and query orchestration.
    Dense,
    /// One partition of one embedding table.
    Embedding {
        /// Table index within the model.
        table: usize,
        /// Shard index within the table's partition plan (0 = hottest).
        shard: usize,
    },
    /// The entire model in one container (the model-wise baseline).
    Monolithic,
}

impl ShardRole {
    /// Whether this shard participates in the sparse stage.
    pub fn is_embedding(&self) -> bool {
        matches!(self, ShardRole::Embedding { .. })
    }
}

impl std::fmt::Display for ShardRole {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardRole::Dense => write!(f, "dense"),
            ShardRole::Embedding { table, shard } => write!(f, "emb-t{table}-s{shard}"),
            ShardRole::Monolithic => write!(f, "model-wise"),
        }
    }
}

/// Per-query service demand of one shard replica, as busy-time phases on
/// the replica.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ShardService {
    /// Dense shard: a bottom phase (overlapping the sparse fan-out) and a
    /// top phase (after pooled embeddings return).
    Dense {
        /// Seconds of bottom-MLP work per query.
        bottom_secs: f64,
        /// Seconds of interaction + top-MLP work per query.
        top_secs: f64,
    },
    /// Embedding shard: one phase covering gather + pool for the expected
    /// per-query load on this shard.
    Sparse {
        /// Seconds per query (fixed overhead included).
        secs: f64,
        /// Fixed per-invocation overhead (request decode, pooling setup)
        /// already included in `secs`. A coalesced batch of `k` queries
        /// pays it once: `base_secs + k * (secs - base_secs)`.
        base_secs: f64,
    },
    /// Monolithic server: one sequential phase covering everything.
    Monolithic {
        /// Seconds per query.
        secs: f64,
    },
}

impl ShardService {
    /// Total replica busy time per query, which bounds per-replica
    /// throughput.
    pub fn busy_secs(&self) -> f64 {
        match *self {
            ShardService::Dense {
                bottom_secs,
                top_secs,
            } => bottom_secs + top_secs,
            ShardService::Sparse { secs, .. } | ShardService::Monolithic { secs } => secs,
        }
    }

    /// Replica busy time for serving `batch` queries in one coalesced
    /// invocation.
    ///
    /// A sparse shard pays its fixed overhead once and the bandwidth term
    /// per query, so batching strictly beats `batch * busy_secs()`; other
    /// services have no coalescable overhead and scale linearly. A batch of
    /// one is *not* guaranteed to equal `busy_secs()` to the last bit
    /// (`base + (secs - base)` re-rounds), so engines must use one formula
    /// or the other consistently within a run.
    pub fn coalesced_busy_secs(&self, batch: u64) -> f64 {
        match *self {
            ShardService::Sparse { secs, base_secs } => {
                base_secs + batch as f64 * (secs - base_secs)
            }
            _ => batch as f64 * self.busy_secs(),
        }
    }

    /// Maximum sustainable QPS of one replica — the stress-test number
    /// ElasticRec uses as the sparse HPA threshold (Section IV-D).
    pub fn qps_max(&self) -> f64 {
        1.0 / self.busy_secs()
    }
}

/// A deployable shard: role, container template, and performance model.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSpec {
    /// Deployment name (unique within a plan).
    pub name: String,
    /// The shard's responsibility.
    pub role: ShardRole,
    /// Container template (resources, startup time).
    pub pod: PodSpec,
    /// Per-query service demand.
    pub service: ShardService,
    /// Expected vectors gathered from this shard per query (embedding
    /// shards only; 0 otherwise). Drives message sizing.
    pub expected_gathers: f64,
}

impl ShardSpec {
    /// The stress-tested per-replica throughput.
    pub fn qps_max(&self) -> f64 {
        self.service.qps_max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_cluster::ResourceRequest;

    #[test]
    fn busy_time_sums_dense_phases() {
        let s = ShardService::Dense {
            bottom_secs: 0.010,
            top_secs: 0.005,
        };
        assert!((s.busy_secs() - 0.015).abs() < 1e-12);
        assert!((s.qps_max() - 1.0 / 0.015).abs() < 1e-9);
    }

    #[test]
    fn sparse_and_monolithic_are_single_phase() {
        let sparse = ShardService::Sparse {
            secs: 0.02,
            base_secs: 0.003,
        };
        assert_eq!(sparse.busy_secs(), 0.02);
        assert_eq!(ShardService::Monolithic { secs: 0.05 }.qps_max(), 20.0);
    }

    #[test]
    fn coalesced_batches_pay_the_base_cost_once() {
        let sparse = ShardService::Sparse {
            secs: 0.02,
            base_secs: 0.003,
        };
        // k queries: one base + k bandwidth terms.
        let four = sparse.coalesced_busy_secs(4);
        assert!((four - (0.003 + 4.0 * 0.017)).abs() < 1e-12);
        // Strictly cheaper than serving them back-to-back.
        assert!(four < 4.0 * sparse.busy_secs());
        // Services without a coalescable base scale linearly.
        let mono = ShardService::Monolithic { secs: 0.05 };
        assert_eq!(mono.coalesced_busy_secs(3), 3.0 * 0.05);
    }

    #[test]
    fn role_display_names() {
        assert_eq!(ShardRole::Dense.to_string(), "dense");
        assert_eq!(
            ShardRole::Embedding { table: 2, shard: 0 }.to_string(),
            "emb-t2-s0"
        );
        assert_eq!(ShardRole::Monolithic.to_string(), "model-wise");
        assert!(ShardRole::Embedding { table: 0, shard: 1 }.is_embedding());
        assert!(!ShardRole::Dense.is_embedding());
    }

    #[test]
    fn spec_exposes_qps_max() {
        let spec = ShardSpec {
            name: "emb-t0-s0".into(),
            role: ShardRole::Embedding { table: 0, shard: 0 },
            pod: PodSpec::new("emb-t0-s0", ResourceRequest::cpu(2000, 1 << 30), 3.0),
            service: ShardService::Sparse {
                secs: 0.01,
                base_secs: 0.003,
            },
            expected_gathers: 3686.0,
        };
        assert!((spec.qps_max() - 100.0).abs() < 1e-9);
    }
}

//! Steady-state replica sizing — the fixed-target-QPS experiments
//! (Figures 13, 15, 16, 18, 20).

use er_cluster::{Cluster, NodePool, ScheduleError};
use er_sim::SimTime;

use crate::{Calibration, Platform, ServingPlan};

/// Fraction of a replica's stress-tested `QPS_max` the autoscaler sustains
/// in steady state. Kubernetes HPA converges to the target with a little
/// headroom; running replicas at 100% of `QPS_max` would blow the tail
/// latency the moment traffic jitters.
pub const STEADY_UTILIZATION: f64 = 0.85;

/// The converged deployment for a fixed target QPS: what Kubernetes HPA
/// settles on once traffic is steady.
///
/// # Examples
///
/// ```
/// use elasticrec::{plan, Calibration, Platform, Strategy, SteadyState};
/// use er_model::configs;
///
/// let calib = Calibration::cpu_only();
/// let p = plan(&configs::rm1(), Platform::CpuOnly, Strategy::ModelWise, &calib);
/// let s = SteadyState::size(&p, 100.0, &calib).unwrap();
/// assert!(s.nodes_used >= 1);
/// assert!(s.memory_bytes >= 23 << 30); // at least one whole-model copy
/// ```
#[derive(Debug, Clone)]
pub struct SteadyState {
    /// `(deployment name, replica count)` in plan order.
    pub replicas: Vec<(String, usize)>,
    /// Total memory allocated across all shard replicas — the paper's
    /// "memory allocation size" metric.
    pub memory_bytes: u64,
    /// Server nodes hosting at least one pod — the paper's cost metric.
    pub nodes_used: usize,
    /// Nodes in use per pool, in pool order (one entry for the paper's
    /// homogeneous clusters).
    pub nodes_per_pool: Vec<usize>,
    /// The target QPS the sizing satisfies.
    pub target_qps: f64,
}

impl SteadyState {
    /// Sizes every shard deployment for `target_qps` and bin-packs the
    /// replicas onto cluster nodes.
    ///
    /// Every shard sees the full query stream (each query fans out to all
    /// shards), so each deployment independently needs
    /// `ceil(target / (QPS_max × utilization))` replicas.
    ///
    /// # Errors
    ///
    /// Returns a [`ScheduleError`] if a pod cannot fit on a node.
    ///
    /// # Panics
    ///
    /// Panics if `target_qps` is non-positive.
    pub fn size(
        serving_plan: &ServingPlan,
        target_qps: f64,
        calib: &Calibration,
    ) -> Result<Self, ScheduleError> {
        let profile = calib.node_profile(serving_plan.platform == Platform::CpuGpu);
        Self::size_with_pools(serving_plan, target_qps, vec![NodePool::new(profile, None)])
    }

    /// Like [`SteadyState::size`], but over a heterogeneous cluster of node
    /// pools (an extension beyond the paper's homogeneous testbeds; pods
    /// prefer earlier pools).
    ///
    /// # Errors
    ///
    /// Returns a [`ScheduleError`] if a pod cannot fit on any pool's node.
    ///
    /// # Panics
    ///
    /// Panics if `target_qps` is non-positive or `pools` is empty.
    pub fn size_with_pools(
        serving_plan: &ServingPlan,
        target_qps: f64,
        pools: Vec<NodePool>,
    ) -> Result<Self, ScheduleError> {
        assert!(
            target_qps.is_finite() && target_qps > 0.0,
            "target QPS must be positive, got {target_qps}"
        );
        let num_pools = pools.len();
        let mut cluster = Cluster::with_pools(pools);
        let mut replicas = Vec::with_capacity(serving_plan.shards.len());
        for shard in &serving_plan.shards {
            let n = Self::replicas_for(shard.qps_max(), target_qps);
            cluster.create_deployment(&shard.name, shard.pod.clone(), n, SimTime::ZERO)?;
            replicas.push((shard.name.clone(), n));
        }
        Ok(Self {
            replicas,
            memory_bytes: cluster.memory_allocated_bytes(),
            nodes_used: cluster.nodes_used(),
            nodes_per_pool: (0..num_pools)
                .map(|i| cluster.nodes_used_in_pool(i))
                .collect(),
            target_qps,
        })
    }

    /// Replicas needed for one deployment at a target rate.
    pub fn replicas_for(qps_max: f64, target_qps: f64) -> usize {
        (target_qps / (qps_max * STEADY_UTILIZATION))
            .ceil()
            .max(1.0) as usize
    }

    /// Replica count of a deployment, 0 if unknown.
    pub fn replicas_of(&self, name: &str) -> usize {
        self.replicas
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, c)| c)
    }

    /// Total replicas across all deployments.
    pub fn total_replicas(&self) -> usize {
        self.replicas.iter().map(|&(_, c)| c).sum()
    }

    /// Memory in GiB, for reporting.
    pub fn memory_gib(&self) -> f64 {
        self.memory_bytes as f64 / (1u64 << 30) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{plan, Strategy};
    use er_model::configs;

    fn calib() -> Calibration {
        Calibration::cpu_only()
    }

    #[test]
    fn replica_arithmetic() {
        assert_eq!(SteadyState::replicas_for(100.0, 50.0), 1);
        assert_eq!(SteadyState::replicas_for(100.0, 100.0), 2); // headroom
        assert_eq!(SteadyState::replicas_for(10.0, 100.0), 12);
        assert_eq!(SteadyState::replicas_for(1e9, 1.0), 1); // floor at one
    }

    #[test]
    fn elastic_beats_model_wise_on_memory_for_every_rm() {
        let c = calib();
        for cfg in configs::all_rms() {
            let mw = plan(&cfg, Platform::CpuOnly, Strategy::ModelWise, &c);
            let el = plan(&cfg, Platform::CpuOnly, Strategy::Elastic, &c);
            let mw_s = SteadyState::size(&mw, 100.0, &c).unwrap();
            let el_s = SteadyState::size(&el, 100.0, &c).unwrap();
            assert!(
                el_s.memory_bytes < mw_s.memory_bytes,
                "{}: elastic {} >= mw {}",
                cfg.name,
                el_s.memory_gib(),
                mw_s.memory_gib()
            );
        }
    }

    #[test]
    fn elastic_uses_no_more_nodes_than_model_wise() {
        let c = calib();
        for cfg in configs::all_rms() {
            let mw = plan(&cfg, Platform::CpuOnly, Strategy::ModelWise, &c);
            let el = plan(&cfg, Platform::CpuOnly, Strategy::Elastic, &c);
            let mw_s = SteadyState::size(&mw, 100.0, &c).unwrap();
            let el_s = SteadyState::size(&el, 100.0, &c).unwrap();
            assert!(
                el_s.nodes_used <= mw_s.nodes_used,
                "{}: elastic {} > mw {}",
                cfg.name,
                el_s.nodes_used,
                mw_s.nodes_used
            );
        }
    }

    #[test]
    fn memory_scales_with_target_for_model_wise() {
        let c = calib();
        let mw = plan(&configs::rm1(), Platform::CpuOnly, Strategy::ModelWise, &c);
        let lo = SteadyState::size(&mw, 50.0, &c).unwrap();
        let hi = SteadyState::size(&mw, 500.0, &c).unwrap();
        assert!(hi.memory_bytes > 2 * lo.memory_bytes);
        assert!(hi.total_replicas() > lo.total_replicas());
    }

    #[test]
    fn hot_shards_get_more_replicas_at_high_traffic() {
        let c = calib();
        let el = plan(&configs::rm1(), Platform::CpuOnly, Strategy::Elastic, &c);
        let s = SteadyState::size(&el, 400.0, &c).unwrap();
        // Shard 0 of table 0 is the hot head.
        let hot = s.replicas_of("emb-t0-s0");
        let plan0 = &el.table_plans[0];
        let coldest = s.replicas_of(&format!("emb-t0-s{}", plan0.num_shards() - 1));
        assert!(hot >= coldest, "hot={hot} cold={coldest}");
    }

    #[test]
    fn replicas_of_unknown_is_zero() {
        let c = calib();
        let mw = plan(&configs::rm1(), Platform::CpuOnly, Strategy::ModelWise, &c);
        let s = SteadyState::size(&mw, 100.0, &c).unwrap();
        assert_eq!(s.replicas_of("nope"), 0);
        assert!(s.replicas_of("model-wise") >= 1);
    }

    #[test]
    fn pooled_sizing_moves_sparse_shards_to_cpu_nodes() {
        use er_cluster::{HardwareProfile, NodePool};
        let c = Calibration::cpu_gpu();
        let el = plan(&configs::rm1(), Platform::CpuGpu, Strategy::Elastic, &c);
        let mixed = SteadyState::size_with_pools(
            &el,
            200.0,
            vec![
                NodePool::new(HardwareProfile::cpu_only_node(), None),
                NodePool::new(HardwareProfile::cpu_gpu_node(), None),
            ],
        )
        .unwrap();
        assert_eq!(mixed.nodes_per_pool.len(), 2);
        // Dense shards need GPUs; sparse shards prefer the CPU pool.
        assert!(mixed.nodes_per_pool[0] >= 1, "{:?}", mixed.nodes_per_pool);
        assert!(mixed.nodes_per_pool[1] >= 1, "{:?}", mixed.nodes_per_pool);
        // Homogeneous sizing reports a single pool.
        let homo = SteadyState::size(&el, 200.0, &c).unwrap();
        assert_eq!(homo.nodes_per_pool.len(), 1);
        assert_eq!(homo.nodes_per_pool[0], homo.nodes_used);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_target_panics() {
        let c = calib();
        let mw = plan(&configs::rm1(), Platform::CpuOnly, Strategy::ModelWise, &c);
        let _ = SteadyState::size(&mw, 0.0, &c);
    }
}

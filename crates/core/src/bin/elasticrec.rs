//! `elasticrec` — command-line front end for the ElasticRec reproduction.
//!
//! ```text
//! elasticrec plan     --model rm1 --platform cpu --strategy elastic
//! elasticrec size     --model rm2 --platform cpu-gpu --strategy model-wise --qps 200
//! elasticrec simulate --model rm1 --qps 100 --duration 60 [--figure19]
//! elasticrec utility  --model rm3 --queries 1000
//! ```
//!
//! Run `elasticrec help` for the full reference.

#![forbid(unsafe_code)]

use std::process::ExitCode;

use elasticrec::{
    plan, Calibration, Platform, ServingPlan, Simulation, SimulationConfig, SteadyState, Strategy,
};
use er_model::{configs, ModelConfig};
use er_workload::TrafficSchedule;

const HELP: &str = "\
elasticrec — microservice-based RecSys model serving (ISCA'24 reproduction)

USAGE:
    elasticrec <COMMAND> [OPTIONS]

COMMANDS:
    plan        Show the shard deployment plan for a model
    size        Steady-state sizing (memory, nodes, replicas) at a target QPS
    simulate    Serve simulated traffic and report latency/SLA behaviour
    utility     Per-shard memory utility of the first embedding table
    help        Show this message

OPTIONS:
    --model <rm1|rm2|rm3>            Workload from the paper's Table II [default: rm1]
    --platform <cpu|cpu-gpu>         Testbed [default: cpu]
    --strategy <elastic|model-wise|cached>
                                     Allocation strategy [default: elastic]
    --qps <N>                        Target or offered QPS [default: 100]
    --duration <SECS>                Simulated seconds (simulate) [default: 60]
    --seed <N>                       RNG seed (simulate/utility) [default: 42]
    --queries <N>                    Queries to sample (utility) [default: 1000]
    --figure19                       Use the paper's stepped traffic (simulate)
";

/// Parsed command-line options.
#[derive(Debug, Clone)]
struct Options {
    command: String,
    model: ModelConfig,
    platform: Platform,
    strategy: Strategy,
    qps: f64,
    duration: f64,
    seed: u64,
    queries: usize,
    figure19: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let command = args.first().cloned().unwrap_or_else(|| "help".to_owned());
    let mut model = configs::rm1();
    let mut platform = Platform::CpuOnly;
    let mut strategy = Strategy::Elastic;
    let mut qps = 100.0;
    let mut duration = 60.0;
    let mut seed = 42;
    let mut queries = 1000;
    let mut figure19 = false;

    let mut i = 1;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = || -> Result<&String, String> {
            args.get(i + 1)
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag {
            "--model" => {
                model = match value()?.as_str() {
                    "rm1" => configs::rm1(),
                    "rm2" => configs::rm2(),
                    "rm3" => configs::rm3(),
                    other => return Err(format!("unknown model '{other}'")),
                };
                i += 2;
            }
            "--platform" => {
                platform = match value()?.as_str() {
                    "cpu" => Platform::CpuOnly,
                    "cpu-gpu" => Platform::CpuGpu,
                    other => return Err(format!("unknown platform '{other}'")),
                };
                i += 2;
            }
            "--strategy" => {
                strategy = match value()?.as_str() {
                    "elastic" => Strategy::Elastic,
                    "model-wise" => Strategy::ModelWise,
                    "cached" => Strategy::ModelWiseCached { gpu_hit_rate: 0.9 },
                    other => return Err(format!("unknown strategy '{other}'")),
                };
                i += 2;
            }
            "--qps" => {
                qps = value()?
                    .parse()
                    .map_err(|e| format!("bad --qps value: {e}"))?;
                i += 2;
            }
            "--duration" => {
                duration = value()?
                    .parse()
                    .map_err(|e| format!("bad --duration value: {e}"))?;
                i += 2;
            }
            "--seed" => {
                seed = value()?
                    .parse()
                    .map_err(|e| format!("bad --seed value: {e}"))?;
                i += 2;
            }
            "--queries" => {
                queries = value()?
                    .parse()
                    .map_err(|e| format!("bad --queries value: {e}"))?;
                i += 2;
            }
            "--figure19" => {
                figure19 = true;
                i += 1;
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(Options {
        command,
        model,
        platform,
        strategy,
        qps,
        duration,
        seed,
        queries,
        figure19,
    })
}

fn calibration(platform: Platform) -> Calibration {
    match platform {
        Platform::CpuOnly => Calibration::cpu_only(),
        Platform::CpuGpu => Calibration::cpu_gpu(),
    }
}

fn build_plan(opts: &Options) -> ServingPlan {
    plan(
        &opts.model,
        opts.platform,
        opts.strategy,
        &calibration(opts.platform),
    )
}

fn cmd_plan(opts: &Options) {
    let p = build_plan(opts);
    println!(
        "{} on {:?} with {:?}: {} shard deployment(s)\n",
        opts.model.name,
        opts.platform,
        opts.strategy,
        p.num_shards()
    );
    println!(
        "{:<14} {:>10} {:>12} {:>10} {:>12}",
        "shard", "cores", "memory", "qps_max", "gathers/query"
    );
    for s in &p.shards {
        println!(
            "{:<14} {:>10} {:>9.2} GiB {:>10.1} {:>12.0}",
            s.name,
            s.pod.resources().cpu_millicores / 1000,
            s.pod.resources().memory_bytes as f64 / (1u64 << 30) as f64,
            s.qps_max(),
            s.expected_gathers,
        );
    }
    if !p.table_plans.is_empty() {
        println!(
            "\ntable partition (per table): cuts at {:?}",
            p.table_plans[0].cuts()
        );
    }
}

fn cmd_size(opts: &Options) -> Result<(), String> {
    let p = build_plan(opts);
    let calib = calibration(opts.platform);
    let s = SteadyState::size(&p, opts.qps, &calib).map_err(|e| e.to_string())?;
    println!(
        "{} / {:?} / {:?} at {} QPS:",
        opts.model.name, opts.platform, opts.strategy, opts.qps
    );
    println!("  memory:   {:.2} GiB", s.memory_gib());
    println!("  nodes:    {}", s.nodes_used);
    println!("  replicas: {}", s.total_replicas());
    for (name, n) in &s.replicas {
        println!("    {name:<14} x{n}");
    }
    Ok(())
}

fn cmd_simulate(opts: &Options) {
    let p = build_plan(opts);
    let calib = calibration(opts.platform);
    let schedule = if opts.figure19 {
        TrafficSchedule::figure19(opts.qps / 5.0, opts.duration / 8.0)
    } else {
        TrafficSchedule::constant(opts.qps)
    };
    let cfg = SimulationConfig::new(schedule, opts.duration, opts.seed);
    let out = Simulation::run(&p, &calib, &cfg);
    println!(
        "{} / {:?} / {:?}, {:.0} s of traffic:",
        opts.model.name, opts.platform, opts.strategy, opts.duration
    );
    println!(
        "  queries:      {} injected, {} completed",
        out.total_queries, out.completed_queries
    );
    println!(
        "  latency:      mean {:.0} ms, p95 {:.0} ms, p99 {:.0} ms",
        out.mean_latency_secs() * 1e3,
        out.latency.percentile(0.95) * 1e3,
        out.latency.percentile(0.99) * 1e3,
    );
    println!(
        "  SLA:          {}/{} intervals violated 400 ms p95",
        out.sla_violation_intervals, out.metric_intervals
    );
    println!(
        "  memory:       peak {:.1} GiB, final nodes {}",
        out.peak_memory_gib, out.final_nodes_used
    );
    let st = &out.stages;
    println!(
        "  breakdown:    wait {:.1} ms | frontend {:.1} ms | sparse phase {:.1} ms | top {:.1} ms | network {:.1} ms",
        st.frontend_wait.mean() * 1e3,
        st.frontend_service.mean() * 1e3,
        st.sparse_phase.mean() * 1e3,
        (st.top_wait.mean() + st.top_service.mean()) * 1e3,
        st.client_rtt.mean() * 1e3,
    );
}

fn cmd_utility(opts: &Options) {
    let p = build_plan(opts);
    let table = &p.table_plans[0];
    let gathers = opts.model.batch_size * opts.model.tables[0].pooling as usize;
    let report = elasticrec::utility::measure_table_utility(
        table,
        opts.model.locality_p,
        opts.queries,
        gathers,
        opts.seed,
    );
    println!(
        "{} table 0 under {:?} ({} shards), first {} queries:",
        opts.model.name,
        opts.strategy,
        table.num_shards(),
        opts.queries
    );
    for s in &report {
        println!(
            "  shard {}: {:>10} rows, {:>9} touched, utility {:.1}%",
            s.shard + 1,
            s.size,
            s.touched,
            100.0 * s.utility()
        );
    }
    println!(
        "  aggregate utility: {:.1}%",
        100.0 * elasticrec::utility::aggregate_utility(&report)
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{HELP}");
            return ExitCode::FAILURE;
        }
    };
    match opts.command.as_str() {
        "plan" => cmd_plan(&opts),
        "size" => {
            if let Err(e) = cmd_size(&opts) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
        "simulate" => cmd_simulate(&opts),
        "utility" => cmd_utility(&opts),
        "help" | "--help" | "-h" => println!("{HELP}"),
        other => {
            eprintln!("error: unknown command '{other}'\n\n{HELP}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn defaults_are_sane() {
        let o = parse_args(&args(&["plan"])).unwrap();
        assert_eq!(o.command, "plan");
        assert_eq!(o.model.name, "RM1");
        assert_eq!(o.platform, Platform::CpuOnly);
        assert_eq!(o.qps, 100.0);
        assert!(!o.figure19);
    }

    #[test]
    fn all_flags_parse() {
        let o = parse_args(&args(&[
            "simulate",
            "--model",
            "rm3",
            "--platform",
            "cpu-gpu",
            "--strategy",
            "cached",
            "--qps",
            "250",
            "--duration",
            "30",
            "--seed",
            "7",
            "--queries",
            "500",
            "--figure19",
        ]))
        .unwrap();
        assert_eq!(o.model.name, "RM3");
        assert_eq!(o.platform, Platform::CpuGpu);
        assert!(matches!(o.strategy, Strategy::ModelWiseCached { .. }));
        assert_eq!(o.qps, 250.0);
        assert_eq!(o.duration, 30.0);
        assert_eq!(o.seed, 7);
        assert_eq!(o.queries, 500);
        assert!(o.figure19);
    }

    #[test]
    fn bad_inputs_are_rejected() {
        assert!(parse_args(&args(&["size", "--model", "rm9"])).is_err());
        assert!(parse_args(&args(&["size", "--platform", "tpu"])).is_err());
        assert!(parse_args(&args(&["size", "--qps"])).is_err());
        assert!(parse_args(&args(&["size", "--qps", "abc"])).is_err());
        assert!(parse_args(&args(&["size", "--wat"])).is_err());
    }

    #[test]
    fn empty_args_default_to_help() {
        let o = parse_args(&[]).unwrap();
        assert_eq!(o.command, "help");
    }
}

//! Reusable scratch state for the zero-allocation sharded forward pass.

use er_partition::BucketizedLookup;
use er_tensor::Matrix;

/// Caller-owned scratch for [`crate::ShardedDlrm::forward_ws`]: every
/// intermediate of the sharded serving path — remapped indices, bucketized
/// per-shard arrays, per-shard partial pools, pooled embeddings, the
/// interaction output, and the MLP ping-pong buffers — lives here and is
/// recycled across queries.
///
/// Buffers start tiny and grow to the workload's peak shapes on the first
/// few calls; from then on a steady-state forward performs **zero heap
/// allocations** (asserted by the `alloc-count` test suite). One workspace
/// serves one caller at a time; create one per thread with
/// [`crate::ShardedDlrm::workspace`].
///
/// # Examples
///
/// ```
/// use elasticrec::ShardedDlrm;
/// use er_model::{configs, Dlrm, QueryGenerator};
/// use er_partition::PartitionPlan;
/// use er_sim::SimRng;
///
/// let cfg = configs::rm1().scaled_tables(200).with_num_tables(2);
/// let model = Dlrm::with_seed(&cfg, 1);
/// let counts: Vec<Vec<u64>> = vec![(0..200).map(|i| 200 - i).collect(); 2];
/// let plans = vec![PartitionPlan::new(vec![20, 200], 200).unwrap(); 2];
/// let sharded = ShardedDlrm::new(model, &counts, plans).unwrap();
///
/// let mut ws = sharded.workspace();
/// let gen = QueryGenerator::new(&cfg);
/// let mut rng = SimRng::seed_from(3);
/// for _ in 0..3 {
///     let q = gen.generate(&mut rng);
///     // Bit-identical to sharded.forward_seq(&q), without the per-query
///     // allocations.
///     assert_eq!(*sharded.forward_ws(&q, &mut ws), sharded.forward_seq(&q));
/// }
/// ```
#[derive(Debug, Clone)]
pub struct ForwardWorkspace {
    /// Current table's lookup indices remapped into hotness-sorted space.
    pub(crate) sorted: Vec<u32>,
    /// Current table's per-shard `(index, offset)` arrays.
    pub(crate) buckets: BucketizedLookup,
    /// One shard's pooled partial (`num_inputs x dim`).
    pub(crate) partial: Matrix,
    /// Per-table pooled embeddings, in table order.
    pub(crate) pooled: Vec<Matrix>,
    /// Dot-interaction output feeding the top MLP.
    pub(crate) interacted: Matrix,
    /// MLP ping-pong scratch; the forward result is returned out of one of
    /// these, so it stays valid until the next `forward_ws` call.
    pub(crate) mlp_a: Matrix,
    pub(crate) mlp_b: Matrix,
}

impl ForwardWorkspace {
    /// Creates a workspace for a model with `num_tables` embedding tables.
    /// All buffers start at placeholder size and grow on first use.
    pub(crate) fn for_tables(num_tables: usize) -> Self {
        Self {
            sorted: Vec::new(),
            buckets: BucketizedLookup {
                indices: Vec::new(),
                offsets: Vec::new(),
            },
            partial: Matrix::zeros(1, 1),
            pooled: vec![Matrix::zeros(1, 1); num_tables],
            interacted: Matrix::zeros(1, 1),
            mlp_a: Matrix::zeros(1, 1),
            mlp_b: Matrix::zeros(1, 1),
        }
    }
}

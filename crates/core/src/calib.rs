//! Performance-model calibration.
//!
//! The paper measures serving throughput on physical hardware; this
//! reproduction computes it from a small set of effective-rate constants.
//! The constants fold real-system overheads (framework dispatch, container
//! isolation, cache behaviour of random gathers) into per-core effective
//! rates, chosen so per-replica QPS lands in the paper's regime (tens to a
//! few hundred QPS per container, Figure 5) while preserving the relative
//! shapes the experiments depend on: dense cost scales with model FLOPs,
//! sparse cost with gathered bytes, and GPUs accelerate dense layers by an
//! order of magnitude.

use er_cluster::HardwareProfile;
use er_units::{Bytes, Flops};
use serde::{Deserialize, Serialize};

/// Calibration constants for the serving performance model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// Effective dense-MLP throughput per allocated CPU core (FLOP/s),
    /// including framework and batching overheads.
    pub cpu_flops_per_core: f64,
    /// Fixed cost per dense-stage invocation on CPU (seconds).
    pub dense_base_secs: f64,
    /// Effective embedding-gather throughput per allocated CPU core
    /// (bytes/s) for a containerized sparse shard service.
    pub gather_bytes_per_sec_per_core: f64,
    /// Fixed cost per sparse-stage invocation (seconds): request handling,
    /// bucketized-array decode, pooling setup.
    pub sparse_base_secs: f64,
    /// Effective GPU throughput for dense layers (FLOP/s), small-batch
    /// regime.
    pub gpu_flops_per_sec: f64,
    /// Fixed cost per GPU dense invocation (launch + PCIe), seconds.
    pub gpu_base_secs: f64,
    /// Effective GPU-HBM gather bandwidth (bytes/s) for cached embeddings.
    pub gpu_gather_bytes_per_sec: f64,
    /// CPU cores requested by a monolithic model-wise container.
    pub mw_cores: u32,
    /// Cores one query's dense stage can actually use inside the monolith.
    /// Monolithic serving frameworks bound intra-op parallelism per worker,
    /// so the dense stage does not scale to the whole node even though the
    /// container owns it; the memory-bandwidth-bound sparse stage does.
    /// This is the root of the layer-QPS mismatch in the paper's Figure 5.
    pub mw_worker_cores: u32,
    /// CPU cores requested by an ElasticRec dense shard container.
    pub dense_cores: u32,
    /// CPU cores requested by an ElasticRec embedding shard container.
    pub sparse_cores: u32,
    /// Per-container memory floor (code, buffers) — `min_mem_alloc` in
    /// Algorithm 1.
    pub min_mem_alloc_bytes: u64,
    /// Maximum shards per table the DP may produce (`S_max`).
    pub s_max: usize,
    /// Candidate cut count for the bucketed DP.
    pub dp_candidates: usize,
    /// `target_traffic` constant for Algorithm 1 (the paper uses 1000).
    pub dp_target_traffic: f64,
    /// Container startup: fixed seconds plus seconds per gigabyte of model
    /// parameters loaded.
    pub startup_fixed_secs: f64,
    /// Startup seconds per GiB of parameters the container loads.
    pub startup_secs_per_gib: f64,
}

impl Calibration {
    /// Calibration for the paper's CPU-only cluster (Section V-A).
    pub fn cpu_only() -> Self {
        Self {
            cpu_flops_per_core: 25.0e6,
            dense_base_secs: 6.0e-3,
            gather_bytes_per_sec_per_core: 20.0e6,
            sparse_base_secs: 3.0e-3,
            // Unused on CPU-only; kept so one struct serves both platforms.
            gpu_flops_per_sec: 2.5e9,
            gpu_base_secs: 3.0e-3,
            gpu_gather_bytes_per_sec: 2.0e9,
            // A model-wise replica is a whole inference server: production
            // model-wise fleets run one server per node (paper Figure 2).
            mw_cores: 64,
            mw_worker_cores: 16,
            dense_cores: 16,
            sparse_cores: 1,
            min_mem_alloc_bytes: 256 << 20,
            s_max: 4,
            dp_candidates: 48,
            dp_target_traffic: 1000.0,
            startup_fixed_secs: 2.0,
            startup_secs_per_gib: 1.0,
        }
    }

    /// Calibration for the paper's GKE CPU-GPU cluster.
    pub fn cpu_gpu() -> Self {
        Self {
            // n1-standard-32 vCPUs are weaker than dedicated Xeon cores.
            cpu_flops_per_core: 20.0e6,
            gather_bytes_per_sec_per_core: 16.0e6,
            // One model-wise server per 32-vCPU GKE node.
            mw_cores: 32,
            mw_worker_cores: 16,
            // Dense shards are GPU-centric and need only a few host cores.
            dense_cores: 8,
            sparse_cores: 2,
            // The paper's CPU-GPU runs settle on 3 shards per table.
            s_max: 3,
            ..Self::cpu_only()
        }
    }

    /// Node hardware for a platform.
    pub fn node_profile(&self, gpu: bool) -> HardwareProfile {
        if gpu {
            HardwareProfile::cpu_gpu_node()
        } else {
            HardwareProfile::cpu_only_node()
        }
    }

    /// Dense-stage CPU seconds for `flops` on a `cores`-wide container.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn cpu_dense_secs(&self, flops: Flops, cores: u32) -> f64 {
        assert!(cores > 0, "container needs at least one core");
        self.dense_base_secs + flops.raw() / (cores as f64 * self.cpu_flops_per_core)
    }

    /// Dense-stage GPU seconds for `flops`.
    pub fn gpu_dense_secs(&self, flops: Flops) -> f64 {
        self.gpu_base_secs + flops.raw() / self.gpu_flops_per_sec
    }

    /// Sparse-stage seconds for gathering `bytes` on a `cores`-wide CPU
    /// container.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn cpu_sparse_secs(&self, bytes: Bytes, cores: u32) -> f64 {
        assert!(cores > 0, "container needs at least one core");
        self.sparse_base_secs + bytes.raw() / (cores as f64 * self.gather_bytes_per_sec_per_core)
    }

    /// Sparse-stage seconds when a fraction `gpu_hit_rate` of gathered bytes
    /// is served from a GPU-side embedding cache (Section VI-E).
    ///
    /// # Panics
    ///
    /// Panics if `gpu_hit_rate` is outside `[0, 1]` or `cores` is zero.
    pub fn cached_sparse_secs(&self, bytes: Bytes, cores: u32, gpu_hit_rate: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&gpu_hit_rate),
            "hit rate must be in [0,1], got {gpu_hit_rate}"
        );
        let cpu_bytes = bytes * (1.0 - gpu_hit_rate);
        let gpu_bytes = bytes * gpu_hit_rate;
        self.sparse_base_secs
            + cpu_bytes.raw() / (cores as f64 * self.gather_bytes_per_sec_per_core)
            + gpu_bytes.raw() / self.gpu_gather_bytes_per_sec
    }

    /// Container startup time given the parameter bytes it loads.
    pub fn startup_secs(&self, param_bytes: Bytes) -> f64 {
        self.startup_fixed_secs + self.startup_secs_per_gib * param_bytes.gib()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_secs_scale_with_flops_and_cores() {
        let c = Calibration::cpu_only();
        let slow = c.cpu_dense_secs(Flops::of(100_000_000.0), 8);
        let fast = c.cpu_dense_secs(Flops::of(100_000_000.0), 32);
        assert!(fast < slow);
        assert!(c.cpu_dense_secs(Flops::of(200_000_000.0), 8) > slow);
    }

    #[test]
    fn gpu_is_much_faster_than_cpu_for_dense() {
        let c = Calibration::cpu_gpu();
        let flops = Flops::of(94_000_000.0); // RM3-scale batch
        assert!(c.gpu_dense_secs(flops) < c.cpu_dense_secs(flops, 16) / 3.0);
    }

    #[test]
    fn sparse_secs_scale_with_bytes() {
        let c = Calibration::cpu_only();
        let one = c.cpu_sparse_secs(Bytes::of(500_000.0), 2);
        let two = c.cpu_sparse_secs(Bytes::of(1_000_000.0), 2);
        assert!(two > one);
        // Affine: doubling bytes doubles only the bandwidth term.
        assert!(two - one > 0.9 * (one - c.sparse_base_secs));
    }

    #[test]
    fn cache_cuts_sparse_latency_substantially() {
        // The paper reports a ~47% embedding-latency reduction with a 90%
        // hit-rate GPU cache.
        let c = Calibration::cpu_gpu();
        let bytes = Bytes::of(5_242_880.0); // RM1 per-query gather volume
        let plain = c.cpu_sparse_secs(bytes, 16);
        let cached = c.cached_sparse_secs(bytes, 16, 0.90);
        let cut = 1.0 - cached / plain;
        assert!(cut > 0.30 && cut < 0.95, "cut={cut}");
    }

    #[test]
    fn startup_grows_with_model_size() {
        let c = Calibration::cpu_only();
        let small = c.startup_secs(Bytes::of_u64(100 << 20)); // a shard
        let large = c.startup_secs(Bytes::of_u64(26 << 30)); // a whole RM1 model
        assert!(large > small + 20.0, "small={small} large={large}");
    }

    #[test]
    fn per_replica_qps_lands_in_paper_regime() {
        // RM1-scale: dense ~5.2 MFLOP/query, sparse ~5.2 MB/query.
        let c = Calibration::cpu_only();
        let dense = 1.0 / c.cpu_dense_secs(Flops::of(5_200_000.0), c.mw_cores);
        let sparse = 1.0 / c.cpu_sparse_secs(Bytes::of(5_242_880.0), c.mw_cores);
        assert!(dense > 20.0 && dense < 300.0, "dense={dense}");
        assert!(sparse > 20.0 && sparse < 300.0, "sparse={sparse}");
        // Small-pod sparse shards land in the tens-to-hundreds regime too.
        let shard = 1.0 / c.cpu_sparse_secs(Bytes::of(0.9 * 524_288.0), c.sparse_cores);
        assert!(shard > 20.0 && shard < 500.0, "shard={shard}");
    }

    #[test]
    fn node_profiles_match_platform() {
        let c = Calibration::cpu_only();
        assert!(!c.node_profile(false).has_gpu());
        assert!(c.node_profile(true).has_gpu());
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        Calibration::cpu_only().cpu_dense_secs(Flops::of(1.0), 0);
    }

    #[test]
    #[should_panic(expected = "hit rate")]
    fn bad_hit_rate_panics() {
        Calibration::cpu_gpu().cached_sparse_secs(Bytes::of(1.0), 1, 1.5);
    }
}

//! Memory-utility measurement (paper Figures 14 and 17).
//!
//! The paper defines memory utility as the percentage of embeddings inside
//! a shard that are actually accessed while servicing the first 1,000
//! queries. Model-wise allocation keeps whole tables resident and touches
//! ~6% of them; ElasticRec's hot shards approach 100% utility while cold
//! shards stay cheap to host.

use er_distribution::LocalityTarget;
use er_partition::PartitionPlan;
use er_sim::SimRng;
use serde::{Deserialize, Serialize};

/// Utility of one shard after a measurement run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShardUtility {
    /// Shard index within the table's plan (0 = hottest).
    pub shard: usize,
    /// Embeddings in the shard.
    pub size: u64,
    /// Distinct embeddings touched during the run.
    pub touched: u64,
}

impl ShardUtility {
    /// Touched fraction in `[0, 1]`.
    pub fn utility(&self) -> f64 {
        self.touched as f64 / self.size as f64
    }
}

/// Compact bitset for marking touched embedding IDs.
struct TouchSet {
    words: Vec<u64>,
}

impl TouchSet {
    fn new(len: u64) -> Self {
        Self {
            words: vec![0; len.div_ceil(64) as usize],
        }
    }

    /// Marks `id`, returning whether it was newly touched.
    fn mark(&mut self, id: u64) -> bool {
        let (w, b) = ((id / 64) as usize, id % 64);
        let fresh = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        fresh
    }
}

/// Measures per-shard memory utility of one table under a partition plan.
///
/// Draws `queries × gathers_per_query` accesses from a Zipf distribution
/// with locality `locality_p` (IDs in hotness order, matching the sorted
/// table) and counts distinct IDs per shard.
///
/// # Panics
///
/// Panics if `queries` or `gathers_per_query` is zero.
///
/// # Examples
///
/// ```
/// use elasticrec::utility::measure_table_utility;
/// use er_partition::PartitionPlan;
///
/// let plan = PartitionPlan::new(vec![10_000, 100_000], 100_000).unwrap();
/// let report = measure_table_utility(&plan, 0.90, 100, 128, 1);
/// // The hot shard is far better utilized than the cold one.
/// assert!(report[0].utility() > 5.0 * report[1].utility());
/// ```
pub fn measure_table_utility(
    plan: &PartitionPlan,
    locality_p: f64,
    queries: usize,
    gathers_per_query: usize,
    seed: u64,
) -> Vec<ShardUtility> {
    assert!(queries > 0, "need at least one query");
    assert!(gathers_per_query > 0, "need at least one gather per query");
    let n = plan.table_len();
    // Tabulate the CDF once: utility runs draw millions of samples, and
    // the analytic bisection would dominate the measurement.
    let dist = LocalityTarget::new(locality_p).solve(n).tabulate();
    let mut rng = SimRng::seed_from(seed);
    let mut touched = TouchSet::new(n);
    let mut per_shard_touched = vec![0u64; plan.num_shards()];

    for _ in 0..queries {
        for _ in 0..gathers_per_query {
            let id = dist.quantile(rng.uniform()) - 1; // 0-based sorted ID
            if touched.mark(id) {
                per_shard_touched[plan.shard_of_id(id)] += 1;
            }
        }
    }

    (0..plan.num_shards())
        .map(|s| ShardUtility {
            shard: s,
            size: plan.shard_size(s),
            touched: per_shard_touched[s],
        })
        .collect()
}

/// Aggregate utility across shards: total touched over total size — the
/// number reported for model-wise allocation (a single all-covering
/// shard).
pub fn aggregate_utility(report: &[ShardUtility]) -> f64 {
    let touched: u64 = report.iter().map(|s| s.touched).sum();
    let size: u64 = report.iter().map(|s| s.size).sum();
    touched as f64 / size as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_shards_have_higher_utility() {
        let plan = PartitionPlan::new(vec![5_000, 20_000, 100_000], 100_000).unwrap();
        let report = measure_table_utility(&plan, 0.90, 200, 128, 3);
        assert_eq!(report.len(), 3);
        assert!(report[0].utility() > report[1].utility());
        assert!(report[1].utility() > report[2].utility());
    }

    #[test]
    fn model_wise_utility_is_low() {
        // A single shard over a skewed table: most entries never touched.
        let plan = PartitionPlan::single(1_000_000);
        let report = measure_table_utility(&plan, 0.90, 1000, 128, 4);
        let u = aggregate_utility(&report);
        assert!(u < 0.25, "utility={u}");
        assert!(u > 0.0);
    }

    #[test]
    fn partitioning_does_not_change_aggregate_utility() {
        // Same accesses, different shard boundaries: the total touched
        // fraction is a property of the distribution, not the plan.
        let single = measure_table_utility(&PartitionPlan::single(50_000), 0.90, 300, 64, 9);
        let split = measure_table_utility(
            &PartitionPlan::new(vec![5_000, 50_000], 50_000).unwrap(),
            0.90,
            300,
            64,
            9,
        );
        let a = aggregate_utility(&single);
        let b = aggregate_utility(&split);
        assert!((a - b).abs() < 1e-12, "a={a} b={b}");
    }

    #[test]
    fn touched_never_exceeds_size_or_accesses() {
        let plan = PartitionPlan::new(vec![100, 10_000], 10_000).unwrap();
        let queries = 50;
        let gathers = 32;
        let report = measure_table_utility(&plan, 0.90, queries, gathers, 5);
        let total: u64 = report.iter().map(|s| s.touched).sum();
        assert!(total <= (queries * gathers) as u64);
        for s in &report {
            assert!(s.touched <= s.size);
            assert!(s.utility() <= 1.0);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let plan = PartitionPlan::single(10_000);
        let a = measure_table_utility(&plan, 0.90, 100, 32, 7);
        let b = measure_table_utility(&plan, 0.90, 100, 32, 7);
        assert_eq!(a[0].touched, b[0].touched);
    }

    #[test]
    fn bitset_marks_once() {
        let mut t = TouchSet::new(130);
        assert!(t.mark(0));
        assert!(!t.mark(0));
        assert!(t.mark(129));
        assert!(!t.mark(129));
        assert!(t.mark(64));
    }

    #[test]
    #[should_panic(expected = "at least one query")]
    fn zero_queries_panics() {
        measure_table_utility(&PartitionPlan::single(100), 0.9, 0, 1, 0);
    }
}

//! The parallel shard data plane: a persistent worker pool executing one
//! query's embedding-shard gathers concurrently.
//!
//! ElasticRec's microservices run every embedding shard as an independent
//! container, so one query's shard gathers are naturally concurrent
//! (Section IV); the sequential [`crate::ShardedDlrm`] walk models that
//! fan-out but executes it one shard at a time. [`ParallelShardExecutor`]
//! supplies the missing execution substrate: `threads` long-lived workers,
//! each owning its own crossbeam task queue. Shard tasks are routed to
//! queues by shard key (so one shard's work always lands on the same
//! worker, like requests pinned to a microservice replica), results carry
//! their submission slot, and callers merge partial pools in a fixed
//! reduction order — making outputs bit-comparable run-to-run and across
//! thread counts.

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A persistent crossbeam worker pool with per-worker task queues, sized
/// once and reused across queries.
///
/// # Examples
///
/// ```
/// use elasticrec::ParallelShardExecutor;
///
/// let pool = ParallelShardExecutor::new(4);
/// let squares = pool.run((0..8).map(|i| {
///     (i, Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
/// }));
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub struct ParallelShardExecutor {
    queues: Vec<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    #[cfg(feature = "race-check")]
    checker: Option<std::sync::Arc<crate::race::RaceChecker>>,
}

/// In-flight results of a [`ParallelShardExecutor::scatter`] call.
///
/// Collecting restores submission order regardless of completion order, so
/// reductions over the results are deterministic.
#[must_use = "collect() must be called to retrieve task results"]
pub struct Pending<T> {
    rx: Receiver<(usize, T)>,
    n: usize,
    #[cfg(feature = "race-check")]
    checker: Option<std::sync::Arc<crate::race::RaceChecker>>,
}

impl<T> std::fmt::Debug for Pending<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pending")
            .field("n", &self.n)
            .finish_non_exhaustive()
    }
}

impl ParallelShardExecutor {
    /// Spawns a pool of `threads` workers (at least one), each with its own
    /// task queue.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let mut queues = Vec::with_capacity(threads);
        let mut workers = Vec::with_capacity(threads);
        for w in 0..threads {
            let (tx, rx) = unbounded::<Job>();
            let handle = std::thread::Builder::new()
                .name(format!("er-shard-worker-{w}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        // A panicking task must not take the worker (and
                        // every shard pinned to it) down with it; the panic
                        // resurfaces at collect() as a missing result.
                        let _ = catch_unwind(AssertUnwindSafe(job));
                    }
                })
                // lint::allow(no_panic): thread spawn failure at pool construction is unrecoverable
                .expect("spawn shard worker");
            queues.push(tx);
            workers.push(handle);
        }
        Self {
            queues,
            workers,
            #[cfg(feature = "race-check")]
            checker: None,
        }
    }

    /// [`ParallelShardExecutor::new`] with a [`crate::race::RaceChecker`]
    /// observing every scatter: each submit, task start/finish, and merge
    /// is clocked, and a violated happens-before edge (mis-routed shard,
    /// queue-order inversion, out-of-order or premature merge) panics with
    /// the reconstructed interleaving. One scatter batch may be in flight
    /// at a time on a race-checked pool.
    ///
    /// Only available with the `race-check` feature.
    #[cfg(feature = "race-check")]
    pub fn with_race_checking(threads: usize) -> Self {
        let mut pool = Self::new(threads);
        pool.checker = Some(std::sync::Arc::new(crate::race::RaceChecker::new(
            pool.threads(),
        )));
        pool
    }

    /// The checker observing this pool, if race checking is on.
    #[cfg(feature = "race-check")]
    pub fn race_checker(&self) -> Option<&std::sync::Arc<crate::race::RaceChecker>> {
        self.checker.as_ref()
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.queues.len()
    }

    /// Enqueues one task on the queue owned by `key % threads` — all work
    /// for one shard lands on one worker, in submission order.
    pub fn submit(&self, key: usize, job: Job) {
        assert!(
            self.queues[key % self.queues.len()].send(job).is_ok(),
            "worker alive while executor exists"
        );
    }

    /// Submits a batch of keyed tasks and returns immediately; the caller
    /// can overlap its own work (e.g. the dense bottom MLP) before
    /// collecting.
    pub fn scatter<T, I>(&self, jobs: I) -> Pending<T>
    where
        T: Send + 'static,
        I: IntoIterator<Item = (usize, Box<dyn FnOnce() -> T + Send>)>,
    {
        let (tx, rx) = unbounded();
        let mut n = 0;
        #[cfg(feature = "race-check")]
        if let Some(checker) = &self.checker {
            checker.begin_batch();
        }
        for (slot, (key, job)) in jobs.into_iter().enumerate() {
            let tx = tx.clone();
            #[cfg(feature = "race-check")]
            let checker = self.checker.clone();
            #[cfg(feature = "race-check")]
            let worker = key % self.queues.len();
            #[cfg(feature = "race-check")]
            if let Some(c) = &checker {
                c.on_submit(slot, key, worker);
            }
            self.submit(
                key,
                Box::new(move || {
                    #[cfg(feature = "race-check")]
                    if let Some(c) = &checker {
                        c.on_start(slot, worker);
                    }
                    let value = job();
                    #[cfg(feature = "race-check")]
                    if let Some(c) = &checker {
                        c.on_finish(slot, worker);
                    }
                    // The receiver outlives the tasks unless collect()
                    // already panicked; a refused send is then harmless.
                    let _ = tx.send((slot, value));
                }),
            );
            n += 1;
        }
        Pending {
            rx,
            n,
            #[cfg(feature = "race-check")]
            checker: self.checker.clone(),
        }
    }

    /// [`ParallelShardExecutor::scatter`] + [`Pending::collect`] in one
    /// call.
    ///
    /// # Panics
    ///
    /// Panics if any task panicked.
    pub fn run<T, I>(&self, jobs: I) -> Vec<T>
    where
        T: Send + 'static,
        I: IntoIterator<Item = (usize, Box<dyn FnOnce() -> T + Send>)>,
    {
        self.scatter(jobs).collect()
    }
}

impl<T> Pending<T> {
    /// Blocks until every task finished and returns results in submission
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if any task panicked (its result never arrives).
    pub fn collect(self) -> Vec<T> {
        let mut out: Vec<Option<T>> = (0..self.n).map(|_| None).collect();
        for _ in 0..self.n {
            let (slot, value) = self
                .rx
                .recv()
                // lint::allow(no_panic): resurfaces a worker-side panic; losing a shard result is unrecoverable
                .unwrap_or_else(|_| panic!("shard task panicked before returning a result"));
            out[slot] = Some(value);
        }
        // The caller consumes the Vec front to back, so the ascending walk
        // here is the merge order the race checker certifies.
        #[cfg(feature = "race-check")]
        if let Some(c) = &self.checker {
            for slot in 0..self.n {
                c.on_merge(slot);
            }
        }
        out.into_iter()
            // lint::allow(no_panic): scatter assigns each slot exactly one job; n receives fill all slots
            .map(|v| v.expect("each slot filled exactly once"))
            .collect()
    }
}

impl Drop for ParallelShardExecutor {
    fn drop(&mut self) {
        // Disconnect every queue so workers drain and exit their recv loop.
        self.queues.clear();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for ParallelShardExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelShardExecutor")
            .field("threads", &self.threads())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn job<T: Send + 'static>(
        f: impl FnOnce() -> T + Send + 'static,
    ) -> Box<dyn FnOnce() -> T + Send> {
        Box::new(f)
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let pool = ParallelShardExecutor::new(4);
        // Reverse-staggered work so completion order differs from
        // submission order.
        let out = pool.run((0..16usize).map(|i| {
            (
                i,
                job(move || {
                    std::thread::sleep(std::time::Duration::from_micros(((16 - i) * 50) as u64));
                    i * 10
                }),
            )
        }));
        assert_eq!(out, (0..16).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn pool_is_reusable_across_batches() {
        let pool = ParallelShardExecutor::new(2);
        for round in 0..5usize {
            let out = pool.run((0..8usize).map(|i| (i, job(move || i + round))));
            assert_eq!(out, (0..8).map(|i| i + round).collect::<Vec<_>>());
        }
    }

    #[test]
    fn same_key_runs_on_one_worker_in_order() {
        let pool = ParallelShardExecutor::new(3);
        let counter = Arc::new(AtomicUsize::new(0));
        // All tasks share key 7 -> same queue -> strictly sequential, so
        // fetch_add observes 0..n in order.
        let out = pool.run((0..32usize).map(|_| {
            let counter = Arc::clone(&counter);
            (7usize, job(move || counter.fetch_add(1, Ordering::SeqCst)))
        }));
        assert_eq!(out, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn scatter_allows_overlapped_caller_work() {
        let pool = ParallelShardExecutor::new(2);
        let pending = pool.scatter((0..4usize).map(|i| (i, job(move || i * 2))));
        let own_work: usize = (0..100).sum();
        assert_eq!(pending.collect(), vec![0, 2, 4, 6]);
        assert_eq!(own_work, 4950);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = ParallelShardExecutor::new(0);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.run([(0usize, job(|| 42))]), vec![42]);
    }

    #[test]
    #[should_panic(expected = "shard task panicked")]
    fn task_panic_surfaces_at_collect() {
        let pool = ParallelShardExecutor::new(2);
        let _ = pool.run([(0usize, job(|| panic!("boom"))), (1usize, job(|| 1))]);
    }

    #[test]
    fn pool_survives_a_panicking_task() {
        let pool = ParallelShardExecutor::new(1);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run([(0usize, job(|| panic!("boom")))])
        }));
        assert!(r.is_err());
        // The single worker absorbed the panic and still serves tasks.
        assert_eq!(pool.run([(0usize, job(|| 5))]), vec![5]);
    }

    #[test]
    fn drop_joins_workers_cleanly() {
        let pool = ParallelShardExecutor::new(4);
        let _ = pool.run((0..8usize).map(|i| (i, job(move || i))));
        drop(pool); // must not hang or leak
    }

    /// A correct pool passes race checking: every routing, FIFO, and merge
    /// edge the checker asserts actually holds, across reuse and staggered
    /// completion orders.
    #[cfg(feature = "race-check")]
    #[test]
    fn race_checked_pool_passes_clean_parallel_runs() {
        let pool = ParallelShardExecutor::with_race_checking(4);
        for round in 0..3usize {
            let out = pool.run((0..16usize).map(|i| {
                (
                    i,
                    job(move || {
                        // Stagger so completion order differs from
                        // submission order — the merge still ascends.
                        std::thread::sleep(std::time::Duration::from_micros(
                            ((16 - i) * 20) as u64,
                        ));
                        i * 3 + round
                    }),
                )
            }));
            assert_eq!(out, (0..16).map(|i| i * 3 + round).collect::<Vec<_>>());
        }
        let trace = pool
            .race_checker()
            .expect("race-checked pool carries a checker")
            .trace();
        assert!(trace.contains("[collector] merge  slot=15"), "{trace}");
    }
}

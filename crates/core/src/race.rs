//! Vector-clock happens-before checker for the parallel shard data plane.
//!
//! Compiled only under the `race-check` feature. The sharded forward pass
//! is bit-identical to the sequential walk *because* three happens-before
//! edges always hold in [`crate::ParallelShardExecutor`]:
//!
//! 1. **Routing** — every task for shard key `k` executes on worker
//!    `k % threads`, so one shard's tasks are totally ordered by its
//!    worker's queue.
//! 2. **Per-worker FIFO** — a worker starts tasks in exactly the order the
//!    submitter enqueued them (crossbeam channels are FIFO per sender).
//! 3. **Finish-before-merge, ascending** — the collector merges slot `s`
//!    only after slot `s`'s task finished (the result channel carries the
//!    edge), and merges slots in ascending order (the fixed FP reduction
//!    order).
//!
//! [`RaceChecker`] turns those invariants into runtime assertions: each
//! thread (workers, submitter, collector) carries a logical vector clock,
//! every event is logged with a clock snapshot, and a violated edge fails
//! loudly with the reconstructed interleaving so the offending shard pair
//! is named in the panic message. [`ParallelShardExecutor::with_race_checking`]
//! (`crate::ParallelShardExecutor::with_race_checking`) threads a checker
//! through scatter/execute/collect.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::Mutex;

/// A logical vector clock: one monotonic counter per participating thread.
///
/// Clock `a` *happens-before* clock `b` iff every component of `a` is
/// `<=` the matching component of `b` (and they differ). Joining takes the
/// componentwise max — receiving a message makes everything the sender had
/// seen visible to the receiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VectorClock {
    ticks: Vec<u64>,
}

impl VectorClock {
    /// The zero clock over `n` threads.
    pub fn new(n: usize) -> Self {
        Self { ticks: vec![0; n] }
    }

    /// Advances thread `i`'s component (a local step).
    pub fn tick(&mut self, i: usize) {
        self.ticks[i] += 1;
    }

    /// Componentwise max — the receive half of a message edge.
    pub fn join(&mut self, other: &VectorClock) {
        for (t, &o) in self.ticks.iter_mut().zip(&other.ticks) {
            *t = (*t).max(o);
        }
    }

    /// `true` iff `other` happens-before-or-equals `self` (componentwise
    /// `other <= self`).
    pub fn dominates(&self, other: &VectorClock) -> bool {
        self.ticks.iter().zip(&other.ticks).all(|(&s, &o)| s >= o)
    }
}

impl std::fmt::Display for VectorClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("{")?;
        for (i, t) in self.ticks.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{t}")?;
        }
        f.write_str("}")
    }
}

/// One observed event in the scatter/execute/merge lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaceEvent {
    /// The submitter enqueued `slot` (shard key `shard`) on `worker`.
    Submit {
        /// Submission slot (merge position).
        slot: usize,
        /// Shard key the task was routed by.
        shard: usize,
        /// Worker index the task was enqueued on.
        worker: usize,
    },
    /// `worker` dequeued `slot` and began executing it.
    Start {
        /// Submission slot.
        slot: usize,
        /// Executing worker.
        worker: usize,
    },
    /// `worker` finished `slot` and sent its result to the collector.
    Finish {
        /// Submission slot.
        slot: usize,
        /// Executing worker.
        worker: usize,
    },
    /// The collector merged `slot` into the reduction.
    Merge {
        /// Submission slot.
        slot: usize,
    },
}

impl std::fmt::Display for RaceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            RaceEvent::Submit {
                slot,
                shard,
                worker,
            } => {
                write!(
                    f,
                    "[submitter] submit slot={slot} shard={shard} -> worker {worker}"
                )
            }
            RaceEvent::Start { slot, worker } => write!(f, "[worker {worker}]  start  slot={slot}"),
            RaceEvent::Finish { slot, worker } => {
                write!(f, "[worker {worker}]  finish slot={slot}")
            }
            RaceEvent::Merge { slot } => write!(f, "[collector] merge  slot={slot}"),
        }
    }
}

#[derive(Debug)]
struct Recorded {
    event: RaceEvent,
    clock: VectorClock,
}

#[derive(Debug)]
struct State {
    /// Clocks for `threads` workers, then the submitter, then the collector.
    clocks: Vec<VectorClock>,
    log: Vec<Recorded>,
    /// Per slot: the submit-message clock (the submit→start edge payload).
    submit_clock: Vec<Option<VectorClock>>,
    /// Per slot: the finish-message clock (the finish→merge edge payload).
    finish_clock: Vec<Option<VectorClock>>,
    /// Per slot: the shard key, for naming shards in violation traces.
    shard_of: Vec<Option<usize>>,
    /// Per worker: submitted-but-not-started slots, in submission order.
    fifo: Vec<VecDeque<usize>>,
    /// Next slot the collector must merge.
    next_merge: usize,
}

/// Observes one scatter batch at a time and panics — with the reconstructed
/// interleaving — the moment a happens-before edge is violated.
///
/// The instrumented executor calls the `on_*` hooks from the real threads;
/// tests for the checker itself may drive them directly to simulate an
/// interleaving the correct executor can never produce.
#[derive(Debug)]
pub struct RaceChecker {
    threads: usize,
    state: Mutex<State>,
}

impl RaceChecker {
    /// A checker for a pool of `threads` workers.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        Self {
            threads,
            state: Mutex::new(State {
                clocks: vec![VectorClock::new(threads + 2); threads + 2],
                log: Vec::new(),
                submit_clock: Vec::new(),
                finish_clock: Vec::new(),
                shard_of: Vec::new(),
                fifo: vec![VecDeque::new(); threads],
                next_merge: 0,
            }),
        }
    }

    /// Worker count the checker validates routing against.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Resets per-batch slot state (clocks and the event log persist, so a
    /// violation in batch N still shows the tail of batch N−1's events).
    pub fn begin_batch(&self) {
        let mut st = self.lock();
        st.submit_clock.clear();
        st.finish_clock.clear();
        st.shard_of.clear();
        for q in &mut st.fifo {
            q.clear();
        }
        st.next_merge = 0;
    }

    /// The submitter enqueued `slot` (shard key `shard`) on `worker`.
    ///
    /// # Panics
    ///
    /// Panics with rule `fixed-routing` if `worker != shard % threads`.
    pub fn on_submit(&self, slot: usize, shard: usize, worker: usize) {
        let mut st = self.lock();
        let sub = self.threads; // submitter clock index
        st.clocks[sub].tick(sub);
        let clock = st.clocks[sub].clone();
        st.log.push(Recorded {
            event: RaceEvent::Submit {
                slot,
                shard,
                worker,
            },
            clock: clock.clone(),
        });
        if worker != shard % self.threads {
            self.violation(
                &st,
                "fixed-routing",
                &format!(
                    "slot {slot} (shard {shard}) was enqueued on worker {worker}, \
                     but shard {shard} is pinned to worker {}",
                    shard % self.threads
                ),
            );
        }
        ensure_slot(&mut st.submit_clock, slot);
        st.submit_clock[slot] = Some(clock);
        ensure_slot(&mut st.shard_of, slot);
        st.shard_of[slot] = Some(shard);
        st.fifo[worker].push_back(slot);
    }

    /// `worker` dequeued `slot` and began executing it.
    ///
    /// # Panics
    ///
    /// Panics with rule `worker-fifo` if `slot` is not the oldest
    /// unstarted submission on `worker`'s queue, or if it was never
    /// submitted there.
    pub fn on_start(&self, slot: usize, worker: usize) {
        let mut st = self.lock();
        match st.fifo[worker].front().copied() {
            Some(expected) if expected == slot => {
                st.fifo[worker].pop_front();
            }
            Some(expected) => {
                let (se, ss) = (self.shard_name(&st, expected), self.shard_name(&st, slot));
                self.violation(
                    &st,
                    "worker-fifo",
                    &format!(
                        "worker {worker} started slot {slot} (shard {ss}) before \
                         slot {expected} (shard {se}), which was enqueued first"
                    ),
                );
            }
            None => {
                self.violation(
                    &st,
                    "worker-fifo",
                    &format!("worker {worker} started slot {slot} with an empty queue"),
                );
            }
        }
        // Receive the submit→start edge, then take a local step.
        let msg = st.submit_clock.get(slot).and_then(Clone::clone);
        if let Some(msg) = msg {
            st.clocks[worker].join(&msg);
        }
        st.clocks[worker].tick(worker);
        let clock = st.clocks[worker].clone();
        st.log.push(Recorded {
            event: RaceEvent::Start { slot, worker },
            clock,
        });
    }

    /// `worker` finished `slot`; its result (and clock) travel to the
    /// collector.
    pub fn on_finish(&self, slot: usize, worker: usize) {
        let mut st = self.lock();
        st.clocks[worker].tick(worker);
        let clock = st.clocks[worker].clone();
        st.log.push(Recorded {
            event: RaceEvent::Finish { slot, worker },
            clock: clock.clone(),
        });
        ensure_slot(&mut st.finish_clock, slot);
        st.finish_clock[slot] = Some(clock);
    }

    /// The collector merged `slot` into the running reduction.
    ///
    /// # Panics
    ///
    /// Panics with rule `ascending-merge` if slots are merged out of
    /// ascending order, or `finish-before-merge` if `slot`'s task has not
    /// finished — either way the FP reduction order (and so bit-exactness)
    /// would be broken.
    pub fn on_merge(&self, slot: usize) {
        let mut st = self.lock();
        let col = self.threads + 1; // collector clock index
        if slot != st.next_merge {
            let (sa, sb) = (
                self.shard_name(&st, slot),
                self.shard_name(&st, st.next_merge),
            );
            let expected = st.next_merge;
            self.violation(
                &st,
                "ascending-merge",
                &format!(
                    "collector merged slot {slot} (shard {sa}) before slot {expected} \
                     (shard {sb}); partial pools must reduce in ascending slot order \
                     or the FP sum reassociates"
                ),
            );
        }
        let finish = st.finish_clock.get(slot).and_then(Clone::clone);
        match finish {
            Some(msg) => {
                st.clocks[col].join(&msg);
                st.clocks[col].tick(col);
                let clock = st.clocks[col].clone();
                debug_assert!(clock.dominates(&msg), "join establishes dominance");
                st.log.push(Recorded {
                    event: RaceEvent::Merge { slot },
                    clock,
                });
            }
            None => {
                let s = self.shard_name(&st, slot);
                self.violation(
                    &st,
                    "finish-before-merge",
                    &format!(
                        "collector merged slot {slot} (shard {s}) before its task \
                         finished — no finish event establishes the happens-before edge"
                    ),
                );
            }
        }
        st.next_merge += 1;
    }

    /// The interleaving observed so far, one event per line with its clock
    /// snapshot — what violation panics embed.
    pub fn trace(&self) -> String {
        format_trace(&self.lock())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        match self.state.lock() {
            Ok(g) => g,
            // A prior violation panicked while holding the lock; the state
            // is still consistent for reporting.
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn shard_name(&self, st: &State, slot: usize) -> String {
        match st.shard_of.get(slot).and_then(|s| *s) {
            Some(shard) => shard.to_string(),
            None => "?".to_string(),
        }
    }

    fn violation(&self, st: &State, rule: &str, detail: &str) -> ! {
        let trace = format_trace(st);
        // lint::allow(no_panic): the checker's whole purpose is to fail loudly on a violated happens-before edge
        panic!("race-check: {rule} violated: {detail}\ninterleaving trace:\n{trace}");
    }
}

/// One observed event at the windowed simulator's barriers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WindowRaceEvent {
    /// A synchronization window opened.
    Window {
        /// Window index (sequential from 0).
        index: u64,
        /// Window start time (seconds).
        start: f64,
        /// Window end time (seconds); equals `start` for control windows.
        end: f64,
        /// Zero-lookahead control window.
        control: bool,
    },
    /// A cross-shard message crossed the barrier of the emitting window.
    Handoff {
        /// Emitting LP.
        src: usize,
        /// Receiving LP.
        dst: usize,
        /// Delivery time of the message (seconds).
        at: f64,
        /// Earliest delivery time conservative correctness allows.
        floor: f64,
    },
}

impl std::fmt::Display for WindowRaceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            WindowRaceEvent::Window {
                index,
                start,
                end,
                control,
            } => {
                let kind = if control { "control" } else { "window " };
                write!(f, "[barrier]  {kind} #{index} [{start}, {end}]")
            }
            WindowRaceEvent::Handoff {
                src,
                dst,
                at,
                floor,
            } => {
                write!(
                    f,
                    "[handoff]  LP{src} -> LP{dst} at t={at} (floor t={floor})"
                )
            }
        }
    }
}

#[derive(Debug)]
struct WindowState {
    /// One clock per shard, then the barrier coordinator last.
    clocks: Vec<VectorClock>,
    log: Vec<(WindowRaceEvent, VectorClock)>,
    next_index: u64,
    last_start: f64,
    windows_seen: u64,
    handoffs_seen: u64,
}

/// Happens-before checker for the sharded windowed simulator
/// ([`er_sim::ShardedSim`]), attached through [`er_sim::WindowObserver`].
///
/// The parallel serving engine is deterministic *because* two edges hold
/// for every cross-shard message:
///
/// 1. **Barrier handoff** — a message emitted in window `w` is delivered
///    through `w`'s barrier, never earlier: its delivery time is `>=` the
///    window's conservative floor (the window end, or the start for a
///    zero-lookahead control window).
/// 2. **Barrier ordering** — windows execute in strictly sequential index
///    order with monotonically non-decreasing start times, so the barrier
///    clock that every shard joins at each boundary totally orders the
///    windows.
///
/// Each shard carries a vector clock; every barrier joins all shard clocks
/// into the coordinator's clock and broadcasts it back (the barrier is a
/// full synchronization). A handoff whose delivery time undercuts the
/// floor means a message would arrive *inside* a window another shard is
/// still executing — a read of unsynchronized state — and fails loudly
/// with the reconstructed window/handoff trace, before the runner's own
/// conservative assertion fires.
#[derive(Debug)]
pub struct WindowRaceChecker {
    shards: usize,
    state: Mutex<WindowState>,
}

impl WindowRaceChecker {
    /// A checker for a simulation grouped into `shards` shards (LP `i`
    /// belongs to shard `i % shards`, mirroring the runner's mapping).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        Self {
            shards,
            state: Mutex::new(WindowState {
                clocks: vec![VectorClock::new(shards + 1); shards + 1],
                log: Vec::new(),
                next_index: 0,
                last_start: f64::NEG_INFINITY,
                windows_seen: 0,
                handoffs_seen: 0,
            }),
        }
    }

    /// Windows observed so far.
    pub fn windows_seen(&self) -> u64 {
        self.lock().windows_seen
    }

    /// Cross-shard handoffs observed so far.
    pub fn handoffs_seen(&self) -> u64 {
        self.lock().handoffs_seen
    }

    /// The window/handoff interleaving observed so far, one event per line
    /// with its clock snapshot.
    pub fn trace(&self) -> String {
        let st = self.lock();
        let mut out = String::new();
        for (ev, clock) in &st.log {
            let _ = writeln!(out, "  {ev} @ {clock}");
        }
        if st.log.is_empty() {
            out.push_str("  (no events recorded)\n");
        }
        out
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, WindowState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn violation(&self, st: &WindowState, rule: &str, detail: &str) -> ! {
        let mut trace = String::new();
        for (ev, clock) in &st.log {
            let _ = writeln!(trace, "  {ev} @ {clock}");
        }
        // lint::allow(no_panic): the checker's whole purpose is to fail loudly on a violated barrier edge
        panic!("race-check: {rule} violated: {detail}\nwindow trace:\n{trace}");
    }
}

impl er_sim::WindowObserver for WindowRaceChecker {
    fn on_window(&self, index: u64, start: f64, end: f64, control: bool) {
        let mut st = self.lock();
        if index != st.next_index {
            let expected = st.next_index;
            self.violation(
                &st,
                "barrier-ordering",
                &format!("window #{index} opened but #{expected} was expected next"),
            );
        }
        if start < st.last_start {
            let prev = st.last_start;
            self.violation(
                &st,
                "barrier-ordering",
                &format!(
                    "window #{index} starts at t={start}, before the previous window's t={prev}"
                ),
            );
        }
        if control != (end == start) {
            self.violation(
                &st,
                "barrier-ordering",
                &format!(
                    "window #{index} [{start}, {end}] control flag {control} contradicts its bounds"
                ),
            );
        }
        // The barrier: the coordinator joins every shard, steps, and
        // broadcasts back — all shards now share a common frontier.
        let bar = self.shards;
        for s in 0..self.shards {
            let shard_clock = st.clocks[s].clone();
            st.clocks[bar].join(&shard_clock);
        }
        st.clocks[bar].tick(bar);
        let barrier_clock = st.clocks[bar].clone();
        for s in 0..self.shards {
            st.clocks[s].join(&barrier_clock);
            debug_assert!(st.clocks[s].dominates(&barrier_clock));
        }
        st.next_index += 1;
        st.last_start = start;
        st.windows_seen += 1;
        st.log.push((
            WindowRaceEvent::Window {
                index,
                start,
                end,
                control,
            },
            barrier_clock,
        ));
    }

    fn on_handoff(&self, src: usize, dst: usize, at: f64, floor: f64, control: bool) {
        let mut st = self.lock();
        let (ss, ds) = (src % self.shards, dst % self.shards);
        if at < floor {
            let kind = if control { "control window" } else { "window" };
            self.violation(
                &st,
                "conservative-handoff",
                &format!(
                    "LP{src} (shard {ss}) -> LP{dst} (shard {ds}) message delivers at \
                     t={at}, inside the emitting {kind} whose conservative floor is \
                     t={floor}; the receiver would observe state another shard is \
                     still mutating"
                ),
            );
        }
        // The message edge: src steps, dst receives src's frontier.
        st.clocks[ss].tick(ss);
        let msg = st.clocks[ss].clone();
        st.clocks[ds].join(&msg);
        let dst_clock = st.clocks[ds].clone();
        debug_assert!(dst_clock.dominates(&msg), "join establishes dominance");
        st.handoffs_seen += 1;
        st.log.push((
            WindowRaceEvent::Handoff {
                src,
                dst,
                at,
                floor,
            },
            dst_clock,
        ));
    }

    fn on_run_end(&self, windows: u64) {
        let st = self.lock();
        if windows != st.windows_seen {
            let seen = st.windows_seen;
            self.violation(
                &st,
                "window-accounting",
                &format!("runner reports {windows} windows but the observer saw {seen}"),
            );
        }
    }
}

fn ensure_slot<T: Clone + Default>(v: &mut Vec<T>, slot: usize) {
    if v.len() <= slot {
        v.resize(slot + 1, T::default());
    }
}

fn format_trace(st: &State) -> String {
    let mut out = String::new();
    for rec in &st.log {
        let _ = writeln!(out, "  {} @ {}", rec.event, rec.clock);
    }
    if st.log.is_empty() {
        out.push_str("  (no events recorded)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn violation_message(f: impl FnOnce() + std::panic::UnwindSafe) -> String {
        let err = catch_unwind(f).expect_err("expected a race-check violation");
        err.downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("panic payload is a string")
    }

    /// Drives a full, correct two-worker batch through the checker.
    fn clean_batch(rc: &RaceChecker) {
        rc.begin_batch();
        // shards 4, 5, 6 on 2 workers: 4 and 6 pin to worker 0, 5 to 1.
        rc.on_submit(0, 4, 0);
        rc.on_submit(1, 5, 1);
        rc.on_submit(2, 6, 0);
        // Workers interleave arbitrarily; per-worker order is what matters.
        rc.on_start(1, 1);
        rc.on_start(0, 0);
        rc.on_finish(1, 1);
        rc.on_finish(0, 0);
        rc.on_start(2, 0);
        rc.on_finish(2, 0);
        rc.on_merge(0);
        rc.on_merge(1);
        rc.on_merge(2);
    }

    #[test]
    fn clean_interleavings_pass() {
        let rc = RaceChecker::new(2);
        clean_batch(&rc);
        clean_batch(&rc); // checker is reusable across batches
        let trace = rc.trace();
        assert!(trace.contains("[submitter] submit slot=0 shard=4 -> worker 0"));
        assert!(trace.contains("[collector] merge  slot=2"));
    }

    #[test]
    fn out_of_order_merge_names_the_offending_shard_pair() {
        let rc = RaceChecker::new(2);
        rc.begin_batch();
        rc.on_submit(0, 4, 0);
        rc.on_submit(1, 5, 1);
        rc.on_submit(2, 6, 0);
        rc.on_start(0, 0);
        rc.on_finish(0, 0);
        rc.on_start(1, 1);
        rc.on_finish(1, 1);
        rc.on_start(2, 0);
        rc.on_finish(2, 0);
        rc.on_merge(0);
        // The deliberate bug: merge slot 2 before slot 1.
        let msg = violation_message(AssertUnwindSafe(|| rc.on_merge(2)));
        assert!(msg.contains("ascending-merge"), "{msg}");
        assert!(
            msg.contains("slot 2 (shard 6) before slot 1 (shard 5)"),
            "{msg}"
        );
        // The trace reconstructs the interleaving up to the violation.
        assert!(msg.contains("interleaving trace:"), "{msg}");
        assert!(msg.contains("[worker 1]  finish slot=1"), "{msg}");
        assert!(msg.contains("[collector] merge  slot=0"), "{msg}");
    }

    #[test]
    fn merge_before_finish_is_caught() {
        let rc = RaceChecker::new(2);
        rc.begin_batch();
        rc.on_submit(0, 2, 0);
        rc.on_start(0, 0);
        // Merge before the task finished: the finish→merge edge is missing.
        let msg = violation_message(AssertUnwindSafe(|| rc.on_merge(0)));
        assert!(msg.contains("finish-before-merge"), "{msg}");
        assert!(msg.contains("slot 0 (shard 2)"), "{msg}");
    }

    #[test]
    fn misrouted_shard_is_caught() {
        let rc = RaceChecker::new(2);
        rc.begin_batch();
        // Shard 5 pins to worker 1 on a 2-thread pool; worker 0 is wrong.
        let msg = violation_message(AssertUnwindSafe(|| rc.on_submit(0, 5, 0)));
        assert!(msg.contains("fixed-routing"), "{msg}");
        assert!(msg.contains("pinned to worker 1"), "{msg}");
    }

    #[test]
    fn fifo_inversion_on_one_worker_is_caught() {
        let rc = RaceChecker::new(1);
        rc.begin_batch();
        rc.on_submit(0, 0, 0);
        rc.on_submit(1, 1, 0);
        // The worker starts the second submission first.
        let msg = violation_message(AssertUnwindSafe(|| rc.on_start(1, 0)));
        assert!(msg.contains("worker-fifo"), "{msg}");
        assert!(
            msg.contains("slot 1 (shard 1) before slot 0 (shard 0)"),
            "{msg}"
        );
    }

    #[test]
    fn clocks_join_and_dominate() {
        let mut a = VectorClock::new(3);
        let mut b = VectorClock::new(3);
        a.tick(0);
        a.tick(0);
        b.tick(1);
        assert!(!a.dominates(&b) && !b.dominates(&a)); // concurrent
        b.join(&a);
        assert!(b.dominates(&a)); // the join made a visible to b
        assert_eq!(b.to_string(), "{2,1,0}");
    }

    /// A two-LP toy whose LP 0 ping-pongs messages at honest delays —
    /// or, when `cheat` is set, undercuts the lookahead on purpose.
    struct Hop {
        lp: usize,
        cheat: bool,
    }

    impl er_sim::LpLogic for Hop {
        type Event = u8;

        fn on_event(&mut self, _now: er_sim::SimTime, hops: u8, ctx: &mut er_sim::LpCtx<'_, u8>) {
            if hops == 0 {
                return;
            }
            let delay = if self.cheat { 0.25 } else { 1.5 }; // lookahead is 1.0
            ctx.send_in(1 - self.lp, delay, hops - 1);
        }
    }

    fn hop_sim(cheat: bool) -> er_sim::ShardedSim<Hop> {
        let cfg = er_sim::WindowConfig {
            lookahead: 1.0,
            shards: 2,
            threads: 1,
            sync_points: Vec::new(),
        };
        let lps = vec![
            Hop { lp: 0, cheat },
            Hop {
                lp: 1,
                cheat: false,
            },
        ];
        let mut sim = er_sim::ShardedSim::new(lps, cfg);
        sim.schedule(0, er_sim::SimTime::from_secs(0.5), 4);
        sim
    }

    #[test]
    fn window_checker_accepts_a_conservative_run() {
        let rc = WindowRaceChecker::new(2);
        let (_, stats) = hop_sim(false).run_observed(&rc);
        // The observer's accounting agrees with the runner's.
        assert_eq!(rc.windows_seen(), stats.windows);
        assert_eq!(rc.handoffs_seen(), stats.cross_messages);
        assert!(rc.handoffs_seen() >= 4, "every hop crosses shards");
        let trace = rc.trace();
        assert!(trace.contains("[handoff]  LP0 -> LP1"), "{trace}");
        assert!(trace.contains("[barrier]  window  #0"), "{trace}");
    }

    /// The negative test the instrumentation exists for: a shard that
    /// hands a message off *inside* its own window (delivery before the
    /// conservative floor) must trip the checker — with the shard pair
    /// named — before the runner's own assertion fires.
    #[test]
    fn deliberately_early_handoff_trips_the_window_checker() {
        let rc = WindowRaceChecker::new(2);
        let msg = violation_message(AssertUnwindSafe(|| {
            hop_sim(true).run_observed(&rc);
        }));
        assert!(msg.contains("conservative-handoff"), "{msg}");
        assert!(msg.contains("LP0 (shard 0) -> LP1 (shard 1)"), "{msg}");
        assert!(msg.contains("window trace:"), "{msg}");
    }

    #[test]
    fn window_checker_runs_under_the_parallel_serving_engine() {
        use er_workload::TrafficSchedule;
        let calib = crate::Calibration::cpu_only();
        let model = er_model::configs::rm1().with_num_tables(2);
        let p = crate::plan(
            &model,
            crate::Platform::CpuOnly,
            crate::Strategy::Elastic,
            &calib,
        );
        let cfg = crate::SimulationConfig::new(TrafficSchedule::constant(30.0), 10.0, 5);
        let rc = WindowRaceChecker::new(4);
        let (out, stats) = crate::ParSimulation::run_detailed(
            &p,
            &calib,
            &cfg,
            &crate::ParSimConfig::new(4, 2),
            Some(&rc),
        );
        assert!(out.completed_queries > 0);
        assert_eq!(rc.windows_seen(), stats.windows);
        assert_eq!(rc.handoffs_seen(), stats.cross_messages);
        assert!(
            stats.control_windows > 0,
            "HPA ticks run as control windows"
        );
    }

    #[test]
    fn merge_clock_dominates_every_finish_clock() {
        let rc = RaceChecker::new(2);
        clean_batch(&rc);
        let st = rc.lock();
        let merges: Vec<&Recorded> = st
            .log
            .iter()
            .filter(|r| matches!(r.event, RaceEvent::Merge { .. }))
            .collect();
        let finishes: Vec<&Recorded> = st
            .log
            .iter()
            .filter(|r| matches!(r.event, RaceEvent::Finish { .. }))
            .collect();
        // The last merge happens-after every finish: the reduction saw all
        // partial results.
        let last = merges.last().expect("batch merged");
        for f in &finishes {
            assert!(last.clock.dominates(&f.clock));
        }
    }
}

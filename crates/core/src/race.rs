//! Vector-clock happens-before checker for the parallel shard data plane.
//!
//! Compiled only under the `race-check` feature. The sharded forward pass
//! is bit-identical to the sequential walk *because* three happens-before
//! edges always hold in [`crate::ParallelShardExecutor`]:
//!
//! 1. **Routing** — every task for shard key `k` executes on worker
//!    `k % threads`, so one shard's tasks are totally ordered by its
//!    worker's queue.
//! 2. **Per-worker FIFO** — a worker starts tasks in exactly the order the
//!    submitter enqueued them (crossbeam channels are FIFO per sender).
//! 3. **Finish-before-merge, ascending** — the collector merges slot `s`
//!    only after slot `s`'s task finished (the result channel carries the
//!    edge), and merges slots in ascending order (the fixed FP reduction
//!    order).
//!
//! [`RaceChecker`] turns those invariants into runtime assertions: each
//! thread (workers, submitter, collector) carries a logical vector clock,
//! every event is logged with a clock snapshot, and a violated edge fails
//! loudly with the reconstructed interleaving so the offending shard pair
//! is named in the panic message. [`ParallelShardExecutor::with_race_checking`]
//! (`crate::ParallelShardExecutor::with_race_checking`) threads a checker
//! through scatter/execute/collect.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::Mutex;

/// A logical vector clock: one monotonic counter per participating thread.
///
/// Clock `a` *happens-before* clock `b` iff every component of `a` is
/// `<=` the matching component of `b` (and they differ). Joining takes the
/// componentwise max — receiving a message makes everything the sender had
/// seen visible to the receiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VectorClock {
    ticks: Vec<u64>,
}

impl VectorClock {
    /// The zero clock over `n` threads.
    pub fn new(n: usize) -> Self {
        Self { ticks: vec![0; n] }
    }

    /// Advances thread `i`'s component (a local step).
    pub fn tick(&mut self, i: usize) {
        self.ticks[i] += 1;
    }

    /// Componentwise max — the receive half of a message edge.
    pub fn join(&mut self, other: &VectorClock) {
        for (t, &o) in self.ticks.iter_mut().zip(&other.ticks) {
            *t = (*t).max(o);
        }
    }

    /// `true` iff `other` happens-before-or-equals `self` (componentwise
    /// `other <= self`).
    pub fn dominates(&self, other: &VectorClock) -> bool {
        self.ticks.iter().zip(&other.ticks).all(|(&s, &o)| s >= o)
    }
}

impl std::fmt::Display for VectorClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("{")?;
        for (i, t) in self.ticks.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{t}")?;
        }
        f.write_str("}")
    }
}

/// One observed event in the scatter/execute/merge lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaceEvent {
    /// The submitter enqueued `slot` (shard key `shard`) on `worker`.
    Submit {
        /// Submission slot (merge position).
        slot: usize,
        /// Shard key the task was routed by.
        shard: usize,
        /// Worker index the task was enqueued on.
        worker: usize,
    },
    /// `worker` dequeued `slot` and began executing it.
    Start {
        /// Submission slot.
        slot: usize,
        /// Executing worker.
        worker: usize,
    },
    /// `worker` finished `slot` and sent its result to the collector.
    Finish {
        /// Submission slot.
        slot: usize,
        /// Executing worker.
        worker: usize,
    },
    /// The collector merged `slot` into the reduction.
    Merge {
        /// Submission slot.
        slot: usize,
    },
}

impl std::fmt::Display for RaceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            RaceEvent::Submit {
                slot,
                shard,
                worker,
            } => {
                write!(
                    f,
                    "[submitter] submit slot={slot} shard={shard} -> worker {worker}"
                )
            }
            RaceEvent::Start { slot, worker } => write!(f, "[worker {worker}]  start  slot={slot}"),
            RaceEvent::Finish { slot, worker } => {
                write!(f, "[worker {worker}]  finish slot={slot}")
            }
            RaceEvent::Merge { slot } => write!(f, "[collector] merge  slot={slot}"),
        }
    }
}

#[derive(Debug)]
struct Recorded {
    event: RaceEvent,
    clock: VectorClock,
}

#[derive(Debug)]
struct State {
    /// Clocks for `threads` workers, then the submitter, then the collector.
    clocks: Vec<VectorClock>,
    log: Vec<Recorded>,
    /// Per slot: the submit-message clock (the submit→start edge payload).
    submit_clock: Vec<Option<VectorClock>>,
    /// Per slot: the finish-message clock (the finish→merge edge payload).
    finish_clock: Vec<Option<VectorClock>>,
    /// Per slot: the shard key, for naming shards in violation traces.
    shard_of: Vec<Option<usize>>,
    /// Per worker: submitted-but-not-started slots, in submission order.
    fifo: Vec<VecDeque<usize>>,
    /// Next slot the collector must merge.
    next_merge: usize,
}

/// Observes one scatter batch at a time and panics — with the reconstructed
/// interleaving — the moment a happens-before edge is violated.
///
/// The instrumented executor calls the `on_*` hooks from the real threads;
/// tests for the checker itself may drive them directly to simulate an
/// interleaving the correct executor can never produce.
#[derive(Debug)]
pub struct RaceChecker {
    threads: usize,
    state: Mutex<State>,
}

impl RaceChecker {
    /// A checker for a pool of `threads` workers.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        Self {
            threads,
            state: Mutex::new(State {
                clocks: vec![VectorClock::new(threads + 2); threads + 2],
                log: Vec::new(),
                submit_clock: Vec::new(),
                finish_clock: Vec::new(),
                shard_of: Vec::new(),
                fifo: vec![VecDeque::new(); threads],
                next_merge: 0,
            }),
        }
    }

    /// Worker count the checker validates routing against.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Resets per-batch slot state (clocks and the event log persist, so a
    /// violation in batch N still shows the tail of batch N−1's events).
    pub fn begin_batch(&self) {
        let mut st = self.lock();
        st.submit_clock.clear();
        st.finish_clock.clear();
        st.shard_of.clear();
        for q in &mut st.fifo {
            q.clear();
        }
        st.next_merge = 0;
    }

    /// The submitter enqueued `slot` (shard key `shard`) on `worker`.
    ///
    /// # Panics
    ///
    /// Panics with rule `fixed-routing` if `worker != shard % threads`.
    pub fn on_submit(&self, slot: usize, shard: usize, worker: usize) {
        let mut st = self.lock();
        let sub = self.threads; // submitter clock index
        st.clocks[sub].tick(sub);
        let clock = st.clocks[sub].clone();
        st.log.push(Recorded {
            event: RaceEvent::Submit {
                slot,
                shard,
                worker,
            },
            clock: clock.clone(),
        });
        if worker != shard % self.threads {
            self.violation(
                &st,
                "fixed-routing",
                &format!(
                    "slot {slot} (shard {shard}) was enqueued on worker {worker}, \
                     but shard {shard} is pinned to worker {}",
                    shard % self.threads
                ),
            );
        }
        ensure_slot(&mut st.submit_clock, slot);
        st.submit_clock[slot] = Some(clock);
        ensure_slot(&mut st.shard_of, slot);
        st.shard_of[slot] = Some(shard);
        st.fifo[worker].push_back(slot);
    }

    /// `worker` dequeued `slot` and began executing it.
    ///
    /// # Panics
    ///
    /// Panics with rule `worker-fifo` if `slot` is not the oldest
    /// unstarted submission on `worker`'s queue, or if it was never
    /// submitted there.
    pub fn on_start(&self, slot: usize, worker: usize) {
        let mut st = self.lock();
        match st.fifo[worker].front().copied() {
            Some(expected) if expected == slot => {
                st.fifo[worker].pop_front();
            }
            Some(expected) => {
                let (se, ss) = (self.shard_name(&st, expected), self.shard_name(&st, slot));
                self.violation(
                    &st,
                    "worker-fifo",
                    &format!(
                        "worker {worker} started slot {slot} (shard {ss}) before \
                         slot {expected} (shard {se}), which was enqueued first"
                    ),
                );
            }
            None => {
                self.violation(
                    &st,
                    "worker-fifo",
                    &format!("worker {worker} started slot {slot} with an empty queue"),
                );
            }
        }
        // Receive the submit→start edge, then take a local step.
        let msg = st.submit_clock.get(slot).and_then(Clone::clone);
        if let Some(msg) = msg {
            st.clocks[worker].join(&msg);
        }
        st.clocks[worker].tick(worker);
        let clock = st.clocks[worker].clone();
        st.log.push(Recorded {
            event: RaceEvent::Start { slot, worker },
            clock,
        });
    }

    /// `worker` finished `slot`; its result (and clock) travel to the
    /// collector.
    pub fn on_finish(&self, slot: usize, worker: usize) {
        let mut st = self.lock();
        st.clocks[worker].tick(worker);
        let clock = st.clocks[worker].clone();
        st.log.push(Recorded {
            event: RaceEvent::Finish { slot, worker },
            clock: clock.clone(),
        });
        ensure_slot(&mut st.finish_clock, slot);
        st.finish_clock[slot] = Some(clock);
    }

    /// The collector merged `slot` into the running reduction.
    ///
    /// # Panics
    ///
    /// Panics with rule `ascending-merge` if slots are merged out of
    /// ascending order, or `finish-before-merge` if `slot`'s task has not
    /// finished — either way the FP reduction order (and so bit-exactness)
    /// would be broken.
    pub fn on_merge(&self, slot: usize) {
        let mut st = self.lock();
        let col = self.threads + 1; // collector clock index
        if slot != st.next_merge {
            let (sa, sb) = (
                self.shard_name(&st, slot),
                self.shard_name(&st, st.next_merge),
            );
            let expected = st.next_merge;
            self.violation(
                &st,
                "ascending-merge",
                &format!(
                    "collector merged slot {slot} (shard {sa}) before slot {expected} \
                     (shard {sb}); partial pools must reduce in ascending slot order \
                     or the FP sum reassociates"
                ),
            );
        }
        let finish = st.finish_clock.get(slot).and_then(Clone::clone);
        match finish {
            Some(msg) => {
                st.clocks[col].join(&msg);
                st.clocks[col].tick(col);
                let clock = st.clocks[col].clone();
                debug_assert!(clock.dominates(&msg), "join establishes dominance");
                st.log.push(Recorded {
                    event: RaceEvent::Merge { slot },
                    clock,
                });
            }
            None => {
                let s = self.shard_name(&st, slot);
                self.violation(
                    &st,
                    "finish-before-merge",
                    &format!(
                        "collector merged slot {slot} (shard {s}) before its task \
                         finished — no finish event establishes the happens-before edge"
                    ),
                );
            }
        }
        st.next_merge += 1;
    }

    /// The interleaving observed so far, one event per line with its clock
    /// snapshot — what violation panics embed.
    pub fn trace(&self) -> String {
        format_trace(&self.lock())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        match self.state.lock() {
            Ok(g) => g,
            // A prior violation panicked while holding the lock; the state
            // is still consistent for reporting.
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn shard_name(&self, st: &State, slot: usize) -> String {
        match st.shard_of.get(slot).and_then(|s| *s) {
            Some(shard) => shard.to_string(),
            None => "?".to_string(),
        }
    }

    fn violation(&self, st: &State, rule: &str, detail: &str) -> ! {
        let trace = format_trace(st);
        // lint::allow(no_panic): the checker's whole purpose is to fail loudly on a violated happens-before edge
        panic!("race-check: {rule} violated: {detail}\ninterleaving trace:\n{trace}");
    }
}

fn ensure_slot<T: Clone + Default>(v: &mut Vec<T>, slot: usize) {
    if v.len() <= slot {
        v.resize(slot + 1, T::default());
    }
}

fn format_trace(st: &State) -> String {
    let mut out = String::new();
    for rec in &st.log {
        let _ = writeln!(out, "  {} @ {}", rec.event, rec.clock);
    }
    if st.log.is_empty() {
        out.push_str("  (no events recorded)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn violation_message(f: impl FnOnce() + std::panic::UnwindSafe) -> String {
        let err = catch_unwind(f).expect_err("expected a race-check violation");
        err.downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("panic payload is a string")
    }

    /// Drives a full, correct two-worker batch through the checker.
    fn clean_batch(rc: &RaceChecker) {
        rc.begin_batch();
        // shards 4, 5, 6 on 2 workers: 4 and 6 pin to worker 0, 5 to 1.
        rc.on_submit(0, 4, 0);
        rc.on_submit(1, 5, 1);
        rc.on_submit(2, 6, 0);
        // Workers interleave arbitrarily; per-worker order is what matters.
        rc.on_start(1, 1);
        rc.on_start(0, 0);
        rc.on_finish(1, 1);
        rc.on_finish(0, 0);
        rc.on_start(2, 0);
        rc.on_finish(2, 0);
        rc.on_merge(0);
        rc.on_merge(1);
        rc.on_merge(2);
    }

    #[test]
    fn clean_interleavings_pass() {
        let rc = RaceChecker::new(2);
        clean_batch(&rc);
        clean_batch(&rc); // checker is reusable across batches
        let trace = rc.trace();
        assert!(trace.contains("[submitter] submit slot=0 shard=4 -> worker 0"));
        assert!(trace.contains("[collector] merge  slot=2"));
    }

    #[test]
    fn out_of_order_merge_names_the_offending_shard_pair() {
        let rc = RaceChecker::new(2);
        rc.begin_batch();
        rc.on_submit(0, 4, 0);
        rc.on_submit(1, 5, 1);
        rc.on_submit(2, 6, 0);
        rc.on_start(0, 0);
        rc.on_finish(0, 0);
        rc.on_start(1, 1);
        rc.on_finish(1, 1);
        rc.on_start(2, 0);
        rc.on_finish(2, 0);
        rc.on_merge(0);
        // The deliberate bug: merge slot 2 before slot 1.
        let msg = violation_message(AssertUnwindSafe(|| rc.on_merge(2)));
        assert!(msg.contains("ascending-merge"), "{msg}");
        assert!(
            msg.contains("slot 2 (shard 6) before slot 1 (shard 5)"),
            "{msg}"
        );
        // The trace reconstructs the interleaving up to the violation.
        assert!(msg.contains("interleaving trace:"), "{msg}");
        assert!(msg.contains("[worker 1]  finish slot=1"), "{msg}");
        assert!(msg.contains("[collector] merge  slot=0"), "{msg}");
    }

    #[test]
    fn merge_before_finish_is_caught() {
        let rc = RaceChecker::new(2);
        rc.begin_batch();
        rc.on_submit(0, 2, 0);
        rc.on_start(0, 0);
        // Merge before the task finished: the finish→merge edge is missing.
        let msg = violation_message(AssertUnwindSafe(|| rc.on_merge(0)));
        assert!(msg.contains("finish-before-merge"), "{msg}");
        assert!(msg.contains("slot 0 (shard 2)"), "{msg}");
    }

    #[test]
    fn misrouted_shard_is_caught() {
        let rc = RaceChecker::new(2);
        rc.begin_batch();
        // Shard 5 pins to worker 1 on a 2-thread pool; worker 0 is wrong.
        let msg = violation_message(AssertUnwindSafe(|| rc.on_submit(0, 5, 0)));
        assert!(msg.contains("fixed-routing"), "{msg}");
        assert!(msg.contains("pinned to worker 1"), "{msg}");
    }

    #[test]
    fn fifo_inversion_on_one_worker_is_caught() {
        let rc = RaceChecker::new(1);
        rc.begin_batch();
        rc.on_submit(0, 0, 0);
        rc.on_submit(1, 1, 0);
        // The worker starts the second submission first.
        let msg = violation_message(AssertUnwindSafe(|| rc.on_start(1, 0)));
        assert!(msg.contains("worker-fifo"), "{msg}");
        assert!(
            msg.contains("slot 1 (shard 1) before slot 0 (shard 0)"),
            "{msg}"
        );
    }

    #[test]
    fn clocks_join_and_dominate() {
        let mut a = VectorClock::new(3);
        let mut b = VectorClock::new(3);
        a.tick(0);
        a.tick(0);
        b.tick(1);
        assert!(!a.dominates(&b) && !b.dominates(&a)); // concurrent
        b.join(&a);
        assert!(b.dominates(&a)); // the join made a visible to b
        assert_eq!(b.to_string(), "{2,1,0}");
    }

    #[test]
    fn merge_clock_dominates_every_finish_clock() {
        let rc = RaceChecker::new(2);
        clean_batch(&rc);
        let st = rc.lock();
        let merges: Vec<&Recorded> = st
            .log
            .iter()
            .filter(|r| matches!(r.event, RaceEvent::Merge { .. }))
            .collect();
        let finishes: Vec<&Recorded> = st
            .log
            .iter()
            .filter(|r| matches!(r.event, RaceEvent::Finish { .. }))
            .collect();
        // The last merge happens-after every finish: the reduction saw all
        // partial results.
        let last = merges.last().expect("batch merged");
        for f in &finishes {
            assert!(last.clock.dominates(&f.clock));
        }
    }
}

//! ElasticRec — a microservice-based model serving architecture enabling
//! elastic resource scaling for recommendation models.
//!
//! This crate is the paper's primary contribution, rebuilt on the simulated
//! substrates of this workspace:
//!
//! * [`plan`] turns a DLRM configuration into a [`ServingPlan`] under one of
//!   three strategies: the **model-wise** baseline (one monolithic
//!   container), **model-wise + GPU embedding cache** (Section VI-E), or
//!   **ElasticRec** (dense shard + DP-partitioned hot/cold embedding
//!   shards, Section IV);
//! * [`SteadyState`] sizes replica counts for a target QPS and reports the
//!   memory-allocation and server-count metrics of Figures 13/15/16/18;
//! * [`Simulation`] runs the plan against dynamic traffic on the simulated
//!   Kubernetes cluster with per-shard HPA — the Figure 19 experiment;
//! * [`utility`] measures per-shard memory utility (Figures 14/17);
//! * [`ShardedDlrm`] is the functional serving path (hotness sort →
//!   bucketize → distributed gather → merge) proven bit-identical to the
//!   monolithic model, optionally executing shard gathers concurrently on
//!   a [`ParallelShardExecutor`] with a deterministic merge order.
//!
//! # Examples
//!
//! ```
//! use elasticrec::{plan, Calibration, Platform, Strategy, SteadyState};
//! use er_model::configs;
//!
//! let calib = Calibration::cpu_only();
//! let elastic = plan(&configs::rm1(), Platform::CpuOnly, Strategy::Elastic, &calib);
//! let mw = plan(&configs::rm1(), Platform::CpuOnly, Strategy::ModelWise, &calib);
//!
//! let e = SteadyState::size(&elastic, 100.0, &calib).unwrap();
//! let m = SteadyState::size(&mw, 100.0, &calib).unwrap();
//! assert!(e.memory_bytes < m.memory_bytes); // the paper's headline result
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations, unreachable_pub)]

mod calib;
mod coalesce;
mod engine;
mod executor;
mod par_engine;
mod planning;
#[cfg(feature = "race-check")]
pub mod race;
mod sharded;
mod shards;
mod sizing;
pub mod utility;
mod workspace;

pub use calib::Calibration;
pub use coalesce::GatherCoalescer;
pub use engine::{Simulation, SimulationConfig, SimulationOutcome, StageBreakdown};
pub use executor::{ParallelShardExecutor, Pending};
pub use par_engine::{ParSimConfig, ParSimulation};
pub use planning::{
    plan, plan_elastic_fixed_shards, plan_elastic_with_plans, Platform, ServingPlan, Strategy,
};
#[cfg(feature = "race-check")]
pub use race::{RaceChecker, RaceEvent, VectorClock, WindowRaceChecker, WindowRaceEvent};
pub use sharded::ShardedDlrm;
pub use shards::{ShardRole, ShardService, ShardSpec};
pub use sizing::{SteadyState, STEADY_UTILIZATION};
pub use workspace::ForwardWorkspace;

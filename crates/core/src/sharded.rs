//! The functional sharded serving path.
//!
//! [`ShardedDlrm`] executes a DLRM exactly the way ElasticRec's
//! microservices do — hotness-sort each table (Figure 8), bucketize each
//! query's lookups onto the partitioned shards (Figure 11), gather and
//! pool *within* each shard, and sum the partial pools — and is verified
//! to produce the same results as the monolithic model. This is the
//! correctness argument for the whole decomposition: partitioning is an
//! execution detail, not a model change.
//!
//! Shard gathers are independent, so the walk can run sequentially (the
//! oracle, [`ShardedDlrm::forward_seq`]) or concurrently on a
//! [`ParallelShardExecutor`] ([`ShardedDlrm::forward_with`]); partial pools
//! are always merged in ascending shard order, so both paths produce
//! bit-identical outputs at every thread count.

use std::sync::Arc;

use er_distribution::sorting::HotnessPermutation;
use er_model::{dot_interaction_into, Dlrm, EmbeddingTable, QueryBatch, TableLookup};
use er_partition::{bucketize, bucketize_into, bucketize_tables, PartitionPlan};
use er_tensor::Matrix;
use er_units::{Bytes, ElemKind};

use crate::{ForwardWorkspace, ParallelShardExecutor};

/// A DLRM decomposed into embedding shards, functionally equivalent to the
/// monolithic model it was built from.
///
/// # Examples
///
/// ```
/// use elasticrec::ShardedDlrm;
/// use er_model::{configs, Dlrm, QueryGenerator};
/// use er_partition::PartitionPlan;
/// use er_sim::SimRng;
///
/// let cfg = configs::rm1().scaled_tables(200).with_num_tables(2);
/// let model = Dlrm::with_seed(&cfg, 1);
/// let counts: Vec<Vec<u64>> = vec![(0..200).map(|i| 200 - i).collect(); 2];
/// let plans = vec![PartitionPlan::new(vec![20, 200], 200).unwrap(); 2];
/// let sharded = ShardedDlrm::new(model.clone(), &counts, plans).unwrap();
///
/// let q = QueryGenerator::new(&cfg).generate(&mut SimRng::seed_from(3));
/// let mono = model.forward(&q);
/// let dist = sharded.forward(&q);
/// assert!(mono.max_abs_diff(&dist) < 1e-4);
/// ```
#[derive(Debug, Clone)]
pub struct ShardedDlrm {
    // Shared immutable model state, so executor tasks (which must be
    // 'static) can hold it across threads without copying tables.
    inner: Arc<Inner>,
    executor: Option<Arc<ParallelShardExecutor>>,
}

#[derive(Debug, Clone)]
struct Inner {
    dlrm: Dlrm,
    perms: Vec<HotnessPermutation>,
    plans: Vec<PartitionPlan>,
    /// `shard_tables[t][s]`: the physical storage of table `t`'s shard `s`
    /// (sorted rows, sliced at the plan's cut points).
    shard_tables: Vec<Vec<EmbeddingTable>>,
}

/// Error building a [`ShardedDlrm`] from mismatched inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardingError(String);

impl std::fmt::Display for ShardingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ShardingError {}

impl ShardedDlrm {
    /// Decomposes `dlrm` using per-table access counts (for the hotness
    /// sort) and partition plans.
    ///
    /// # Errors
    ///
    /// Returns an error if the number of count vectors or plans does not
    /// match the model's tables, or sizes disagree.
    pub fn new(
        dlrm: Dlrm,
        access_counts: &[Vec<u64>],
        plans: Vec<PartitionPlan>,
    ) -> Result<Self, ShardingError> {
        let tables = dlrm.tables();
        if access_counts.len() != tables.len() || plans.len() != tables.len() {
            return Err(ShardingError(format!(
                "model has {} tables but got {} count vectors and {} plans",
                tables.len(),
                access_counts.len(),
                plans.len()
            )));
        }
        let mut perms = Vec::with_capacity(tables.len());
        let mut shard_tables = Vec::with_capacity(tables.len());
        for (t, table) in tables.iter().enumerate() {
            if access_counts[t].len() != table.rows() as usize {
                return Err(ShardingError(format!(
                    "table {t} has {} rows but {} access counts",
                    table.rows(),
                    access_counts[t].len()
                )));
            }
            if plans[t].table_len() != table.rows() as u64 {
                return Err(ShardingError(format!(
                    "table {t} has {} rows but the plan covers {}",
                    table.rows(),
                    plans[t].table_len()
                )));
            }
            let perm = HotnessPermutation::from_counts(&access_counts[t]);
            let sorted = table.permuted(|pos| perm.to_original(pos), table.rows());
            let shards = plans[t]
                .shards()
                .into_iter()
                .map(|(k, j)| sorted.slice(k as u32, j as u32))
                .collect();
            perms.push(perm);
            shard_tables.push(shards);
        }
        Ok(Self {
            inner: Arc::new(Inner {
                dlrm,
                perms,
                plans,
                shard_tables,
            }),
            executor: None,
        })
    }

    /// Attaches a shared executor; [`ShardedDlrm::forward`] then runs shard
    /// gathers concurrently on it (when it has more than one thread).
    ///
    /// One executor can be shared by many models — clones of this
    /// `ShardedDlrm` share both the model state and the executor.
    #[must_use]
    pub fn with_executor(mut self, executor: Arc<ParallelShardExecutor>) -> Self {
        self.executor = Some(executor);
        self
    }

    /// The attached executor, if any.
    pub fn executor(&self) -> Option<&Arc<ParallelShardExecutor>> {
        self.executor.as_ref()
    }

    /// Requantizes every shard's embedding storage to `kind`, leaving the
    /// dense MLPs and the monolithic reference model in f32 — ElasticRec's
    /// placement view of quantization: precision is a per-shard storage
    /// decision, not a model change. All forward paths (sequential,
    /// workspace, parallel) keep agreeing bit-for-bit on the quantized
    /// storage; outputs track the f32 sharding within the kernels'
    /// analytic error bounds.
    ///
    /// # Panics
    ///
    /// Panics if the shards are no longer in f32 storage (requantizing an
    /// already-quantized model would compound rounding error silently).
    #[must_use]
    pub fn with_elem_kind(self, kind: ElemKind) -> Self {
        let Self { inner, executor } = self;
        let mut inner = Arc::try_unwrap(inner).unwrap_or_else(|a| (*a).clone());
        for shards in &mut inner.shard_tables {
            for table in shards.iter_mut() {
                *table = table.quantized(kind);
            }
        }
        Self {
            inner: Arc::new(inner),
            executor,
        }
    }

    /// Total bytes of embedding storage across all shards, reflecting each
    /// shard's element kind.
    pub fn shard_param_bytes(&self) -> Bytes {
        self.inner
            .shard_tables
            .iter()
            .flatten()
            .fold(Bytes::ZERO, |acc, t| acc + t.bytes())
    }

    /// The underlying monolithic model.
    pub fn dlrm(&self) -> &Dlrm {
        &self.inner.dlrm
    }

    /// The partition plans, per table.
    pub fn plans(&self) -> &[PartitionPlan] {
        &self.inner.plans
    }

    /// Full forward pass through the sharded serving path.
    ///
    /// Dispatches to [`ShardedDlrm::forward_with`] when an executor with
    /// more than one thread is attached, and to
    /// [`ShardedDlrm::forward_seq`] otherwise. Both produce bit-identical
    /// results.
    ///
    /// # Panics
    ///
    /// Panics if the query addresses a different number of tables than the
    /// model has.
    pub fn forward(&self, query: &QueryBatch) -> Matrix {
        match &self.executor {
            Some(exec) if exec.threads() > 1 => self.forward_with(query, exec),
            _ => self.forward_seq(query),
        }
    }

    /// Sequential forward pass: one shard gather at a time, in (table,
    /// shard) order. This is the oracle the parallel path is verified
    /// against.
    ///
    /// # Panics
    ///
    /// Panics if the query addresses a different number of tables than the
    /// model has.
    pub fn forward_seq(&self, query: &QueryBatch) -> Matrix {
        self.check_query(query);
        let bottom = self.inner.dlrm.forward_bottom(&query.dense);
        let pooled: Vec<Matrix> = query
            .lookups
            .iter()
            .enumerate()
            .map(|(t, l)| self.inner.sparse_table(t, l))
            .collect();
        self.inner.dlrm.forward_top(&bottom, &pooled)
    }

    /// Parallel forward pass: every (table, shard) gather becomes one task
    /// on `executor`, the dense bottom MLP runs on the caller thread while
    /// gathers are in flight (like the paper's dense DNN shard overlapping
    /// embedding RPCs), and partial pools are merged in ascending shard
    /// order — bit-identical to [`ShardedDlrm::forward_seq`] at every
    /// thread count.
    ///
    /// # Panics
    ///
    /// Panics if the query addresses a different number of tables than the
    /// model has, or a shard task panics.
    pub fn forward_with(&self, query: &QueryBatch, executor: &ParallelShardExecutor) -> Matrix {
        self.check_query(query);
        let inner = &self.inner;
        // Remap each table's lookup into sorted-ID space, then bucketize
        // every table (table-parallel) up front.
        let sorted: Vec<TableLookup> = query
            .lookups
            .iter()
            .enumerate()
            .map(|(t, l)| l.map_indices(|orig| inner.perms[t].to_sorted(orig)))
            .collect();
        let raw: Vec<(&[u32], &[u32])> =
            sorted.iter().map(|l| (l.indices(), l.offsets())).collect();
        let buckets = bucketize_tables(&raw, &inner.plans, executor.threads());
        // One task per (table, shard), keyed by a running shard counter so
        // work spreads round-robin across the pinned worker queues.
        let mut jobs: Vec<(usize, Box<dyn FnOnce() -> Matrix + Send>)> = Vec::new();
        for (t, bucket) in buckets.into_iter().enumerate() {
            for (s, (idx, off)) in bucket.indices.into_iter().zip(bucket.offsets).enumerate() {
                let inner = Arc::clone(inner);
                jobs.push((
                    jobs.len(),
                    Box::new(move || {
                        let lookup =
                            // lint::allow(no_panic): bucketize emits offsets starting at 0, non-decreasing, in range
                            TableLookup::new(idx, off).expect("bucketize emits valid offsets");
                        inner.shard_tables[t][s].gather_pool_fused(&lookup)
                    }),
                ));
            }
        }
        let pending = executor.scatter(jobs);
        // Dense bottom overlaps with the in-flight shard gathers.
        let bottom = inner.dlrm.forward_bottom(&query.dense);
        let partials = pending.collect();
        // Deterministic merge: collect() restored submission order, so
        // summing each table's run of partials walks shards in ascending
        // order — the exact FP op sequence of the sequential path.
        let mut pooled = Vec::with_capacity(inner.plans.len());
        let mut it = partials.into_iter();
        for (t, plan) in inner.plans.iter().enumerate() {
            let dim = inner.dlrm.tables()[t].dim() as usize;
            let mut acc = Matrix::zeros(query.lookups[t].num_inputs(), dim);
            for _ in 0..plan.num_shards() {
                // lint::allow(no_panic): scatter returned exactly one partial per (table, shard) job
                let partial = it.next().expect("one partial per shard");
                // lint::allow(no_panic): acc and partial are both (num_inputs x dim) by construction
                acc = acc.add(&partial).expect("shapes match by construction");
            }
            pooled.push(acc);
        }
        inner.dlrm.forward_top(&bottom, &pooled)
    }

    /// Creates a [`ForwardWorkspace`] sized for this model, for use with
    /// [`ShardedDlrm::forward_ws`].
    pub fn workspace(&self) -> ForwardWorkspace {
        ForwardWorkspace::for_tables(self.inner.plans.len())
    }

    /// Sequential forward pass through caller-owned scratch: the same
    /// hotness-remap → bucketize → per-shard gather → ascending merge →
    /// interaction → MLP pipeline as [`ShardedDlrm::forward_seq`], with
    /// every intermediate recycled from `ws`. Each stage is bit-identical
    /// to its allocating counterpart (per-shard partials are still pooled
    /// into a zeroed scratch and then summed in ascending shard order, so
    /// the FP op sequence is unchanged), and once `ws` is warm a call
    /// performs zero heap allocations.
    ///
    /// The returned reference points into `ws` and is valid until the next
    /// use of the workspace.
    ///
    /// # Panics
    ///
    /// Panics if the query addresses a different number of tables than the
    /// model has.
    pub fn forward_ws<'w>(&self, query: &QueryBatch, ws: &'w mut ForwardWorkspace) -> &'w Matrix {
        self.check_query(query);
        let inner = &self.inner;
        let tables = query.lookups.len();
        // Grow-only guard so a workspace built for a smaller model still
        // works; `resize` would re-allocate its template matrix every call.
        while ws.pooled.len() < tables {
            // lint::allow(hot_alloc): grow-only, never runs at steady state
            ws.pooled.push(Matrix::zeros(1, 1));
        }
        for (t, lookup) in query.lookups.iter().enumerate() {
            ws.sorted.clear();
            ws.sorted.extend(
                lookup
                    .indices()
                    .iter()
                    .map(|&i| inner.perms[t].to_sorted(i)),
            );
            bucketize_into(
                &ws.sorted,
                lookup.offsets(),
                &inner.plans[t],
                &mut ws.buckets,
            );
            let dim = inner.dlrm.tables()[t].dim() as usize;
            ws.pooled[t].reshape_zeroed(lookup.num_inputs(), dim);
            for (s, table) in inner.shard_tables[t].iter().enumerate() {
                table.gather_pool_into(
                    &ws.buckets.indices[s],
                    &ws.buckets.offsets[s],
                    &mut ws.partial,
                );
                ws.pooled[t]
                    .add_assign(&ws.partial)
                    // lint::allow(no_panic): pooled and partial are both (num_inputs x dim) by construction
                    .expect("shapes match by construction");
            }
        }
        let bottom =
            inner
                .dlrm
                .bottom_mlp()
                .forward_into(&query.dense, &mut ws.mlp_a, &mut ws.mlp_b);
        dot_interaction_into(bottom, &ws.pooled[..tables], &mut ws.interacted);
        inner
            .dlrm
            .top_mlp()
            .forward_into(&ws.interacted, &mut ws.mlp_a, &mut ws.mlp_b)
    }

    fn check_query(&self, query: &QueryBatch) {
        assert_eq!(
            query.lookups.len(),
            self.inner.plans.len(),
            "query addresses {} tables, model has {}",
            query.lookups.len(),
            self.inner.plans.len()
        );
    }
}

impl Inner {
    /// Runs the sparse stage the distributed way for one table: remap to
    /// sorted IDs, bucketize, gather per shard, sum the partial pools.
    fn sparse_table(&self, t: usize, lookup: &TableLookup) -> Matrix {
        let sorted = lookup.map_indices(|orig| self.perms[t].to_sorted(orig));
        let buckets = bucketize(sorted.indices(), sorted.offsets(), &self.plans[t]);
        let dim = self.dlrm.tables()[t].dim() as usize;
        let mut pooled = Matrix::zeros(lookup.num_inputs(), dim);
        let mut partial = Matrix::zeros(lookup.num_inputs(), dim);
        for (s, table) in self.shard_tables[t].iter().enumerate() {
            // Gathering straight off the bucketized slices skips the
            // per-shard index/offset clones a TableLookup would need.
            table.gather_pool_into(&buckets.indices[s], &buckets.offsets[s], &mut partial);
            pooled
                .add_assign(&partial)
                // lint::allow(no_panic): pooled and partial are both (num_inputs x dim) by construction
                .expect("shapes match by construction");
        }
        pooled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_model::{configs, QueryGenerator};
    use er_sim::SimRng;

    fn setup(
        rows: u64,
        tables: usize,
        cuts: Vec<u64>,
    ) -> (er_model::ModelConfig, Dlrm, ShardedDlrm) {
        let cfg = configs::rm1().scaled_tables(rows).with_num_tables(tables);
        let model = Dlrm::with_seed(&cfg, 11);
        // Zipf-ish synthetic counts: entry i is hotter for smaller i after
        // scrambling, to exercise a non-trivial permutation.
        let counts: Vec<Vec<u64>> = (0..tables)
            .map(|t| {
                (0..rows)
                    .map(|i| ((i * 7919 + t as u64 * 31) % rows) + 1)
                    .collect()
            })
            .collect();
        let plans = vec![PartitionPlan::new(cuts.clone(), rows).unwrap(); tables];
        let sharded = ShardedDlrm::new(model.clone(), &counts, plans).unwrap();
        (cfg, model, sharded)
    }

    #[test]
    fn sharded_forward_matches_monolithic() {
        let (cfg, model, sharded) = setup(300, 3, vec![30, 120, 300]);
        let gen = QueryGenerator::new(&cfg);
        let mut rng = SimRng::seed_from(5);
        for _ in 0..5 {
            let q = gen.generate(&mut rng);
            let mono = model.forward(&q);
            let dist = sharded.forward(&q);
            assert!(
                mono.max_abs_diff(&dist) < 1e-4,
                "diff={}",
                mono.max_abs_diff(&dist)
            );
        }
    }

    #[test]
    fn single_shard_plan_matches_exactly_with_identity_counts() {
        // Uniform counts -> stable sort -> identity permutation; a single
        // shard then reproduces the monolithic pooling order exactly.
        let cfg = configs::rm1().scaled_tables(100).with_num_tables(2);
        let model = Dlrm::with_seed(&cfg, 3);
        let counts = vec![vec![1u64; 100]; 2];
        let plans = vec![PartitionPlan::single(100); 2];
        let sharded = ShardedDlrm::new(model.clone(), &counts, plans).unwrap();
        let q = QueryGenerator::new(&cfg).generate(&mut SimRng::seed_from(8));
        assert_eq!(model.forward(&q), sharded.forward(&q));
    }

    #[test]
    fn many_small_shards_still_match() {
        let (cfg, model, sharded) = setup(64, 1, vec![4, 8, 16, 32, 64]);
        let q = QueryGenerator::new(&cfg).generate(&mut SimRng::seed_from(2));
        assert!(model.forward(&q).max_abs_diff(&sharded.forward(&q)) < 1e-4);
    }

    #[test]
    fn parallel_forward_is_bit_identical_to_sequential() {
        let (cfg, _, sharded) = setup(300, 3, vec![30, 120, 300]);
        let gen = QueryGenerator::new(&cfg);
        let mut rng = SimRng::seed_from(17);
        for threads in [1, 2, 3, 8] {
            let exec = ParallelShardExecutor::new(threads);
            for _ in 0..3 {
                let q = gen.generate(&mut rng);
                assert_eq!(
                    sharded.forward_seq(&q),
                    sharded.forward_with(&q, &exec),
                    "threads={threads}"
                );
            }
        }
    }

    /// The full sharded forward pass under the vector-clock checker: every
    /// happens-before edge of the scatter → gather → ascending-merge data
    /// plane holds on real queries, and results stay bit-identical.
    #[cfg(feature = "race-check")]
    #[test]
    fn race_checked_forward_is_clean_and_bit_identical() {
        let (cfg, _, sharded) = setup(300, 3, vec![30, 120, 300]);
        let gen = QueryGenerator::new(&cfg);
        let mut rng = SimRng::seed_from(29);
        for threads in [1, 2, 4] {
            let exec = ParallelShardExecutor::with_race_checking(threads);
            for _ in 0..2 {
                let q = gen.generate(&mut rng);
                assert_eq!(
                    sharded.forward_seq(&q),
                    sharded.forward_with(&q, &exec),
                    "threads={threads}"
                );
            }
        }
    }

    #[test]
    fn workspace_forward_is_bit_identical_to_sequential() {
        // One workspace recycled across queries of a non-trivial sharding:
        // every call must reproduce the allocating oracle bit-for-bit.
        let (cfg, _, sharded) = setup(300, 3, vec![30, 120, 300]);
        let gen = QueryGenerator::new(&cfg);
        let mut rng = SimRng::seed_from(41);
        let mut ws = sharded.workspace();
        for i in 0..6 {
            let q = gen.generate(&mut rng);
            assert_eq!(
                *sharded.forward_ws(&q, &mut ws),
                sharded.forward_seq(&q),
                "query {i}"
            );
        }
    }

    #[test]
    fn workspace_survives_model_switch() {
        // A workspace warmed on one sharding keeps matching when reused on
        // a model with more tables and different shard counts.
        let (cfg_a, _, sharded_a) = setup(100, 2, vec![10, 50, 100]);
        let (cfg_b, _, sharded_b) = setup(200, 4, vec![40, 200]);
        let mut ws = sharded_a.workspace();
        let q_a = QueryGenerator::new(&cfg_a).generate(&mut SimRng::seed_from(2));
        assert_eq!(
            *sharded_a.forward_ws(&q_a, &mut ws),
            sharded_a.forward_seq(&q_a)
        );
        let q_b = QueryGenerator::new(&cfg_b).generate(&mut SimRng::seed_from(3));
        assert_eq!(
            *sharded_b.forward_ws(&q_b, &mut ws),
            sharded_b.forward_seq(&q_b)
        );
        assert_eq!(
            *sharded_a.forward_ws(&q_a, &mut ws),
            sharded_a.forward_seq(&q_a)
        );
    }

    #[test]
    fn attached_executor_routes_forward_through_parallel_path() {
        let (cfg, _, sharded) = setup(128, 2, vec![16, 64, 128]);
        let exec = Arc::new(ParallelShardExecutor::new(4));
        let par = sharded.clone().with_executor(Arc::clone(&exec));
        assert_eq!(par.executor().map(|e| e.threads()), Some(4));
        let q = QueryGenerator::new(&cfg).generate(&mut SimRng::seed_from(23));
        assert_eq!(sharded.forward(&q), par.forward(&q));
    }

    #[test]
    fn executor_is_reusable_across_queries_and_models() {
        let exec = Arc::new(ParallelShardExecutor::new(3));
        for seed in [1u64, 2] {
            let (cfg, _, sharded) = setup(100 + seed * 20, 2, vec![10, 50, 100 + seed * 20]);
            let par = sharded.clone().with_executor(Arc::clone(&exec));
            let gen = QueryGenerator::new(&cfg);
            let mut rng = SimRng::seed_from(seed);
            for _ in 0..2 {
                let q = gen.generate(&mut rng);
                assert_eq!(sharded.forward_seq(&q), par.forward(&q));
            }
        }
    }

    #[test]
    fn quantized_shards_track_the_f32_path_within_tolerance() {
        let (cfg, _, sharded) = setup(300, 3, vec![30, 120, 300]);
        let q = QueryGenerator::new(&cfg).generate(&mut SimRng::seed_from(51));
        let reference = sharded.forward_seq(&q);
        let f32_bytes = sharded.shard_param_bytes();
        for kind in [ElemKind::F16, ElemKind::I8] {
            let quant = sharded.clone().with_elem_kind(kind);
            // Quantized storage is strictly smaller.
            assert!(
                quant.shard_param_bytes().raw() < f32_bytes.raw(),
                "{kind}: {:?} !< {f32_bytes:?}",
                quant.shard_param_bytes()
            );
            let out = quant.forward_seq(&q);
            let diff = reference.max_abs_diff(&out);
            assert!(diff < 0.05, "{kind}: diff={diff}");
            // Every serving path agrees bit-for-bit on quantized storage.
            let mut ws = quant.workspace();
            assert_eq!(*quant.forward_ws(&q, &mut ws), out, "{kind} ws");
            let exec = ParallelShardExecutor::new(3);
            assert_eq!(quant.forward_with(&q, &exec), out, "{kind} par");
        }
    }

    #[test]
    fn f32_requantization_is_an_exact_no_op() {
        let (cfg, _, sharded) = setup(100, 2, vec![10, 50, 100]);
        let q = QueryGenerator::new(&cfg).generate(&mut SimRng::seed_from(9));
        let same = sharded.clone().with_elem_kind(ElemKind::F32);
        assert_eq!(sharded.forward_seq(&q), same.forward_seq(&q));
        assert_eq!(
            sharded.shard_param_bytes().raw(),
            same.shard_param_bytes().raw()
        );
    }

    #[test]
    fn validation_catches_mismatches() {
        let cfg = configs::rm1().scaled_tables(100).with_num_tables(2);
        let model = Dlrm::with_seed(&cfg, 3);
        // Wrong number of count vectors.
        assert!(ShardedDlrm::new(
            model.clone(),
            &[vec![1; 100]],
            vec![PartitionPlan::single(100); 2]
        )
        .is_err());
        // Wrong count length.
        assert!(ShardedDlrm::new(
            model.clone(),
            &[vec![1; 99], vec![1; 100]],
            vec![PartitionPlan::single(100); 2]
        )
        .is_err());
        // Wrong plan size.
        assert!(ShardedDlrm::new(
            model,
            &[vec![1; 100], vec![1; 100]],
            vec![PartitionPlan::single(99); 2]
        )
        .is_err());
    }

    #[test]
    fn accessors_expose_structure() {
        let (_, _, sharded) = setup(100, 2, vec![10, 100]);
        assert_eq!(sharded.plans().len(), 2);
        assert_eq!(sharded.plans()[0].num_shards(), 2);
        assert_eq!(sharded.dlrm().tables().len(), 2);
        assert!(sharded.executor().is_none());
    }
}

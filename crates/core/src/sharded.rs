//! The functional sharded serving path.
//!
//! [`ShardedDlrm`] executes a DLRM exactly the way ElasticRec's
//! microservices do — hotness-sort each table (Figure 8), bucketize each
//! query's lookups onto the partitioned shards (Figure 11), gather and
//! pool *within* each shard, and sum the partial pools — and is verified
//! to produce the same results as the monolithic model. This is the
//! correctness argument for the whole decomposition: partitioning is an
//! execution detail, not a model change.

use er_distribution::sorting::HotnessPermutation;
use er_model::{Dlrm, EmbeddingTable, QueryBatch, TableLookup};
use er_partition::{bucketize, PartitionPlan};
use er_tensor::Matrix;

/// A DLRM decomposed into embedding shards, functionally equivalent to the
/// monolithic model it was built from.
///
/// # Examples
///
/// ```
/// use elasticrec::ShardedDlrm;
/// use er_model::{configs, Dlrm, QueryGenerator};
/// use er_partition::PartitionPlan;
/// use er_sim::SimRng;
///
/// let cfg = configs::rm1().scaled_tables(200).with_num_tables(2);
/// let model = Dlrm::with_seed(&cfg, 1);
/// let counts: Vec<Vec<u64>> = vec![(0..200).map(|i| 200 - i).collect(); 2];
/// let plans = vec![PartitionPlan::new(vec![20, 200], 200).unwrap(); 2];
/// let sharded = ShardedDlrm::new(model.clone(), &counts, plans).unwrap();
///
/// let q = QueryGenerator::new(&cfg).generate(&mut SimRng::seed_from(3));
/// let mono = model.forward(&q);
/// let dist = sharded.forward(&q);
/// assert!(mono.max_abs_diff(&dist) < 1e-4);
/// ```
#[derive(Debug, Clone)]
pub struct ShardedDlrm {
    dlrm: Dlrm,
    perms: Vec<HotnessPermutation>,
    plans: Vec<PartitionPlan>,
    /// `shard_tables[t][s]`: the physical storage of table `t`'s shard `s`
    /// (sorted rows, sliced at the plan's cut points).
    shard_tables: Vec<Vec<EmbeddingTable>>,
}

/// Error building a [`ShardedDlrm`] from mismatched inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardingError(String);

impl std::fmt::Display for ShardingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ShardingError {}

impl ShardedDlrm {
    /// Decomposes `dlrm` using per-table access counts (for the hotness
    /// sort) and partition plans.
    ///
    /// # Errors
    ///
    /// Returns an error if the number of count vectors or plans does not
    /// match the model's tables, or sizes disagree.
    pub fn new(
        dlrm: Dlrm,
        access_counts: &[Vec<u64>],
        plans: Vec<PartitionPlan>,
    ) -> Result<Self, ShardingError> {
        let tables = dlrm.tables();
        if access_counts.len() != tables.len() || plans.len() != tables.len() {
            return Err(ShardingError(format!(
                "model has {} tables but got {} count vectors and {} plans",
                tables.len(),
                access_counts.len(),
                plans.len()
            )));
        }
        let mut perms = Vec::with_capacity(tables.len());
        let mut shard_tables = Vec::with_capacity(tables.len());
        for (t, table) in tables.iter().enumerate() {
            if access_counts[t].len() != table.rows() as usize {
                return Err(ShardingError(format!(
                    "table {t} has {} rows but {} access counts",
                    table.rows(),
                    access_counts[t].len()
                )));
            }
            if plans[t].table_len() != table.rows() as u64 {
                return Err(ShardingError(format!(
                    "table {t} has {} rows but the plan covers {}",
                    table.rows(),
                    plans[t].table_len()
                )));
            }
            let perm = HotnessPermutation::from_counts(&access_counts[t]);
            let sorted = table.permuted(|pos| perm.to_original(pos), table.rows());
            let shards = plans[t]
                .shards()
                .into_iter()
                .map(|(k, j)| sorted.slice(k as u32, j as u32))
                .collect();
            perms.push(perm);
            shard_tables.push(shards);
        }
        Ok(Self {
            dlrm,
            perms,
            plans,
            shard_tables,
        })
    }

    /// The underlying monolithic model.
    pub fn dlrm(&self) -> &Dlrm {
        &self.dlrm
    }

    /// The partition plans, per table.
    pub fn plans(&self) -> &[PartitionPlan] {
        &self.plans
    }

    /// Runs the sparse stage the distributed way for one table: remap to
    /// sorted IDs, bucketize, gather per shard, sum the partial pools.
    fn sparse_table(&self, t: usize, lookup: &TableLookup) -> Matrix {
        let sorted = lookup.map_indices(|orig| self.perms[t].to_sorted(orig));
        let buckets = bucketize(sorted.indices(), sorted.offsets(), &self.plans[t]);
        let dim = self.dlrm.tables()[t].dim() as usize;
        let mut pooled = Matrix::zeros(lookup.num_inputs(), dim);
        for (s, table) in self.shard_tables[t].iter().enumerate() {
            let shard_lookup =
                TableLookup::new(buckets.indices[s].clone(), buckets.offsets[s].clone())
                    .expect("bucketize emits valid offsets");
            let partial = table.gather_pool(&shard_lookup);
            pooled = pooled.add(&partial).expect("shapes match by construction");
        }
        pooled
    }

    /// Full forward pass through the sharded serving path.
    ///
    /// # Panics
    ///
    /// Panics if the query addresses a different number of tables than the
    /// model has.
    pub fn forward(&self, query: &QueryBatch) -> Matrix {
        assert_eq!(
            query.lookups.len(),
            self.plans.len(),
            "query addresses {} tables, model has {}",
            query.lookups.len(),
            self.plans.len()
        );
        let bottom = self.dlrm.forward_bottom(&query.dense);
        let pooled: Vec<Matrix> = query
            .lookups
            .iter()
            .enumerate()
            .map(|(t, l)| self.sparse_table(t, l))
            .collect();
        self.dlrm.forward_top(&bottom, &pooled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_model::{configs, QueryGenerator};
    use er_sim::SimRng;

    fn setup(
        rows: u64,
        tables: usize,
        cuts: Vec<u64>,
    ) -> (er_model::ModelConfig, Dlrm, ShardedDlrm) {
        let cfg = configs::rm1().scaled_tables(rows).with_num_tables(tables);
        let model = Dlrm::with_seed(&cfg, 11);
        // Zipf-ish synthetic counts: entry i is hotter for smaller i after
        // scrambling, to exercise a non-trivial permutation.
        let counts: Vec<Vec<u64>> = (0..tables)
            .map(|t| {
                (0..rows)
                    .map(|i| ((i * 7919 + t as u64 * 31) % rows) + 1)
                    .collect()
            })
            .collect();
        let plans = vec![PartitionPlan::new(cuts.clone(), rows).unwrap(); tables];
        let sharded = ShardedDlrm::new(model.clone(), &counts, plans).unwrap();
        (cfg, model, sharded)
    }

    #[test]
    fn sharded_forward_matches_monolithic() {
        let (cfg, model, sharded) = setup(300, 3, vec![30, 120, 300]);
        let gen = QueryGenerator::new(&cfg);
        let mut rng = SimRng::seed_from(5);
        for _ in 0..5 {
            let q = gen.generate(&mut rng);
            let mono = model.forward(&q);
            let dist = sharded.forward(&q);
            assert!(
                mono.max_abs_diff(&dist) < 1e-4,
                "diff={}",
                mono.max_abs_diff(&dist)
            );
        }
    }

    #[test]
    fn single_shard_plan_matches_exactly_with_identity_counts() {
        // Uniform counts -> stable sort -> identity permutation; a single
        // shard then reproduces the monolithic pooling order exactly.
        let cfg = configs::rm1().scaled_tables(100).with_num_tables(2);
        let model = Dlrm::with_seed(&cfg, 3);
        let counts = vec![vec![1u64; 100]; 2];
        let plans = vec![PartitionPlan::single(100); 2];
        let sharded = ShardedDlrm::new(model.clone(), &counts, plans).unwrap();
        let q = QueryGenerator::new(&cfg).generate(&mut SimRng::seed_from(8));
        assert_eq!(model.forward(&q), sharded.forward(&q));
    }

    #[test]
    fn many_small_shards_still_match() {
        let (cfg, model, sharded) = setup(64, 1, vec![4, 8, 16, 32, 64]);
        let q = QueryGenerator::new(&cfg).generate(&mut SimRng::seed_from(2));
        assert!(model.forward(&q).max_abs_diff(&sharded.forward(&q)) < 1e-4);
    }

    #[test]
    fn validation_catches_mismatches() {
        let cfg = configs::rm1().scaled_tables(100).with_num_tables(2);
        let model = Dlrm::with_seed(&cfg, 3);
        // Wrong number of count vectors.
        assert!(ShardedDlrm::new(
            model.clone(),
            &[vec![1; 100]],
            vec![PartitionPlan::single(100); 2]
        )
        .is_err());
        // Wrong count length.
        assert!(ShardedDlrm::new(
            model.clone(),
            &[vec![1; 99], vec![1; 100]],
            vec![PartitionPlan::single(100); 2]
        )
        .is_err());
        // Wrong plan size.
        assert!(ShardedDlrm::new(
            model,
            &[vec![1; 100], vec![1; 100]],
            vec![PartitionPlan::single(99); 2]
        )
        .is_err());
    }

    #[test]
    fn accessors_expose_structure() {
        let (_, _, sharded) = setup(100, 2, vec![10, 100]);
        assert_eq!(sharded.plans().len(), 2);
        assert_eq!(sharded.plans()[0].num_shards(), 2);
        assert_eq!(sharded.dlrm().tables().len(), 2);
    }
}

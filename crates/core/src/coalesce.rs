//! Engine-level gather coalescing on the functional data plane.
//!
//! The simulation's [`crate::SimulationConfig::coalesce_window_secs`]
//! models the *timing* effect of batching embedding requests; this module
//! is the corresponding data-plane mechanism. A [`GatherCoalescer`]
//! concatenates several queries' CSR lookups against one embedding table
//! into a single fused gather, then splits the pooled rows back out per
//! query. Pooling is independent per output row, so the batched kernel
//! performs exactly the FP op sequence each per-query gather would —
//! results are bit-identical; the batch only amortizes per-invocation
//! overhead (request decode, kernel entry, dispatch) across queries.

use er_model::{EmbeddingTable, TableLookup};
use er_tensor::Matrix;

/// Batches queries' lookups against one embedding table into one gather.
///
/// # Examples
///
/// ```
/// use elasticrec::GatherCoalescer;
/// use er_model::{EmbeddingTable, TableLookup};
/// use er_tensor::Matrix;
///
/// let table = EmbeddingTable::with_seed(8, 4, 1);
/// let a = TableLookup::new(vec![0, 3, 5], vec![0, 2]).unwrap();
/// let b = TableLookup::new(vec![7, 1], vec![0, 1]).unwrap();
///
/// let mut co = GatherCoalescer::new();
/// co.push(&a);
/// co.push(&b);
/// let pooled = co.flush(&table);
///
/// // Each query's slice is bit-identical to its standalone gather.
/// assert_eq!(pooled[0], table.gather_pool(&a));
/// assert_eq!(pooled[1], table.gather_pool(&b));
/// ```
#[derive(Debug)]
pub struct GatherCoalescer {
    indices: Vec<u32>,
    offsets: Vec<u32>,
    /// Pooled output rows contributed by each enqueued query, in order.
    rows_per_query: Vec<usize>,
    scratch: Matrix,
}

impl Default for GatherCoalescer {
    fn default() -> Self {
        Self::new()
    }
}

impl GatherCoalescer {
    /// An empty coalescer. Buffers grow on demand and are retained across
    /// flushes, so a long-lived coalescer stops allocating once warm.
    pub fn new() -> Self {
        Self {
            indices: Vec::new(),
            offsets: Vec::new(),
            rows_per_query: Vec::new(),
            scratch: Matrix::zeros(1, 1),
        }
    }

    /// Enqueues one query's lookup into the pending batch.
    pub fn push(&mut self, lookup: &TableLookup) {
        // lint::allow(no_panic): CSR index streams are bounded well below u32::MAX rows
        let base = u32::try_from(self.indices.len()).expect("coalesced index stream fits u32");
        self.offsets
            .extend(lookup.offsets().iter().map(|&o| base + o));
        self.indices.extend_from_slice(lookup.indices());
        self.rows_per_query.push(lookup.num_inputs());
    }

    /// Queries currently buffered.
    pub fn pending(&self) -> usize {
        self.rows_per_query.len()
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.rows_per_query.is_empty()
    }

    /// Gathers the whole batch in one kernel invocation against `table`
    /// and returns each query's pooled rows, in enqueue order. The
    /// coalescer is empty afterwards and can be reused.
    ///
    /// # Panics
    ///
    /// Panics if a buffered lookup addresses a row outside `table`.
    pub fn flush(&mut self, table: &EmbeddingTable) -> Vec<Matrix> {
        table.gather_pool_into(&self.indices, &self.offsets, &mut self.scratch);
        let dim = table.dim() as usize;
        let mut out = Vec::with_capacity(self.rows_per_query.len());
        let mut next = 0;
        for &n in &self.rows_per_query {
            let mut m = Matrix::zeros(n, dim);
            for r in 0..n {
                m.row_mut(r).copy_from_slice(self.scratch.row(next + r));
            }
            next += n;
            out.push(m);
        }
        self.indices.clear();
        self.offsets.clear();
        self.rows_per_query.clear();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_units::ElemKind;

    /// Deterministic lookups with varied bag sizes, including empty bags.
    fn lookups(rows: u32) -> Vec<TableLookup> {
        let mut out = Vec::new();
        let mut next = 13u32;
        for q in 0..5u32 {
            let mut indices = Vec::new();
            let mut offsets = Vec::new();
            for input in 0..(2 + q % 3) {
                offsets.push(indices.len() as u32);
                for _ in 0..((input + q) % 4) {
                    indices.push(next % rows);
                    next = next.wrapping_mul(2654435761).wrapping_add(1);
                }
            }
            out.push(TableLookup::new(indices, offsets).unwrap());
        }
        out
    }

    #[test]
    fn coalesced_gather_is_bit_identical_per_query() {
        // The contract must hold for every storage kind, since the engine
        // may coalesce against quantized shards.
        let f32_table = EmbeddingTable::with_seed(64, 12, 7);
        for kind in ElemKind::ALL {
            let table = f32_table.quantized(kind);
            let queries = lookups(64);
            let mut co = GatherCoalescer::new();
            for q in &queries {
                co.push(q);
            }
            assert_eq!(co.pending(), queries.len());
            let pooled = co.flush(&table);
            assert!(co.is_empty());
            for (got, q) in pooled.iter().zip(&queries) {
                assert_eq!(got, &table.gather_pool(q), "{kind}");
            }
        }
    }

    #[test]
    fn coalescer_is_reusable_across_flushes_and_tables() {
        let a = EmbeddingTable::with_seed(32, 8, 1);
        let b = EmbeddingTable::with_seed(90, 4, 2);
        let mut co = GatherCoalescer::new();
        for (table, rows) in [(&a, 32), (&b, 90)] {
            let queries = lookups(rows);
            for q in &queries {
                co.push(q);
            }
            let pooled = co.flush(table);
            for (got, q) in pooled.iter().zip(&queries) {
                assert_eq!(got, &table.gather_pool(q));
            }
        }
    }

    #[test]
    fn single_query_batch_is_a_plain_gather() {
        let table = EmbeddingTable::with_seed(16, 6, 3);
        let q = TableLookup::new(vec![1, 15, 3], vec![0, 1]).unwrap();
        let mut co = GatherCoalescer::new();
        co.push(&q);
        assert_eq!(co.flush(&table), vec![table.gather_pool(&q)]);
    }
}

//! The sharded serving simulation: the sequential engine of
//! [`crate::engine`] decomposed into logical processes for the
//! conservative time-window runner in [`er_sim`].
//!
//! Decomposition (one LP per microservice deployment class):
//!
//! - **LP 0 — control + frontend.** Owns the arrival process, the query
//!   slab, the frontend (dense or monolithic) pods, the cluster object,
//!   every metric, and both autoscaling policies. All observables are
//!   recorded here, so the outcome assembles from a single LP.
//! - **LP `k+1` — embedding shard deployment `k`.** Owns a *view* of its
//!   pod set (id, readiness) plus the per-pod busy times, and services
//!   `SparseReq` messages exactly like the sequential engine's
//!   `SparseArrive` handler.
//!
//! Cross-LP traffic maps one-to-one onto the paper's RPC structure, which
//! is what makes the conservative lookahead sound: a `SparseReq` travels
//! a real network hop (≥ the per-shard request transfer time) and a
//! `SparseDone` travels the response hop (≥ the response transfer time),
//! so `lookahead = min(request transfers, response transfer)` — derived
//! from the same hardware profile numbers the sequential engine charges —
//! lower-bounds every message delay. Control actions are the exception:
//! HPA decisions and node failures reshape embedding pod sets *instantly*
//! in the sequential engine. Those instants (every HPA tick, plus the
//! scripted failure time) are therefore declared sync points, and the
//! resulting `PodSet` broadcasts ride the zero-lookahead control windows
//! the runner provides.
//!
//! Same seed ⇒ bit-identical outcomes at any shard/thread count (the
//! runner's canonical barrier merge guarantees it; `tests/par_parity.rs`
//! enforces it). Outcomes are *statistically* equivalent to the
//! sequential engine but not bitwise: same-instant event ties resolve by
//! a different (equally deterministic) order.

use er_cluster::{
    bound_frontend_desired, clamp_scale_to_load, Cluster, HpaController, HpaPolicy, Observation,
    ScalingTarget,
};
use er_metrics::{Histogram, QpsWindow, TimeSeries};
use er_rpc::messages;
use er_sim::{
    LpCtx, LpLogic, ShardedSim, SimRng, SimTime, WindowConfig, WindowObserver, WindowStats,
};
use er_units::{Qps, Secs};
use er_workload::ArrivalProcess;

use crate::engine::{
    DeployState, QuerySlab, QueryState, SimulationConfig, SimulationOutcome, StageBreakdown,
    KNEE_FRACTION,
};
use crate::{Calibration, Platform, ServingPlan, ShardService, SteadyState};

/// Execution shape of a parallel run. Pure performance knobs: results are
/// bit-identical for every value of both fields.
#[derive(Debug, Clone, Copy)]
pub struct ParSimConfig {
    /// Number of shards the LPs are grouped into.
    pub shards: usize,
    /// Number of worker threads (1 = inline, no threads spawned).
    pub threads: usize,
}

impl ParSimConfig {
    /// `shards` shards on `threads` workers (both clamped to ≥ 1).
    pub fn new(shards: usize, threads: usize) -> Self {
        Self {
            shards: shards.max(1),
            threads: threads.max(1),
        }
    }
}

/// Events exchanged within and between the serving LPs.
#[derive(Debug)]
enum PEv {
    // --- LP 0 local ---
    Arrival,
    NodeFailure,
    MetricsTick,
    HpaTick,
    TopDone { qid: u64 },
    // --- embedding shard -> LP 0, delivered at response-landing time ---
    SparseDone { qid: u64 },
    // --- LP 0 -> embedding shard, delivered at request-landing time ---
    SparseReq { qid: u64 },
    // --- LP 0 -> embedding shard, control-window pod reconfiguration ---
    PodSet { pods: Vec<(u64, f64)> },
}

/// One embedding shard deployment: a pod view plus FIFO busy times,
/// mirroring the sequential engine's `SparseArrive` handling.
struct EmbLp {
    /// Sparse lookup service time per query.
    service_secs: f64,
    /// Response transfer time back to the frontend.
    resp_secs: f64,
    /// `(pod id, ready_at_secs)` in deployment order — replaced wholesale
    /// by `PodSet` messages at control windows.
    pods: Vec<(u64, f64)>,
    /// next_free per pod, indexed by the cluster's dense global pod ids.
    pod_free: Vec<f64>,
}

impl EmbLp {
    /// Picks the pod that can start soonest (ties to deployment order),
    /// identical to the sequential engine's `assign_pod`.
    fn assign_pod(&self, now: f64) -> (u64, f64) {
        assert!(!self.pods.is_empty(), "embedding deployment has no pods");
        let mut best = (self.pods[0].0, f64::INFINITY);
        for &(id, ready) in &self.pods {
            let free = self.pod_free.get(id as usize).copied().unwrap_or(0.0);
            let start = now.max(ready).max(free);
            if start < best.1 {
                best = (id, start);
                if start <= now {
                    break;
                }
            }
        }
        best
    }

    fn on_event(&mut self, now: SimTime, ev: PEv, ctx: &mut LpCtx<'_, PEv>) {
        match ev {
            PEv::SparseReq { qid } => {
                let t = now.as_secs();
                let (pod, start) = self.assign_pod(t);
                let end = start + self.service_secs;
                let idx = pod as usize;
                if idx >= self.pod_free.len() {
                    self.pod_free.resize(idx + 1, 0.0);
                }
                self.pod_free[idx] = end;
                // The response lands after the service completes plus the
                // return transfer — ≥ lookahead past `now`, so this send
                // always clears the conservative barrier check.
                let done = end + self.resp_secs;
                ctx.send(0, SimTime::from_secs(done), PEv::SparseDone { qid });
            }
            PEv::PodSet { pods } => self.pods = pods,
            _ => unreachable!("unexpected event on an embedding LP"),
        }
    }
}

/// LP 0: the control plane plus the frontend deployment — everything the
/// sequential engine does except servicing embedding lookups.
struct ControlLp<'a> {
    plan: &'a ServingPlan,
    cfg: &'a SimulationConfig,
    cluster: Cluster,
    arrivals: ArrivalProcess,
    /// next_free for frontend pods, indexed by dense global pod id.
    pod_free: Vec<f64>,
    queries: QuerySlab,
    deploys: Vec<DeployState>,
    frontend: usize,
    /// Shard-plan indices of the embedding deployments; embedding
    /// deployment `k` runs as LP `k + 1`.
    emb_shards: Vec<usize>,
    emb_req_secs: Vec<f64>,
    total_queries: u64,
    completed: u64,
    latency: Histogram,
    completion_window: QpsWindow,
    stages: StageBreakdown,
    out_qps: TimeSeries,
    out_target: TimeSeries,
    out_mem: TimeSeries,
    out_p95: TimeSeries,
    out_replicas: TimeSeries,
    violations: usize,
    intervals: usize,
    peak_mem: f64,
    client_rtt: f64,
}

impl ControlLp<'_> {
    /// Soonest-available frontend pod, as the sequential `assign_pod`.
    fn assign_frontend_pod(&self, now: f64) -> (u64, f64) {
        let id = self.deploys[self.frontend].id;
        let pods = self.cluster.pods_of(id);
        assert!(
            !pods.is_empty(),
            "deployment {} has no pods",
            self.cluster.deployment_name(id)
        );
        let mut best = (pods[0].id(), f64::INFINITY);
        for p in pods {
            let free = self.pod_free.get(p.id() as usize).copied().unwrap_or(0.0);
            let start = now.max(p.ready_at().as_secs()).max(free);
            if start < best.1 {
                best = (p.id(), start);
                if start <= now {
                    break;
                }
            }
        }
        best
    }

    fn occupy(&mut self, pod: u64, start: f64, busy: f64) -> f64 {
        let end = start + busy;
        let idx = pod as usize;
        if idx >= self.pod_free.len() {
            self.pod_free.resize(idx + 1, 0.0);
        }
        self.pod_free[idx] = end;
        end
    }

    fn schedule_arrival(&mut self, now: f64, ctx: &mut LpCtx<'_, PEv>) {
        if let Some(t) = self.arrivals.next_arrival(now) {
            if t <= self.cfg.duration_secs {
                ctx.schedule(SimTime::from_secs(t), PEv::Arrival);
            }
        }
    }

    fn on_arrival(&mut self, now: f64, ctx: &mut LpCtx<'_, PEv>) {
        self.schedule_arrival(now, ctx);
        self.total_queries += 1;
        let fe = self.frontend;
        self.deploys[fe].qps_window.record(now);

        let (pod, start) = self.assign_frontend_pod(now);
        match self.plan.shards[self.frontend].service {
            ShardService::Monolithic { secs } => {
                let end = self.occupy(pod, start, secs);
                let qid = self.queries.insert(QueryState {
                    arrive: now,
                    pending_sparse: 0,
                    bottom_start: start,
                    bottom_end: end,
                    sparse_done: start,
                    dense_pod: pod,
                });
                self.stages.frontend_wait.record(start - now);
                self.stages.frontend_service.record(secs);
                ctx.schedule(SimTime::from_secs(end), PEv::TopDone { qid });
            }
            ShardService::Dense { bottom_secs, .. } => {
                let bottom_end = self.occupy(pod, start, bottom_secs);
                let qid = self.queries.insert(QueryState {
                    arrive: now,
                    pending_sparse: self.emb_shards.len(),
                    bottom_start: start,
                    bottom_end,
                    sparse_done: start,
                    dense_pod: pod,
                });
                self.stages.frontend_wait.record(start - now);
                self.stages.frontend_service.record(bottom_secs);
                for k in 0..self.emb_shards.len() {
                    let shard = self.emb_shards[k];
                    // HPA sees offered load, exactly as sequentially.
                    self.deploys[shard].qps_window.record(now);
                    // The request-transfer hop (≥ lookahead) carries the
                    // fan-out to the shard's LP.
                    let at = start + self.emb_req_secs[k];
                    ctx.send(k + 1, SimTime::from_secs(at), PEv::SparseReq { qid });
                }
            }
            ShardService::Sparse { .. } => unreachable!("frontend is never a sparse shard"),
        }
    }

    /// A pooled-embedding response lands. The *last* one to land is the
    /// fan-in (its arrival time is the max response time by construction),
    /// so the sequential engine's separate `FanIn` event collapses into
    /// the final `SparseDone`.
    fn on_sparse_done(&mut self, now: f64, qid: u64, ctx: &mut LpCtx<'_, PEv>) {
        let ShardService::Dense { top_secs, .. } = self.plan.shards[self.frontend].service else {
            unreachable!("sparse responses only exist with a dense frontend")
        };
        let Some(q) = self.queries.get_mut(qid) else {
            return;
        };
        q.pending_sparse -= 1;
        q.sparse_done = q.sparse_done.max(now);
        if q.pending_sparse > 0 {
            return;
        }
        let pod = q.dense_pod;
        let bottom_end = q.bottom_end;
        let bottom_start = q.bottom_start;
        let free = self.pod_free.get(pod as usize).copied().unwrap_or(0.0);
        let start = now.max(bottom_end).max(free);
        let end = self.occupy(pod, start, top_secs);
        self.stages.sparse_phase.record(now - bottom_start);
        self.stages.top_wait.record(start - now.max(bottom_end));
        self.stages.top_service.record(top_secs);
        ctx.schedule(SimTime::from_secs(end), PEv::TopDone { qid });
    }

    fn on_top_done(&mut self, now: f64, qid: u64) {
        let Some(q) = self.queries.remove(qid) else {
            return;
        };
        let latency = now - q.arrive + self.client_rtt;
        self.stages.client_rtt.record(self.client_rtt);
        self.completed += 1;
        self.latency.record(latency);
        self.completion_window.record(now);
        let fe = self.frontend;
        self.deploys[fe].interval_latency.record(latency);
    }

    /// Broadcasts deployment `i`'s current pod set to its LP. Only valid
    /// at sync points (the send has zero delay).
    fn send_pod_set(&self, i: usize, now: f64, ctx: &mut LpCtx<'_, PEv>) {
        let Some(k) = self.emb_shards.iter().position(|&s| s == i) else {
            return; // frontend: its pods live here, no view to refresh
        };
        let pods = self
            .cluster
            .pods_of(self.deploys[i].id)
            .iter()
            .map(|p| (p.id(), p.ready_at().as_secs()))
            .collect();
        ctx.send(k + 1, SimTime::from_secs(now), PEv::PodSet { pods });
    }

    fn on_node_failure(&mut self, now: f64, ctx: &mut LpCtx<'_, PEv>) {
        let losses = self.cluster.fail_node(0);
        for (id, lost) in losses {
            let desired = self.cluster.replicas_of(id) + lost;
            let _ = self
                .cluster
                .scale_deployment(id, desired, SimTime::from_secs(now));
        }
        // Refresh every embedding view: pod sets may have churned both
        // ways (losses and recreations).
        for i in 0..self.deploys.len() {
            self.send_pod_set(i, now, ctx);
        }
    }

    fn on_metrics_tick(&mut self, now: f64, ctx: &mut LpCtx<'_, PEv>) {
        let qps = self.completion_window.qps_at(now);
        self.out_qps.push(now, qps);
        self.out_target.push(now, self.cfg.schedule.rate_at(now));
        let mem = self.cluster.memory_allocated_bytes() as f64 / (1u64 << 30) as f64;
        self.peak_mem = self.peak_mem.max(mem);
        self.out_mem.push(now, mem);
        let replicas: usize = self
            .deploys
            .iter()
            .map(|d| self.cluster.replicas_of(d.id))
            .sum();
        self.out_replicas.push(now, replicas as f64);

        let fe = &mut self.deploys[self.frontend];
        let p95 = if fe.interval_latency.is_empty() {
            0.0
        } else {
            fe.interval_latency.percentile(self.cfg.sla.percentile())
        };
        fe.interval_latency.reset();
        self.out_p95.push(now, p95 * 1000.0);
        self.intervals += 1;
        if self.cfg.sla.is_violated(p95) {
            self.violations += 1;
        }

        let next = now + self.cfg.metrics_interval_secs;
        if next <= self.cfg.duration_secs {
            ctx.schedule(SimTime::from_secs(next), PEv::MetricsTick);
        }
    }

    fn on_hpa_tick(&mut self, now: f64, ctx: &mut LpCtx<'_, PEv>) {
        let fe_p95 = {
            let fe = &self.deploys[self.frontend];
            if fe.interval_latency.is_empty() {
                None
            } else {
                Some(fe.interval_latency.percentile(self.cfg.sla.percentile()))
            }
        };
        for i in 0..self.deploys.len() {
            let id = self.deploys[i].id;
            let current = self.cluster.replicas_of(id);
            if current == 0 {
                continue;
            }
            let qps = self.deploys[i].qps_window.qps_at(now);
            let obs = Observation {
                qps: Qps::of(qps),
                p95_latency: if i == self.frontend {
                    fe_p95.map(Secs::of)
                } else {
                    None
                },
            };
            if let Some(desired) =
                self.deploys[i]
                    .hpa
                    .evaluate(SimTime::from_secs(now), current, obs)
            {
                // Same offered-load bound on the frontend as sequentially.
                let desired = if i == self.frontend {
                    bound_frontend_desired(
                        desired,
                        current,
                        Qps::of(qps),
                        Qps::of(self.plan.shards[i].qps_max()),
                    )
                } else {
                    desired
                };
                // Same apply-time stale-decision guard as sequentially
                // (a no-op here: decisions apply atomically).
                let desired = clamp_scale_to_load(
                    desired,
                    current,
                    Qps::of(qps),
                    Qps::of(self.plan.shards[i].qps_max()),
                );
                if desired != current {
                    let _ = self
                        .cluster
                        .scale_deployment(id, desired, SimTime::from_secs(now));
                    // Embedding LPs learn their new pod set through the
                    // control window this tick runs in.
                    self.send_pod_set(i, now, ctx);
                }
            }
        }
        let next = now + self.cfg.hpa_interval_secs;
        if next <= self.cfg.duration_secs {
            ctx.schedule(SimTime::from_secs(next), PEv::HpaTick);
        }
    }

    fn on_event(&mut self, now: SimTime, ev: PEv, ctx: &mut LpCtx<'_, PEv>) {
        let t = now.as_secs();
        match ev {
            PEv::Arrival => self.on_arrival(t, ctx),
            PEv::NodeFailure => self.on_node_failure(t, ctx),
            PEv::SparseDone { qid } => self.on_sparse_done(t, qid, ctx),
            PEv::TopDone { qid } => self.on_top_done(t, qid),
            PEv::MetricsTick => self.on_metrics_tick(t, ctx),
            PEv::HpaTick => self.on_hpa_tick(t, ctx),
            PEv::SparseReq { .. } | PEv::PodSet { .. } => {
                unreachable!("embedding-LP event routed to the control LP")
            }
        }
    }

    fn into_outcome(self) -> SimulationOutcome {
        SimulationOutcome {
            achieved_qps: self.out_qps,
            target_qps: self.out_target,
            memory_gib: self.out_mem,
            p95_ms: self.out_p95,
            total_replicas: self.out_replicas,
            total_queries: self.total_queries,
            completed_queries: self.completed,
            latency: self.latency,
            sla_violation_intervals: self.violations,
            metric_intervals: self.intervals,
            stages: self.stages,
            final_nodes_used: self.cluster.nodes_used(),
            peak_memory_gib: self.peak_mem,
        }
    }
}

/// The serving LPs as one event-compatible type for the runner.
enum ParLp<'a> {
    Control(Box<ControlLp<'a>>),
    Emb(EmbLp),
}

impl LpLogic for ParLp<'_> {
    type Event = PEv;

    fn on_event(&mut self, now: SimTime, ev: PEv, ctx: &mut LpCtx<'_, PEv>) {
        match self {
            ParLp::Control(c) => c.on_event(now, ev, ctx),
            ParLp::Emb(e) => e.on_event(now, ev, ctx),
        }
    }
}

/// The parallel simulation entry point.
#[derive(Debug)]
pub struct ParSimulation;

impl ParSimulation {
    /// Runs `serving_plan` under `cfg` on the sharded windowed core.
    ///
    /// # Panics
    ///
    /// Panics if the initial deployment cannot be scheduled, exactly as
    /// [`crate::Simulation::run`] would.
    pub fn run(
        serving_plan: &ServingPlan,
        calib: &Calibration,
        cfg: &SimulationConfig,
        par: &ParSimConfig,
    ) -> SimulationOutcome {
        Self::run_detailed(serving_plan, calib, cfg, par, None).0
    }

    /// As [`ParSimulation::run`], also returning the runner's window
    /// counters and reporting barriers/handoffs to `obs` when given.
    pub fn run_detailed(
        serving_plan: &ServingPlan,
        calib: &Calibration,
        cfg: &SimulationConfig,
        par: &ParSimConfig,
        obs: Option<&dyn WindowObserver>,
    ) -> (SimulationOutcome, WindowStats) {
        assert!(
            cfg.coalesce_window_secs.is_none(),
            "request coalescing is not supported by the parallel engine; use Simulation::run"
        );
        let profile = calib.node_profile(serving_plan.platform == Platform::CpuGpu);
        let mut cluster = Cluster::new(profile, cfg.max_nodes);
        let initial_rate = cfg.schedule.rate_at(0.0).max(1.0);

        let mut deploys = Vec::with_capacity(serving_plan.shards.len());
        let mut frontend = 0;
        for (i, shard) in serving_plan.shards.iter().enumerate() {
            let n = SteadyState::replicas_for(shard.qps_max(), initial_rate).min(cfg.max_replicas);
            cluster
                .create_deployment_warm(&shard.name, shard.pod.clone(), n, SimTime::ZERO)
                // lint::allow(no_panic): startup provisioning; failing loudly before serving begins is correct
                .unwrap_or_else(|e| panic!("initial deployment failed: {e}"));
            let target = if shard.role.is_embedding() {
                ScalingTarget::QpsPerReplica(Qps::of(shard.qps_max() * KNEE_FRACTION))
            } else {
                frontend = i;
                ScalingTarget::LatencyP95(Secs::of(cfg.sla.hpa_threshold_secs()))
            };
            deploys.push(DeployState {
                // lint::allow(no_panic): the deployment was created two statements above under this exact name
                id: cluster.deploy_id(&shard.name).expect("just created"),
                qps_window: QpsWindow::with_capacity(cfg.hpa_interval_secs.max(1.0), 1024),
                interval_latency: Histogram::new(),
                hpa: HpaController::new(HpaPolicy::new(1, cfg.max_replicas, target)),
            });
        }

        let net = serving_plan.platform.network();
        let q = &serving_plan.model;
        let total_indices: u64 = q
            .tables
            .iter()
            .map(|t| q.batch_size as u64 * t.pooling as u64)
            .sum();
        let client_rtt = net.round_trip_secs(
            messages::query_request_bytes(
                q.batch_size as u64,
                q.num_dense_features as u64,
                total_indices,
                q.tables.len() as u64,
            ),
            messages::query_response_bytes(q.batch_size as u64),
        );

        let emb_shards: Vec<usize> = serving_plan
            .shards
            .iter()
            .enumerate()
            .filter(|(_, s)| s.role.is_embedding())
            .map(|(i, _)| i)
            .collect();
        let emb_req_secs: Vec<f64> = serving_plan
            .shards
            .iter()
            .filter(|s| s.role.is_embedding())
            .map(|s| {
                let batch = q.batch_size as u64;
                let req =
                    messages::embedding_request_bytes(s.expected_gathers.ceil() as u64, batch);
                net.transfer_secs(req)
            })
            .collect();
        let emb_resp_secs = net.transfer_secs(messages::embedding_response_bytes(
            q.batch_size as u64,
            q.embedding_dim() as u64,
        ));

        // The safe lookahead: every cross-LP message rides either a
        // request hop (≥ its shard's transfer time) or the response hop,
        // all bounded below by the profile's base network latency.
        let lookahead = emb_req_secs
            .iter()
            .copied()
            .fold(emb_resp_secs, f64::min)
            .min(emb_resp_secs);
        let lookahead = if emb_shards.is_empty() {
            f64::INFINITY // single LP: no cross-LP messages exist
        } else {
            lookahead
        };

        // Sync points: instants where pod sets may change instantly. The
        // accumulation below performs the exact f64 additions the tick
        // handlers perform, so the instants match bit-for-bit.
        let mut sync_points = Vec::new();
        let mut t = cfg.hpa_interval_secs;
        while t <= cfg.duration_secs {
            sync_points.push(t);
            t += cfg.hpa_interval_secs;
        }
        if let Some(fail_at) = cfg.fail_node_at {
            if let Err(i) = sync_points.binary_search_by(|p| p.total_cmp(&fail_at)) {
                sync_points.insert(i, fail_at);
            }
        }

        // Embedding LP views snapshot the warm pod sets created above,
        // before the cluster moves into the control LP.
        let mut emb_lps = Vec::with_capacity(emb_shards.len());
        for &i in &emb_shards {
            let ShardService::Sparse { secs, .. } = serving_plan.shards[i].service else {
                unreachable!("embedding shards always have sparse service")
            };
            let pods = cluster
                .pods_of(deploys[i].id)
                .iter()
                .map(|p| (p.id(), p.ready_at().as_secs()))
                .collect();
            emb_lps.push(EmbLp {
                service_secs: secs,
                resp_secs: emb_resp_secs,
                pods,
                pod_free: Vec::new(),
            });
        }

        // First arrival drawn now, exactly as the sequential engine's
        // `run()` draws it before the event loop starts.
        let mut arrivals = ArrivalProcess::new(cfg.schedule.clone(), SimRng::seed_from(cfg.seed));
        let first_arrival = arrivals.next_arrival(0.0);

        let mut lps: Vec<ParLp<'_>> = Vec::with_capacity(1 + emb_lps.len());
        lps.push(ParLp::Control(Box::new(ControlLp {
            plan: serving_plan,
            cfg,
            cluster,
            arrivals,
            pod_free: Vec::new(),
            queries: QuerySlab::default(),
            deploys,
            frontend,
            emb_shards,
            emb_req_secs,
            total_queries: 0,
            completed: 0,
            latency: Histogram::new(),
            completion_window: QpsWindow::with_capacity(cfg.metrics_interval_secs.max(1.0), 1024),
            stages: StageBreakdown::default(),
            out_qps: TimeSeries::new("achieved_qps"),
            out_target: TimeSeries::new("target_qps"),
            out_mem: TimeSeries::new("memory_gib"),
            out_p95: TimeSeries::new("p95_ms"),
            out_replicas: TimeSeries::new("total_replicas"),
            violations: 0,
            intervals: 0,
            peak_mem: 0.0,
            client_rtt,
        })));
        lps.extend(emb_lps.into_iter().map(ParLp::Emb));

        let window_cfg = WindowConfig {
            lookahead,
            shards: par.shards.max(1),
            threads: par.threads.max(1),
            sync_points,
        };
        let mut sim = ShardedSim::new(lps, window_cfg);
        // Seeding order matches the sequential engine: ticks first, then
        // the optional failure, then the first arrival.
        sim.schedule(
            0,
            SimTime::from_secs(cfg.metrics_interval_secs),
            PEv::MetricsTick,
        );
        sim.schedule(0, SimTime::from_secs(cfg.hpa_interval_secs), PEv::HpaTick);
        if let Some(at) = cfg.fail_node_at {
            sim.schedule(0, SimTime::from_secs(at), PEv::NodeFailure);
        }
        if let Some(t0) = first_arrival {
            if t0 <= cfg.duration_secs {
                sim.schedule(0, SimTime::from_secs(t0), PEv::Arrival);
            }
        }

        let (lps, stats) = match obs {
            Some(o) => sim.run_observed(o),
            None => sim.run(),
        };
        let outcome = lps
            .into_iter()
            .find_map(|lp| match lp {
                ParLp::Control(c) => Some(c.into_outcome()),
                ParLp::Emb(_) => None,
            })
            .unwrap_or_else(|| unreachable!("the control LP always survives the run"));
        (outcome, stats)
    }
}

//! Deployment planning: from a model configuration to a set of shard
//! microservices.

use er_cluster::{PodSpec, ResourceRequest};
use er_distribution::{AccessModel, LocalityTarget};
use er_model::{CostBreakdown, ModelConfig};
use er_partition::{
    partition_bucketed, partition_bucketed_k, AnalyticGatherModel, CostModel, PartitionPlan,
    ProfiledQpsModel,
};
use er_rpc::NetworkProfile;
use er_units::{Bytes, BytesPerSec, Qps, Secs};
use serde::{Deserialize, Serialize};

use crate::{Calibration, ShardRole, ShardService, ShardSpec};

/// Which of the paper's two testbeds the plan targets (Section V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Platform {
    /// CPU-only inference servers (Xeon cluster).
    CpuOnly,
    /// Hybrid CPU-GPU servers (GKE + T4).
    CpuGpu,
}

impl Platform {
    /// Whether dense layers execute on a GPU.
    pub fn dense_on_gpu(&self) -> bool {
        matches!(self, Platform::CpuGpu)
    }

    /// The testbed's network fabric.
    pub fn network(&self) -> NetworkProfile {
        match self {
            Platform::CpuOnly => NetworkProfile::ten_gbps(),
            Platform::CpuGpu => NetworkProfile::thirty_two_gbps(),
        }
    }
}

/// The resource-allocation strategy being evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Strategy {
    /// Baseline: one monolithic container per inference server replica.
    ModelWise,
    /// Baseline augmented with a GPU-side embedding cache capturing the
    /// given fraction of gathers (Section VI-E; the paper models 90%).
    ModelWiseCached {
        /// Fraction of embedding gathers served from GPU HBM.
        gpu_hit_rate: f64,
    },
    /// ElasticRec: dense shard plus utility-partitioned embedding shards.
    Elastic,
}

/// A complete deployment plan: the shards to containerize and, for
/// ElasticRec, the per-table partitioning plans.
#[derive(Debug, Clone)]
pub struct ServingPlan {
    /// The model being served.
    pub model: ModelConfig,
    /// Target platform.
    pub platform: Platform,
    /// Strategy that produced the plan.
    pub strategy: Strategy,
    /// Partition plan per table (single-shard plans for the baselines).
    pub table_plans: Vec<PartitionPlan>,
    /// One spec per shard deployment.
    pub shards: Vec<ShardSpec>,
}

impl ServingPlan {
    /// The dense (or monolithic) orchestrating shard.
    pub fn frontend(&self) -> &ShardSpec {
        self.shards
            .iter()
            .find(|s| !s.role.is_embedding())
            // lint::allow(no_panic): plan builders always emit a frontend shard before embedding shards
            .expect("every plan has a frontend shard")
    }

    /// The embedding shards, in `(table, shard)` order.
    pub fn embedding_shards(&self) -> impl Iterator<Item = &ShardSpec> {
        self.shards.iter().filter(|s| s.role.is_embedding())
    }

    /// Memory one replica-of-everything would allocate: the sum of all
    /// shard containers' requests.
    pub fn single_copy_memory_bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.pod.resources().memory_bytes)
            .sum()
    }

    /// Total shards (deployments) in the plan.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }
}

/// Builds a [`ServingPlan`] for a model under a strategy.
///
/// For [`Strategy::Elastic`] this runs the full paper pipeline per table:
/// solve the access distribution for the configured locality, profile the
/// gather QPS curve ([`ProfiledQpsModel`], Figure 9), price shards with
/// Algorithm 1, and partition with the DP of Algorithm 2.
///
/// # Panics
///
/// Panics if a cached strategy is requested on [`Platform::CpuOnly`] (the
/// GPU cache needs a GPU) or the hit rate is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use elasticrec::{plan, Calibration, Platform, Strategy};
/// use er_model::configs;
///
/// let p = plan(&configs::rm1(), Platform::CpuOnly, Strategy::Elastic, &Calibration::cpu_only());
/// assert!(p.num_shards() > 10); // 10 tables, multiple shards each, plus dense
/// ```
pub fn plan(
    model: &ModelConfig,
    platform: Platform,
    strategy: Strategy,
    calib: &Calibration,
) -> ServingPlan {
    match strategy {
        Strategy::Elastic => plan_elastic(model, platform, calib),
        Strategy::ModelWise => plan_model_wise(model, platform, calib, None),
        Strategy::ModelWiseCached { gpu_hit_rate } => {
            assert!(
                platform.dense_on_gpu(),
                "a GPU embedding cache requires the CPU-GPU platform"
            );
            plan_model_wise(model, platform, calib, Some(gpu_hit_rate))
        }
    }
}

/// Per-query gathered bytes across all tables.
fn total_gather_bytes(model: &ModelConfig) -> Bytes {
    model
        .tables
        .iter()
        .map(|t| Bytes::of_u64(model.batch_size as u64 * t.pooling as u64 * t.vector_bytes()))
        .sum()
}

fn dense_service(model: &ModelConfig, platform: Platform, calib: &Calibration) -> ShardService {
    let (bottom_flops, top_flops) = er_model::dense_phase_flops(model);
    if platform.dense_on_gpu() {
        ShardService::Dense {
            bottom_secs: calib.gpu_dense_secs(bottom_flops),
            top_secs: calib.gpu_dense_secs(top_flops),
        }
    } else {
        ShardService::Dense {
            bottom_secs: calib.cpu_dense_secs(bottom_flops, calib.dense_cores),
            top_secs: calib.cpu_dense_secs(top_flops, calib.dense_cores),
        }
    }
}

fn plan_model_wise(
    model: &ModelConfig,
    platform: Platform,
    calib: &Calibration,
    cache_hit: Option<f64>,
) -> ServingPlan {
    let breakdown = CostBreakdown::for_config(model);
    let (bottom_flops, top_flops) = er_model::dense_phase_flops(model);
    let gather_bytes = total_gather_bytes(model);

    // The monolith's dense stage is bounded by per-worker intra-op
    // parallelism, not by the whole node it owns; its sparse stage is
    // memory-bandwidth bound and does use the node.
    let dense_secs = if platform.dense_on_gpu() {
        calib.gpu_dense_secs(bottom_flops) + calib.gpu_dense_secs(top_flops)
    } else {
        calib.cpu_dense_secs(bottom_flops, calib.mw_worker_cores)
            + calib.cpu_dense_secs(top_flops, calib.mw_worker_cores)
    };
    let sparse_secs = match cache_hit {
        Some(hit) => calib.cached_sparse_secs(gather_bytes, calib.mw_cores, hit),
        None => calib.cpu_sparse_secs(gather_bytes, calib.mw_cores),
    };

    let model_bytes = breakdown.dense.param_bytes + breakdown.sparse.param_bytes;
    let mem = (model_bytes + Bytes::of_u64(calib.min_mem_alloc_bytes)).whole();
    let resources = if platform.dense_on_gpu() {
        ResourceRequest::with_gpu(calib.mw_cores as u64 * 1000, mem, 1)
    } else {
        ResourceRequest::cpu(calib.mw_cores as u64 * 1000, mem)
    };

    let shard = ShardSpec {
        name: "model-wise".into(),
        role: ShardRole::Monolithic,
        pod: PodSpec::new("model-wise", resources, calib.startup_secs(model_bytes)),
        service: ShardService::Monolithic {
            secs: dense_secs + sparse_secs,
        },
        expected_gathers: 0.0,
    };

    ServingPlan {
        model: model.clone(),
        platform,
        strategy: match cache_hit {
            Some(gpu_hit_rate) => Strategy::ModelWiseCached { gpu_hit_rate },
            None => Strategy::ModelWise,
        },
        table_plans: model
            .tables
            .iter()
            .map(|t| PartitionPlan::single(t.rows))
            .collect(),
        shards: vec![shard],
    }
}

/// Builds an ElasticRec plan with every table forced to exactly
/// `shards_per_table` shards — the manual sensitivity knob of the paper's
/// Figure 12(d). Shard *boundaries* are still cost-optimal for that count.
///
/// # Panics
///
/// Panics if `shards_per_table` is zero or exceeds the table size.
pub fn plan_elastic_fixed_shards(
    model: &ModelConfig,
    platform: Platform,
    calib: &Calibration,
    shards_per_table: usize,
) -> ServingPlan {
    plan_elastic_inner(model, platform, calib, Some(shards_per_table))
}

fn plan_elastic(model: &ModelConfig, platform: Platform, calib: &Calibration) -> ServingPlan {
    plan_elastic_inner(model, platform, calib, None)
}

/// Builds an ElasticRec-style plan from **explicit** per-table partition
/// plans, bypassing the DP — the tool for ablating the partitioning policy
/// (equal splits, greedy hot/cold thresholds, ...). Shard sizing, QPS
/// modeling, and container specs follow the normal pipeline.
///
/// # Panics
///
/// Panics if the number of plans differs from the model's tables or a plan
/// does not cover its table.
pub fn plan_elastic_with_plans(
    model: &ModelConfig,
    platform: Platform,
    calib: &Calibration,
    plans: Vec<PartitionPlan>,
) -> ServingPlan {
    assert_eq!(
        plans.len(),
        model.tables.len(),
        "need one partition plan per table"
    );
    for (t, (plan, table)) in plans.iter().zip(&model.tables).enumerate() {
        assert_eq!(
            plan.table_len(),
            table.rows,
            "plan {t} covers {} rows but the table has {}",
            plan.table_len(),
            table.rows
        );
    }
    let mut shards = vec![dense_shard_spec(model, platform, calib)];
    for (t_idx, (table, plan)) in model.tables.iter().zip(&plans).enumerate() {
        let access = LocalityTarget::new(model.locality_p).solve(table.rows);
        let n_t = (model.batch_size as u64 * table.pooling as u64) as f64;
        for (s_idx, (k, j)) in plan.shards().into_iter().enumerate() {
            shards.push(embedding_shard_spec(
                calib,
                t_idx,
                s_idx,
                access.coverage(k, j) * n_t,
                Bytes::of_u64((j - k) * table.vector_bytes()),
                Bytes::of_u64(table.vector_bytes()),
            ));
        }
    }
    ServingPlan {
        model: model.clone(),
        platform,
        strategy: Strategy::Elastic,
        table_plans: plans,
        shards,
    }
}

/// The dense shard's container + performance spec for a platform.
fn dense_shard_spec(model: &ModelConfig, platform: Platform, calib: &Calibration) -> ShardSpec {
    let breakdown = CostBreakdown::for_config(model);
    let dense_mem =
        (breakdown.dense.param_bytes + Bytes::of_u64(calib.min_mem_alloc_bytes)).whole();
    let dense_resources = if platform.dense_on_gpu() {
        ResourceRequest::with_gpu(calib.dense_cores as u64 * 1000, dense_mem, 1)
    } else {
        ResourceRequest::cpu(calib.dense_cores as u64 * 1000, dense_mem)
    };
    ShardSpec {
        name: "dense".into(),
        role: ShardRole::Dense,
        pod: PodSpec::new(
            "dense",
            dense_resources,
            calib.startup_secs(breakdown.dense.param_bytes),
        ),
        service: dense_service(model, platform, calib),
        expected_gathers: 0.0,
    }
}

/// One embedding shard's container + performance spec.
fn embedding_shard_spec(
    calib: &Calibration,
    table: usize,
    shard: usize,
    expected_gathers: f64,
    shard_bytes: Bytes,
    vector_bytes: Bytes,
) -> ShardSpec {
    let role = ShardRole::Embedding { table, shard };
    let name = role.to_string();
    ShardSpec {
        name: name.clone(),
        role,
        pod: PodSpec::new(
            name,
            ResourceRequest::cpu(
                calib.sparse_cores as u64 * 1000,
                (shard_bytes + Bytes::of_u64(calib.min_mem_alloc_bytes)).whole(),
            ),
            calib.startup_secs(shard_bytes),
        ),
        service: ShardService::Sparse {
            secs: calib.cpu_sparse_secs(vector_bytes * expected_gathers, calib.sparse_cores),
            base_secs: calib.sparse_base_secs,
        },
        expected_gathers,
    }
}

fn plan_elastic_inner(
    model: &ModelConfig,
    platform: Platform,
    calib: &Calibration,
    fixed_shards: Option<usize>,
) -> ServingPlan {
    let mut shards = vec![dense_shard_spec(model, platform, calib)];

    // Embedding shards: run the paper pipeline per table.
    let mut table_plans = Vec::with_capacity(model.tables.len());
    for (t_idx, table) in model.tables.iter().enumerate() {
        let access = LocalityTarget::new(model.locality_p).solve(table.rows);
        let n_t = (model.batch_size as u64 * table.pooling as u64) as f64;
        let vector_bytes = table.vector_bytes();

        // One-time profiling of gather QPS on a sparse-shard container,
        // then the regression the cost model consumes (Figure 9).
        let hardware = AnalyticGatherModel::new(
            Secs::of(calib.sparse_base_secs),
            BytesPerSec::of(calib.sparse_cores as f64 * calib.gather_bytes_per_sec_per_core),
            Bytes::of_u64(vector_bytes),
        );
        let sweep = ProfiledQpsModel::standard_sweep((n_t * 2.0).max(16.0));
        let profiled = ProfiledQpsModel::profile(&hardware, &sweep);

        let cost = CostModel::new(
            &access,
            &profiled,
            n_t,
            Bytes::of_u64(vector_bytes),
            Bytes::of_u64(calib.min_mem_alloc_bytes),
        )
        .with_target_traffic(Qps::of(calib.dp_target_traffic));
        let plan = match fixed_shards {
            Some(k) => partition_bucketed_k(table.rows, k, calib.dp_candidates, |k, j| {
                cost.cost(k, j).raw()
            }),
            None => partition_bucketed(table.rows, calib.s_max, calib.dp_candidates, |k, j| {
                cost.cost(k, j).raw()
            }),
        };

        for (s_idx, (k, j)) in plan.shards().into_iter().enumerate() {
            shards.push(embedding_shard_spec(
                calib,
                t_idx,
                s_idx,
                access.coverage(k, j) * n_t,
                Bytes::of_u64((j - k) * vector_bytes),
                Bytes::of_u64(vector_bytes),
            ));
        }
        table_plans.push(plan);
    }

    ServingPlan {
        model: model.clone(),
        platform,
        strategy: Strategy::Elastic,
        table_plans,
        shards,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_model::configs;

    fn calib() -> Calibration {
        Calibration::cpu_only()
    }

    #[test]
    fn model_wise_is_one_monolithic_shard() {
        let p = plan(
            &configs::rm1(),
            Platform::CpuOnly,
            Strategy::ModelWise,
            &calib(),
        );
        assert_eq!(p.num_shards(), 1);
        assert_eq!(p.shards[0].role, ShardRole::Monolithic);
        assert_eq!(p.table_plans.len(), 10);
        assert!(p.table_plans.iter().all(|t| t.num_shards() == 1));
        // The container holds the entire model: > 25 GB for RM1.
        assert!(p.single_copy_memory_bytes() > 23 << 30);
    }

    #[test]
    fn elastic_partitions_every_table() {
        let p = plan(
            &configs::rm1(),
            Platform::CpuOnly,
            Strategy::Elastic,
            &calib(),
        );
        assert_eq!(p.table_plans.len(), 10);
        for t in &p.table_plans {
            assert!(t.num_shards() >= 2, "tables should be split");
        }
        let emb_count = p.embedding_shards().count();
        let plan_count: usize = p.table_plans.iter().map(|t| t.num_shards()).sum();
        assert_eq!(emb_count, plan_count);
        assert_eq!(p.frontend().role, ShardRole::Dense);
    }

    #[test]
    fn identical_tables_get_identical_plans() {
        let p = plan(
            &configs::rm1(),
            Platform::CpuOnly,
            Strategy::Elastic,
            &calib(),
        );
        let first = p.table_plans[0].cuts().to_vec();
        for t in &p.table_plans {
            assert_eq!(t.cuts(), first.as_slice());
        }
    }

    #[test]
    fn hot_shards_have_more_gathers_and_less_memory() {
        let p = plan(
            &configs::rm1(),
            Platform::CpuOnly,
            Strategy::Elastic,
            &calib(),
        );
        let t0: Vec<&ShardSpec> = p
            .embedding_shards()
            .filter(|s| matches!(s.role, ShardRole::Embedding { table: 0, .. }))
            .collect();
        assert!(t0.len() >= 2);
        // Shard 0 is the hot head: most gathers, smallest footprint.
        assert!(t0[0].expected_gathers > t0.last().unwrap().expected_gathers);
        assert!(
            t0[0].pod.resources().memory_bytes < t0.last().unwrap().pod.resources().memory_bytes
        );
        // Hot shards are slower per query (more bytes moved) -> lower QPS max.
        assert!(t0[0].qps_max() < t0.last().unwrap().qps_max());
    }

    #[test]
    fn elastic_single_copy_is_not_much_larger_than_model() {
        let p = plan(
            &configs::rm1(),
            Platform::CpuOnly,
            Strategy::Elastic,
            &calib(),
        );
        let model_bytes = configs::rm1().embedding_bytes();
        let single = p.single_copy_memory_bytes();
        // One copy of all shards ~ model size + per-container floors.
        assert!(single > model_bytes);
        assert!(single < 2 * model_bytes, "single={single}");
    }

    #[test]
    fn gpu_platform_puts_dense_on_gpu() {
        let c = Calibration::cpu_gpu();
        let p = plan(&configs::rm3(), Platform::CpuGpu, Strategy::Elastic, &c);
        let dense = p.frontend();
        assert_eq!(dense.pod.resources().gpus, 1);
        // RM3's heavy MLPs run much faster on GPU than the CPU-only plan.
        let cpu_plan = plan(&configs::rm3(), Platform::CpuOnly, Strategy::Elastic, &c);
        assert!(dense.service.busy_secs() < cpu_plan.frontend().service.busy_secs() / 2.0);
        // Embedding shards stay CPU-only (Section IV-A).
        for s in p.embedding_shards() {
            assert_eq!(s.pod.resources().gpus, 0);
        }
    }

    #[test]
    fn cached_model_wise_is_faster_than_plain() {
        let c = Calibration::cpu_gpu();
        let mw = plan(&configs::rm1(), Platform::CpuGpu, Strategy::ModelWise, &c);
        let cached = plan(
            &configs::rm1(),
            Platform::CpuGpu,
            Strategy::ModelWiseCached { gpu_hit_rate: 0.9 },
            &c,
        );
        assert!(cached.shards[0].qps_max() > mw.shards[0].qps_max());
        // Memory per replica is unchanged: the CPU copy still exists.
        assert_eq!(
            cached.single_copy_memory_bytes(),
            mw.single_copy_memory_bytes()
        );
    }

    #[test]
    fn rm3_dense_is_slowest_on_cpu() {
        let c = calib();
        let d1 = plan(&configs::rm1(), Platform::CpuOnly, Strategy::Elastic, &c)
            .frontend()
            .service
            .busy_secs();
        let d3 = plan(&configs::rm3(), Platform::CpuOnly, Strategy::Elastic, &c)
            .frontend()
            .service
            .busy_secs();
        assert!(d3 > 3.0 * d1, "d1={d1} d3={d3}");
    }

    #[test]
    fn fixed_shards_forces_the_count() {
        for k in [1usize, 2, 8] {
            let p = plan_elastic_fixed_shards(&configs::rm1(), Platform::CpuOnly, &calib(), k);
            assert!(p.table_plans.iter().all(|t| t.num_shards() == k), "k={k}");
            assert_eq!(p.embedding_shards().count(), 10 * k);
        }
    }

    #[test]
    fn explicit_plans_are_respected() {
        let model = configs::rm1();
        let rows = model.tables[0].rows;
        let plans = vec![PartitionPlan::equal(rows, 3); 10];
        let p = plan_elastic_with_plans(&model, Platform::CpuOnly, &calib(), plans.clone());
        assert_eq!(p.table_plans, plans);
        assert_eq!(p.embedding_shards().count(), 30);
        // Coverage-derived gathers still sum to n_t per table.
        let t0: f64 = p
            .embedding_shards()
            .filter(|s| matches!(s.role, ShardRole::Embedding { table: 0, .. }))
            .map(|s| s.expected_gathers)
            .sum();
        assert!((t0 - 4096.0).abs() < 1.0, "t0={t0}");
    }

    #[test]
    #[should_panic(expected = "one partition plan per table")]
    fn explicit_plans_must_match_table_count() {
        let model = configs::rm1();
        let rows = model.tables[0].rows;
        plan_elastic_with_plans(
            &model,
            Platform::CpuOnly,
            &calib(),
            vec![PartitionPlan::equal(rows, 2); 3],
        );
    }

    #[test]
    #[should_panic(expected = "GPU")]
    fn cached_on_cpu_only_panics() {
        plan(
            &configs::rm1(),
            Platform::CpuOnly,
            Strategy::ModelWiseCached { gpu_hit_rate: 0.9 },
            &calib(),
        );
    }
}
